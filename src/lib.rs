//! # sp2bench — SP²Bench: A SPARQL Performance Benchmark, in Rust
//!
//! A full-stack, from-scratch reproduction of *Schmidt, Hornung, Lausen,
//! Pinkel: "SP²Bench: A SPARQL Performance Benchmark" (ICDE 2009)*:
//!
//! * [`datagen`] — the deterministic DBLP-like RDF data generator with the
//!   paper's fitted distributions (Sections III/IV);
//! * [`rdf`] — the RDF data model and N-Triples I/O;
//! * [`store`] — two storage engines: a hash-indexed in-memory store and a
//!   six-index ("hexastore") native store;
//! * [`sparql`] — a SPARQL engine: parser, algebra (spec-faithful
//!   `OPTIONAL`/`FILTER` translation), optimizer, streaming evaluator and
//!   the [`QueryEngine`] facade with lazy result rows;
//! * [`core`] — the 17 benchmark queries, the four engine configurations,
//!   metrics, the benchmark runner, the multi-user driver (with
//!   in-process and HTTP transports) and the table/figure formatters;
//! * [`server`] — the SPARQL Protocol endpoint: a std-only HTTP/1.1
//!   server streaming JSON/CSV/TSV results off one shared store.
//!
//! ## Quick start
//!
//! ```
//! use sp2bench::datagen::{generate_graph, Config};
//! use sp2bench::core::{BenchQuery, Engine, EngineKind};
//!
//! // 1. Generate a DBLP-like document of exactly 10k triples.
//! let (graph, stats) = generate_graph(Config::triples(10_000));
//! assert_eq!(stats.triples, 10_000);
//!
//! // 2. Load it into the optimized native engine.
//! let engine = Engine::load(EngineKind::NativeOpt, &graph);
//!
//! // 3. Run benchmark query Q1 — exactly one solution, per the paper.
//! let (outcome, measurement) = engine.run(BenchQuery::Q1, None);
//! assert_eq!(outcome.count(), Some(1));
//! println!("Q1: {}", measurement.summary());
//!
//! // 4. Or query directly through the streaming facade: prepare once,
//! //    then stream, materialize or count off one evaluation path.
//! use sp2bench::sparql::QueryEngine;
//! let qe = QueryEngine::new(engine.shared_store());
//! let prepared = qe.prepare(BenchQuery::Q1.text()).unwrap();
//! assert_eq!(qe.count(&prepared).unwrap(), 1); // decodes no terms
//! for solution in qe.solutions(&prepared) {
//!     let row = solution.unwrap(); // lazy: columns decode on access
//!     assert!(row.get(0).is_some());
//! }
//! ```
//!
//! The `sp2b` binary (crate `sp2b-bench`) regenerates every table and
//! figure of the paper's evaluation section; see README.md.

pub use sp2b_core as core;
pub use sp2b_datagen as datagen;
pub use sp2b_rdf as rdf;
pub use sp2b_server as server;
pub use sp2b_sparql as sparql;
pub use sp2b_store as store;

// Convenience re-exports of the most common entry points.
pub use sp2b_core::{BenchQuery, Engine, EngineKind, RunnerConfig};
pub use sp2b_datagen::{generate_graph, generate_to_path, Config};
pub use sp2b_sparql::{OptimizerConfig, QueryEngine, QueryOptions, QueryResult};
pub use sp2b_store::{MemStore, NativeStore, TripleStore};
