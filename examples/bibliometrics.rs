//! Bibliometrics: validate that the generated data exhibits the
//! social-world distributions of Section III — the limited-growth curves
//! (Figure 2b), the authors-per-paper drift, and the publication-count
//! power law (Figure 2c) — using the generator's per-year statistics, then
//! re-deriving one curve straight from the document with a SPARQL
//! aggregation through the `QueryEngine` facade.
//!
//! ```sh
//! cargo run --release --example bibliometrics
//! ```

use sp2bench::datagen::{generate_graph, params, Config, DocClass, Generator, NullSink};
use sp2bench::sparql::QueryEngine;
use sp2bench::store::{NativeStore, TripleStore};

fn main() {
    // Simulate through 1985 with detailed statistics.
    let stats = Generator::new(Config::up_to_year(1985).with_detailed_stats())
        .run(&mut NullSink)
        .expect("null sink cannot fail");

    println!("documents per class after {} years:", stats.years.len());
    for class in DocClass::ALL {
        println!("  {:<14} {:>8}", class.label(), stats.count(class));
    }

    // Limited growth: article counts per decade against the logistic fit.
    println!("\narticles per year vs. the paper's logistic fit f_article:");
    for year in [1945, 1955, 1965, 1975, 1985] {
        let rec = stats
            .years
            .iter()
            .find(|r| r.year == year)
            .expect("year simulated");
        println!(
            "  {year}: generated {:>6}   fit {:>6}",
            rec.class_counts[DocClass::Article.index()],
            params::F_ARTICLE.count(year)
        );
    }

    // Authors per paper grow over time (µ_auth limited-growth curve).
    // Observed mean = author attributes / publications created that year
    // (venues barely carry authors, so the publication classes suffice).
    println!("\nmean authors per paper (observed vs µ_auth):");
    for year in [1950, 1965, 1985] {
        let rec = stats
            .years
            .iter()
            .find(|r| r.year == year)
            .expect("simulated");
        let papers: u64 = [
            DocClass::Article,
            DocClass::Inproceedings,
            DocClass::Incollection,
            DocClass::Book,
            DocClass::PhdThesis,
            DocClass::MastersThesis,
            DocClass::Www,
        ]
        .iter()
        .map(|c| rec.class_counts[c.index()])
        .sum();
        let observed = rec.total_authors as f64 / papers.max(1) as f64;
        println!(
            "  {year}: observed ≈ {observed:.2}   µ_auth = {:.2}",
            params::d_auth(year).mu
        );
    }

    // Power law: many single-publication authors, few prolific ones.
    let last = stats.years.last().expect("years recorded");
    let ones = *last.publications_histogram.get(&1).unwrap_or(&0);
    let five_plus: u64 = last
        .publications_histogram
        .iter()
        .filter(|(x, _)| **x >= 5)
        .map(|(_, n)| *n)
        .sum();
    println!(
        "\npublication counts in {}: {} authors with 1 publication, {} with ≥5 \
         (power law head ≫ tail)",
        last.year, ones, five_plus
    );

    // The citation Gaussian (Figure 2a): the bulk's mode sits near
    // µ=16.82. (x=1 collects the clamped left tail — the paper's "left
    // limit x = 1" caveat — so the mode is taken over x ≥ 2.)
    let (mode, _) = stats
        .citation_histogram
        .iter()
        .filter(|(x, _)| **x >= 2)
        .max_by_key(|(_, n)| **n)
        .map(|(x, n)| (*x, *n))
        .unwrap_or((0, 0));
    println!(
        "outgoing-citation bulk mode: {} (d_cite fit µ = {:.2})",
        mode,
        params::D_CITE.mu
    );

    // The same growth curve straight from the document: articles per year
    // as a GROUP BY/COUNT aggregation, streamed through the QueryEngine
    // facade (the aggregation runs as a plan operator, not a post-pass).
    let (graph, _) = generate_graph(Config::up_to_year(1965));
    let qe = QueryEngine::new(NativeStore::from_graph(&graph).into_shared());
    let per_year = qe
        .prepare(
            "SELECT ?yr (COUNT(*) AS ?articles) \
             WHERE { ?doc rdf:type bench:Article . ?doc dcterms:issued ?yr } \
             GROUP BY ?yr ORDER BY ?yr",
        )
        .expect("aggregate query prepares");
    println!("\narticles per year, re-derived from the RDF document via SPARQL:");
    let rows: Vec<_> = qe
        .solutions(&per_year)
        .map(|s| s.expect("aggregation evaluates"))
        .collect();
    for row in rows.iter().rev().take(5).rev() {
        println!(
            "  {}: {}",
            row.get(0).expect("year bound"),
            row.get(1).expect("count bound")
        );
    }
}
