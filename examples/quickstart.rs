//! Quickstart: generate a DBLP-like document, load it into an engine, run
//! benchmark queries and a custom query.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use sp2bench::core::{BenchQuery, Engine, EngineKind};
use sp2bench::datagen::{generate_graph, Config};
use sp2bench::sparql::QueryEngine;

fn main() {
    // 1. Generate a document of exactly 25k triples (deterministic: the
    //    same call always produces the same document).
    let (graph, stats) = generate_graph(Config::triples(25_000));
    println!(
        "generated {} triples: {} articles, {} inproceedings, {} journals, data up to {}",
        stats.triples,
        stats.count(sp2bench::datagen::DocClass::Article),
        stats.count(sp2bench::datagen::DocClass::Inproceedings),
        stats.journals,
        stats.end_year
    );

    // 2. Load into the optimized native engine (six-index store).
    let engine = Engine::load(EngineKind::NativeOpt, &graph);
    println!("loaded in {}", engine.loading.summary());

    // 3. Run a few benchmark queries.
    for query in [
        BenchQuery::Q1,
        BenchQuery::Q5b,
        BenchQuery::Q8,
        BenchQuery::Q10,
    ] {
        let (outcome, m) = engine.run(query, None);
        println!(
            "{:<4} -> {:>8} solutions  [{}]",
            query.label(),
            outcome.count().expect("small document, no timeout"),
            m.summary()
        );
    }

    // 4. Run a custom SPARQL query through the streaming facade: prepare
    //    once, then pull rows lazily — terms decode only when read.
    let custom = r#"
        SELECT ?title ?yr
        WHERE {
            ?j rdf:type bench:Journal .
            ?j dc:title ?title .
            ?j dcterms:issued ?yr
        }
        ORDER BY DESC(?yr) ?title
        LIMIT 5
    "#;
    let qe = QueryEngine::new(engine.shared_store());
    let prepared = qe.prepare(custom).expect("custom query prepares");
    println!("\nfive journals with the latest issue years:");
    for solution in qe.solutions(&prepared) {
        let row = solution.expect("small document, no timeout");
        let title = row.get(0).expect("title bound");
        let yr = row.get(1).expect("year bound");
        println!("  {title} issued {yr}");
    }

    // 5. Counting reuses the same prepared statement and decodes nothing.
    let journals = qe
        .prepare("SELECT ?j WHERE { ?j rdf:type bench:Journal }")
        .expect("count query prepares");
    println!(
        "\n{} journal issues in total",
        qe.count(&journals).expect("counts")
    );
}
