//! Quickstart: generate a DBLP-like document, load it into an engine, run
//! benchmark queries and a custom query.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use sp2bench::core::{BenchQuery, Engine, EngineKind};
use sp2bench::datagen::{generate_graph, Config};
use sp2bench::sparql::QueryResult;

fn main() {
    // 1. Generate a document of exactly 25k triples (deterministic: the
    //    same call always produces the same document).
    let (graph, stats) = generate_graph(Config::triples(25_000));
    println!(
        "generated {} triples: {} articles, {} inproceedings, {} journals, data up to {}",
        stats.triples,
        stats.count(sp2bench::datagen::DocClass::Article),
        stats.count(sp2bench::datagen::DocClass::Inproceedings),
        stats.journals,
        stats.end_year
    );

    // 2. Load into the optimized native engine (six-index store).
    let engine = Engine::load(EngineKind::NativeOpt, &graph);
    println!("loaded in {}", engine.loading.summary());

    // 3. Run a few benchmark queries.
    for query in [BenchQuery::Q1, BenchQuery::Q5b, BenchQuery::Q8, BenchQuery::Q10] {
        let (outcome, m) = engine.run(query, None);
        println!(
            "{:<4} -> {:>8} solutions  [{}]",
            query.label(),
            outcome.count().expect("small document, no timeout"),
            m.summary()
        );
    }

    // 4. Run a custom SPARQL query through the same engine: the five most
    //    recent journals, by title.
    let custom = r#"
        SELECT ?title ?yr
        WHERE {
            ?j rdf:type bench:Journal .
            ?j dc:title ?title .
            ?j dcterms:issued ?yr
        }
        ORDER BY DESC(?yr) ?title
        LIMIT 5
    "#;
    let (outcome, _) = engine.run_text(custom, None, true);
    if let sp2bench::core::Outcome::Success { result: Some(QueryResult::Solutions { rows, .. }), .. } =
        outcome
    {
        println!("\nfive journals with the latest issue years:");
        for row in rows {
            let title = row[0].as_ref().expect("title bound");
            let yr = row[1].as_ref().expect("year bound");
            println!("  {title} issued {yr}");
        }
    }
}
