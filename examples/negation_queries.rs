//! Closed-world negation in SPARQL 1.0 — the paper's Q6/Q7 pattern.
//!
//! SPARQL 1.0 has no `NOT EXISTS`; negation is encoded as
//! `OPTIONAL { … FILTER C } FILTER (!bound(?v))`: the optional part finds
//! a counter-witness, and the outer filter keeps rows where none was
//! found. This example runs Q6 (authors' debut publications) and Q7
//! (double negation over the citation system), then a custom negation:
//! venues without any editor — cross-checked against the positive count
//! with the `QueryEngine` facade's decode-free counting path.
//!
//! ```sh
//! cargo run --release --example negation_queries
//! ```

use sp2bench::core::{BenchQuery, Engine, EngineKind};
use sp2bench::datagen::{generate_graph, Config};
use std::time::Duration;

fn main() {
    let (graph, _) = generate_graph(Config::triples(60_000));
    let engine = Engine::load(EngineKind::NativeOpt, &graph);
    let timeout = Some(Duration::from_secs(120));

    // Q6: publications whose authors had no earlier publication. Every
    // row pairs a debut year with an author name.
    let (outcome, m) = engine.run(BenchQuery::Q6, timeout);
    match outcome.count() {
        Some(n) => println!("Q6 — debut publications: {n} [{}]", m.summary()),
        None => println!("Q6 timed out (the paper sees the same from 250k triples on)"),
    }

    // Q7: titles of documents cited at least once but only by documents
    // that are themselves cited (double negation). The DBLP citation
    // system is sparse, so counts stay small (Table V: 0 at 10k, 2 at 50k).
    let (outcome, m) = engine.run(BenchQuery::Q7, timeout);
    println!(
        "Q7 — doubly-negated citations: {} [{}]",
        outcome.count().map_or("timeout".into(), |c| c.to_string()),
        m.summary()
    );

    // Custom negation with the same encoding: proceedings without any
    // editor (Table IX gives editors to ~80% of proceedings). One facade,
    // three prepared statements, counting only — nothing materializes.
    let qe = engine.query_engine(timeout);
    let count = |q: &str| -> u64 {
        let prepared = qe.prepare(q).expect("query prepares");
        qe.count(&prepared).expect("succeeds")
    };
    let without = count(
        r#"
        SELECT ?proc
        WHERE {
            ?proc rdf:type bench:Proceedings
            OPTIONAL { ?proc swrc:editor ?e }
            FILTER (!bound(?e))
        }
    "#,
    );
    let total = count(r#"SELECT ?proc WHERE { ?proc rdf:type bench:Proceedings }"#);
    let with = count(
        r#"
        SELECT DISTINCT ?proc
        WHERE { ?proc rdf:type bench:Proceedings . ?proc swrc:editor ?e }
    "#,
    );
    println!(
        "\nproceedings without editors: {without} of {total} (complement of {with} with editors)"
    );
    assert_eq!(without + with, total, "negation must complement");
    println!("negation complements the positive query — closed-world semantics hold");
}
