//! A miniature of the paper's evaluation (Figures 5–8): the same queries
//! on all four engine configurations over two document sizes, printed as
//! a comparison matrix.
//!
//! ```sh
//! cargo run --release --example engine_comparison
//! ```

use sp2bench::core::{BenchQuery, Engine, EngineKind};
use sp2bench::datagen::{generate_graph, Config};
use std::time::Duration;

fn main() {
    let queries = [
        BenchQuery::Q1,   // point lookup: native engines ~constant
        BenchQuery::Q3a,  // low-selectivity filter
        BenchQuery::Q5a,  // implicit join (the paper's problem child)
        BenchQuery::Q5b,  // equivalent explicit join
        BenchQuery::Q10,  // object-bound pattern
        BenchQuery::Q12c, // ASK for a missing triple
    ];
    let timeout = Some(Duration::from_secs(15));

    for scale in [10_000u64, 40_000] {
        println!("\n=== {scale} triples ===");
        let (graph, _) = generate_graph(Config::triples(scale));
        print!("{:<12}", "engine");
        for q in queries {
            print!("{:>12}", q.label());
        }
        println!();
        for kind in EngineKind::ALL {
            let engine = Engine::load(kind, &graph);
            print!("{:<12}", kind.label());
            for q in queries {
                let (outcome, m) = engine.run(q, timeout);
                match outcome.count() {
                    Some(_) => print!("{:>11.4}s", m.tme.as_secs_f64()),
                    None => print!("{:>12}", "timeout"),
                }
            }
            println!("   (role: {})", kind.paper_role());
        }

        // Reference cardinalities via the streaming facade: one engine,
        // each query prepared once and counted without decoding a term.
        let reference = Engine::load(EngineKind::NativeOpt, &graph);
        let qe = reference.query_engine(timeout);
        print!("{:<12}", "#results");
        for q in queries {
            let counted = qe
                .prepare(q.text())
                .and_then(|prepared| qe.count(&prepared));
            match counted {
                Ok(n) => print!("{n:>12}"),
                Err(_) => print!("{:>12}", "timeout"),
            }
        }
        println!("   (native-opt count path)");
    }

    println!(
        "\nreadings: native engines answer Q1/Q10/Q12c in ~constant time \
         (index lookups);\nin-memory engines pay the document load on every query; \
         Q5a degrades on\nevery engine while the equivalent Q5b stays cheap — the \
         paper's key Q5 finding."
    );
}
