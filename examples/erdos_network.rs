//! The Erdős scenario: the generator scripts Paul Erdős with 10
//! publications and 2 editor activities per year (1940–1996), giving
//! queries a person with fixed characteristics as an entry point.
//!
//! This example reproduces Q8 (Erdős numbers 1 and 2) and Q10 (everything
//! related to Erdős), then walks the coauthor graph with custom queries —
//! all through the streaming `QueryEngine` facade, so no result set is
//! ever materialized in full.
//!
//! ```sh
//! cargo run --release --example erdos_network
//! ```

use sp2bench::core::{BenchQuery, Engine, EngineKind};
use sp2bench::datagen::{generate_graph, Config};
use sp2bench::rdf::Term;
use sp2bench::sparql::QueryEngine;

fn main() {
    let (graph, _) = generate_graph(Config::triples(100_000));
    let engine = Engine::load(EngineKind::NativeOpt, &graph);
    let qe = QueryEngine::new(engine.shared_store());

    // Q8: names of authors with Erdős number 1 or 2.
    let (outcome, m) = engine.run(BenchQuery::Q8, None);
    println!(
        "Q8 — authors with Erdős number 1 or 2: {} [{}]",
        outcome.count().expect("succeeds"),
        m.summary()
    );

    // Q10: all edges pointing at Paul Erdős, tallied by predicate while
    // the rows stream past (only the predicate column ever decodes).
    let q10 = qe.prepare(BenchQuery::Q10.text()).expect("Q10 prepares");
    let mut by_predicate: std::collections::BTreeMap<String, usize> =
        std::collections::BTreeMap::new();
    let mut total = 0usize;
    for solution in qe.solutions(&q10) {
        let row = solution.expect("Q10 evaluates");
        total += 1;
        if let Some(Term::Iri(iri)) = row.get(1) {
            let label = sp2bench::rdf::vocab::compact(iri.as_str())
                .unwrap_or_else(|| iri.as_str().to_owned());
            *by_predicate.entry(label).or_insert(0) += 1;
        }
    }
    println!("\nQ10 — relations to Paul Erdős ({total} total):");
    for (pred, n) in by_predicate {
        println!("  {pred:<16} {n}");
    }

    // Custom: Erdős number 1 — direct coauthors only, streamed with an
    // early print cutoff (the stream keeps counting cheaply).
    let direct = qe
        .prepare(
            r#"
        SELECT DISTINCT ?name
        WHERE {
            ?doc dc:creator person:Paul_Erdoes .
            ?doc dc:creator ?author .
            ?author foaf:name ?name
            FILTER (?author != person:Paul_Erdoes)
        }
    "#,
        )
        .expect("coauthor query prepares");
    println!(
        "\nErdős number 1 (direct coauthors): {}",
        qe.count(&direct).expect("counts")
    );
    for solution in qe.solutions(&direct).take(8) {
        let row = solution.expect("evaluates");
        println!("  {}", row.get(0).expect("name bound"));
    }

    // Custom: in which years was Erdős most productive here?
    let per_year = qe
        .prepare(
            r#"
        SELECT ?yr ?doc
        WHERE {
            ?doc dc:creator person:Paul_Erdoes .
            ?doc dcterms:issued ?yr
        }
    "#,
        )
        .expect("per-year query prepares");
    let mut per_year_counts: std::collections::BTreeMap<String, usize> =
        std::collections::BTreeMap::new();
    for solution in qe.solutions(&per_year) {
        let row = solution.expect("evaluates");
        if let Some(Term::Literal(l)) = row.get(0) {
            *per_year_counts.entry(l.lexical.clone()).or_insert(0) += 1;
        }
    }
    println!("\npublications per year (first 10 active years):");
    for (yr, n) in per_year_counts.iter().take(10) {
        println!("  {yr}: {n}  (the generator scripts 10/year, 1940–1996)");
    }
}
