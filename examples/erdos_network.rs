//! The Erdős scenario: the generator scripts Paul Erdős with 10
//! publications and 2 editor activities per year (1940–1996), giving
//! queries a person with fixed characteristics as an entry point.
//!
//! This example reproduces Q8 (Erdős numbers 1 and 2) and Q10 (everything
//! related to Erdős), then walks the coauthor graph with custom queries.
//!
//! ```sh
//! cargo run --release --example erdos_network
//! ```

use sp2bench::core::{BenchQuery, Engine, EngineKind, Outcome};
use sp2bench::datagen::{generate_graph, Config};
use sp2bench::sparql::QueryResult;

fn rows_of(outcome: Outcome) -> Vec<Vec<Option<sp2bench::rdf::Term>>> {
    match outcome {
        Outcome::Success { result: Some(QueryResult::Solutions { rows, .. }), .. } => rows,
        other => panic!("expected solutions, got {other:?}"),
    }
}

fn main() {
    let (graph, _) = generate_graph(Config::triples(100_000));
    let engine = Engine::load(EngineKind::NativeOpt, &graph);

    // Q8: names of authors with Erdős number 1 or 2.
    let (outcome, m) = engine.run(BenchQuery::Q8, None);
    println!(
        "Q8 — authors with Erdős number 1 or 2: {} [{}]",
        outcome.count().expect("succeeds"),
        m.summary()
    );

    // Q10: all edges pointing at Paul Erdős, by predicate.
    let (outcome, _) = engine.run_text(BenchQuery::Q10.text(), None, true);
    let rows = rows_of(outcome);
    let mut by_predicate: std::collections::BTreeMap<String, usize> =
        std::collections::BTreeMap::new();
    for row in &rows {
        let pred = row[1].as_ref().expect("predicate bound");
        if let sp2bench::rdf::Term::Iri(iri) = pred {
            let label = sp2bench::rdf::vocab::compact(iri.as_str())
                .unwrap_or_else(|| iri.as_str().to_owned());
            *by_predicate.entry(label).or_insert(0) += 1;
        }
    }
    println!("\nQ10 — relations to Paul Erdős ({} total):", rows.len());
    for (pred, n) in by_predicate {
        println!("  {pred:<16} {n}");
    }

    // Custom: Erdős number 1 — direct coauthors only.
    let direct = r#"
        SELECT DISTINCT ?name
        WHERE {
            ?doc dc:creator person:Paul_Erdoes .
            ?doc dc:creator ?author .
            ?author foaf:name ?name
            FILTER (?author != person:Paul_Erdoes)
        }
    "#;
    let (outcome, _) = engine.run_text(direct, None, true);
    let coauthors = rows_of(outcome);
    println!("\nErdős number 1 (direct coauthors): {}", coauthors.len());
    for row in coauthors.iter().take(8) {
        println!("  {}", row[0].as_ref().expect("name bound"));
    }
    if coauthors.len() > 8 {
        println!("  … and {} more", coauthors.len() - 8);
    }

    // Custom: in which years was Erdős most productive here?
    let per_year = r#"
        SELECT ?yr ?doc
        WHERE {
            ?doc dc:creator person:Paul_Erdoes .
            ?doc dcterms:issued ?yr
        }
    "#;
    let (outcome, _) = engine.run_text(per_year, None, true);
    let rows = rows_of(outcome);
    let mut per_year_counts: std::collections::BTreeMap<String, usize> =
        std::collections::BTreeMap::new();
    for row in &rows {
        if let Some(sp2bench::rdf::Term::Literal(l)) = &row[0] {
            *per_year_counts.entry(l.lexical.clone()).or_insert(0) += 1;
        }
    }
    println!("\npublications per year (first 10 active years):");
    for (yr, n) in per_year_counts.iter().take(10) {
        println!("  {yr}: {n}  (the generator scripts 10/year, 1940–1996)");
    }
}
