//! Property tests: every optimizer rewrite must preserve query semantics.
//!
//! Randomized RDF graphs + a pool of query shapes covering the rewrite
//! rules (BGP reordering, filter pushing into BGPs/joins, IRI-equality
//! substitution, left-join handling); naive and fully-optimized plans
//! must return identical result multisets on both stores.

use proptest::prelude::*;

use sp2bench::rdf::{Graph, Iri, Literal, Subject, Term};
use sp2bench::sparql::{OptimizerConfig, QueryEngine};
use sp2bench::store::{MemStore, NativeStore, SharedStore, TripleStore};

/// Random small graph: subjects s0..s5, predicates p0..p3, objects mix of
/// IRIs and integers.
fn graph_strategy() -> impl Strategy<Value = Graph> {
    prop::collection::vec((0u8..6, 0u8..4, 0u8..8), 1..60).prop_map(|triples| {
        let mut g = Graph::new();
        for (s, p, o) in triples {
            let object: Term = if o < 4 {
                Term::iri(format!("http://t/o{o}"))
            } else {
                Term::Literal(Literal::integer(o as i64))
            };
            g.add(
                Subject::iri(format!("http://t/s{s}")),
                Iri::new(format!("http://t/p{p}")),
                object,
            );
        }
        g
    })
}

/// Query shapes exercising each rewrite rule.
const QUERY_POOL: &[&str] = &[
    // Plain BGP (reordering).
    "SELECT ?a ?b WHERE { ?a <http://t/p0> ?b . ?b ?p ?c . ?a <http://t/p1> ?c }",
    // Filter pushing into a BGP.
    "SELECT ?a WHERE { ?a <http://t/p0> ?b . ?a <http://t/p1> ?c FILTER (?b != ?c) }",
    // IRI-equality substitution (var not projected).
    "SELECT ?a WHERE { ?a ?p ?v FILTER (?p = <http://t/p2>) }",
    // Substitution must NOT fire (var projected).
    "SELECT ?p WHERE { ?a ?p ?v FILTER (?p = <http://t/p2>) }",
    // Filter distribution into join branches.
    "SELECT ?a ?x WHERE { { ?a <http://t/p0> ?b } { ?x <http://t/p1> ?y } FILTER (?y != <http://t/o1>) }",
    // Left join with condition (OPTIONAL-FILTER).
    "SELECT ?a ?c WHERE { ?a <http://t/p0> ?b OPTIONAL { ?a <http://t/p1> ?c FILTER (?c != ?b) } }",
    // Closed-world negation.
    "SELECT ?a WHERE { ?a <http://t/p0> ?b OPTIONAL { ?a <http://t/p1> ?c } FILTER (!bound(?c)) }",
    // Union + filter.
    "SELECT ?a WHERE { { ?a <http://t/p0> ?b } UNION { ?a <http://t/p1> ?b } FILTER (?a != <http://t/s0>) }",
    // Modifiers on top.
    "SELECT DISTINCT ?a WHERE { ?a ?p ?b . ?b ?q ?c } ORDER BY ?a LIMIT 7 OFFSET 2",
    // Numeric comparison filter.
    "SELECT ?a ?v WHERE { ?a <http://t/p1> ?v FILTER (?v >= 5) }",
];

fn run_sorted(store: &SharedStore, query: &str, cfg: &OptimizerConfig) -> Vec<String> {
    let engine = QueryEngine::new(store.clone()).optimizer(*cfg);
    let prepared = engine.prepare(query).expect("pool query parses");
    let result = engine.execute(&prepared).expect("evaluation succeeds");
    let sp2bench::sparql::QueryResult::Solutions { rows, .. } = result else {
        panic!("SELECT query")
    };
    let mut rendered: Vec<String> = rows
        .iter()
        .map(|row| {
            row.iter()
                .map(|t| t.as_ref().map_or("-".to_owned(), ToString::to_string))
                .collect::<Vec<_>>()
                .join("|")
        })
        .collect();
    rendered.sort();
    rendered
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn optimized_equals_naive_on_mem_store(g in graph_strategy(), qi in 0..QUERY_POOL.len()) {
        let store = MemStore::from_graph(&g).into_shared();
        let naive = run_sorted(&store, QUERY_POOL[qi], &OptimizerConfig::default());
        let full = run_sorted(&store, QUERY_POOL[qi], &OptimizerConfig::full());
        prop_assert_eq!(naive, full);
    }

    #[test]
    fn optimized_equals_naive_on_native_store(g in graph_strategy(), qi in 0..QUERY_POOL.len()) {
        let store = NativeStore::from_graph(&g).into_shared();
        let naive = run_sorted(&store, QUERY_POOL[qi], &OptimizerConfig::default());
        let full = run_sorted(&store, QUERY_POOL[qi], &OptimizerConfig::full());
        prop_assert_eq!(naive, full);
    }

    #[test]
    fn stores_agree_under_full_optimization(g in graph_strategy(), qi in 0..QUERY_POOL.len()) {
        let mem = MemStore::from_graph(&g).into_shared();
        let native = NativeStore::from_graph(&g).into_shared();
        let cfg = OptimizerConfig::full();
        prop_assert_eq!(
            run_sorted(&mem, QUERY_POOL[qi], &cfg),
            run_sorted(&native, QUERY_POOL[qi], &cfg)
        );
    }

    #[test]
    fn heuristic_config_equivalent_too(g in graph_strategy(), qi in 0..QUERY_POOL.len()) {
        let store = MemStore::from_graph(&g).into_shared();
        let naive = run_sorted(&store, QUERY_POOL[qi], &OptimizerConfig::default());
        let heur = run_sorted(&store, QUERY_POOL[qi], &OptimizerConfig::heuristic());
        prop_assert_eq!(naive, heur);
    }
}
