//! Parallel-vs-sequential equivalence: morsel-driven execution is a
//! performance choice, never a semantic one. For every benchmark query
//! (Q1–Q12 and the A1–A5 aggregation extension) on a generated document,
//! execution at parallelism 2, 4 and 8 must produce the same result
//! multiset (and count) as strictly sequential execution — including
//! under a pre-triggered cancellation, with a row limit applied, and
//! when the streaming iterator is dropped early (the detached-worker
//! exchange must deliver identical prefixes and then tear down
//! cleanly).

use sp2bench::core::{BenchQuery, ExtQuery};
use sp2bench::datagen::{generate_graph, Config};
use sp2bench::sparql::{Cancellation, Error, QueryEngine, QueryOptions, QueryResult};
use sp2bench::store::{MemStore, NativeStore, SharedStore, TripleStore};

const TRIPLES: u64 = 8_000;
const PARALLEL_DEGREES: [usize; 3] = [2, 4, 8];

fn all_query_texts() -> Vec<(&'static str, &'static str)> {
    let mut queries: Vec<(&'static str, &'static str)> = BenchQuery::ALL
        .iter()
        .map(|q| (q.label(), q.text()))
        .collect();
    queries.extend(ExtQuery::ALL.iter().map(|q| (q.label(), q.text())));
    queries
}

fn engine(store: &SharedStore, parallelism: usize) -> QueryEngine {
    QueryEngine::with_options(store.clone(), QueryOptions::new().parallelism(parallelism))
}

/// A result as a sorted multiset of stringified rows (ASK → its answer).
fn multiset(result: &QueryResult) -> Vec<String> {
    match result {
        QueryResult::Solutions { rows, .. } => {
            let mut out: Vec<String> = rows
                .iter()
                .map(|row| {
                    row.iter()
                        .map(|t| t.as_ref().map_or("-".to_owned(), |t| t.to_string()))
                        .collect::<Vec<_>>()
                        .join("\t")
                })
                .collect();
            out.sort();
            out
        }
        QueryResult::Boolean(b) => vec![format!("ask:{b}")],
    }
}

#[test]
fn parallel_and_sequential_agree_on_all_queries() {
    let (graph, _) = generate_graph(Config::triples(TRIPLES));
    let store = NativeStore::from_graph(&graph).into_shared();
    let sequential = engine(&store, 1);

    for (label, text) in all_query_texts() {
        let prepared = sequential
            .prepare(text)
            .unwrap_or_else(|e| panic!("{label}: {e}"));
        let reference = multiset(
            &sequential
                .execute(&prepared)
                .unwrap_or_else(|e| panic!("{label}: {e}")),
        );
        let reference_count = sequential
            .count(&prepared)
            .unwrap_or_else(|e| panic!("{label}: {e}"));

        for degree in PARALLEL_DEGREES {
            let parallel = engine(&store, degree);
            let prepared = parallel
                .prepare(text)
                .unwrap_or_else(|e| panic!("{label}@{degree}: {e}"));
            let result = parallel
                .execute(&prepared)
                .unwrap_or_else(|e| panic!("{label}@{degree}: {e}"));
            assert_eq!(
                multiset(&result),
                reference,
                "{label}: parallelism {degree} changed the result multiset"
            );
            assert_eq!(
                parallel.count(&prepared).unwrap(),
                reference_count,
                "{label}: parallelism {degree} changed the count"
            );
            let mut streamed = 0u64;
            for s in parallel.solutions(&prepared) {
                s.unwrap_or_else(|e| panic!("{label}@{degree}: {e}"));
                streamed += 1;
            }
            assert_eq!(
                streamed, reference_count,
                "{label}: parallelism {degree} changed the streamed row count"
            );
        }
    }
}

#[test]
fn mem_store_agrees_too() {
    // The memory store partitions posting lists instead of index ranges;
    // a representative subset keeps the runtime modest.
    let (graph, _) = generate_graph(Config::triples(TRIPLES));
    let store = MemStore::from_graph(&graph).into_shared();
    let sequential = engine(&store, 1);
    for q in [
        BenchQuery::Q2,
        BenchQuery::Q5b,
        BenchQuery::Q9,
        BenchQuery::Q11,
    ] {
        let prepared = sequential.prepare(q.text()).unwrap();
        let reference = multiset(&sequential.execute(&prepared).unwrap());
        for degree in PARALLEL_DEGREES {
            let parallel = engine(&store, degree);
            let prepared = parallel.prepare(q.text()).unwrap();
            assert_eq!(
                multiset(&parallel.execute(&prepared).unwrap()),
                reference,
                "{q}: MemStore parallelism {degree}"
            );
        }
    }
}

#[test]
fn pre_triggered_cancellation_cancels_parallel_execution() {
    let (graph, _) = generate_graph(Config::triples(4_000));
    let store = NativeStore::from_graph(&graph).into_shared();
    for degree in [2, 4] {
        let parallel = engine(&store, degree);
        for (label, text) in all_query_texts() {
            let prepared = parallel
                .prepare(text)
                .unwrap_or_else(|e| panic!("{label}: {e}"));
            let cancel = Cancellation::none();
            cancel.cancel();
            assert!(
                matches!(
                    parallel.execute_with(&prepared, &cancel),
                    Err(Error::Cancelled)
                ),
                "{label}@{degree}: execute must cancel"
            );
            assert!(
                matches!(
                    parallel.count_with(&prepared, &cancel),
                    Err(Error::Cancelled)
                ),
                "{label}@{degree}: count must cancel"
            );
            let mut stream = parallel.solutions_with(&prepared, &cancel);
            assert!(
                matches!(stream.next(), Some(Err(Error::Cancelled))),
                "{label}@{degree}: stream must cancel"
            );
            assert!(stream.next().is_none(), "{label}@{degree}: stream ends");
        }
    }
}

#[test]
fn row_limit_respected_under_parallelism() {
    let (graph, _) = generate_graph(Config::triples(TRIPLES));
    let store = NativeStore::from_graph(&graph).into_shared();
    for q in [BenchQuery::Q2, BenchQuery::Q3a, BenchQuery::Q5b] {
        let full = engine(&store, 1);
        let prepared = full.prepare(q.text()).unwrap();
        let total = full.count(&prepared).unwrap();
        let limit = 5u64.min(total);
        for degree in [1, 4] {
            let limited =
                QueryEngine::with_options(store.clone(), QueryOptions::new().parallelism(degree))
                    .row_limit(5);
            let prepared = limited.prepare(q.text()).unwrap();
            assert_eq!(
                limited.execute(&prepared).unwrap().row_count() as u64,
                limit,
                "{q}@{degree}: execute row limit"
            );
            assert_eq!(
                limited.solutions(&prepared).count() as u64,
                limit,
                "{q}@{degree}: streamed row limit"
            );
            assert_eq!(
                limited.count(&prepared).unwrap(),
                total,
                "{q}@{degree}: count reports true cardinality"
            );
        }
    }
}

#[test]
fn queries_with_limit_modifiers_agree_in_order() {
    // LIMIT/OFFSET queries with ORDER BY have fully deterministic output:
    // parallel and sequential rows must match *in order*, not just as
    // multisets (Q11 is ORDER BY + LIMIT + OFFSET).
    let (graph, _) = generate_graph(Config::triples(TRIPLES));
    let store = NativeStore::from_graph(&graph).into_shared();
    let sequential = engine(&store, 1);
    let prepared = sequential.prepare(BenchQuery::Q11.text()).unwrap();
    let QueryResult::Solutions {
        rows: reference, ..
    } = sequential.execute(&prepared).unwrap()
    else {
        panic!("Q11 is a SELECT")
    };
    for degree in PARALLEL_DEGREES {
        let parallel = engine(&store, degree);
        let prepared = parallel.prepare(BenchQuery::Q11.text()).unwrap();
        let QueryResult::Solutions { rows, .. } = parallel.execute(&prepared).unwrap() else {
            panic!()
        };
        assert_eq!(rows, reference, "Q11@{degree}: ordered rows must match");
    }
}

#[test]
fn early_stream_drop_matches_sequential_prefix() {
    // Pulling k rows and hanging up mid-stream must (a) deliver exactly
    // the sequential prefix — the detached-worker merge preserves morsel
    // order — and (b) tear the exchange down without wedging: every
    // worker is joined when the `Solutions` iterator drops, so a fresh
    // run over the same store behaves identically.
    let (graph, _) = generate_graph(Config::triples(TRIPLES));
    let store = NativeStore::from_graph(&graph).into_shared();
    let sequential = engine(&store, 1);
    for q in [BenchQuery::Q2, BenchQuery::Q3a, BenchQuery::Q5b] {
        let prepared = sequential.prepare(q.text()).unwrap();
        let prefix: Vec<String> = sequential
            .solutions(&prepared)
            .take(7)
            .map(|s| render(&s.unwrap()))
            .collect();
        for degree in PARALLEL_DEGREES {
            let parallel = engine(&store, degree);
            let prepared = parallel.prepare(q.text()).unwrap();
            for _ in 0..2 {
                let mut stream = parallel.solutions(&prepared);
                let got: Vec<String> = stream
                    .by_ref()
                    .take(7)
                    .map(|s| render(&s.unwrap()))
                    .collect();
                assert_eq!(got, prefix, "{q}@{degree}: early-drop prefix");
                drop(stream); // hang up with most of the result unread
            }
        }
    }
}

fn render(solution: &sp2bench::sparql::Solution<'_>) -> String {
    (0..solution.len())
        .map(|i| solution.get(i).map_or("-".into(), |t| t.to_string()))
        .collect::<Vec<_>>()
        .join("\t")
}
