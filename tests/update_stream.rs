//! Cross-crate test of the update-stream extension: a store maintained
//! through incremental year batches answers every benchmark query exactly
//! like a store bulk-loaded from the full document.

use std::time::Duration;

use std::sync::Arc;

use sp2bench::core::BenchQuery;
use sp2bench::datagen::{generate_graph, Config, UpdateStream};
use sp2bench::rdf::Graph;
use sp2bench::sparql::QueryEngine;
use sp2bench::store::{NativeStore, TripleStore};

const TRIPLES: u64 = 10_000;
const TIMEOUT: Duration = Duration::from_secs(120);

/// Queries a store another handle may still mutate between calls: the
/// engine takes an `Arc` clone for the duration of the count and releases
/// it on return, after which `Arc::get_mut` works again.
fn count(store: &Arc<NativeStore>, q: BenchQuery) -> u64 {
    let engine = QueryEngine::new(store.clone()).timeout(TIMEOUT);
    let prepared = engine.prepare(q.text()).expect("query parses");
    engine
        .count(&prepared)
        .unwrap_or_else(|e| panic!("{q}: {e}"))
}

/// The writer-side handle: exclusive while no engine holds a clone.
fn writable(store: &mut Arc<NativeStore>) -> &mut NativeStore {
    Arc::get_mut(store).expect("no engine may hold the store across an update")
}

#[test]
fn incremental_store_answers_like_bulk_store() {
    let cfg = Config::triples(TRIPLES);
    let (graph, _) = generate_graph(cfg);
    let bulk = Arc::new(NativeStore::from_graph(&graph));

    let mut incremental = Arc::new(NativeStore::from_graph(&Graph::new()));
    for batch in UpdateStream::generate(cfg).batches() {
        writable(&mut incremental).insert_batch(&batch.triples);
    }
    assert_eq!(incremental.len(), bulk.len());

    for q in BenchQuery::ALL {
        assert_eq!(count(&incremental, q), count(&bulk, q), "{q} disagrees");
    }
}

#[test]
fn mid_stream_store_is_consistent() {
    // Apply only half the batches: the store must be a valid smaller
    // document — every invariant query still holds.
    let stream = UpdateStream::generate(Config::triples(TRIPLES));
    let batches = stream.batches();
    let mut store = Arc::new(NativeStore::from_graph(&Graph::new()));
    for batch in &batches[..batches.len() / 2] {
        writable(&mut store).insert_batch(&batch.triples);
    }
    // Structural invariants (referential consistency) — no dangling
    // partOf targets.
    let engine = QueryEngine::new(store);
    let dangling = engine
        .prepare(
            "SELECT ?d WHERE { ?d dcterms:partOf ?venue OPTIONAL { ?venue rdf:type ?c } FILTER (!bound(?c)) }",
        )
        .expect("parses");
    let n = engine.count(&dangling).expect("evaluates");
    assert_eq!(n, 0, "partOf targets must exist at every stream point");
}

#[test]
fn queries_evolve_monotonically_across_batches() {
    // Applying more years never shrinks Q2-style result sets (documents
    // are only added, never removed).
    let stream = UpdateStream::generate(Config::triples(TRIPLES));
    let batches = stream.batches();
    let mut store = Arc::new(NativeStore::from_graph(&Graph::new()));
    let mut last = 0u64;
    let checkpoints = [batches.len() / 3, 2 * batches.len() / 3, batches.len()];
    let mut applied = 0;
    for &until in &checkpoints {
        while applied < until {
            writable(&mut store).insert_batch(&batches[applied].triples);
            applied += 1;
        }
        let n = count(&store, BenchQuery::Q2);
        assert!(n >= last, "Q2 shrank from {last} to {n}");
        last = n;
    }
}
