//! The runtime behaviours Section V/VI call out: ASK early termination
//! ("engines should break as soon a solution has been found") and the
//! cooperative timeout machinery backing the SUCCESS RATE metric.

use std::time::{Duration, Instant};

use sp2bench::core::{BenchQuery, Engine, EngineKind, Outcome};
use sp2bench::datagen::{generate_graph, Config};

#[test]
fn ask_terminates_early_on_large_documents() {
    // Q12a's witness lives in the first 10k triples of any document
    // (incremental generation); ASK must not enumerate all solutions.
    let (graph, _) = generate_graph(Config::triples(150_000));
    let engine = Engine::load(EngineKind::NativeOpt, &graph);

    let start = Instant::now();
    let (outcome, _) = engine.run(BenchQuery::Q12a, Some(Duration::from_secs(60)));
    let ask_time = start.elapsed();
    assert_eq!(outcome.count(), Some(1), "Q12a answers yes");

    // Its SELECT counterpart Q5a enumerates everything; the ASK variant
    // must be dramatically faster (the paper criticizes engines where it
    // is not).
    let start = Instant::now();
    let (_, _) = engine.run(BenchQuery::Q5a, Some(Duration::from_secs(60)));
    let select_time = start.elapsed();
    assert!(
        ask_time * 10 < select_time.max(Duration::from_millis(100)),
        "ASK {ask_time:?} should be ≪ SELECT {select_time:?}"
    );
}

#[test]
fn negative_ask_is_constant_time_on_native_stores() {
    // Q12c asks for a triple that is not present; with indexes this is a
    // point lookup regardless of document size.
    let (small, _) = generate_graph(Config::triples(10_000));
    let (large, _) = generate_graph(Config::triples(120_000));
    let time_q12c = |graph| {
        let engine = Engine::load(EngineKind::NativeOpt, graph);
        let start = Instant::now();
        let (outcome, _) = engine.run(BenchQuery::Q12c, None);
        assert_eq!(outcome.count(), Some(0));
        start.elapsed()
    };
    let t_small = time_q12c(&small);
    let t_large = time_q12c(&large);
    // Not strictly constant on wall clocks, but far from linear: allow a
    // generous factor where the data grew 12x.
    assert!(
        t_large < t_small * 6 + Duration::from_millis(5),
        "small {t_small:?} vs large {t_large:?}"
    );
}

#[test]
fn timeouts_fire_and_report_as_timeout() {
    let (graph, _) = generate_graph(Config::triples(60_000));
    let engine = Engine::load(EngineKind::MemNaive, &graph);
    let start = Instant::now();
    let (outcome, _) = engine.run(BenchQuery::Q4, Some(Duration::from_millis(200)));
    let elapsed = start.elapsed();
    assert!(matches!(outcome, Outcome::Timeout), "{outcome:?}");
    // Cooperative cancellation reacts promptly (well under a second).
    assert!(
        elapsed < Duration::from_secs(5),
        "cancellation too slow: {elapsed:?}"
    );
}

#[test]
fn successful_queries_are_unaffected_by_generous_timeouts() {
    let (graph, _) = generate_graph(Config::triples(10_000));
    let engine = Engine::load(EngineKind::NativeOpt, &graph);
    let (with_timeout, _) = engine.run(BenchQuery::Q2, Some(Duration::from_secs(600)));
    let (without, _) = engine.run(BenchQuery::Q2, None);
    assert_eq!(with_timeout.count(), without.count());
}

#[test]
fn per_engine_timeout_letters_match_table_iv_conventions() {
    let (graph, _) = generate_graph(Config::triples(40_000));
    let engine = Engine::load(EngineKind::MemNaive, &graph);
    let (ok, _) = engine.run(BenchQuery::Q1, Some(Duration::from_secs(30)));
    assert_eq!(ok.status_letter(), '+');
    let (timeout, _) = engine.run(BenchQuery::Q4, Some(Duration::ZERO));
    assert_eq!(timeout.status_letter(), 'T');
}
