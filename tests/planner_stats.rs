//! The statistics-driven cost-based planner is a performance feature,
//! never a semantic one — and it must actually pay.
//!
//! * Equivalence: for every benchmark query (Q1–Q12 and the A1–A5
//!   aggregation extension), the stats-planned join order must produce
//!   the same result multiset and count as the heuristic-planned order
//!   (the fixed-discount fallback, forced here by hiding the store's
//!   statistics behind a forwarding wrapper) — on the in-memory, native,
//!   sharded and reopened-disk stores.
//! * Regression: on the join-heavy queries the paper calls out (Q4,
//!   Q5a, Q8, Q9), the stats-planned order must emit *fewer*
//!   intermediate rows (instrumented per-pattern counters) than the
//!   syntactic pattern order.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use sp2bench::core::{BenchQuery, ExtQuery};
use sp2bench::datagen::{generate_graph, Config};
use sp2bench::rdf::Term;
use sp2bench::sparql::{OptimizerConfig, QueryEngine, QueryOptions, QueryResult, ScanCounters};
use sp2bench::store::{
    open_store, save_graph, Dictionary, Id, IdTriple, IndexSelection, MemStore, NativeStore,
    Pattern, ScanChunk, ShardBackend, ShardBy, ShardedStore, SharedStore, StoreStats, TripleStore,
};

const TRIPLES: u64 = 6_000;

/// A scratch directory under the system temp dir, removed on drop.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let path = std::env::temp_dir().join(format!("sp2b-planner-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&path);
        std::fs::create_dir(&path).expect("create scratch dir");
        TempDir(path)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// A forwarding store that hides its inner store's statistics — the
/// lever that forces the optimizer onto its fixed-discount heuristic
/// path on the *same* data.
struct NoStats(SharedStore);

impl TripleStore for NoStats {
    fn dictionary(&self) -> &Dictionary {
        self.0.dictionary()
    }

    fn len(&self) -> usize {
        self.0.len()
    }

    fn scan<'a>(&'a self, pattern: Pattern) -> Box<dyn Iterator<Item = IdTriple> + 'a> {
        self.0.scan(pattern)
    }

    fn scan_chunks(&self, pattern: Pattern, n: usize) -> Vec<ScanChunk<'_>> {
        self.0.scan_chunks(pattern, n)
    }

    fn estimate(&self, pattern: Pattern) -> u64 {
        self.0.estimate(pattern)
    }

    fn has_exact_estimates(&self) -> bool {
        self.0.has_exact_estimates()
    }

    fn stats(&self) -> Option<&StoreStats> {
        None // the whole point: same data, no statistics
    }

    fn contains(&self, pattern: Pattern) -> bool {
        self.0.contains(pattern)
    }

    fn resolve(&self, term: &Term) -> Option<Id> {
        self.0.resolve(term)
    }
}

fn all_query_texts() -> Vec<(&'static str, &'static str)> {
    let mut queries: Vec<(&'static str, &'static str)> = BenchQuery::ALL
        .iter()
        .map(|q| (q.label(), q.text()))
        .collect();
    queries.extend(ExtQuery::ALL.iter().map(|q| (q.label(), q.text())));
    queries
}

/// A result as a sorted multiset of stringified rows (ASK → its answer).
fn multiset(result: &QueryResult) -> Vec<String> {
    match result {
        QueryResult::Solutions { rows, .. } => {
            let mut out: Vec<String> = rows
                .iter()
                .map(|row| {
                    row.iter()
                        .map(|t| t.as_ref().map_or("-".to_owned(), |t| t.to_string()))
                        .collect::<Vec<_>>()
                        .join("\t")
                })
                .collect();
            out.sort();
            out
        }
        QueryResult::Boolean(b) => vec![format!("ask:{b}")],
    }
}

fn run_all(store: &SharedStore) -> Vec<(String, Vec<String>, u64)> {
    let qe = QueryEngine::with_options(store.clone(), QueryOptions::new().parallelism(1));
    all_query_texts()
        .into_iter()
        .map(|(label, text)| {
            let prepared = qe.prepare(text).unwrap_or_else(|e| panic!("{label}: {e}"));
            let result = qe
                .execute(&prepared)
                .unwrap_or_else(|e| panic!("{label}: {e}"));
            let count = qe
                .count(&prepared)
                .unwrap_or_else(|e| panic!("{label}: {e}"));
            (label.to_owned(), multiset(&result), count)
        })
        .collect()
}

/// Stats-planned vs heuristic-planned on one store: identical multisets
/// and counts for every query.
fn assert_planner_equivalence(tag: &str, store: SharedStore) {
    assert!(
        store.stats().is_some(),
        "{tag}: the store under test must carry statistics"
    );
    let stats_planned = run_all(&store);
    let hidden = NoStats(store).into_shared();
    assert!(hidden.stats().is_none());
    let heuristic_planned = run_all(&hidden);
    for ((label, rows_s, count_s), (_, rows_h, count_h)) in
        stats_planned.into_iter().zip(heuristic_planned)
    {
        assert_eq!(
            count_s, count_h,
            "{tag}/{label}: stats-planned count diverged from heuristic-planned"
        );
        assert_eq!(
            rows_s, rows_h,
            "{tag}/{label}: stats-planned multiset diverged from heuristic-planned"
        );
    }
}

#[test]
fn stats_planner_matches_heuristic_on_mem_store() {
    let (graph, _) = generate_graph(Config::triples(TRIPLES));
    assert_planner_equivalence("mem", MemStore::from_graph(&graph).into_shared());
}

#[test]
fn stats_planner_matches_heuristic_on_native_store() {
    let (graph, _) = generate_graph(Config::triples(TRIPLES));
    assert_planner_equivalence("native", NativeStore::from_graph(&graph).into_shared());
}

#[test]
fn stats_planner_matches_heuristic_on_sharded_store() {
    let (graph, _) = generate_graph(Config::triples(TRIPLES));
    let store = ShardedStore::from_graph(
        &graph,
        3,
        ShardBy::Subject,
        ShardBackend::Native(IndexSelection::all()),
    );
    assert_planner_equivalence("sharded", store.into_shared());
}

#[test]
fn stats_planner_matches_heuristic_on_disk_store() {
    let (graph, _) = generate_graph(Config::triples(TRIPLES));
    let dir = TempDir::new("equiv");
    save_graph(dir.path(), &graph, 2, ShardBy::Subject).expect("save");
    let disk = open_store(dir.path()).expect("open").into_shared();
    assert_planner_equivalence("disk", disk);
}

/// Total intermediate rows the BGP pattern steps emit for one query
/// under one optimizer configuration (sequential, so counts are exact).
fn emitted_rows(store: &SharedStore, text: &str, cfg: OptimizerConfig) -> u64 {
    let counters = Arc::new(ScanCounters::default());
    let qe = QueryEngine::with_options(
        store.clone(),
        QueryOptions::new().optimizer(cfg).parallelism(1),
    )
    .scan_counters(counters.clone());
    let prepared = qe.prepare(text).expect("query parses");
    qe.count(&prepared).expect("query evaluates");
    counters.total_rows()
}

/// The paper's join-heavy queries: the stats-driven order must beat the
/// syntactic pattern order on intermediate-result volume, not just tie
/// it. (Reordering off keeps filter pushing and substitution on, so the
/// comparison isolates the join order itself.)
#[test]
fn stats_order_emits_fewer_rows_than_syntactic_order() {
    let (graph, _) = generate_graph(Config::triples(TRIPLES));
    let store = NativeStore::from_graph(&graph).into_shared();
    let syntactic = OptimizerConfig {
        reorder_patterns: false,
        push_filters: true,
        substitute_filters: true,
    };
    // Q9's syntactic order already leads each UNION branch with the
    // selective rdf:type pattern, so the planner can only tie it there;
    // everywhere else it must strictly reduce the intermediate volume.
    for (label, strict) in [("Q4", true), ("Q5a", true), ("Q8", true), ("Q9", false)] {
        let query = BenchQuery::from_label(label).expect("known label");
        let planned = emitted_rows(&store, query.text(), OptimizerConfig::full());
        let unplanned = emitted_rows(&store, query.text(), syntactic);
        assert!(
            if strict {
                planned < unplanned
            } else {
                planned <= unplanned
            },
            "{label}: stats-planned order emitted {planned} rows, \
             syntactic order {unplanned} — the planner must win"
        );
    }
}

/// The instrumentation itself: counters see exactly the rows a trivial
/// single-pattern scan emits, and detach cleanly (a fresh engine without
/// counters adds nothing).
#[test]
fn scan_counters_record_emitted_rows() {
    let (graph, _) = generate_graph(Config::triples(500));
    let store = NativeStore::from_graph(&graph).into_shared();
    let counters = Arc::new(ScanCounters::default());
    let qe = QueryEngine::with_options(store.clone(), QueryOptions::new().parallelism(1))
        .scan_counters(counters.clone());
    let prepared = qe.prepare("SELECT ?s WHERE { ?s ?p ?o }").expect("parses");
    let n = qe.count(&prepared).expect("evaluates");
    assert_eq!(counters.total_rows(), n, "one emitted row per solution");
    // An engine without attached counters must not touch them.
    let plain = QueryEngine::with_options(store, QueryOptions::new().parallelism(1));
    let prepared = plain
        .prepare("SELECT ?s WHERE { ?s ?p ?o }")
        .expect("parses");
    plain.count(&prepared).expect("evaluates");
    assert_eq!(counters.total_rows(), n, "detached engines add nothing");
}
