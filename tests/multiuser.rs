//! Multi-user concurrency acceptance: N client threads hammering one
//! shared store must each observe *exactly* the results a single client
//! observes — concurrency is a throughput feature, never a semantic one
//! (the paper's Section VII multi-user scenario).

use sp2bench::core::multiuser::{run_multiuser, MultiuserConfig, StopCondition, WorkItem};
use sp2bench::core::{report, BenchQuery, Engine, EngineKind, ExtQuery};
use sp2bench::datagen::{generate_graph, Config};

const TRIPLES: u64 = 6_000;

/// A cheap-to-expensive spread: point lookup, long BGP chain, unbound
/// scan, ordered modifiers, ASK, and two aggregates.
fn mix() -> Vec<WorkItem> {
    vec![
        WorkItem::bench(BenchQuery::Q1),
        WorkItem::bench(BenchQuery::Q2),
        WorkItem::bench(BenchQuery::Q3a),
        WorkItem::bench(BenchQuery::Q9),
        WorkItem::bench(BenchQuery::Q11),
        WorkItem::bench(BenchQuery::Q12c),
        WorkItem::ext(ExtQuery::A1),
        WorkItem::ext(ExtQuery::A4),
    ]
}

#[test]
fn every_client_matches_the_single_client_run() {
    let (graph, _) = generate_graph(Config::triples(TRIPLES));
    let engine = Engine::load(EngineKind::NativeOpt, &graph);

    // Reference: one client, one pass over the mix.
    let mut reference_cfg = MultiuserConfig::new(1, StopCondition::Rounds(1));
    reference_cfg.mix = mix();
    let reference = run_multiuser(engine.shared_store(), &reference_cfg);
    let expected = reference.clients[0].counts.clone();
    assert_eq!(expected.len(), mix().len(), "reference covered the mix");

    // Concurrent: 4 clients × 3 rounds, with intra-query parallelism 2 so
    // the detached-worker exchange runs *under* client concurrency too.
    let mut cfg = MultiuserConfig::new(4, StopCondition::Rounds(3));
    cfg.mix = mix();
    cfg.parallelism = 2;
    let report = run_multiuser(engine.shared_store(), &cfg);

    assert_eq!(report.clients.len(), 4);
    for client in &report.clients {
        assert_eq!(client.errors, 0, "client {}", client.client);
        assert_eq!(client.timeouts, 0, "client {}", client.client);
        assert!(
            client.inconsistent.is_empty(),
            "client {} saw shifting counts: {:?}",
            client.client,
            client.inconsistent
        );
        assert_eq!(
            client.counts, expected,
            "client {} disagrees with the single-client run",
            client.client
        );
        assert_eq!(client.completed, 3 * mix().len() as u64);
    }
    assert_eq!(report.total_completed(), 4 * 3 * mix().len() as u64);
}

#[test]
fn report_carries_latency_and_throughput() {
    let (graph, _) = generate_graph(Config::triples(2_000));
    let engine = Engine::load(EngineKind::NativeOpt, &graph);
    let mut cfg = MultiuserConfig::new(2, StopCondition::Rounds(2));
    cfg.mix = vec![
        WorkItem::bench(BenchQuery::Q1),
        WorkItem::bench(BenchQuery::Q3c),
    ];
    let multiuser = run_multiuser(engine.shared_store(), &cfg);
    assert_eq!(
        multiuser.aggregate_latency().count(),
        multiuser.total_completed(),
        "every completed query is in the merged histogram"
    );
    assert!(multiuser.throughput() > 0.0);
    for client in &multiuser.clients {
        let p50 = client.latency.quantile(0.50);
        let p99 = client.latency.quantile(0.99);
        assert!(p50 > std::time::Duration::ZERO);
        assert!(p99 >= p50, "quantiles are monotone");
    }
    // The report section renders per-client and aggregate rows.
    let table = report::multiuser_table(&multiuser);
    assert!(table.contains("p99[ms]"), "{table}");
    assert!(
        table.lines().filter(|l| !l.trim().is_empty()).count() >= 5,
        "header + 2 clients + aggregate:\n{table}"
    );
}
