//! End-to-end smoke tests of the experiment harness: every paper
//! table/figure formatter produces plausible output at toy scale.

use std::time::Duration;

use sp2b_bench::experiments;
use sp2bench::core::report::{
    figure_series, full_report, loading_table, means_table, result_sizes_table, success_table,
};
use sp2bench::core::runner::{run_benchmark, RunnerConfig};
use sp2bench::core::{BenchQuery, EngineKind};

fn toy_report() -> sp2bench::core::BenchmarkReport {
    let cfg = RunnerConfig {
        scales: vec![2_000, 6_000],
        engines: vec![EngineKind::MemOpt, EngineKind::NativeOpt],
        queries: vec![
            BenchQuery::Q1,
            BenchQuery::Q3c,
            BenchQuery::Q9,
            BenchQuery::Q11,
            BenchQuery::Q12c,
        ],
        timeout: Duration::from_secs(30),
        runs: 1,
        seed: sp2bench::datagen::Rng::DEFAULT_SEED,
    };
    run_benchmark(&cfg, |_| {})
}

#[test]
fn full_protocol_renders_every_artifact() {
    let report = toy_report();
    let success = success_table(&report);
    assert!(success.contains("TABLE IV"));
    // Count cell letters only (the legend line also contains a '+').
    let cell_plusses: usize = success
        .lines()
        .filter(|l| !l.contains("TABLE"))
        .map(|l| l.matches('+').count())
        .sum();
    assert_eq!(cell_plusses, 2 * 2 * 5, "all cells succeed");

    let sizes = result_sizes_table(&report);
    assert!(sizes.contains("TABLE V"));
    for q in ["Q1", "Q3c", "Q9", "Q11", "Q12c"] {
        assert!(sizes.contains(q), "missing {q} column");
    }

    let means = means_table(&report);
    assert!(means.contains("Ta[s]") && means.contains("Tg[s]"));

    let loading = loading_table(&report);
    assert!(
        loading.lines().count() >= 2 + 4,
        "one row per (scale, engine)"
    );

    let figures = figure_series(&report);
    assert!(figures.contains("Q11"));

    let full = full_report(&report);
    assert!(full.len() > success.len());
}

#[test]
fn scaling_shows_result_growth() {
    // Q9/Q11 stay constant while scales grow; Q1 stays at one row.
    let report = toy_report();
    assert_eq!(report.result_count(2_000, BenchQuery::Q1), Some(1));
    assert_eq!(report.result_count(6_000, BenchQuery::Q1), Some(1));
    assert_eq!(report.result_count(6_000, BenchQuery::Q9), Some(4));
    assert_eq!(report.result_count(6_000, BenchQuery::Q11), Some(10));
}

#[test]
fn generator_experiments_render() {
    let t3 = experiments::table3(4);
    assert!(t3.lines().count() >= 4, "{t3}");

    let t8 = experiments::table8(&[3_000, 8_000]);
    assert!(
        t8.contains("#Journals") || t8.contains("#Tot.Auth."),
        "{t8}"
    );

    let f2a = experiments::fig2a(60_000);
    assert!(f2a.contains("observed"));

    let f2b = experiments::fig2b(1950);
    assert!(f2b.lines().count() > 10, "one row per simulated year");

    let f2c = experiments::fig2c(1950, &[1945, 1950]);
    assert!(f2c.contains("year 1945"));
    assert!(f2c.contains("year 1950"));
}

#[test]
fn table5_and_ablation_render() {
    let t5 = experiments::table5(&[3_000], Duration::from_secs(30));
    assert!(t5.contains("Q12c"));
    let ab = experiments::ablation(3_000, Duration::from_secs(30));
    assert!(ab.contains("no-push"));
    assert!(ab.contains("spo-only"));
}
