//! All four engine configurations must agree on every benchmark query:
//! the optimizations and storage layouts are performance choices, never
//! semantic ones.

use std::time::Duration;

use sp2bench::core::{BenchQuery, Engine, EngineKind};
use sp2bench::datagen::{generate_graph, Config};

const TRIPLES: u64 = 6_000;
const TIMEOUT: Duration = Duration::from_secs(300);

#[test]
fn all_engines_agree_on_all_17_queries() {
    let (graph, _) = generate_graph(Config::triples(TRIPLES));
    let engines: Vec<Engine> = EngineKind::ALL
        .iter()
        .map(|&k| Engine::load(k, &graph))
        .collect();

    for query in BenchQuery::ALL {
        let counts: Vec<(EngineKind, u64)> = engines
            .iter()
            .map(|e| {
                let (outcome, _) = e.run(query, Some(TIMEOUT));
                (
                    e.kind(),
                    outcome
                        .count()
                        .unwrap_or_else(|| panic!("{query} failed on {}", e.kind())),
                )
            })
            .collect();
        let reference = counts[0].1;
        for (kind, count) in &counts {
            assert_eq!(*count, reference, "{query}: {kind} disagrees ({counts:?})");
        }
    }
}

#[test]
fn materialized_results_agree_not_just_counts() {
    // Counts could coincide while rows differ; compare sorted row sets for
    // the SELECT queries that stay small.
    let (graph, _) = generate_graph(Config::triples(6_000));
    let reference = Engine::load(EngineKind::MemNaive, &graph);
    let optimized = Engine::load(EngineKind::NativeOpt, &graph);

    for query in [
        BenchQuery::Q1,
        BenchQuery::Q2,
        BenchQuery::Q3b,
        BenchQuery::Q7,
        BenchQuery::Q8,
        BenchQuery::Q9,
        BenchQuery::Q10,
        BenchQuery::Q11,
    ] {
        let rows = |e: &Engine| -> Vec<String> {
            let (outcome, _) = e.run_text(query.text(), Some(TIMEOUT), true);
            let sp2bench::core::Outcome::Success {
                result: Some(sp2bench::sparql::QueryResult::Solutions { rows, .. }),
                ..
            } = outcome
            else {
                panic!("{query} failed")
            };
            let mut rendered: Vec<String> = rows
                .iter()
                .map(|row| {
                    row.iter()
                        .map(|t| t.as_ref().map_or("-".to_owned(), ToString::to_string))
                        .collect::<Vec<_>>()
                        .join("\t")
                })
                .collect();
            rendered.sort();
            rendered
        };
        assert_eq!(rows(&reference), rows(&optimized), "{query} rows differ");
    }
}

#[test]
fn ordered_results_keep_order_across_engines() {
    // Q11 is ORDER BY + LIMIT/OFFSET: the *sequence* must match, not just
    // the set.
    let (graph, _) = generate_graph(Config::triples(6_000));
    let mut sequences: Vec<Vec<String>> = Vec::new();
    for kind in EngineKind::ALL {
        let e = Engine::load(kind, &graph);
        let (outcome, _) = e.run_text(BenchQuery::Q11.text(), Some(TIMEOUT), true);
        let sp2bench::core::Outcome::Success {
            result: Some(sp2bench::sparql::QueryResult::Solutions { rows, .. }),
            ..
        } = outcome
        else {
            panic!("Q11 failed on {kind}")
        };
        sequences.push(
            rows.iter()
                .map(|r| r[0].as_ref().expect("?ee bound").to_string())
                .collect(),
        );
    }
    for s in &sequences[1..] {
        assert_eq!(s, &sequences[0]);
    }
}
