//! Endpoint acceptance: a live `sp2b_server` on an ephemeral port must
//! deliver, for every benchmark query Q1–Q12 and extension query A1–A5,
//! exactly the result counts the in-process `QueryEngine` computes —
//! over both JSON and CSV wire formats — and a client that kills its
//! connection mid-stream must have its query cancelled without leaking
//! an exchange worker thread (checked via the `par::diag` gauges).

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Mutex;
use std::time::Duration;

use sp2bench::core::endpoint::{count_result_rows, query_once, Endpoint};
use sp2bench::core::{BenchQuery, Engine, EngineKind, ExtQuery};
use sp2bench::datagen::{generate_graph, Config};
use sp2bench::server::{spawn, ServerConfig, ServerHandle};
use sp2bench::sparql::QueryEngine;

/// The exchange diag gauges are process-wide: serialize the tests.
static SERIAL: Mutex<()> = Mutex::new(());

const TRIPLES: u64 = 6_000;

fn boot(parallelism: usize, triples: u64) -> (ServerHandle, QueryEngine) {
    let (graph, _) = generate_graph(Config::triples(triples));
    let engine = Engine::load(EngineKind::NativeOpt, &graph);
    let qe = engine.query_engine_with(None, Some(parallelism));
    let cfg = ServerConfig {
        timeout: Some(Duration::from_secs(120)),
        workers: 3,
        ..ServerConfig::default()
    };
    let handle = spawn(qe.clone(), &cfg).expect("bind ephemeral port");
    assert_ne!(handle.addr().port(), 0, "ephemeral port must be resolved");
    (handle, qe)
}

#[test]
fn http_counts_match_in_process_for_every_benchmark_query() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let (handle, qe) = boot(2, TRIPLES);
    let endpoint = Endpoint::parse(&handle.endpoint_url()).unwrap();
    let mut queries: Vec<(String, &'static str)> = BenchQuery::ALL
        .iter()
        .map(|q| (q.label().to_owned(), q.text()))
        .collect();
    queries.extend(
        ExtQuery::ALL
            .iter()
            .map(|q| (q.label().to_owned(), q.text())),
    );
    assert_eq!(queries.len(), 22, "Q1–Q12 (incl. variants) + A1–A5");

    for (label, text) in &queries {
        let prepared = qe.prepare(text).unwrap_or_else(|e| panic!("{label}: {e}"));
        let expected = qe
            .count(&prepared)
            .unwrap_or_else(|e| panic!("{label}: {e}"));
        for accept in ["application/sparql-results+json", "text/csv"] {
            let response = query_once(&endpoint, text, accept, Duration::from_secs(120))
                .unwrap_or_else(|e| panic!("{label} over {accept}: {e}"));
            assert_eq!(
                response.status,
                200,
                "{label} over {accept}: {}",
                response.text()
            );
            let counted = count_result_rows(&response.content_type(), &response.body)
                .unwrap_or_else(|e| panic!("{label} over {accept}: {e}"));
            assert_eq!(
                counted, expected,
                "{label} over {accept}: HTTP delivered {counted}, in-process counted {expected}"
            );
        }
    }
    let stats = handle.shutdown();
    assert_eq!(stats.ok, 2 * queries.len() as u64, "{stats:?}");
    assert_eq!(stats.server_errors, 0, "{stats:?}");
    assert_eq!(stats.client_errors, 0, "{stats:?}");
}

/// Endpoint-mode checksums: the multi-user driver over HTTP must fold
/// exactly the checksums the in-process transport folds for the same
/// mix over the same store — order-insensitive content equality, not
/// just cardinality — including the ASK boolean-line form.
#[test]
fn endpoint_checksums_match_in_process_checksums() {
    use sp2bench::core::multiuser::{MultiuserConfig, StopCondition, WorkItem};
    use sp2bench::core::{run_multiuser, run_multiuser_with, HttpTransport};

    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let (handle, qe) = boot(1, TRIPLES);
    let mut cfg = MultiuserConfig::new(1, StopCondition::Rounds(1));
    cfg.checksums = true;
    cfg.timeout = Duration::from_secs(120);
    cfg.mix = vec![
        WorkItem::bench(BenchQuery::Q2),
        WorkItem::bench(BenchQuery::Q5a),
        WorkItem::bench(BenchQuery::Q8),
        WorkItem::bench(BenchQuery::Q12c), // ASK → text/boolean checksum
        WorkItem::ext(ExtQuery::A1),
    ];
    let inproc = run_multiuser(qe.shared_store(), &cfg);
    let endpoint = Endpoint::parse(&handle.endpoint_url()).unwrap();
    let http = run_multiuser_with(&HttpTransport::new(endpoint), &cfg);
    handle.shutdown();

    let a = &inproc.clients[0];
    let b = &http.clients[0];
    assert_eq!(a.errors + b.errors, 0, "{a:?} {b:?}");
    assert!(a.inconsistent.is_empty() && b.inconsistent.is_empty());
    assert_eq!(a.counts, b.counts, "row counts must transfer");
    assert_eq!(a.checksums.len(), cfg.mix.len(), "{:?}", a.checksums);
    assert_eq!(
        a.checksums, b.checksums,
        "HTTP TSV checksums must equal in-process folds"
    );
}

#[test]
fn killed_client_connection_cancels_the_query_without_leaking_workers() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    // A bigger document and a full scan, so the response far exceeds the
    // socket buffers and the server is still streaming when the client
    // vanishes; parallelism 4 makes the scan run through the exchange,
    // so worker-thread cleanup is actually exercised.
    let (handle, _qe) = boot(4, 60_000);
    {
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let query = "SELECT ?s ?p ?o WHERE { ?s ?p ?o }";
        stream
            .write_all(
                format!(
                    "POST /sparql HTTP/1.1\r\nContent-Type: application/sparql-query\r\n\
                     Content-Length: {}\r\nAccept: text/tab-separated-values\r\n\r\n{query}",
                    query.len()
                )
                .as_bytes(),
            )
            .unwrap();
        // Read a token amount — proof the stream started — then kill the
        // connection with most of the response unread.
        let mut first = [0u8; 1024];
        stream.read_exact(&mut first).unwrap();
        assert!(
            first.starts_with(b"HTTP/1.1 200"),
            "stream must have started"
        );
        // Dropped here: the OS resets the connection with unread data.
    }
    // The server's next write fails, which must cancel the query, drop
    // the Solutions stream and join every exchange worker.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let aborted = handle.stats().aborted;
        #[cfg(debug_assertions)]
        let workers_done = sp2bench::sparql::par::diag::live_workers() == 0;
        #[cfg(not(debug_assertions))]
        let workers_done = true;
        if aborted >= 1 && workers_done {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "server never noticed the dead client (aborted = {aborted})"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
    let stats = handle.shutdown();
    assert_eq!(stats.aborted, 1, "{stats:?}");
    #[cfg(debug_assertions)]
    assert_eq!(
        sp2bench::sparql::par::diag::live_workers(),
        0,
        "no exchange worker may outlive the dead connection"
    );
}
