//! Open-loop workload acceptance over a real store: the schedule issues
//! exactly what the stop condition promises, every issued request is
//! accounted for exactly once (completed, timeout, error or
//! warmup-excluded — never lost, never double-counted), per-template
//! rows partition the total, result counts stay stable under open-loop
//! concurrency, and the JSON report is balanced and self-consistent.

use std::time::Duration;

use sp2bench::core::multiuser::{MultiuserConfig, StopCondition, WorkItem};
use sp2bench::core::{report, run_multiuser, run_open_loop, Arrival, BenchQuery, WeightedMix};
use sp2bench::core::{Engine, EngineKind};
use sp2bench::datagen::{generate_graph, Config};

const TRIPLES: u64 = 4_000;

fn open_cfg(arrival: Arrival, rounds: u32) -> MultiuserConfig {
    let mix = WeightedMix::parse("q1:80,q3a:15,q11:5").expect("mix spec parses");
    let mut cfg = MultiuserConfig::new(2, StopCondition::Rounds(rounds));
    cfg.mix = mix.items;
    cfg.weights = mix.weights;
    cfg.arrival = arrival;
    cfg.seed = 42;
    cfg
}

#[test]
fn open_loop_accounts_for_every_scheduled_request() {
    let (graph, _) = generate_graph(Config::triples(TRIPLES));
    let engine = Engine::load(EngineKind::NativeOpt, &graph);
    let cfg = open_cfg(Arrival::Poisson { rate: 400.0 }, 8);
    let report = run_open_loop(engine.shared_store(), &cfg);

    // Rounds(r) schedules exactly r × clients × mix.len() requests.
    assert_eq!(report.issued, 8 * 2 * 3, "schedule honored Rounds");
    // Accounting identity: nothing lost, nothing counted twice.
    assert_eq!(
        report.completed + report.timeouts + report.errors + report.warmup_excluded,
        report.issued,
        "every issued request lands in exactly one bucket"
    );
    assert_eq!(report.errors, 0);
    assert_eq!(report.timeouts, 0);
    assert_eq!(report.latency.count(), report.completed);
    assert_eq!(report.queue_delay.count(), report.completed);
    assert_eq!(report.service.count(), report.completed);

    // Per-template rows partition the totals, in mix order.
    let labels: Vec<&str> = report.templates.iter().map(|t| t.label.as_str()).collect();
    assert_eq!(labels, ["Q1", "Q3a", "Q11"]);
    let per_template: u64 = report.templates.iter().map(|t| t.completed).sum();
    assert_eq!(per_template, report.completed);

    // Read-only store: counts were recorded and never drifted.
    assert!(
        report.inconsistent.is_empty(),
        "counts drifted: {:?}",
        report.inconsistent
    );
    assert!(!report.counts.is_empty(), "result counts were recorded");

    // Latency from intended send time dominates both components.
    let snap = &report.latency;
    assert!(snap.max() >= report.service.max());

    // The rendered table carries the rate line and the template rows.
    let table = report::open_loop_table(&report);
    assert!(table.contains("rate: intended"), "{table}");
    assert!(table.contains("\nQ1 "), "{table}");

    // The JSON dump is balanced and names every template.
    let json = report::open_loop_json(&report);
    assert_eq!(
        json.matches('{').count(),
        json.matches('}').count(),
        "{json}"
    );
    assert_eq!(
        json.matches('[').count(),
        json.matches(']').count(),
        "{json}"
    );
    assert!(
        json.starts_with("{\"schema\":\"sp2b-workload/1\""),
        "{json}"
    );
    for label in ["Q1", "Q3a", "Q11"] {
        assert!(
            json.contains(&format!("\"template\":\"{label}\"")),
            "{json}"
        );
    }
}

#[test]
fn seeded_open_loop_replays_are_deterministic_in_shape() {
    let (graph, _) = generate_graph(Config::triples(TRIPLES));
    let engine = Engine::load(EngineKind::NativeOpt, &graph);
    let cfg = open_cfg(Arrival::Constant { rate: 500.0 }, 6);
    let a = run_open_loop(engine.shared_store(), &cfg);
    let b = run_open_loop(engine.shared_store(), &cfg);
    // Same seed ⇒ same sample sequence ⇒ identical per-template issue
    // counts (wall-clock latency differs; the workload must not).
    let shape = |r: &sp2bench::core::OpenLoopReport| {
        r.templates
            .iter()
            .map(|t| (t.label.clone(), t.completed + t.timeouts + t.errors))
            .collect::<Vec<_>>()
    };
    assert_eq!(shape(&a), shape(&b));
    assert_eq!(a.counts, b.counts, "result counts agree across replays");
}

#[test]
fn closed_loop_warmup_is_excluded_from_histograms() {
    let (graph, _) = generate_graph(Config::triples(2_000));
    let engine = Engine::load(EngineKind::NativeOpt, &graph);
    let mut cfg = MultiuserConfig::new(2, StopCondition::Duration(Duration::from_millis(400)));
    cfg.mix = vec![WorkItem::bench(BenchQuery::Q1)];
    // A warmup longer than the run: everything lands before the cutoff.
    cfg.warmup = Duration::from_secs(60);
    let report = run_multiuser(engine.shared_store(), &cfg);
    let excluded: u64 = report.clients.iter().map(|c| c.warmup_excluded).sum();
    assert!(excluded > 0, "the run executed queries during warmup");
    assert_eq!(report.total_completed(), 0, "warmup queries left the stats");
    assert_eq!(report.aggregate_latency().count(), 0);
    let table = report::multiuser_table(&report);
    assert!(table.contains("warmup:"), "{table}");
}
