//! API-equivalence suite: for every benchmark query (Q1–Q12 and the A1–A5
//! aggregation extension queries) on a generated ~10k-triple document,
//! streaming iteration, materialized execution and the decode-free count
//! path must agree exactly — and all three must report cancellation when a
//! pre-triggered `Cancellation` is supplied.

use sp2bench::core::{BenchQuery, ExtQuery};
use sp2bench::datagen::{generate_graph, Config};
use sp2bench::rdf::Term;
use sp2bench::sparql::{Cancellation, Error, QueryEngine, QueryResult};
use sp2bench::store::{NativeStore, TripleStore};

const TRIPLES: u64 = 10_000;

fn all_query_texts() -> Vec<(&'static str, &'static str)> {
    let mut queries: Vec<(&'static str, &'static str)> = BenchQuery::ALL
        .iter()
        .map(|q| (q.label(), q.text()))
        .collect();
    queries.extend(ExtQuery::ALL.iter().map(|q| (q.label(), q.text())));
    queries
}

#[test]
fn streaming_materialized_and_count_agree_on_all_queries() {
    let (graph, _) = generate_graph(Config::triples(TRIPLES));
    let engine = QueryEngine::new(NativeStore::from_graph(&graph).into_shared());

    for (label, text) in all_query_texts() {
        let prepared = engine
            .prepare(text)
            .unwrap_or_else(|e| panic!("{label}: {e}"));

        let count = engine
            .count(&prepared)
            .unwrap_or_else(|e| panic!("{label}: {e}"));

        let result = engine
            .execute(&prepared)
            .unwrap_or_else(|e| panic!("{label}: {e}"));
        assert_eq!(
            result.row_count() as u64,
            count,
            "{label}: count() vs execute() row_count()"
        );

        let streamed: Vec<Vec<Option<Term>>> = engine
            .solutions(&prepared)
            .map(|s| s.unwrap_or_else(|e| panic!("{label}: {e}")).materialize())
            .collect();
        assert_eq!(streamed.len() as u64, count, "{label}: streamed row count");
        match &result {
            QueryResult::Solutions { rows, .. } => {
                assert_eq!(
                    &streamed, rows,
                    "{label}: streamed rows vs materialized rows"
                );
            }
            QueryResult::Boolean(b) => {
                // ASK streams one empty witness row iff true.
                assert_eq!(streamed.len(), usize::from(*b), "{label}: ASK stream");
                assert!(
                    streamed.iter().all(Vec::is_empty),
                    "{label}: ASK rows are empty"
                );
            }
        }
    }
}

#[test]
fn pre_triggered_cancellation_fails_every_path() {
    let (graph, _) = generate_graph(Config::triples(4_000));
    let engine = QueryEngine::new(NativeStore::from_graph(&graph).into_shared());

    for (label, text) in all_query_texts() {
        let prepared = engine
            .prepare(text)
            .unwrap_or_else(|e| panic!("{label}: {e}"));
        let cancel = Cancellation::none();
        cancel.cancel();

        assert!(
            matches!(
                engine.execute_with(&prepared, &cancel),
                Err(Error::Cancelled)
            ),
            "{label}: execute under cancellation"
        );
        assert!(
            matches!(engine.count_with(&prepared, &cancel), Err(Error::Cancelled)),
            "{label}: count under cancellation"
        );
        let mut stream = engine.solutions_with(&prepared, &cancel);
        assert!(
            matches!(stream.next(), Some(Err(Error::Cancelled))),
            "{label}: stream under cancellation"
        );
        assert!(
            stream.next().is_none(),
            "{label}: stream ends after the error"
        );
    }
}
