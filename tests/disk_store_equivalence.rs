//! Disk-vs-memory equivalence: persisting a document as checksummed
//! segments (`sp2b save`) and reopening it is a storage feature, never a
//! semantic one. For every benchmark query (Q1–Q12 and the A1–A5
//! aggregation extension), a reopened disk store — at 1, 2 and 4 shards,
//! sequentially and under morsel-driven parallel execution — must
//! produce the same result multiset (and count) as the in-memory native
//! store built from the same graph. And reopening must be genuinely
//! out-of-core: a saved document answers queries after its N-Triples
//! source is deleted, and keeps answering them identically when the
//! block cache's byte budget is smaller than any single sorted run.

use std::path::{Path, PathBuf};

use sp2bench::core::{BenchQuery, ExtQuery};
use sp2bench::datagen::{generate_graph, Config};
use sp2bench::sparql::{QueryEngine, QueryOptions, QueryResult};
use sp2bench::store::{
    open_store, open_store_with, save_graph, NativeStore, ShardBy, SharedStore, TripleStore,
};

const TRIPLES: u64 = 6_000;
const SHARD_COUNTS: [usize; 3] = [1, 2, 4];

/// A scratch directory under the system temp dir, removed on drop.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let path = std::env::temp_dir().join(format!("sp2b-disk-eq-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&path);
        std::fs::create_dir(&path).expect("create scratch dir");
        TempDir(path)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn all_query_texts() -> Vec<(&'static str, &'static str)> {
    let mut queries: Vec<(&'static str, &'static str)> = BenchQuery::ALL
        .iter()
        .map(|q| (q.label(), q.text()))
        .collect();
    queries.extend(ExtQuery::ALL.iter().map(|q| (q.label(), q.text())));
    queries
}

fn engine(store: &SharedStore, parallelism: usize) -> QueryEngine {
    QueryEngine::with_options(store.clone(), QueryOptions::new().parallelism(parallelism))
}

/// A result as a sorted multiset of stringified rows (ASK → its answer).
fn multiset(result: &QueryResult) -> Vec<String> {
    match result {
        QueryResult::Solutions { rows, .. } => {
            let mut out: Vec<String> = rows
                .iter()
                .map(|row| {
                    row.iter()
                        .map(|t| t.as_ref().map_or("-".to_owned(), |t| t.to_string()))
                        .collect::<Vec<_>>()
                        .join("\t")
                })
                .collect();
            out.sort();
            out
        }
        QueryResult::Boolean(b) => vec![format!("ask:{b}")],
    }
}

fn run_all(store: &SharedStore, parallelism: usize) -> Vec<(String, Vec<String>, u64)> {
    let qe = engine(store, parallelism);
    all_query_texts()
        .into_iter()
        .map(|(label, text)| {
            let prepared = qe.prepare(text).unwrap_or_else(|e| panic!("{label}: {e}"));
            let result = qe
                .execute(&prepared)
                .unwrap_or_else(|e| panic!("{label}: {e}"));
            let count = qe
                .count(&prepared)
                .unwrap_or_else(|e| panic!("{label}: {e}"));
            (label.to_owned(), multiset(&result), count)
        })
        .collect()
}

/// The tentpole acceptance: save → reopen at 1/2/4 shards; every query
/// agrees with the in-memory native store on multiset and count, both
/// sequentially and with the morsel exchange fanning out over the
/// lazily-loaded sorted runs.
#[test]
fn reopened_disk_store_agrees_with_memory_on_all_queries() {
    let (graph, _) = generate_graph(Config::triples(TRIPLES));
    let flat = NativeStore::from_graph(&graph).into_shared();
    let reference = run_all(&flat, 1);

    for shards in SHARD_COUNTS {
        let dir = TempDir::new(&format!("agree-{shards}"));
        let stats = save_graph(dir.path(), &graph, shards, ShardBy::Subject)
            .unwrap_or_else(|e| panic!("{shards} shards: save failed: {e}"));
        assert_eq!(stats.triples, graph.len() as u64, "{shards} shards: save");
        assert_eq!(stats.shard_lens.len(), shards);

        let disk = open_store(dir.path())
            .unwrap_or_else(|e| panic!("{shards} shards: open failed: {e}"))
            .into_shared();
        assert_eq!(disk.len(), flat.len(), "{shards} shards: len");

        for parallelism in [1usize, 4] {
            let got = run_all(&disk, parallelism);
            for ((label, rows, count), (rlabel, rrows, rcount)) in got.iter().zip(&reference) {
                assert_eq!(label, rlabel);
                assert_eq!(
                    rows, rrows,
                    "{label}: disk @ {shards} shards, parallelism {parallelism} \
                     changed the result multiset"
                );
                assert_eq!(
                    count, rcount,
                    "{label}: disk @ {shards} shards, parallelism {parallelism} \
                     changed the count"
                );
            }
        }
    }
}

/// The out-of-core tentpole: a cache budget smaller than any single
/// sorted run forces every query to stream blocks through eviction —
/// and the answers must not change. Opens the saved segments with a
/// 32 KiB budget (each 2-shard run here is ~36 KB) threaded through
/// `QueryOptions::cache_bytes` the way a store-opening front end would,
/// runs Q1–Q12/A1–A5 sequentially and morsel-parallel against the
/// in-memory reference, then reads the cache gauges back: evictions
/// actually happened and peak resident block bytes never exceeded the
/// budget (the cache itself debug-asserts the same invariant on every
/// insert, so a debug-build test run proves it block by block).
#[test]
fn tiny_cache_budget_streams_blocks_without_changing_results() {
    const BUDGET: u64 = 32 * 1024;
    let (graph, _) = generate_graph(Config::triples(TRIPLES));
    let flat = NativeStore::from_graph(&graph).into_shared();
    let reference = run_all(&flat, 1);

    let dir = TempDir::new("tiny-cache");
    let stats = save_graph(dir.path(), &graph, 2, ShardBy::Subject).expect("save");
    // Premise: the budget is smaller than any one run, so no shard can
    // simply hold a whole permutation resident.
    assert!(
        stats.shard_lens.iter().all(|&l| (l as u64) * 12 > BUDGET),
        "premise: every run ({:?} triples at 12 B) must exceed the {BUDGET} B budget",
        stats.shard_lens
    );

    let options = QueryOptions::new().cache_bytes(BUDGET);
    let disk = open_store_with(dir.path(), options.cache_byte_budget())
        .expect("open with tiny cache")
        .into_shared();

    for parallelism in [1usize, 4] {
        let got = run_all(&disk, parallelism);
        for ((label, rows, count), (rlabel, rrows, rcount)) in got.iter().zip(&reference) {
            assert_eq!(label, rlabel);
            assert_eq!(
                rows, rrows,
                "{label}: tiny cache @ parallelism {parallelism} changed the result multiset"
            );
            assert_eq!(
                count, rcount,
                "{label}: tiny cache @ parallelism {parallelism} changed the count"
            );
        }
    }

    let cache = disk.cache_stats().expect("disk store exposes cache stats");
    assert_eq!(cache.budget_bytes, BUDGET);
    assert!(
        cache.evictions > 0,
        "a budget below any run must evict: {cache:?}"
    );
    assert!(
        cache.peak_resident_bytes <= BUDGET,
        "peak resident {} B exceeded the {BUDGET} B budget",
        cache.peak_resident_bytes
    );
    assert!(cache.resident_bytes <= BUDGET, "{cache:?}");
}

/// PSO-partitioned segments agree too — the saved partition key round-
/// trips through the root header and routes bound-predicate scans.
#[test]
fn pso_partitioned_segments_agree_on_a_subset() {
    let (graph, _) = generate_graph(Config::triples(TRIPLES));
    let flat = NativeStore::from_graph(&graph).into_shared();
    let dir = TempDir::new("pso");
    save_graph(dir.path(), &graph, 4, ShardBy::PredicateSubject).expect("save");
    let disk = open_store(dir.path()).expect("open").into_shared();
    let flat_engine = engine(&flat, 1);
    let disk_engine = engine(&disk, 1);
    for q in [
        BenchQuery::Q2,
        BenchQuery::Q4,
        BenchQuery::Q5a,
        BenchQuery::Q8,
        BenchQuery::Q12c,
    ] {
        let fp = flat_engine.prepare(q.text()).unwrap();
        let dp = disk_engine.prepare(q.text()).unwrap();
        assert_eq!(
            multiset(&disk_engine.execute(&dp).unwrap()),
            multiset(&flat_engine.execute(&fp).unwrap()),
            "{q}: pso-partitioned disk store changed the result"
        );
    }
}

/// The out-of-core guarantee: after `sp2b save`, the N-Triples source is
/// dead weight. Saving from a file, deleting that file and reopening the
/// segment directory still answers Q1 (exactly one solution, per the
/// paper) — nothing reparses the document.
#[test]
fn reopen_answers_q1_without_the_ntriples_source() {
    let (graph, _) = generate_graph(Config::triples(TRIPLES));
    let dir = TempDir::new("no-source");
    let doc = dir.path().join("doc.nt");
    {
        let mut out = std::io::BufWriter::new(std::fs::File::create(&doc).unwrap());
        sp2bench::rdf::ntriples::write_document(&mut out, graph.iter()).unwrap();
    }
    let segs = dir.path().join("segs");
    std::fs::create_dir(&segs).unwrap();
    let stats = sp2bench::store::save_segments_from_path(&doc, &segs, 2, ShardBy::Subject)
        .expect("save from file");
    assert_eq!(stats.triples, graph.len() as u64);

    // The document is gone; only the segments remain.
    std::fs::remove_file(&doc).unwrap();

    let disk = open_store(&segs).expect("reopen").into_shared();
    let qe = engine(&disk, 1);
    let prepared = qe.prepare(BenchQuery::Q1.text()).unwrap();
    assert_eq!(qe.count(&prepared).unwrap(), 1, "Q1 after source deletion");
}
