//! Table V invariants: result cardinalities that any faithful SP²Bench
//! data + engine combination must satisfy, regardless of scale or seed
//! (DESIGN.md §5).

use std::time::Duration;

use sp2bench::core::{BenchQuery, Engine, EngineKind, Outcome};
use sp2bench::datagen::{generate_graph, Config};
use sp2bench::rdf::Term;
use sp2bench::sparql::QueryResult;

const TRIPLES: u64 = 12_000;
const TIMEOUT: Duration = Duration::from_secs(120);

fn engine() -> Engine {
    let (graph, _) = generate_graph(Config::triples(TRIPLES));
    Engine::load(EngineKind::NativeOpt, &graph)
}

fn count(engine: &Engine, q: BenchQuery) -> u64 {
    let (outcome, _) = engine.run(q, Some(TIMEOUT));
    outcome.count().unwrap_or_else(|| panic!("{q} failed"))
}

#[test]
fn q1_returns_exactly_one_row() {
    // "This simple query returns exactly one result (for arbitrarily
    // large documents)."
    assert_eq!(count(&engine(), BenchQuery::Q1), 1);
}

#[test]
fn q1_result_is_1940() {
    let e = engine();
    let (outcome, _) = e.run_text(BenchQuery::Q1.text(), Some(TIMEOUT), true);
    let Outcome::Success {
        result: Some(QueryResult::Solutions { rows, .. }),
        ..
    } = outcome
    else {
        panic!("Q1 must succeed");
    };
    let Some(Term::Literal(yr)) = &rows[0][0] else {
        panic!("?yr must be a literal")
    };
    assert_eq!(yr.as_integer(), Some(1940));
}

#[test]
fn q3c_is_empty() {
    // Table IX: P(isbn | Article) = 0 — "the filter condition in Q3c is
    // never satisfied".
    assert_eq!(count(&engine(), BenchQuery::Q3c), 0);
}

#[test]
fn q3_selectivities_are_ordered() {
    // pages (92.61%) ≫ month (0.65%) > isbn (0%).
    let e = engine();
    let a = count(&e, BenchQuery::Q3a);
    let b = count(&e, BenchQuery::Q3b);
    let c = count(&e, BenchQuery::Q3c);
    assert!(a > 50 * b.max(1), "Q3a={a} should dwarf Q3b={b}");
    assert!(b > c, "Q3b={b} must be nonempty, Q3c={c} empty");
}

#[test]
fn q4_pairs_are_ordered_and_irreflexive() {
    let e = engine();
    let (outcome, _) = e.run_text(BenchQuery::Q4.text(), Some(TIMEOUT), true);
    let Outcome::Success {
        result: Some(QueryResult::Solutions { rows, .. }),
        ..
    } = outcome
    else {
        panic!("Q4 must succeed at 12k triples");
    };
    assert!(!rows.is_empty());
    for row in &rows {
        let (Some(Term::Literal(n1)), Some(Term::Literal(n2))) = (&row[0], &row[1]) else {
            panic!("names must be literals")
        };
        assert!(n1.lexical < n2.lexical, "FILTER (?name1 < ?name2) violated");
    }
}

#[test]
fn q5a_equals_q5b() {
    // "the one-to-one mapping between authors and their names … implies
    // equivalence" — author names are primary keys.
    let e = engine();
    assert_eq!(count(&e, BenchQuery::Q5a), count(&e, BenchQuery::Q5b));
}

#[test]
fn q6_returns_debut_publications_only() {
    let e = engine();
    let n = count(&e, BenchQuery::Q6);
    assert!(n > 0, "new authors exist every year");
    // Upper bound: no more rows than (document, author) pairs.
    let all_creators = {
        let (o, _) = e.run_text(
            "SELECT ?doc ?author WHERE { ?doc dc:creator ?author }",
            Some(TIMEOUT),
            false,
        );
        o.count().expect("creator scan succeeds")
    };
    assert!(n <= all_creators);
}

#[test]
fn q7_is_small_but_query_succeeds() {
    // The citation system is sparse ("very incomplete"): Table V reports
    // 0 at 10k. The query itself must evaluate without error.
    let n = count(&engine(), BenchQuery::Q7);
    assert!(n < 100, "Q7 result must stay small at 12k triples, got {n}");
}

#[test]
fn q8_includes_direct_coauthors() {
    let e = engine();
    let q8 = count(&e, BenchQuery::Q8);
    let direct = {
        let (o, _) = e.run_text(
            r#"SELECT DISTINCT ?name WHERE {
                ?doc dc:creator person:Paul_Erdoes .
                ?doc dc:creator ?author .
                ?author foaf:name ?name
                FILTER (?author != person:Paul_Erdoes)
            }"#,
            Some(TIMEOUT),
            false,
        );
        o.count().expect("direct coauthors query succeeds")
    };
    assert!(
        q8 >= direct,
        "Erdős-1 ∪ Erdős-2 ⊇ Erdős-1: {q8} vs {direct}"
    );
    assert!(direct > 0, "Erdős has coauthors from 1940 on");
}

#[test]
fn q9_returns_exactly_four_predicates() {
    // dc:creator + swrc:editor incoming, rdf:type + foaf:name outgoing.
    let e = engine();
    assert_eq!(count(&e, BenchQuery::Q9), 4);
    let (outcome, _) = e.run_text(BenchQuery::Q9.text(), Some(TIMEOUT), true);
    let Outcome::Success {
        result: Some(QueryResult::Solutions { rows, .. }),
        ..
    } = outcome
    else {
        panic!()
    };
    let mut predicates: Vec<String> = rows
        .iter()
        .map(|r| r[0].as_ref().expect("predicate bound").to_string())
        .collect();
    predicates.sort();
    let expected_fragments = ["creator", "editor", "name", "type"];
    for fragment in expected_fragments {
        assert!(
            predicates.iter().any(|p| p.contains(fragment)),
            "missing {fragment} in {predicates:?}"
        );
    }
}

#[test]
fn q10_results_all_point_at_erdoes() {
    let e = engine();
    let n = count(&e, BenchQuery::Q10);
    assert!(n > 0);
    // Erdős is active 1940–1996 with 10 + 2 scripted activities per year;
    // a 12k-triple document reaches the early 1950s → ≥ 100 edges.
    assert!(n >= 100, "expected scripted Erdős activity, got {n}");
}

#[test]
fn q11_returns_exactly_ten() {
    assert_eq!(count(&engine(), BenchQuery::Q11), 10);
}

#[test]
fn q11_is_sorted_lexicographically() {
    let e = engine();
    let (outcome, _) = e.run_text(BenchQuery::Q11.text(), Some(TIMEOUT), true);
    let Outcome::Success {
        result: Some(QueryResult::Solutions { rows, .. }),
        ..
    } = outcome
    else {
        panic!()
    };
    let values: Vec<String> = rows
        .iter()
        .map(|r| match &r[0] {
            Some(Term::Literal(l)) => l.lexical.clone(),
            other => panic!("?ee must be a literal, got {other:?}"),
        })
        .collect();
    let mut sorted = values.clone();
    sorted.sort();
    assert_eq!(values, sorted, "ORDER BY ?ee violated");
}

#[test]
fn ask_queries_answer_as_the_paper_states() {
    // "They always return yes for sufficiently large documents" (Q12a/b);
    // Q12c asks for a triple that is not present.
    let e = engine();
    for (q, expected) in [
        (BenchQuery::Q12a, true),
        (BenchQuery::Q12b, true),
        (BenchQuery::Q12c, false),
    ] {
        let (outcome, _) = e.run_text(q.text(), Some(TIMEOUT), true);
        let Outcome::Success {
            result: Some(r), ..
        } = outcome
        else {
            panic!("{q} must succeed")
        };
        assert_eq!(r.as_bool(), Some(expected), "{q}");
    }
}

#[test]
fn invariants_hold_for_other_seeds() {
    // The invariants are properties of the generator model, not of one
    // seed.
    for seed in [7u64, 99, 123456] {
        let (graph, _) = generate_graph(Config::triples(8_000).with_seed(seed));
        let e = Engine::load(EngineKind::NativeOpt, &graph);
        assert_eq!(count_on(&e, BenchQuery::Q1), 1, "seed {seed}");
        assert_eq!(count_on(&e, BenchQuery::Q3c), 0, "seed {seed}");
        assert_eq!(count_on(&e, BenchQuery::Q9), 4, "seed {seed}");
        assert_eq!(count_on(&e, BenchQuery::Q11), 10, "seed {seed}");
        assert_eq!(
            count_on(&e, BenchQuery::Q5a),
            count_on(&e, BenchQuery::Q5b),
            "seed {seed}"
        );
    }
}

fn count_on(e: &Engine, q: BenchQuery) -> u64 {
    let (outcome, _) = e.run(q, Some(TIMEOUT));
    outcome.count().unwrap_or_else(|| panic!("{q} failed"))
}
