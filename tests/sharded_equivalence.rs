//! Sharded-vs-unsharded equivalence: hash partitioning the store is a
//! loading/throughput feature, never a semantic one. For every benchmark
//! query (Q1–Q12 and the A1–A5 aggregation extension) on a generated
//! document, a store sharded 2/4/8 ways must produce the same result
//! multiset (and count) as the unsharded store — sequentially and under
//! morsel-driven parallel execution across shards — and the parallel
//! channel loader must produce stores whose per-query results are
//! independent of the shard count. Subject hashing must also keep the
//! shards balanced on SP²Bench data.

use sp2bench::core::{BenchQuery, ExtQuery};
use sp2bench::datagen::{generate_graph, Config};
use sp2bench::sparql::{QueryEngine, QueryOptions, QueryResult};
use sp2bench::store::{
    sharded_store_from_reader, IndexSelection, NativeStore, ShardBackend, ShardBy, ShardedStore,
    SharedStore, TripleStore,
};

const TRIPLES: u64 = 8_000;
const SHARD_COUNTS: [usize; 3] = [2, 4, 8];

fn all_query_texts() -> Vec<(&'static str, &'static str)> {
    let mut queries: Vec<(&'static str, &'static str)> = BenchQuery::ALL
        .iter()
        .map(|q| (q.label(), q.text()))
        .collect();
    queries.extend(ExtQuery::ALL.iter().map(|q| (q.label(), q.text())));
    queries
}

fn engine(store: &SharedStore, parallelism: usize) -> QueryEngine {
    QueryEngine::with_options(store.clone(), QueryOptions::new().parallelism(parallelism))
}

/// A result as a sorted multiset of stringified rows (ASK → its answer).
fn multiset(result: &QueryResult) -> Vec<String> {
    match result {
        QueryResult::Solutions { rows, .. } => {
            let mut out: Vec<String> = rows
                .iter()
                .map(|row| {
                    row.iter()
                        .map(|t| t.as_ref().map_or("-".to_owned(), |t| t.to_string()))
                        .collect::<Vec<_>>()
                        .join("\t")
                })
                .collect();
            out.sort();
            out
        }
        QueryResult::Boolean(b) => vec![format!("ask:{b}")],
    }
}

fn run_all(store: &SharedStore, parallelism: usize) -> Vec<(String, Vec<String>, u64)> {
    let qe = engine(store, parallelism);
    all_query_texts()
        .into_iter()
        .map(|(label, text)| {
            let prepared = qe.prepare(text).unwrap_or_else(|e| panic!("{label}: {e}"));
            let result = qe
                .execute(&prepared)
                .unwrap_or_else(|e| panic!("{label}: {e}"));
            let count = qe
                .count(&prepared)
                .unwrap_or_else(|e| panic!("{label}: {e}"));
            (label.to_owned(), multiset(&result), count)
        })
        .collect()
}

#[test]
fn sharded_and_unsharded_agree_on_all_queries() {
    let (graph, _) = generate_graph(Config::triples(TRIPLES));
    let flat = NativeStore::from_graph(&graph).into_shared();
    let reference = run_all(&flat, 1);

    for shards in SHARD_COUNTS {
        let sharded = ShardedStore::from_graph(
            &graph,
            shards,
            ShardBy::Subject,
            ShardBackend::Native(IndexSelection::all()),
        )
        .into_shared();
        assert_eq!(sharded.len(), flat.len(), "{shards} shards");
        let got = run_all(&sharded, 1);
        for ((label, rows, count), (rlabel, rrows, rcount)) in got.iter().zip(&reference) {
            assert_eq!(label, rlabel);
            assert_eq!(
                rows, rrows,
                "{label}: {shards} shards changed the result multiset"
            );
            assert_eq!(count, rcount, "{label}: {shards} shards changed the count");
        }
    }
}

#[test]
fn parallel_execution_over_shards_agrees_too() {
    // The morsel exchange fans out over the concatenated per-shard
    // chunk lists; results must not depend on the worker count.
    let (graph, _) = generate_graph(Config::triples(TRIPLES));
    let sharded = ShardedStore::from_graph(
        &graph,
        4,
        ShardBy::Subject,
        ShardBackend::Native(IndexSelection::all()),
    )
    .into_shared();
    let reference = run_all(&sharded, 1);
    for degree in [2, 8] {
        let got = run_all(&sharded, degree);
        for ((label, rows, count), (_, rrows, rcount)) in got.iter().zip(&reference) {
            assert_eq!(rows, rrows, "{label}@{degree}: multiset");
            assert_eq!(count, rcount, "{label}@{degree}: count");
        }
    }
}

#[test]
fn pso_sharding_agrees_on_a_subset() {
    let (graph, _) = generate_graph(Config::triples(TRIPLES));
    let flat = NativeStore::from_graph(&graph).into_shared();
    let sharded = ShardedStore::from_graph(
        &graph,
        4,
        ShardBy::PredicateSubject,
        ShardBackend::Native(IndexSelection::all()),
    )
    .into_shared();
    let flat_engine = engine(&flat, 1);
    let sharded_engine = engine(&sharded, 1);
    for q in [
        BenchQuery::Q2,
        BenchQuery::Q4,
        BenchQuery::Q5a,
        BenchQuery::Q8,
        BenchQuery::Q12c,
    ] {
        let fp = flat_engine.prepare(q.text()).unwrap();
        let sp = sharded_engine.prepare(q.text()).unwrap();
        assert_eq!(
            multiset(&sharded_engine.execute(&sp).unwrap()),
            multiset(&flat_engine.execute(&fp).unwrap()),
            "{q}: pso sharding changed the result"
        );
    }
}

/// The sharded-load determinism satellite: loading the same document
/// through the parallel channel loader with 1, 2 and 8 shards yields
/// identical `len()` and identical Q5a/Q8 result multisets, and subject
/// hashing keeps shards balanced (no shard above twice the mean).
#[test]
fn channel_loader_is_deterministic_across_shard_counts_and_balanced() {
    let (graph, _) = generate_graph(Config::triples(TRIPLES));
    let mut doc = Vec::new();
    sp2bench::rdf::ntriples::write_document(&mut doc, graph.iter()).unwrap();

    let reference_store = sharded_store_from_reader(
        doc.as_slice(),
        1,
        ShardBy::Subject,
        ShardBackend::Native(IndexSelection::all()),
    )
    .unwrap();
    let reference_len = reference_store.len();
    let reference: Vec<(String, Vec<String>, u64)> = run_all(&reference_store.into_shared(), 1)
        .into_iter()
        .filter(|(label, _, _)| label == "Q5a" || label == "Q8")
        .collect();
    assert_eq!(reference.len(), 2);

    for shards in [2usize, 8] {
        let store = sharded_store_from_reader(
            doc.as_slice(),
            shards,
            ShardBy::Subject,
            ShardBackend::Native(IndexSelection::all()),
        )
        .unwrap();
        assert_eq!(store.len(), reference_len, "{shards} shards: len");
        let lens = store.shard_lens();
        assert_eq!(lens.len(), shards);
        let mean = store.len() as f64 / shards as f64;
        for (i, &len) in lens.iter().enumerate() {
            assert!(
                (len as f64) <= 2.0 * mean,
                "shard {i}/{shards} holds {len} triples, > 2× the mean {mean:.0}: {lens:?}"
            );
        }
        let got: Vec<(String, Vec<String>, u64)> = run_all(&store.into_shared(), 1)
            .into_iter()
            .filter(|(label, _, _)| label == "Q5a" || label == "Q8")
            .collect();
        assert_eq!(got, reference, "{shards} shards: Q5a/Q8 results");
    }
}

#[test]
fn mem_backed_shards_agree_on_a_subset() {
    let (graph, _) = generate_graph(Config::triples(TRIPLES));
    let flat = sp2bench::store::MemStore::from_graph(&graph).into_shared();
    let sharded =
        ShardedStore::from_graph(&graph, 4, ShardBy::Subject, ShardBackend::Mem).into_shared();
    let flat_engine = engine(&flat, 1);
    let sharded_engine = engine(&sharded, 1);
    for q in [
        BenchQuery::Q2,
        BenchQuery::Q5b,
        BenchQuery::Q9,
        BenchQuery::Q11,
    ] {
        let fp = flat_engine.prepare(q.text()).unwrap();
        let sp = sharded_engine.prepare(q.text()).unwrap();
        assert_eq!(
            multiset(&sharded_engine.execute(&sp).unwrap()),
            multiset(&flat_engine.execute(&fp).unwrap()),
            "{q}: mem-backed sharding changed the result"
        );
    }
}
