//! Morsel-driven parallel evaluation of [`Plan::Exchange`].
//!
//! The driving scan (first pattern of the leftmost BGP under the
//! exchange) is partitioned into disjoint chunks via
//! [`sp2b_store::TripleStore::scan_chunks`] — more chunks than workers,
//! so fast workers keep pulling morsels from a shared atomic counter
//! while slow ones finish (the classic morsel-driven load-balancing of
//! Leis et al.). Each worker runs the *existing* per-morsel iterator
//! pipeline: the remaining BGP patterns as index-nested-loop steps,
//! hash-join probes against build sides materialized **once** and shared
//! read-only via [`Arc`], filters in place. Results flow through a
//! bounded channel (backpressure: workers cannot run unboundedly ahead
//! of the merger) and are merged **in morsel order**, so the output
//! order equals sequential evaluation exactly — parallel and sequential
//! runs are indistinguishable to every consumer, including `ORDER BY`
//! and `DISTINCT` above the exchange.
//!
//! The merge materializes (like `OrderBy`): `std::thread::scope` workers
//! cannot outlive this call, so the rows are collected before the
//! iterator is returned. Cancellation and timeout semantics are
//! preserved — every worker checks the shared [`Cancellation`] per row,
//! and a pre-triggered handle yields no rows at all, exactly like the
//! sequential evaluator.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::sync_channel;
use std::sync::Arc;

use sp2b_store::hash::FxHashMap;
use sp2b_store::{Id, ScanChunk};

use crate::eval::{extend_row, probe_inner, probe_left, Bindings, EvalContext, RowIter};
use crate::expr::BoundExpr;
use crate::plan::{const_pattern, Plan, PlanPattern};

/// Morsels per worker: enough over-partitioning that an unlucky skewed
/// morsel cannot serialize the whole query.
const MORSELS_PER_WORKER: usize = 4;

/// Rows per merge-channel message: batches amortize channel overhead
/// while keeping worker-side buffering bounded.
const BATCH_ROWS: usize = 4096;

/// In-flight batches per worker the bounded channel admits.
const BATCHES_IN_FLIGHT_PER_WORKER: usize = 2;

/// A hash-join build side materialized once and shared read-only by
/// every worker.
struct Build {
    map: FxHashMap<Vec<Id>, Vec<Bindings>>,
    flat: Vec<Bindings>,
}

/// The compiled per-morsel pipeline: the exchange input with every build
/// side pre-materialized. Shapes the parallel driver cannot run (union,
/// nested exchange, …) fail compilation and fall back to sequential
/// evaluation — [`Plan::Exchange`] is a performance hint, never a
/// semantic obligation.
enum Pipeline<'a> {
    /// The driving BGP: pattern 0 is replaced by the morsel's chunk.
    Driving {
        patterns: &'a [PlanPattern],
        filters: &'a [(usize, BoundExpr)],
    },
    Join {
        probe: Box<Pipeline<'a>>,
        build: Arc<Build>,
        key: &'a [usize],
    },
    LeftJoin {
        probe: Box<Pipeline<'a>>,
        build: Arc<Build>,
        key: &'a [usize],
        condition: Option<&'a BoundExpr>,
    },
    Filter(&'a BoundExpr, Box<Pipeline<'a>>),
}

fn compile<'a>(ctx: &EvalContext<'a>, plan: &'a Plan) -> Option<Pipeline<'a>> {
    match plan {
        Plan::Bgp { patterns, filters } if !patterns.is_empty() => {
            Some(Pipeline::Driving { patterns, filters })
        }
        Plan::Join { left, right, key } => {
            let probe = Box::new(compile(ctx, left)?);
            let (map, flat) = ctx.build_side(right, key);
            Some(Pipeline::Join {
                probe,
                build: Arc::new(Build { map, flat }),
                key,
            })
        }
        Plan::LeftJoin {
            left,
            right,
            key,
            condition,
        } => {
            let probe = Box::new(compile(ctx, left)?);
            let (map, flat) = ctx.build_side(right, key);
            Some(Pipeline::LeftJoin {
                probe,
                build: Arc::new(Build { map, flat }),
                key,
                condition: condition.as_ref(),
            })
        }
        Plan::Filter(expr, inner) => Some(Pipeline::Filter(expr, Box::new(compile(ctx, inner)?))),
        _ => None,
    }
}

/// The rows one morsel produces: the chunk's triples feed pattern 0, the
/// rest of the pipeline is identical to sequential evaluation (same
/// operators, same per-row order), so concatenating morsel outputs in
/// chunk order reproduces the sequential row order.
fn morsel_rows<'a>(
    ctx: &EvalContext<'a>,
    pipe: &Pipeline<'a>,
    chunk: ScanChunk<'a>,
) -> RowIter<'a> {
    match pipe {
        Pipeline::Driving { patterns, filters } => {
            let patterns: &'a [PlanPattern] = patterns;
            let filters: &'a [(usize, BoundExpr)] = filters;
            let pattern0: &'a PlanPattern = &patterns[0];
            if pattern0.is_unsatisfiable() {
                return Box::new(std::iter::empty());
            }
            let width = ctx.width;
            let cancel = ctx.cancel.clone();
            let mut scan = chunk.iter(const_pattern(pattern0));
            let empty = Bindings::empty(width);
            let seed: RowIter<'a> = Box::new(std::iter::from_fn(move || loop {
                if cancel.should_stop() {
                    return None;
                }
                let triple = scan.next()?;
                if let Some(row) = extend_row(&empty, pattern0, &triple) {
                    return Some(row);
                }
            }));
            ctx.clone().eval_bgp_from(seed, patterns, filters, 1)
        }
        Pipeline::Filter(expr, inner) => {
            let expr: &'a BoundExpr = expr;
            let store = ctx.store;
            let input = morsel_rows(ctx, inner, chunk);
            Box::new(input.filter(move |row| expr.evaluate(row, store) == Ok(true)))
        }
        // Both join arms delegate the per-row probe to the helpers shared
        // with the sequential evaluator, so join semantics (residual
        // merge check, OPTIONAL condition, unmatched-left preservation)
        // live in exactly one place: crate::eval.
        Pipeline::Join { probe, build, key } => {
            let input = morsel_rows(ctx, probe, chunk);
            let build = Arc::clone(build);
            let key: &'a [usize] = key;
            let this = ctx.clone();
            Box::new(input.flat_map(move |l| {
                if this.cancel.should_stop() {
                    return Vec::new().into_iter();
                }
                probe_inner(&build.map, &build.flat, key, l).into_iter()
            }))
        }
        Pipeline::LeftJoin {
            probe,
            build,
            key,
            condition,
        } => {
            let input = morsel_rows(ctx, probe, chunk);
            let build = Arc::clone(build);
            let key: &'a [usize] = key;
            let condition: Option<&'a BoundExpr> = *condition;
            let this = ctx.clone();
            Box::new(input.flat_map(move |l| {
                if this.cancel.should_stop() {
                    return Vec::new().into_iter();
                }
                probe_left(&this, &build.map, &build.flat, key, condition, l).into_iter()
            }))
        }
    }
}

/// Evaluates an [`Plan::Exchange`]: fans morsels out to a scoped worker
/// pool and merges in morsel order. Falls back to sequential evaluation
/// whenever parallelism cannot pay off (degree ≤ 1, an uncompilable
/// pipeline shape, or a scan the store cannot partition into ≥ 2
/// chunks).
pub(crate) fn eval_exchange<'a>(
    ctx: EvalContext<'a>,
    degree: usize,
    input: &'a Plan,
) -> RowIter<'a> {
    if degree <= 1 {
        return ctx.eval(input);
    }
    // Check partitionability *before* compiling: compile() materializes
    // every hash-join build side, which the sequential fallback would
    // otherwise rebuild — paying that cost twice.
    let Some(pattern0) = crate::plan::driving_scan(input) else {
        return ctx.eval(input);
    };
    if pattern0.is_unsatisfiable() {
        return Box::new(std::iter::empty());
    }
    let chunks = ctx
        .store
        .scan_chunks(const_pattern(pattern0), degree * MORSELS_PER_WORKER);
    if chunks.len() <= 1 {
        // Unpartitionable (default trait impl) or trivially small:
        // sequential evaluation avoids the thread machinery.
        return ctx.eval(input);
    }
    // Build sides materialize here, once, before any thread spawns.
    let Some(pipe) = compile(&ctx, input) else {
        return ctx.eval(input);
    };

    let workers = degree.min(chunks.len());
    let next = AtomicUsize::new(0);
    let (tx, rx) = sync_channel::<(usize, Vec<Bindings>)>(workers * BATCHES_IN_FLIGHT_PER_WORKER);
    // Per-morsel buffers, concatenated in morsel order after the scope —
    // this is what makes parallel output order equal sequential order.
    let mut merged: Vec<Vec<Bindings>> = vec![Vec::new(); chunks.len()];

    std::thread::scope(|s| {
        for _ in 0..workers {
            let tx = tx.clone();
            let ctx = ctx.clone();
            let next = &next;
            let chunks = &chunks;
            let pipe = &pipe;
            s.spawn(move || {
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= chunks.len() || ctx.cancel.should_stop() {
                        return;
                    }
                    let mut batch: Vec<Bindings> = Vec::new();
                    for row in morsel_rows(&ctx, pipe, chunks[i]) {
                        batch.push(row);
                        if batch.len() >= BATCH_ROWS
                            && tx.send((i, std::mem::take(&mut batch))).is_err()
                        {
                            return; // merger gone — stop producing
                        }
                    }
                    if !batch.is_empty() && tx.send((i, batch)).is_err() {
                        return;
                    }
                }
            });
        }
        drop(tx); // workers hold the only senders: recv ends when they do
        while let Ok((i, batch)) = rx.recv() {
            // On cancellation keep draining (cheaply discarding) so
            // workers blocked on the bounded channel wake up and observe
            // the stop themselves.
            if !ctx.cancel.should_stop() {
                merged[i].extend(batch);
            }
        }
    });

    // Lazy in-order flatten: no second copy of the result rows.
    Box::new(merged.into_iter().flatten())
}
