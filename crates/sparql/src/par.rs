//! Morsel-driven parallel evaluation of [`Plan::Exchange`] with
//! **detached, streaming** worker threads.
//!
//! The driving scan (first pattern of the leftmost BGP under the
//! exchange) is partitioned into disjoint chunks via
//! [`sp2b_store::TripleStore::scan_chunks`] — more chunks than workers,
//! so fast workers keep pulling morsels from a shared atomic counter
//! while slow ones finish (the classic morsel-driven load-balancing of
//! Leis et al.). Each worker runs the *existing* per-morsel iterator
//! pipeline: the remaining BGP patterns as index-nested-loop steps,
//! hash-join probes against build sides materialized **once** and shared
//! read-only via [`Arc`], filters in place.
//!
//! Unlike the original scoped-thread design, workers are **detached**
//! threads holding an owning [`SharedStore`] handle (plus an owned copy
//! of the compiled pipeline), so they can outlive the `eval_exchange`
//! call. Results therefore *stream*: batches flow through a bounded
//! channel (backpressure — workers cannot run unboundedly ahead of the
//! consumer) into [`ExchangeMerge`], a pull-based iterator that reorders
//! batches **by morsel index**, so the output order equals sequential
//! evaluation exactly while memory stays bounded by the channel for
//! balanced morsels. Morsel *skew* is bounded too: batches of a later
//! morsel that arrive while an earlier one is still open are buffered at
//! the merger to preserve order, and to keep that buffer finite workers
//! **pause before processing a morsel more than [`MAX_MERGE_AHEAD`]
//! morsels ahead of the merge front** (the first morsel the merger has
//! not finished). However slow the unluckiest morsel is, the merger
//! never parks more than `MAX_MERGE_AHEAD` morsels' worth of batches.
//!
//! Lifecycle guarantees, enforced by [`ExchangeMerge::shutdown`] (run on
//! exhaustion, on cancellation, and from `Drop`):
//!
//! * cancellation/timeout propagate per row — every worker checks the
//!   shared [`Cancellation`], and a pre-triggered handle yields no rows
//!   and spawns no threads, exactly like the sequential evaluator;
//! * dropping the iterator early (a `LIMIT`-style consumer hanging up)
//!   closes the sink flag and disconnects the channel, which wakes
//!   workers blocked on `send`; the drop then **joins** every worker, so
//!   no detached thread outlives its stream — observable through the
//!   always-on [`diag::live_workers`] gauge.
//!
//! Hash-join build sides large enough to clear their own
//! [`crate::plan::parallel_threshold_with`] threshold (under the same
//! calibrated base the exchange was planned with) are themselves built from
//! `scan_chunks` partitions on a scoped worker pool (the build is a
//! blocking materialization, so scoped threads suffice there), with rows
//! filed in chunk order to preserve bucket ordering.

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;

use sp2b_store::hash::FxHashMap;
use sp2b_store::{Id, Pattern, ScanChunk, SharedStore, TripleStore};

use crate::eval::{
    extend_row, insert_build_row, probe_inner, probe_left, Bindings, Cancellation, EvalContext,
    RowIter,
};
use crate::expr::BoundExpr;
use crate::plan::{const_pattern, parallel_threshold_with, Plan, PlanPattern};

/// Morsels per worker: enough over-partitioning that an unlucky skewed
/// morsel cannot serialize the whole query.
pub const MORSELS_PER_WORKER: usize = 4;

/// Rows per merge-channel message: batches amortize channel overhead
/// while keeping worker-side buffering bounded.
pub const BATCH_ROWS: usize = 4096;

/// In-flight batches per worker the bounded channel admits.
const BATCHES_IN_FLIGHT_PER_WORKER: usize = 2;

/// Skew bound: how many morsels past the merge front (the first morsel
/// the merger has not completed) workers may process. Out-of-order
/// batches parked at the merger therefore never exceed this many
/// morsels' output, no matter how skewed morsel runtimes are — one
/// pathological morsel stalls *claiming*, not memory.
pub const MAX_MERGE_AHEAD: usize = 4;

/// How long a worker naps while the morsel it claimed is still outside
/// the merge-ahead window.
const MERGE_AHEAD_NAP: std::time::Duration = std::time::Duration::from_micros(100);

/// A hash-join build side materialized once and shared read-only by
/// every worker.
struct Build {
    map: FxHashMap<Vec<Id>, Vec<Bindings>>,
    flat: Vec<Bindings>,
}

/// The compiled per-morsel pipeline: an **owned** copy of the exchange
/// input (detached workers cannot borrow the prepared plan) with every
/// build side pre-materialized. Shapes the parallel driver cannot run
/// (union, nested exchange, …) fail compilation and fall back to
/// sequential evaluation — [`Plan::Exchange`] is a performance hint,
/// never a semantic obligation.
enum Pipeline {
    /// The driving BGP: pattern 0 is replaced by the morsel's chunk.
    Driving {
        patterns: Vec<PlanPattern>,
        filters: Vec<(usize, BoundExpr)>,
    },
    Join {
        probe: Box<Pipeline>,
        build: Arc<Build>,
        key: Vec<usize>,
    },
    LeftJoin {
        probe: Box<Pipeline>,
        build: Arc<Build>,
        key: Vec<usize>,
        condition: Option<BoundExpr>,
    },
    Filter(BoundExpr, Box<Pipeline>),
}

fn compile<'a>(
    ctx: &EvalContext<'a>,
    plan: &'a Plan,
    degree: usize,
    base: u64,
) -> Option<Pipeline> {
    match plan {
        Plan::Bgp { patterns, filters } if !patterns.is_empty() => Some(Pipeline::Driving {
            patterns: patterns.clone(),
            filters: filters.clone(),
        }),
        Plan::Join { left, right, key } => {
            let probe = Box::new(compile(ctx, left, degree, base)?);
            Some(Pipeline::Join {
                probe,
                build: Arc::new(build_side(ctx, right, key, degree, base)),
                key: key.clone(),
            })
        }
        Plan::LeftJoin {
            left,
            right,
            key,
            condition,
        } => {
            let probe = Box::new(compile(ctx, left, degree, base)?);
            Some(Pipeline::LeftJoin {
                probe,
                build: Arc::new(build_side(ctx, right, key, degree, base)),
                key: key.clone(),
                condition: condition.clone(),
            })
        }
        Plan::Filter(expr, inner) => Some(Pipeline::Filter(
            expr.clone(),
            Box::new(compile(ctx, inner, degree, base)?),
        )),
        _ => None,
    }
}

/// Materializes a hash-join build side, partitioning the evaluation of a
/// large chunkable BGP across `degree` scoped threads (Q6/Q7-style
/// negation plans carry corpus-sized build sides). Rows are filed in
/// chunk order, so bucket insertion order — and with it probe output
/// order — equals sequential evaluation.
fn build_side<'a>(
    ctx: &EvalContext<'a>,
    plan: &'a Plan,
    key: &[usize],
    degree: usize,
    base: u64,
) -> Build {
    let mut map: FxHashMap<Vec<Id>, Vec<Bindings>> = FxHashMap::default();
    let mut flat: Vec<Bindings> = Vec::new();
    if let Some(rows) = parallel_build_rows(ctx, plan, degree, base) {
        for row in rows {
            insert_build_row(&mut map, &mut flat, key, row);
        }
    } else {
        (map, flat) = ctx.build_side(plan, key);
    }
    Build { map, flat }
}

/// Evaluates a build-side BGP in parallel partitions of its driving scan,
/// returning rows in sequential scan order. `None` when the shape, size
/// or degree does not warrant it — the caller falls back to the
/// sequential build.
fn parallel_build_rows<'a>(
    ctx: &EvalContext<'a>,
    plan: &'a Plan,
    degree: usize,
    base: u64,
) -> Option<Vec<Bindings>> {
    if degree < 2 {
        return None;
    }
    let Plan::Bgp { patterns, filters } = plan else {
        return None;
    };
    let pattern0 = patterns.first()?;
    if pattern0.is_unsatisfiable() {
        return None;
    }
    let scan_pattern = const_pattern(pattern0);
    if ctx.store.estimate(scan_pattern) < parallel_threshold_with(plan, ctx.store, base) {
        return None;
    }
    let chunks = ctx
        .store
        .scan_chunks(scan_pattern, degree * MORSELS_PER_WORKER);
    if chunks.len() < 2 {
        return None;
    }
    let workers = degree.min(chunks.len());
    let next = AtomicUsize::new(0);
    let (tx, rx) = std::sync::mpsc::channel::<(usize, Vec<Bindings>)>();
    std::thread::scope(|s| {
        for _ in 0..workers {
            let tx = tx.clone();
            let ctx = ctx.clone();
            let next = &next;
            let chunks = &chunks;
            s.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= chunks.len() || ctx.cancel.should_stop() {
                    return;
                }
                let rows: Vec<Bindings> =
                    bgp_chunk_rows(&ctx, patterns, filters, chunks[i]).collect();
                if tx.send((i, rows)).is_err() {
                    return;
                }
            });
        }
    });
    drop(tx);
    // The build materializes by nature, so collecting per-chunk results
    // and concatenating in chunk order costs no extra copy of the rows.
    let mut per_chunk: Vec<Vec<Bindings>> = (0..chunks.len()).map(|_| Vec::new()).collect();
    while let Ok((i, rows)) = rx.try_recv() {
        per_chunk[i] = rows;
    }
    Some(per_chunk.into_iter().flatten().collect())
}

/// The driving-BGP rows of one chunk: the chunk's triples feed pattern 0,
/// the rest of the pipeline is identical to sequential evaluation (same
/// operators, same per-row order), so concatenating chunk outputs in
/// chunk order reproduces the sequential row order. Shared between the
/// morsel driver and the parallel build.
fn bgp_chunk_rows<'a>(
    ctx: &EvalContext<'a>,
    patterns: &'a [PlanPattern],
    filters: &'a [(usize, BoundExpr)],
    chunk: ScanChunk<'a>,
) -> RowIter<'a> {
    let pattern0: &'a PlanPattern = &patterns[0];
    if pattern0.is_unsatisfiable() {
        return Box::new(std::iter::empty());
    }
    let width = ctx.width;
    let cancel = ctx.cancel.clone();
    let mut scan = chunk.iter(const_pattern(pattern0));
    let empty = Bindings::empty(width);
    let seed: RowIter<'a> = Box::new(std::iter::from_fn(move || loop {
        if cancel.should_stop() {
            return None;
        }
        let triple = scan.next()?;
        if let Some(row) = extend_row(&empty, pattern0, &triple) {
            return Some(row);
        }
    }));
    ctx.clone().eval_bgp_from(seed, patterns, filters, 1)
}

/// The rows one morsel produces (see [`bgp_chunk_rows`] for the ordering
/// argument).
fn morsel_rows<'a>(ctx: &EvalContext<'a>, pipe: &'a Pipeline, chunk: ScanChunk<'a>) -> RowIter<'a> {
    match pipe {
        Pipeline::Driving { patterns, filters } => bgp_chunk_rows(ctx, patterns, filters, chunk),
        Pipeline::Filter(expr, inner) => {
            let expr: &'a BoundExpr = expr;
            let store = ctx.store;
            let input = morsel_rows(ctx, inner, chunk);
            Box::new(input.filter(move |row| expr.evaluate(row, store) == Ok(true)))
        }
        // Both join arms delegate the per-row probe to the helpers shared
        // with the sequential evaluator, so join semantics (residual
        // merge check, OPTIONAL condition, unmatched-left preservation)
        // live in exactly one place: crate::eval.
        Pipeline::Join { probe, build, key } => {
            let input = morsel_rows(ctx, probe, chunk);
            let build = Arc::clone(build);
            let key: &'a [usize] = key;
            let this = ctx.clone();
            Box::new(input.flat_map(move |l| {
                if this.cancel.should_stop() {
                    return Vec::new().into_iter();
                }
                probe_inner(&build.map, &build.flat, key, l).into_iter()
            }))
        }
        Pipeline::LeftJoin {
            probe,
            build,
            key,
            condition,
        } => {
            let input = morsel_rows(ctx, probe, chunk);
            let build = Arc::clone(build);
            let key: &'a [usize] = key;
            let condition: Option<&'a BoundExpr> = condition.as_ref();
            let this = ctx.clone();
            Box::new(input.flat_map(move |l| {
                if this.cancel.should_stop() {
                    return Vec::new().into_iter();
                }
                probe_left(&this, &build.map, &build.flat, key, condition, l).into_iter()
            }))
        }
    }
}

/// Evaluates an [`Plan::Exchange`]: fans morsels out to detached worker
/// threads and streams the merge in morsel order. Falls back to
/// sequential evaluation whenever parallelism cannot pay off (degree ≤ 1,
/// no owning store handle in the context, an uncompilable pipeline shape,
/// or a scan the store cannot partition into ≥ 2 chunks).
pub(crate) fn eval_exchange<'a>(
    ctx: EvalContext<'a>,
    degree: usize,
    base: u64,
    input: &'a Plan,
) -> RowIter<'a> {
    if degree <= 1 {
        return ctx.eval(input);
    }
    // Detached workers need to *own* the store; a borrow-only context
    // evaluates sequentially instead.
    let Some(store) = ctx.shared.clone() else {
        return ctx.eval(input);
    };
    // Check partitionability *before* compiling: compile() materializes
    // every hash-join build side, which the sequential fallback would
    // otherwise rebuild — paying that cost twice.
    let Some(pattern0) = crate::plan::driving_scan(input) else {
        return ctx.eval(input);
    };
    if pattern0.is_unsatisfiable() {
        return Box::new(std::iter::empty());
    }
    let scan_pattern = const_pattern(pattern0);
    let chunk_target = degree * MORSELS_PER_WORKER;
    let n_morsels = ctx.store.scan_chunks(scan_pattern, chunk_target).len();
    if n_morsels <= 1 {
        // Unpartitionable (default trait impl) or trivially small:
        // sequential evaluation avoids the thread machinery.
        return ctx.eval(input);
    }
    // Build sides materialize here, once, before any thread spawns —
    // themselves partition-parallel when large (see build_side).
    let Some(pipe) = compile(&ctx, input, degree, base) else {
        return ctx.eval(input);
    };
    if ctx.cancel.should_stop() {
        // Pre-triggered (or triggered during the build): yield nothing
        // and spawn nothing, like the sequential evaluator.
        return Box::new(std::iter::empty());
    }

    let pipe = Arc::new(pipe);
    let workers = degree.min(n_morsels);
    let capacity = workers * BATCHES_IN_FLIGHT_PER_WORKER;
    diag::note_capacity(capacity);
    let (tx, rx) = sync_channel::<Msg>(capacity);
    let sink_open = Arc::new(AtomicBool::new(true));
    let next = Arc::new(AtomicUsize::new(0));
    let merge_front = Arc::new(AtomicUsize::new(0));
    let mut handles = Vec::with_capacity(workers);
    for _ in 0..workers {
        diag::LIVE_WORKERS.fetch_add(1, Ordering::Relaxed);
        let worker = Worker {
            store: store.clone(),
            pipe: Arc::clone(&pipe),
            cancel: ctx.cancel.clone(),
            sink_open: Arc::clone(&sink_open),
            next: Arc::clone(&next),
            merge_front: Arc::clone(&merge_front),
            tx: tx.clone(),
            scan_pattern,
            chunk_target,
            n_morsels,
            width: ctx.width,
            counters: ctx.counters.clone(),
        };
        handles.push(
            std::thread::Builder::new()
                .name("sp2b-exchange".into())
                .spawn(move || worker.run())
                .expect("spawn exchange worker"),
        );
    }
    drop(tx); // workers hold the only senders: recv ends when they do

    Box::new(ExchangeMerge {
        rx: Some(rx),
        handles,
        sink_open,
        cancel: ctx.cancel.clone(),
        pending: BTreeMap::new(),
        next_morsel: 0,
        merge_front,
        n_morsels,
        current: Vec::new().into_iter(),
    })
}

/// One merge-channel message: a batch of rows from one morsel. `last`
/// marks the morsel complete — every claimed morsel sends exactly one
/// final message (possibly with an empty batch), which is what lets the
/// merger advance past it.
struct Msg {
    morsel: usize,
    rows: Vec<Bindings>,
    last: bool,
}

/// A detached exchange worker: owns its store handle and pipeline copy,
/// re-derives the (deterministic) chunk list, and claims morsel indices
/// from the shared counter until they run out or the query stops.
struct Worker {
    store: SharedStore,
    pipe: Arc<Pipeline>,
    cancel: Cancellation,
    sink_open: Arc<AtomicBool>,
    next: Arc<AtomicUsize>,
    /// The merger's progress: the first morsel index it has not finished.
    /// Workers pause before processing a morsel ≥ `front + MAX_MERGE_AHEAD`
    /// (the skew bound on parked batches).
    merge_front: Arc<AtomicUsize>,
    tx: SyncSender<Msg>,
    scan_pattern: Pattern,
    chunk_target: usize,
    n_morsels: usize,
    width: usize,
    counters: Option<Arc<crate::eval::ScanCounters>>,
}

impl Worker {
    fn run(self) {
        let _live = diag::WorkerGuard;
        let store: &dyn TripleStore = &*self.store;
        let ctx = EvalContext {
            store,
            // Morsel pipelines never contain a nested exchange (compile
            // rejects them), so workers need no owning handle of their
            // own.
            shared: None,
            cancel: self.cancel.clone(),
            width: self.width,
            counters: self.counters.clone(),
        };
        let chunks = store.scan_chunks(self.scan_pattern, self.chunk_target);
        debug_assert_eq!(
            chunks.len(),
            self.n_morsels,
            "scan_chunks must be deterministic (see TripleStore::scan_chunks)"
        );
        if chunks.len() != self.n_morsels {
            return; // a nondeterministic store must not corrupt the merge
        }
        loop {
            if self.stopped() {
                return;
            }
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            if i >= chunks.len() {
                return;
            }
            // Skew bound: claimed, but outside the merge-ahead window —
            // nap until the merger catches up (or the query stops). The
            // morsel at the front is always inside the window, so the
            // merger keeps making progress and every waiter wakes.
            while i >= self.merge_front.load(Ordering::Acquire) + MAX_MERGE_AHEAD {
                if self.stopped() {
                    return;
                }
                std::thread::sleep(MERGE_AHEAD_NAP);
            }
            #[cfg(debug_assertions)]
            diag::stall_if_configured(i);
            let mut batch: Vec<Bindings> = Vec::new();
            for row in morsel_rows(&ctx, &self.pipe, chunks[i]) {
                if self.stopped() {
                    // No completion marker: the merger learns of the
                    // abort from the channel disconnecting once every
                    // worker has exited.
                    return;
                }
                batch.push(row);
                if batch.len() >= BATCH_ROWS
                    && !self.send(Msg {
                        morsel: i,
                        rows: std::mem::take(&mut batch),
                        last: false,
                    })
                {
                    return; // merger hung up — stop producing
                }
            }
            if !self.send(Msg {
                morsel: i,
                rows: batch,
                last: true,
            }) {
                return;
            }
        }
    }

    /// True when the query was cancelled (timeout/explicit) or the
    /// consumer dropped the stream.
    fn stopped(&self) -> bool {
        !self.sink_open.load(Ordering::Relaxed) || self.cancel.should_stop()
    }

    /// Sends one message, blocking on channel backpressure; `false` when
    /// the merger is gone.
    fn send(&self, msg: Msg) -> bool {
        match self.tx.send(msg) {
            Ok(()) => {
                diag::note_send();
                true
            }
            Err(_) => false,
        }
    }
}

/// Buffered batches of one morsel at the merger.
#[derive(Default)]
struct MorselBuf {
    batches: VecDeque<Vec<Bindings>>,
    done: bool,
}

/// The streaming, order-restoring merge: pulls batches off the bounded
/// channel on demand and yields morsels strictly in index order. Batches
/// of later morsels that arrive while an earlier morsel is still open
/// are parked in `pending` (the price of deterministic order under
/// skew). Exhaustion, cancellation and early drop all funnel into
/// [`ExchangeMerge::shutdown`], which wakes and joins every worker.
struct ExchangeMerge {
    rx: Option<Receiver<Msg>>,
    handles: Vec<JoinHandle<()>>,
    sink_open: Arc<AtomicBool>,
    cancel: Cancellation,
    pending: BTreeMap<usize, MorselBuf>,
    next_morsel: usize,
    /// Mirror of `next_morsel` the workers read to honour the skew bound
    /// ([`MAX_MERGE_AHEAD`]).
    merge_front: Arc<AtomicUsize>,
    n_morsels: usize,
    current: std::vec::IntoIter<Bindings>,
}

impl ExchangeMerge {
    /// Stops the exchange: closes the sink flag, disconnects the channel
    /// (waking workers blocked on `send`) and joins every worker thread.
    /// Idempotent; runs on stream exhaustion, cancellation, and drop.
    fn shutdown(&mut self) {
        self.sink_open.store(false, Ordering::Relaxed);
        self.rx = None;
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Iterator for ExchangeMerge {
    type Item = Bindings;

    fn next(&mut self) -> Option<Bindings> {
        loop {
            if let Some(row) = self.current.next() {
                return Some(row);
            }
            if self.cancel.should_stop() {
                self.shutdown();
                return None;
            }
            if self.next_morsel >= self.n_morsels {
                self.shutdown();
                return None;
            }
            if let Some(buf) = self.pending.get_mut(&self.next_morsel) {
                if let Some(batch) = buf.batches.pop_front() {
                    self.current = batch.into_iter();
                    continue;
                }
                if buf.done {
                    self.pending.remove(&self.next_morsel);
                    self.next_morsel += 1;
                    // Publish progress: waiting workers may now process
                    // one morsel further ahead.
                    self.merge_front.store(self.next_morsel, Ordering::Release);
                    continue;
                }
            }
            let Some(rx) = &self.rx else {
                // Workers exited without completing the expected morsel
                // (cancellation or a worker-side stop): end the stream.
                self.shutdown();
                return None;
            };
            match rx.recv() {
                Ok(msg) => {
                    diag::note_recv();
                    let buf = self.pending.entry(msg.morsel).or_default();
                    if !msg.rows.is_empty() {
                        buf.batches.push_back(msg.rows);
                    }
                    buf.done |= msg.last;
                    // Gauge the skew buffer: batches parked for morsels
                    // *beyond* the one currently being merged.
                    diag::note_parked(
                        self.pending
                            .iter()
                            .filter(|(&m, _)| m > self.next_morsel)
                            .map(|(_, b)| b.batches.len())
                            .sum(),
                    );
                }
                // All senders gone. On normal completion every completion
                // marker was queued before the disconnect, so the loop
                // keeps draining `pending`; after an abort the next pass
                // ends the stream above.
                Err(_) => self.rx = None,
            }
        }
    }
}

impl Drop for ExchangeMerge {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Exchange observability: always-on relaxed-atomic gauges — the
/// live-worker gauge behind the no-thread-leak test, the in-flight and
/// parked batch high-water marks behind the flat-memory tests — plus
/// debug-only fault injection for the skew regression test. The gauges
/// cost one relaxed atomic op per event on paths that already cross a
/// channel, so they stay on in release builds and feed the process
/// metrics registry (see [`diag::register_metrics`]).
pub mod diag {
    use std::sync::atomic::{AtomicI64, AtomicUsize, Ordering};

    pub(super) static LIVE_WORKERS: AtomicUsize = AtomicUsize::new(0);
    static IN_FLIGHT: AtomicI64 = AtomicI64::new(0);
    static PEAK_IN_FLIGHT: AtomicI64 = AtomicI64::new(0);
    static BOUND: AtomicI64 = AtomicI64::new(0);
    static PEAK_PARKED: AtomicUsize = AtomicUsize::new(0);
    #[cfg(debug_assertions)]
    static STALL_MORSEL: AtomicUsize = AtomicUsize::new(usize::MAX);
    #[cfg(debug_assertions)]
    static STALL_MILLIS: AtomicUsize = AtomicUsize::new(0);

    /// Decrements the live-worker gauge when a worker exits, however it
    /// exits.
    pub(super) struct WorkerGuard;

    impl Drop for WorkerGuard {
        fn drop(&mut self) {
            LIVE_WORKERS.fetch_sub(1, Ordering::Relaxed);
        }
    }

    /// Number of exchange workers currently alive (spawned, not yet
    /// joined). Zero once every solution stream has been dropped —
    /// [`super::ExchangeMerge`] joins its workers on drop (the join is
    /// the happens-before edge that makes the relaxed load exact).
    pub fn live_workers() -> usize {
        LIVE_WORKERS.load(Ordering::Relaxed)
    }

    /// Merge batches currently in flight (sent, not yet received).
    pub fn in_flight_batches() -> i64 {
        IN_FLIGHT.load(Ordering::Relaxed)
    }

    /// Clears the channel counters. Call before the query under test;
    /// meaningless while exchanges run concurrently.
    pub fn reset_channel_stats() {
        IN_FLIGHT.store(0, Ordering::Relaxed);
        PEAK_IN_FLIGHT.store(0, Ordering::Relaxed);
        BOUND.store(0, Ordering::Relaxed);
        PEAK_PARKED.store(0, Ordering::Relaxed);
    }

    /// High-water mark of out-of-order batches parked at the merger since
    /// the last reset. The skew bound guarantees this stays within
    /// [`super::MAX_MERGE_AHEAD`] morsels' worth of batches.
    pub fn peak_parked_batches() -> usize {
        PEAK_PARKED.load(Ordering::Relaxed)
    }

    /// Fault injection for the skew regression test: workers sleep
    /// `millis` before processing morsel `morsel`. Pass
    /// `(usize::MAX, 0)` to clear. Debug builds only; serialize tests
    /// that use it.
    #[cfg(debug_assertions)]
    pub fn stall_morsel(morsel: usize, millis: u64) {
        STALL_MILLIS.store(millis as usize, Ordering::SeqCst);
        STALL_MORSEL.store(morsel, Ordering::SeqCst);
    }

    #[cfg(debug_assertions)]
    pub(super) fn stall_if_configured(morsel: usize) {
        if STALL_MORSEL.load(Ordering::SeqCst) == morsel {
            let ms = STALL_MILLIS.load(Ordering::SeqCst) as u64;
            if ms > 0 {
                std::thread::sleep(std::time::Duration::from_millis(ms));
            }
        }
    }

    pub(super) fn note_parked(parked: usize) {
        PEAK_PARKED.fetch_max(parked, Ordering::Relaxed);
    }

    /// `(peak, bound)` — the high-water mark of in-flight merge batches
    /// since the last reset, and the limit it must never exceed: the
    /// bounded channel's capacity plus the one batch the merger holds
    /// between receiving and accounting.
    pub fn channel_stats() -> (i64, i64) {
        (
            PEAK_IN_FLIGHT.load(Ordering::Relaxed),
            BOUND.load(Ordering::Relaxed),
        )
    }

    pub(super) fn note_capacity(capacity: usize) {
        BOUND.fetch_max(capacity as i64 + 1, Ordering::Relaxed);
    }

    pub(super) fn note_send() {
        let now = IN_FLIGHT.fetch_add(1, Ordering::Relaxed) + 1;
        PEAK_IN_FLIGHT.fetch_max(now, Ordering::Relaxed);
    }

    pub(super) fn note_recv() {
        IN_FLIGHT.fetch_sub(1, Ordering::Relaxed);
    }

    /// Registers the exchange gauges with the process metrics registry
    /// (idempotent; the server calls this on spawn).
    pub fn register_metrics() {
        let reg = sp2b_obs::global();
        reg.gauge_fn(
            "sp2b_exchange_live_workers",
            "Exchange worker threads currently alive (spawned, not yet joined)",
            || live_workers() as i64,
        );
        reg.gauge_fn(
            "sp2b_exchange_in_flight_batches",
            "Merge batches sent to the exchange channel but not yet received",
            in_flight_batches,
        );
        reg.gauge_fn(
            "sp2b_exchange_peak_in_flight_batches",
            "High-water mark of in-flight merge batches since the last reset",
            || channel_stats().0,
        );
        reg.gauge_fn(
            "sp2b_exchange_peak_parked_batches",
            "High-water mark of out-of-order batches parked at the merger",
            || peak_parked_batches() as i64,
        );
    }
}
