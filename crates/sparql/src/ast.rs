//! Abstract syntax of the SPARQL subset the benchmark exercises.
//!
//! Covered: `SELECT` (with `DISTINCT`) and `ASK` forms, basic graph
//! patterns, `OPTIONAL`, `UNION`, `FILTER` (comparisons, logical
//! connectives, `!`, `bound`), and the solution modifiers `ORDER BY`
//! (ASC/DESC), `LIMIT`, `OFFSET` — i.e. Table II's full operator and
//! modifier inventory. Property paths, aggregation, nesting and named
//! graphs are outside SPARQL 1.0's benchmark scope (Section V: "SPARQL
//! does (currently) not support aggregation, nesting, or recursion").

use std::fmt;

use sp2b_rdf::Term;

/// A query variable name (without the `?`/`$` sigil).
pub type VarName = String;

/// Subject/predicate/object slot of a triple pattern.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum TermOrVar {
    /// A constant RDF term.
    Term(Term),
    /// A variable.
    Var(VarName),
}

impl TermOrVar {
    /// The variable name, if this is a variable.
    pub fn as_var(&self) -> Option<&str> {
        match self {
            TermOrVar::Var(v) => Some(v),
            TermOrVar::Term(_) => None,
        }
    }
}

impl fmt::Display for TermOrVar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TermOrVar::Term(t) => t.fmt(f),
            TermOrVar::Var(v) => write!(f, "?{v}"),
        }
    }
}

/// One triple pattern.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TriplePattern {
    /// Subject slot.
    pub subject: TermOrVar,
    /// Predicate slot.
    pub predicate: TermOrVar,
    /// Object slot.
    pub object: TermOrVar,
}

impl TriplePattern {
    /// All variables of the pattern, in (s, p, o) order.
    pub fn variables(&self) -> impl Iterator<Item = &str> {
        [&self.subject, &self.predicate, &self.object]
            .into_iter()
            .filter_map(|t| t.as_var())
    }
}

impl fmt::Display for TriplePattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.subject, self.predicate, self.object)
    }
}

/// Comparison operators of FILTER expressions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`.
    Eq,
    /// `!=`.
    Ne,
    /// `<`.
    Lt,
    /// `<=`.
    Le,
    /// `>`.
    Gt,
    /// `>=`.
    Ge,
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        })
    }
}

/// A FILTER expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expression {
    /// A variable reference.
    Var(VarName),
    /// A constant term (literal, IRI).
    Constant(Term),
    /// `bound(?v)`.
    Bound(VarName),
    /// Logical negation (`!e`).
    Not(Box<Expression>),
    /// `a && b`.
    And(Box<Expression>, Box<Expression>),
    /// `a || b`.
    Or(Box<Expression>, Box<Expression>),
    /// `a <op> b`.
    Compare(CmpOp, Box<Expression>, Box<Expression>),
}

impl Expression {
    /// Collects every variable mentioned, in first-occurrence order.
    pub fn variables(&self) -> Vec<&str> {
        fn walk<'a>(e: &'a Expression, out: &mut Vec<&'a str>) {
            match e {
                Expression::Var(v) | Expression::Bound(v) => {
                    if !out.contains(&v.as_str()) {
                        out.push(v);
                    }
                }
                Expression::Constant(_) => {}
                Expression::Not(inner) => walk(inner, out),
                Expression::And(a, b) | Expression::Or(a, b) | Expression::Compare(_, a, b) => {
                    walk(a, out);
                    walk(b, out);
                }
            }
        }
        let mut out = Vec::new();
        walk(self, &mut out);
        out
    }
}

impl fmt::Display for Expression {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expression::Var(v) => write!(f, "?{v}"),
            Expression::Constant(t) => t.fmt(f),
            Expression::Bound(v) => write!(f, "bound(?{v})"),
            Expression::Not(e) => write!(f, "!({e})"),
            Expression::And(a, b) => write!(f, "({a} && {b})"),
            Expression::Or(a, b) => write!(f, "({a} || {b})"),
            Expression::Compare(op, a, b) => write!(f, "({a} {op} {b})"),
        }
    }
}

/// One element of a group graph pattern, in syntactic order.
#[derive(Debug, Clone, PartialEq)]
pub enum GroupElement {
    /// A block of triple patterns.
    Triples(Vec<TriplePattern>),
    /// `OPTIONAL { … }`.
    Optional(GroupPattern),
    /// `{ … } UNION { … } (UNION { … })*`.
    Union(Vec<GroupPattern>),
    /// A nested group `{ … }`.
    Group(GroupPattern),
    /// `FILTER (…)` — scopes over the whole enclosing group.
    Filter(Expression),
}

/// A `{ … }` group.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct GroupPattern {
    /// Elements in syntactic order.
    pub elements: Vec<GroupElement>,
}

/// Query form.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryForm {
    /// `SELECT [DISTINCT] ?v…` — `distinct` plus the projection list.
    Select {
        /// Whether `DISTINCT` was given.
        distinct: bool,
        /// Projected variables, in syntactic order.
        variables: Vec<VarName>,
    },
    /// `ASK`.
    Ask,
}

/// One `ORDER BY` key.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderKey {
    /// The sort expression (the benchmark uses plain variables).
    pub expression: Expression,
    /// True for `DESC(…)`.
    pub descending: bool,
}

/// A `COUNT` aggregate in the projection — the aggregation extension the
/// paper's conclusion anticipates ("SPARQL update and aggregation support
/// are currently discussed as possible extensions"). SPARQL 1.0 itself
/// has no aggregates; the syntax follows what became SPARQL 1.1:
/// `SELECT (COUNT(DISTINCT ?x) AS ?n) … GROUP BY ?g`.
#[derive(Debug, Clone, PartialEq)]
pub struct Aggregate {
    /// Counted variable; `None` for `COUNT(*)`.
    pub target: Option<VarName>,
    /// `COUNT(DISTINCT …)`.
    pub distinct: bool,
    /// The output variable (`AS ?alias`).
    pub alias: VarName,
}

/// A parsed query.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// SELECT or ASK.
    pub form: QueryForm,
    /// `COUNT` aggregates in the projection (aggregation extension).
    pub aggregates: Vec<Aggregate>,
    /// `GROUP BY` variables (aggregation extension).
    pub group_by: Vec<VarName>,
    /// The WHERE clause.
    pub pattern: GroupPattern,
    /// `ORDER BY` keys (possibly empty).
    pub order_by: Vec<OrderKey>,
    /// `LIMIT`, if present.
    pub limit: Option<u64>,
    /// `OFFSET`, if present.
    pub offset: Option<u64>,
}

impl Query {
    /// True if the query uses the aggregation extension.
    pub fn is_aggregate(&self) -> bool {
        !self.aggregates.is_empty()
    }
}

impl Query {
    /// True for `ASK` queries.
    pub fn is_ask(&self) -> bool {
        matches!(self.form, QueryForm::Ask)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pattern_variables() {
        let p = TriplePattern {
            subject: TermOrVar::Var("s".into()),
            predicate: TermOrVar::Term(Term::iri("http://x/p")),
            object: TermOrVar::Var("o".into()),
        };
        let vars: Vec<_> = p.variables().collect();
        assert_eq!(vars, ["s", "o"]);
    }

    #[test]
    fn expression_variables_deduplicate() {
        let e = Expression::And(
            Box::new(Expression::Compare(
                CmpOp::Eq,
                Box::new(Expression::Var("a".into())),
                Box::new(Expression::Var("b".into())),
            )),
            Box::new(Expression::Bound("a".into())),
        );
        assert_eq!(e.variables(), ["a", "b"]);
    }

    #[test]
    fn display_forms() {
        let e = Expression::Not(Box::new(Expression::Bound("x".into())));
        assert_eq!(e.to_string(), "!(bound(?x))");
        let p = TriplePattern {
            subject: TermOrVar::Var("s".into()),
            predicate: TermOrVar::Term(Term::iri("http://x/p")),
            object: TermOrVar::Term(Term::iri("http://x/o")),
        };
        assert_eq!(p.to_string(), "?s <http://x/p> <http://x/o>");
    }
}
