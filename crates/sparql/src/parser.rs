//! Recursive-descent parser for the SPARQL subset.
//!
//! Grammar (SPARQL 1.0, restricted to the benchmark's feature set):
//!
//! ```text
//! Query          := Prologue (SelectQuery | AskQuery)
//! Prologue       := (PREFIX PNAME_NS IRIREF)*
//! SelectQuery    := SELECT DISTINCT? (Var+ | '*') WhereClause Modifiers
//! AskQuery       := ASK WhereClause
//! WhereClause    := WHERE? GroupGraphPattern
//! GroupGraphPattern := '{' TriplesBlock? ((GraphPatternNotTriples | Filter) '.'? TriplesBlock?)* '}'
//! GraphPatternNotTriples := OPTIONAL GroupGraphPattern
//!                         | GroupGraphPattern (UNION GroupGraphPattern)*
//! TriplesBlock   := TriplesSameSubject ('.' TriplesBlock?)?
//! TriplesSameSubject := VarOrTerm PropertyListNotEmpty
//! PropertyListNotEmpty := Verb ObjectList (';' (Verb ObjectList)?)*
//! ObjectList     := VarOrTerm (',' VarOrTerm)*
//! Modifiers      := (ORDER BY OrderKey+)? (LIMIT INT)? (OFFSET INT)?  -- any LIMIT/OFFSET order
//! Expression     := Or; Or := And ('||' And)*; And := Rel ('&&' Rel)*
//! Rel            := Unary (CmpOp Unary)?
//! Unary          := '!' Unary | '(' Expression ')' | BOUND '(' Var ')'
//!                 | Var | Literal | IRIref
//! ```

use std::fmt;

use sp2b_rdf::vocab::{self, rdf, xsd};
use sp2b_rdf::{Iri, Literal, Term};

use crate::ast::*;
use crate::lexer::{tokenize, LexError, Punct, Token};

/// Parse error.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Description of what went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SPARQL parse error: {}", self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            message: e.to_string(),
        }
    }
}

/// `(order keys, limit, offset)` of a solution-modifier clause.
type Modifiers = (Vec<OrderKey>, Option<u64>, Option<u64>);

/// Parses a query string into the AST.
///
/// The benchmark's standard prefixes (`rdf:`, `rdfs:`, `foaf:`, `swrc:`,
/// `dc:`, `dcterms:`, `bench:`, `xsd:`, `person:`) are pre-declared;
/// `PREFIX` clauses in the query extend/override them.
pub fn parse(input: &str) -> Result<Query, ParseError> {
    let tokens = tokenize(input)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        prefixes: default_prefixes(),
    };
    let q = p.query()?;
    if p.pos != p.tokens.len() {
        return Err(p.err("trailing tokens after query"));
    }
    Ok(q)
}

fn default_prefixes() -> Vec<(String, String)> {
    vocab::PREFIXES
        .iter()
        .map(|(p, ns)| ((*p).to_owned(), (*ns).to_owned()))
        .collect()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    prefixes: Vec<(String, String)>,
}

impl Parser {
    fn err(&self, message: impl Into<String>) -> ParseError {
        let near = match self.tokens.get(self.pos) {
            Some(t) => format!(" near token #{} ({t:?})", self.pos),
            None => " at end of input".to_owned(),
        };
        ParseError {
            message: format!("{}{}", message.into(), near),
        }
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat_punct(&mut self, p: Punct) -> bool {
        if self.peek() == Some(&Token::Punct(p)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: Punct) -> Result<(), ParseError> {
        if self.eat_punct(p) {
            Ok(())
        } else {
            Err(self.err(format!("expected {p:?}")))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Some(Token::Keyword(k)) if k == kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(self.err(format!("expected keyword {kw}")))
        }
    }

    fn expand_prefixed(&self, prefix: &str, local: &str) -> Result<String, ParseError> {
        // Later declarations shadow earlier ones.
        self.prefixes
            .iter()
            .rev()
            .find(|(p, _)| p == prefix)
            .map(|(_, ns)| format!("{ns}{local}"))
            .ok_or_else(|| self.err(format!("undeclared prefix '{prefix}:'")))
    }

    // -- query level --------------------------------------------------------

    fn query(&mut self) -> Result<Query, ParseError> {
        self.prologue()?;
        if self.eat_keyword("SELECT") {
            self.select_rest()
        } else if self.eat_keyword("ASK") {
            let pattern = self.where_clause()?;
            Ok(Query {
                form: QueryForm::Ask,
                aggregates: Vec::new(),
                group_by: Vec::new(),
                pattern,
                order_by: Vec::new(),
                limit: None,
                offset: None,
            })
        } else {
            Err(self.err("expected SELECT or ASK"))
        }
    }

    fn prologue(&mut self) -> Result<(), ParseError> {
        while self.eat_keyword("PREFIX") {
            let prefix = match self.bump() {
                Some(Token::PrefixedName(p, local)) if local.is_empty() => p,
                other => return Err(self.err(format!("expected prefix name, got {other:?}"))),
            };
            let ns = match self.bump() {
                Some(Token::IriRef(iri)) => iri,
                other => return Err(self.err(format!("expected IRI, got {other:?}"))),
            };
            self.prefixes.push((prefix, ns));
        }
        Ok(())
    }

    fn select_rest(&mut self) -> Result<Query, ParseError> {
        let distinct = self.eat_keyword("DISTINCT");
        let mut variables = Vec::new();
        let mut aggregates = Vec::new();
        if self.eat_punct(Punct::Star) {
            // `SELECT *`: resolved to all pattern variables at translation.
        } else {
            loop {
                match self.peek() {
                    Some(Token::Var(_)) => {
                        if let Some(Token::Var(v)) = self.bump() {
                            variables.push(v);
                        }
                    }
                    Some(Token::Punct(Punct::LParen)) => {
                        aggregates.push(self.aggregate()?);
                    }
                    _ => break,
                }
            }
            if variables.is_empty() && aggregates.is_empty() {
                return Err(self.err("SELECT needs at least one variable, aggregate or '*'"));
            }
        }
        let pattern = self.where_clause()?;
        let group_by = self.group_by_clause()?;
        let (order_by, limit, offset) = self.modifiers()?;
        if !aggregates.is_empty() {
            // The aggregation extension: plain projected variables must be
            // grouping keys (SPARQL 1.1 projection restriction).
            for v in &variables {
                if !group_by.contains(v) {
                    return Err(self.err(format!(
                        "variable ?{v} is projected next to an aggregate but not in GROUP BY"
                    )));
                }
            }
        } else if !group_by.is_empty() {
            return Err(self.err("GROUP BY without an aggregate in the projection"));
        }
        Ok(Query {
            form: QueryForm::Select {
                distinct,
                variables,
            },
            aggregates,
            group_by,
            pattern,
            order_by,
            limit,
            offset,
        })
    }

    /// `( COUNT ( DISTINCT? ( '*' | Var ) ) AS Var )`.
    fn aggregate(&mut self) -> Result<crate::ast::Aggregate, ParseError> {
        self.expect_punct(Punct::LParen)?;
        self.expect_keyword("COUNT")?;
        self.expect_punct(Punct::LParen)?;
        let distinct = self.eat_keyword("DISTINCT");
        let target = if self.eat_punct(Punct::Star) {
            None
        } else {
            match self.bump() {
                Some(Token::Var(v)) => Some(v),
                other => {
                    return Err(self.err(format!("COUNT expects '*' or a variable, got {other:?}")))
                }
            }
        };
        self.expect_punct(Punct::RParen)?;
        self.expect_keyword("AS")?;
        let alias = match self.bump() {
            Some(Token::Var(v)) => v,
            other => return Err(self.err(format!("AS expects a variable, got {other:?}"))),
        };
        self.expect_punct(Punct::RParen)?;
        Ok(crate::ast::Aggregate {
            target,
            distinct,
            alias,
        })
    }

    /// `GROUP BY ?v+`, if present.
    fn group_by_clause(&mut self) -> Result<Vec<String>, ParseError> {
        // Lookahead: GROUP must be followed by BY (defensive; GROUP is a
        // reserved keyword in this grammar anyway).
        if !matches!(self.peek(), Some(Token::Keyword(k)) if k == "GROUP") {
            return Ok(Vec::new());
        }
        self.pos += 1;
        self.expect_keyword("BY")?;
        let mut vars = Vec::new();
        while let Some(Token::Var(_)) = self.peek() {
            if let Some(Token::Var(v)) = self.bump() {
                vars.push(v);
            }
        }
        if vars.is_empty() {
            return Err(self.err("GROUP BY needs at least one variable"));
        }
        Ok(vars)
    }

    fn where_clause(&mut self) -> Result<GroupPattern, ParseError> {
        let _ = self.eat_keyword("WHERE");
        self.group_graph_pattern()
    }

    fn modifiers(&mut self) -> Result<Modifiers, ParseError> {
        let mut order_by = Vec::new();
        if self.eat_keyword("ORDER") {
            self.expect_keyword("BY")?;
            loop {
                match self.peek() {
                    Some(Token::Var(_)) => {
                        if let Some(Token::Var(v)) = self.bump() {
                            order_by.push(OrderKey {
                                expression: Expression::Var(v),
                                descending: false,
                            });
                        }
                    }
                    Some(Token::Keyword(k)) if k == "ASC" || k == "DESC" => {
                        let descending = k == "DESC";
                        self.pos += 1;
                        self.expect_punct(Punct::LParen)?;
                        let expression = self.expression()?;
                        self.expect_punct(Punct::RParen)?;
                        order_by.push(OrderKey {
                            expression,
                            descending,
                        });
                    }
                    _ => break,
                }
            }
            if order_by.is_empty() {
                return Err(self.err("ORDER BY needs at least one key"));
            }
        }
        let mut limit = None;
        let mut offset = None;
        loop {
            if self.eat_keyword("LIMIT") {
                match self.bump() {
                    Some(Token::Integer(n)) if n >= 0 => limit = Some(n as u64),
                    other => return Err(self.err(format!("expected LIMIT count, got {other:?}"))),
                }
            } else if self.eat_keyword("OFFSET") {
                match self.bump() {
                    Some(Token::Integer(n)) if n >= 0 => offset = Some(n as u64),
                    other => return Err(self.err(format!("expected OFFSET count, got {other:?}"))),
                }
            } else {
                break;
            }
        }
        Ok((order_by, limit, offset))
    }

    // -- graph patterns -----------------------------------------------------

    fn group_graph_pattern(&mut self) -> Result<GroupPattern, ParseError> {
        self.expect_punct(Punct::LBrace)?;
        let mut elements = Vec::new();
        loop {
            match self.peek() {
                Some(Token::Punct(Punct::RBrace)) => {
                    self.pos += 1;
                    return Ok(GroupPattern { elements });
                }
                Some(Token::Keyword(k)) if k == "OPTIONAL" => {
                    self.pos += 1;
                    let inner = self.group_graph_pattern()?;
                    elements.push(GroupElement::Optional(inner));
                    let _ = self.eat_punct(Punct::Dot);
                }
                Some(Token::Keyword(k)) if k == "FILTER" => {
                    self.pos += 1;
                    let expr = self.bracketted_or_builtin()?;
                    elements.push(GroupElement::Filter(expr));
                    let _ = self.eat_punct(Punct::Dot);
                }
                Some(Token::Punct(Punct::LBrace)) => {
                    // Nested group, possibly a UNION chain.
                    let first = self.group_graph_pattern()?;
                    let mut branches = vec![first];
                    while self.eat_keyword("UNION") {
                        branches.push(self.group_graph_pattern()?);
                    }
                    if branches.len() == 1 {
                        elements.push(GroupElement::Group(branches.pop().expect("one branch")));
                    } else {
                        elements.push(GroupElement::Union(branches));
                    }
                    let _ = self.eat_punct(Punct::Dot);
                }
                Some(_) => {
                    let triples = self.triples_block()?;
                    if triples.is_empty() {
                        return Err(self.err("expected graph pattern"));
                    }
                    elements.push(GroupElement::Triples(triples));
                }
                None => return Err(self.err("unterminated group (missing '}')")),
            }
        }
    }

    fn triples_block(&mut self) -> Result<Vec<TriplePattern>, ParseError> {
        let mut patterns = Vec::new();
        loop {
            // Stop at group delimiters / keywords.
            match self.peek() {
                Some(Token::Punct(Punct::RBrace) | Token::Punct(Punct::LBrace)) | None => break,
                Some(Token::Keyword(k)) if k == "OPTIONAL" || k == "FILTER" => break,
                _ => {}
            }
            let subject = self.var_or_term()?;
            self.property_list(&subject, &mut patterns)?;
            if !self.eat_punct(Punct::Dot) {
                break;
            }
        }
        Ok(patterns)
    }

    fn property_list(
        &mut self,
        subject: &TermOrVar,
        out: &mut Vec<TriplePattern>,
    ) -> Result<(), ParseError> {
        loop {
            let predicate = self.verb()?;
            loop {
                let object = self.var_or_term()?;
                out.push(TriplePattern {
                    subject: subject.clone(),
                    predicate: predicate.clone(),
                    object,
                });
                if !self.eat_punct(Punct::Comma) {
                    break;
                }
            }
            if !self.eat_punct(Punct::Semicolon) {
                return Ok(());
            }
            // Allow a dangling ';' before '.'.
            if matches!(
                self.peek(),
                Some(Token::Punct(Punct::Dot) | Token::Punct(Punct::RBrace))
            ) {
                return Ok(());
            }
        }
    }

    fn verb(&mut self) -> Result<TermOrVar, ParseError> {
        if matches!(self.peek(), Some(Token::Keyword(k)) if k == "A") {
            self.pos += 1;
            return Ok(TermOrVar::Term(Term::iri(rdf::TYPE)));
        }
        self.var_or_term()
    }

    fn var_or_term(&mut self) -> Result<TermOrVar, ParseError> {
        match self.bump() {
            Some(Token::Var(v)) => Ok(TermOrVar::Var(v)),
            Some(Token::IriRef(iri)) => Ok(TermOrVar::Term(Term::Iri(Iri::new(iri)))),
            Some(Token::PrefixedName(p, l)) => Ok(TermOrVar::Term(Term::Iri(Iri::new(
                self.expand_prefixed(&p, &l)?,
            )))),
            Some(Token::BlankNode(label)) => Ok(TermOrVar::Term(Term::blank(label))),
            Some(Token::String(s)) => Ok(TermOrVar::Term(self.literal_rest(s)?)),
            Some(Token::Integer(n)) => Ok(TermOrVar::Term(Term::Literal(Literal::integer(n)))),
            other => Err(self.err(format!("expected term or variable, got {other:?}"))),
        }
    }

    /// After a string token: optional `^^dt` or `@lang`.
    fn literal_rest(&mut self, lexical: String) -> Result<Term, ParseError> {
        match self.peek() {
            Some(Token::DatatypeMarker) => {
                self.pos += 1;
                let dt = match self.bump() {
                    Some(Token::IriRef(iri)) => iri,
                    Some(Token::PrefixedName(p, l)) => self.expand_prefixed(&p, &l)?,
                    other => return Err(self.err(format!("expected datatype IRI, got {other:?}"))),
                };
                Ok(Term::Literal(Literal::typed(lexical, Iri::new(dt))))
            }
            Some(Token::LangTag(_)) => {
                if let Some(Token::LangTag(lang)) = self.bump() {
                    let mut lit = Literal::plain(lexical);
                    lit.language = Some(lang);
                    Ok(Term::Literal(lit))
                } else {
                    unreachable!("peeked LangTag")
                }
            }
            _ => Ok(Term::Literal(Literal::plain(lexical))),
        }
    }

    // -- expressions ----------------------------------------------------

    fn bracketted_or_builtin(&mut self) -> Result<Expression, ParseError> {
        match self.peek() {
            Some(Token::Punct(Punct::LParen)) => {
                self.pos += 1;
                let e = self.expression()?;
                self.expect_punct(Punct::RParen)?;
                Ok(e)
            }
            Some(Token::Keyword(k)) if k == "BOUND" => self.unary(),
            Some(Token::Punct(Punct::Bang)) => self.unary(),
            _ => Err(self.err("expected FILTER expression")),
        }
    }

    fn expression(&mut self) -> Result<Expression, ParseError> {
        self.or_expression()
    }

    fn or_expression(&mut self) -> Result<Expression, ParseError> {
        let mut left = self.and_expression()?;
        while self.eat_punct(Punct::OrOr) {
            let right = self.and_expression()?;
            left = Expression::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn and_expression(&mut self) -> Result<Expression, ParseError> {
        let mut left = self.relational()?;
        while self.eat_punct(Punct::AndAnd) {
            let right = self.relational()?;
            left = Expression::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn relational(&mut self) -> Result<Expression, ParseError> {
        let left = self.unary()?;
        let op = match self.peek() {
            Some(Token::Punct(Punct::Eq)) => Some(CmpOp::Eq),
            Some(Token::Punct(Punct::Ne)) => Some(CmpOp::Ne),
            Some(Token::Punct(Punct::Lt)) => Some(CmpOp::Lt),
            Some(Token::Punct(Punct::Le)) => Some(CmpOp::Le),
            Some(Token::Punct(Punct::Gt)) => Some(CmpOp::Gt),
            Some(Token::Punct(Punct::Ge)) => Some(CmpOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let right = self.unary()?;
            Ok(Expression::Compare(op, Box::new(left), Box::new(right)))
        } else {
            Ok(left)
        }
    }

    fn unary(&mut self) -> Result<Expression, ParseError> {
        match self.peek().cloned() {
            Some(Token::Punct(Punct::Bang)) => {
                self.pos += 1;
                Ok(Expression::Not(Box::new(self.unary()?)))
            }
            Some(Token::Punct(Punct::LParen)) => {
                self.pos += 1;
                let e = self.expression()?;
                self.expect_punct(Punct::RParen)?;
                Ok(e)
            }
            Some(Token::Keyword(k)) if k == "BOUND" => {
                self.pos += 1;
                self.expect_punct(Punct::LParen)?;
                let v = match self.bump() {
                    Some(Token::Var(v)) => v,
                    other => {
                        return Err(self.err(format!("bound() needs a variable, got {other:?}")))
                    }
                };
                self.expect_punct(Punct::RParen)?;
                Ok(Expression::Bound(v))
            }
            Some(Token::Keyword(k)) if k == "TRUE" || k == "FALSE" => {
                self.pos += 1;
                Ok(Expression::Constant(Term::Literal(Literal::typed(
                    k.to_lowercase(),
                    Iri::new(format!("{}boolean", xsd::NS)),
                ))))
            }
            Some(Token::Var(v)) => {
                self.pos += 1;
                Ok(Expression::Var(v))
            }
            Some(Token::Integer(n)) => {
                self.pos += 1;
                Ok(Expression::Constant(Term::Literal(Literal::integer(n))))
            }
            Some(Token::String(s)) => {
                self.pos += 1;
                Ok(Expression::Constant(self.literal_rest(s)?))
            }
            Some(Token::IriRef(iri)) => {
                self.pos += 1;
                Ok(Expression::Constant(Term::iri(iri)))
            }
            Some(Token::PrefixedName(p, l)) => {
                self.pos += 1;
                let iri = self.expand_prefixed(&p, &l)?;
                Ok(Expression::Constant(Term::iri(iri)))
            }
            other => Err(self.err(format!("unexpected token in expression: {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_q1_shape() {
        let q = parse(
            r#"SELECT ?yr WHERE {
                ?journal rdf:type bench:Journal .
                ?journal dc:title "Journal 1 (1940)"^^xsd:string .
                ?journal dcterms:issued ?yr
            }"#,
        )
        .unwrap();
        assert!(
            matches!(q.form, QueryForm::Select { distinct: false, ref variables } if variables == &["yr"])
        );
        match &q.pattern.elements[0] {
            GroupElement::Triples(ps) => {
                assert_eq!(ps.len(), 3);
                assert_eq!(ps[0].predicate, TermOrVar::Term(Term::iri(rdf::TYPE)));
            }
            other => panic!("expected triples, got {other:?}"),
        }
    }

    #[test]
    fn parses_optional_with_filter() {
        let q = parse(
            "SELECT ?a WHERE { ?a <http://x/p> ?b OPTIONAL { ?b <http://x/q> ?c FILTER (?c < 5) } FILTER (!bound(?c)) }",
        )
        .unwrap();
        assert_eq!(q.pattern.elements.len(), 3);
        assert!(matches!(q.pattern.elements[1], GroupElement::Optional(_)));
        assert!(matches!(q.pattern.elements[2], GroupElement::Filter(_)));
    }

    #[test]
    fn parses_union() {
        let q =
            parse("SELECT ?x WHERE { { ?x <http://a> ?y } UNION { ?x <http://b> ?y } }").unwrap();
        match &q.pattern.elements[0] {
            GroupElement::Union(branches) => assert_eq!(branches.len(), 2),
            other => panic!("expected union, got {other:?}"),
        }
    }

    #[test]
    fn parses_modifiers() {
        let q = parse("SELECT ?ee WHERE { ?p rdfs:seeAlso ?ee } ORDER BY ?ee LIMIT 10 OFFSET 50")
            .unwrap();
        assert_eq!(q.order_by.len(), 1);
        assert_eq!(q.limit, Some(10));
        assert_eq!(q.offset, Some(50));
    }

    #[test]
    fn parses_desc_order() {
        let q = parse("SELECT ?x WHERE { ?x <http://p> ?y } ORDER BY DESC(?y) ?x").unwrap();
        assert_eq!(q.order_by.len(), 2);
        assert!(q.order_by[0].descending);
        assert!(!q.order_by[1].descending);
    }

    #[test]
    fn parses_ask() {
        let q = parse("ASK { person:John_Q_Public rdf:type foaf:Person }").unwrap();
        assert!(q.is_ask());
    }

    #[test]
    fn parses_prefix_declarations() {
        let q = parse("PREFIX ex: <http://example.org/> SELECT ?x WHERE { ?x ex:p ex:o }").unwrap();
        match &q.pattern.elements[0] {
            GroupElement::Triples(ps) => {
                assert_eq!(
                    ps[0].predicate,
                    TermOrVar::Term(Term::iri("http://example.org/p"))
                );
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn undeclared_prefix_fails() {
        assert!(parse("SELECT ?x WHERE { ?x nope:p ?y }").is_err());
    }

    #[test]
    fn property_list_sugar() {
        let q =
            parse("SELECT ?t WHERE { ?d rdf:type bench:Article ; dc:title ?t , ?t2 . }").unwrap();
        match &q.pattern.elements[0] {
            GroupElement::Triples(ps) => {
                assert_eq!(ps.len(), 3);
                assert!(ps.iter().all(|p| p.subject == TermOrVar::Var("d".into())));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn complex_filter_precedence() {
        let q = parse(
            "SELECT ?a WHERE { ?a <http://p> ?b FILTER (?a != ?b && ?b != <http://x> || bound(?a)) }",
        )
        .unwrap();
        let GroupElement::Filter(e) = &q.pattern.elements[1] else {
            panic!("expected filter");
        };
        // || binds loosest: Or(And(Ne, Ne), Bound).
        assert!(matches!(e, Expression::Or(a, _) if matches!(**a, Expression::And(_, _))));
    }

    #[test]
    fn nested_optionals_parse() {
        // Q7's shape: OPTIONAL containing OPTIONAL containing FILTER.
        let q = parse(
            "SELECT DISTINCT ?t WHERE {
                ?d <http://p> ?t
                OPTIONAL {
                    ?d3 <http://q> ?d
                    OPTIONAL { ?d4 <http://q> ?d3 }
                    FILTER (!bound(?d4))
                }
                FILTER (!bound(?d3))
            }",
        )
        .unwrap();
        let GroupElement::Optional(inner) = &q.pattern.elements[1] else {
            panic!("expected optional");
        };
        assert!(inner
            .elements
            .iter()
            .any(|e| matches!(e, GroupElement::Optional(_))));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("SELECT WHERE {}").is_err());
        assert!(parse("SELECT ?x WHERE { ?x }").is_err());
        assert!(parse("SELECT ?x { ?x <http://p> ?y } extra").is_err());
    }

    #[test]
    fn select_star() {
        let q = parse("SELECT * WHERE { ?x <http://p> ?y }").unwrap();
        assert!(matches!(q.form, QueryForm::Select { ref variables, .. } if variables.is_empty()));
    }
}
