//! # sp2b-sparql — SPARQL query engine substrate
//!
//! A from-scratch SPARQL engine covering the operator inventory of the
//! SP²Bench queries (Table II): `SELECT`/`ASK`, basic graph patterns,
//! `AND` (joins), `OPTIONAL` (left joins with conditions — the
//! closed-world-negation encoding of Q6/Q7), `UNION`, `FILTER`
//! (comparisons, boolean connectives, `bound`), the solution modifiers
//! `DISTINCT`, `ORDER BY`, `LIMIT`, `OFFSET`, and the `GROUP BY`/`COUNT`
//! aggregation extension as a first-class plan operator.
//!
//! Pipeline: [`parser::parse`] → [`algebra::translate_query`] →
//! [`optimizer::optimize`] → [`plan::bind`] → [`eval::EvalContext`].
//!
//! The [`api`] module wraps it into the [`QueryEngine`] facade: prepare a
//! query once, then stream it ([`QueryEngine::solutions`] yields lazy
//! [`Solution`] rows that decode terms on demand), materialize it
//! ([`QueryEngine::execute`]) or count it ([`QueryEngine::count`], which
//! never decodes a term — the result-size-harness path).
//!
//! Execution is morsel-driven parallel by default
//! ([`QueryOptions::parallelism`], default = available cores): large
//! driving scans are split into chunks and fanned out to **detached**
//! worker threads via the [`plan::Plan::Exchange`] operator (see
//! [`par`]), which stream their results through a bounded channel —
//! identical results (and order) to sequential evaluation, flat memory
//! at the merge. The engine *owns* its store
//! (`Arc<dyn TripleStore>`), so engines are cheap to clone and share
//! across client threads — the long-lived-server shape.
//!
//! ```
//! use sp2b_rdf::{Graph, Iri, Subject, Term};
//! use sp2b_store::{MemStore, TripleStore};
//! use sp2b_sparql::QueryEngine;
//!
//! let mut g = Graph::new();
//! g.add(Subject::iri("http://x/s"), Iri::new("http://x/p"), Term::iri("http://x/o"));
//! let store = MemStore::from_graph(&g);
//!
//! let engine = QueryEngine::new(store.into_shared());
//! let prepared = engine.prepare("SELECT ?s WHERE { ?s <http://x/p> ?o }").unwrap();
//!
//! // Counting decodes nothing…
//! assert_eq!(engine.count(&prepared).unwrap(), 1);
//! // …streaming decodes only the columns you read…
//! let first = engine.solutions(&prepared).next().unwrap().unwrap();
//! assert_eq!(first.get(0), Some(Term::iri("http://x/s")));
//! // …and execute materializes everything.
//! assert_eq!(engine.execute(&prepared).unwrap().row_count(), 1);
//! ```

pub mod algebra;
pub mod api;
pub mod ast;
pub mod eval;
pub mod expr;
pub mod lexer;
pub mod optimizer;
pub mod par;
pub mod parser;
pub mod plan;
pub mod results;

pub use api::{
    operator_spans, Error, Prepared, QueryEngine, QueryOptions, QueryResult, Solution, Solutions,
};
pub use ast::Query;
pub use eval::{Bindings, Cancellation, EvalContext, ScanCounters};
pub use optimizer::OptimizerConfig;
pub use parser::{parse, ParseError};
pub use plan::CostWeights;
