//! # sp2b-sparql — SPARQL query engine substrate
//!
//! A from-scratch SPARQL engine covering the operator inventory of the
//! SP²Bench queries (Table II): `SELECT`/`ASK`, basic graph patterns,
//! `AND` (joins), `OPTIONAL` (left joins with conditions — the
//! closed-world-negation encoding of Q6/Q7), `UNION`, `FILTER`
//! (comparisons, boolean connectives, `bound`) and the solution modifiers
//! `DISTINCT`, `ORDER BY`, `LIMIT`, `OFFSET`.
//!
//! Pipeline: [`parser::parse`] → [`algebra::translate`] →
//! [`optimizer::optimize`] → [`plan::bind`] → [`eval::EvalContext::eval`].
//! The [`api`] module wraps it into [`Prepared`] / [`execute_query`].
//!
//! ```
//! use sp2b_rdf::{Graph, Iri, Subject, Term};
//! use sp2b_store::MemStore;
//! use sp2b_sparql::{execute_query, OptimizerConfig};
//!
//! let mut g = Graph::new();
//! g.add(Subject::iri("http://x/s"), Iri::new("http://x/p"), Term::iri("http://x/o"));
//! let store = MemStore::from_graph(&g);
//! let result = execute_query(
//!     &store,
//!     "SELECT ?s WHERE { ?s <http://x/p> ?o }",
//!     &OptimizerConfig::full(),
//!     None,
//! ).unwrap();
//! assert_eq!(result.len(), 1);
//! ```

pub mod algebra;
pub mod api;
pub mod ast;
pub mod eval;
pub mod expr;
pub mod lexer;
pub mod optimizer;
pub mod parser;
pub mod plan;

pub use api::{execute_query, Error, Prepared, QueryResult};
pub use ast::Query;
pub use eval::{Bindings, Cancellation, EvalContext};
pub use optimizer::OptimizerConfig;
pub use parser::{parse, ParseError};
