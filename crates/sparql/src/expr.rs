//! FILTER expression evaluation with SPARQL error semantics.
//!
//! SPARQL expression evaluation is three-valued: an expression yields
//! `true`, `false` or a *type error* (e.g. comparing an unbound variable,
//! or ordering incomparable terms). Errors eliminate solutions at FILTER
//! and LeftJoin-condition boundaries, but `!`, `&&` and `||` propagate
//! them per the spec's partial truth tables — `false && error = false`,
//! `true || error = true`. Getting this right matters for the benchmark's
//! negation queries: `!bound(?v)` must be `true` (not an error) when `?v`
//! is unbound.

use std::cmp::Ordering;

use sp2b_rdf::vocab::xsd;
use sp2b_rdf::{Literal, Term};
use sp2b_store::{Id, TripleStore};

use crate::algebra::Expr;
use crate::ast::CmpOp;
use crate::eval::Bindings;

/// A SPARQL expression type error (its only payload is *that* it errored;
/// the spec does not distinguish error kinds observably).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TypeError;

/// Expression result: `Ok(bool)` or a type error.
pub type ExprResult = Result<bool, TypeError>;

/// A term operand during evaluation: either interned (fast id comparisons
/// possible) or a plan constant that may not occur in the store at all.
#[derive(Debug, Clone, Copy)]
enum Operand<'a> {
    /// Bound variable value: dictionary id + decoded term.
    Interned(Id, &'a Term),
    /// Expression constant (with its dictionary id if the term occurs).
    Constant(Option<Id>, &'a Term),
}

impl<'a> Operand<'a> {
    fn term(&self) -> &'a Term {
        match self {
            Operand::Interned(_, t) | Operand::Constant(_, t) => t,
        }
    }

    fn id(&self) -> Option<Id> {
        match self {
            Operand::Interned(id, _) => Some(*id),
            Operand::Constant(id, _) => *id,
        }
    }
}

/// A compiled expression bound to a store: constants carry their
/// (optional) dictionary ids so equality tests can use id comparison.
#[derive(Debug, Clone)]
pub enum BoundExpr {
    /// Variable by index.
    Var(usize),
    /// Constant with pre-resolved id.
    Const(Option<Id>, Term),
    /// `bound(?v)`.
    Bound(usize),
    /// `!e`.
    Not(Box<BoundExpr>),
    /// `a && b`.
    And(Box<BoundExpr>, Box<BoundExpr>),
    /// `a || b`.
    Or(Box<BoundExpr>, Box<BoundExpr>),
    /// Comparison.
    Compare(CmpOp, Box<BoundExpr>, Box<BoundExpr>),
}

impl BoundExpr {
    /// Resolves constants of `expr` against `store`'s dictionary.
    pub fn bind(expr: &Expr, store: &dyn TripleStore) -> BoundExpr {
        match expr {
            Expr::Var(i) => BoundExpr::Var(*i),
            Expr::Const(t) => BoundExpr::Const(store.resolve(t), t.clone()),
            Expr::Bound(i) => BoundExpr::Bound(*i),
            Expr::Not(a) => BoundExpr::Not(Box::new(Self::bind(a, store))),
            Expr::And(a, b) => BoundExpr::And(
                Box::new(Self::bind(a, store)),
                Box::new(Self::bind(b, store)),
            ),
            Expr::Or(a, b) => BoundExpr::Or(
                Box::new(Self::bind(a, store)),
                Box::new(Self::bind(b, store)),
            ),
            Expr::Compare(op, a, b) => BoundExpr::Compare(
                *op,
                Box::new(Self::bind(a, store)),
                Box::new(Self::bind(b, store)),
            ),
        }
    }

    /// Evaluates to the expression's effective boolean value.
    pub fn evaluate(&self, bindings: &Bindings, store: &dyn TripleStore) -> ExprResult {
        match self {
            BoundExpr::Bound(i) => Ok(bindings.get(*i).is_some()),
            BoundExpr::Not(a) => a.evaluate(bindings, store).map(|b| !b),
            BoundExpr::And(a, b) => {
                // Kleene AND: false dominates errors.
                match (a.evaluate(bindings, store), b.evaluate(bindings, store)) {
                    (Ok(false), _) | (_, Ok(false)) => Ok(false),
                    (Ok(true), Ok(true)) => Ok(true),
                    _ => Err(TypeError),
                }
            }
            BoundExpr::Or(a, b) => {
                // Kleene OR: true dominates errors.
                match (a.evaluate(bindings, store), b.evaluate(bindings, store)) {
                    (Ok(true), _) | (_, Ok(true)) => Ok(true),
                    (Ok(false), Ok(false)) => Ok(false),
                    _ => Err(TypeError),
                }
            }
            BoundExpr::Compare(op, a, b) => {
                let left = a.operand(bindings, store).ok_or(TypeError)?;
                let right = b.operand(bindings, store).ok_or(TypeError)?;
                compare(*op, left, right)
            }
            // A bare variable/constant in boolean position: its EBV.
            BoundExpr::Var(_) | BoundExpr::Const(..) => {
                let v = self.operand(bindings, store).ok_or(TypeError)?;
                effective_boolean_value(v.term())
            }
        }
    }

    /// Resolves this node to a term operand (only Var/Const can).
    fn operand<'a>(
        &'a self,
        bindings: &Bindings,
        store: &'a dyn TripleStore,
    ) -> Option<Operand<'a>> {
        match self {
            BoundExpr::Var(i) => {
                let id = bindings.get(*i)?;
                Some(Operand::Interned(id, store.dictionary().decode(id)))
            }
            BoundExpr::Const(id, t) => Some(Operand::Constant(*id, t)),
            _ => None,
        }
    }

    /// Variable indices referenced by this expression.
    pub fn variables(&self) -> Vec<usize> {
        fn walk(e: &BoundExpr, out: &mut Vec<usize>) {
            match e {
                BoundExpr::Var(i) | BoundExpr::Bound(i) => {
                    if !out.contains(i) {
                        out.push(*i);
                    }
                }
                BoundExpr::Const(..) => {}
                BoundExpr::Not(a) => walk(a, out),
                BoundExpr::And(a, b) | BoundExpr::Or(a, b) | BoundExpr::Compare(_, a, b) => {
                    walk(a, out);
                    walk(b, out);
                }
            }
        }
        let mut out = Vec::new();
        walk(self, &mut out);
        out
    }
}

/// Numeric / string / boolean view of a literal for value comparisons.
#[derive(Debug, Clone, Copy, PartialEq)]
enum LitValue<'a> {
    Int(i64),
    Str(&'a str),
    Bool(bool),
    /// Typed literal we have no value mapping for.
    Opaque(&'a Literal),
}

fn literal_value(l: &Literal) -> LitValue<'_> {
    if let Some(i) = l.as_integer() {
        return LitValue::Int(i);
    }
    if l.is_stringish() {
        return LitValue::Str(&l.lexical);
    }
    if let Some(dt) = &l.datatype {
        if dt.as_str() == format!("{}boolean", xsd::NS) {
            match l.lexical.as_str() {
                "true" | "1" => return LitValue::Bool(true),
                "false" | "0" => return LitValue::Bool(false),
                _ => {}
            }
        }
    }
    LitValue::Opaque(l)
}

/// SPARQL `=` / `!=` / ordering over two operands.
fn compare(op: CmpOp, a: Operand<'_>, b: Operand<'_>) -> ExprResult {
    // Fast path: identical interned ids are RDFterm-equal — sufficient for
    // `=`/`!=` truth, and consistent for orderings (equal terms).
    if let (Some(x), Some(y)) = (a.id(), b.id()) {
        if x == y {
            return Ok(matches!(op, CmpOp::Eq | CmpOp::Le | CmpOp::Ge));
        }
    }
    let (ta, tb) = (a.term(), b.term());
    match op {
        CmpOp::Eq => term_equal(ta, tb),
        CmpOp::Ne => term_equal(ta, tb).map(|b| !b),
        _ => {
            let ord = value_order(ta, tb).ok_or(TypeError)?;
            Ok(match op {
                CmpOp::Lt => ord == Ordering::Less,
                CmpOp::Le => ord != Ordering::Greater,
                CmpOp::Gt => ord == Ordering::Greater,
                CmpOp::Ge => ord != Ordering::Less,
                CmpOp::Eq | CmpOp::Ne => unreachable!("handled above"),
            })
        }
    }
}

/// RDFterm-equal with value semantics for known literal types.
fn term_equal(a: &Term, b: &Term) -> ExprResult {
    match (a, b) {
        (Term::Iri(x), Term::Iri(y)) => Ok(x == y),
        (Term::Blank(x), Term::Blank(y)) => Ok(x == y),
        (Term::Literal(x), Term::Literal(y)) => match (literal_value(x), literal_value(y)) {
            (LitValue::Int(i), LitValue::Int(j)) => Ok(i == j),
            (LitValue::Str(s), LitValue::Str(t)) => Ok(s == t),
            (LitValue::Bool(p), LitValue::Bool(q)) => Ok(p == q),
            (LitValue::Opaque(p), LitValue::Opaque(q)) => {
                if p == q {
                    Ok(true)
                } else if p.datatype == q.datatype {
                    Ok(false)
                } else {
                    // Incomparable typed literals: per spec, an error.
                    Err(TypeError)
                }
            }
            // Mixed value spaces (e.g. int vs string): unequal values.
            _ => Ok(false),
        },
        // Different term kinds are never RDFterm-equal.
        _ => Ok(false),
    }
}

/// Value ordering for `<`-family operators. `None` = incomparable (error).
fn value_order(a: &Term, b: &Term) -> Option<Ordering> {
    match (a, b) {
        (Term::Literal(x), Term::Literal(y)) => match (literal_value(x), literal_value(y)) {
            (LitValue::Int(i), LitValue::Int(j)) => Some(i.cmp(&j)),
            (LitValue::Str(s), LitValue::Str(t)) => Some(s.cmp(t)),
            (LitValue::Bool(p), LitValue::Bool(q)) => Some(p.cmp(&q)),
            _ => None,
        },
        // IRIs and blanks have no `<` ordering in SPARQL 1.0 filters.
        _ => None,
    }
}

/// SPARQL effective boolean value of a term.
fn effective_boolean_value(t: &Term) -> ExprResult {
    match t {
        Term::Literal(l) => match literal_value(l) {
            LitValue::Bool(b) => Ok(b),
            LitValue::Int(i) => Ok(i != 0),
            LitValue::Str(s) => Ok(!s.is_empty()),
            LitValue::Opaque(_) => Err(TypeError),
        },
        _ => Err(TypeError),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sp2b_rdf::Graph;
    use sp2b_store::MemStore;

    fn store_with(terms: &[Term]) -> MemStore {
        // Materialize terms by inserting dummy triples mentioning them.
        let mut g = Graph::new();
        for (i, t) in terms.iter().enumerate() {
            g.add(
                sp2b_rdf::Subject::iri(format!("http://dummy/{i}")),
                sp2b_rdf::Iri::new("http://dummy/p"),
                t.clone(),
            );
        }
        MemStore::from_graph(&g)
    }

    fn bindings_for(store: &MemStore, values: &[Option<&Term>]) -> Bindings {
        Bindings::new(
            values
                .iter()
                .map(|v| v.map(|t| store.resolve(t).expect("term interned")))
                .collect(),
        )
    }

    fn int(i: i64) -> Term {
        Term::Literal(Literal::integer(i))
    }

    fn s(v: &str) -> Term {
        Term::Literal(Literal::string(v))
    }

    #[test]
    fn bound_semantics() {
        let store = store_with(&[int(1)]);
        let b = bindings_for(&store, &[Some(&int(1)), None]);
        let e = BoundExpr::Bound(0);
        assert_eq!(e.evaluate(&b, &store), Ok(true));
        let e = BoundExpr::Bound(1);
        assert_eq!(e.evaluate(&b, &store), Ok(false));
        // !bound(unbound var) is TRUE, not an error — Q6/Q7 depend on it.
        let e = BoundExpr::Not(Box::new(BoundExpr::Bound(1)));
        assert_eq!(e.evaluate(&b, &store), Ok(true));
    }

    #[test]
    fn numeric_comparisons() {
        let store = store_with(&[int(1940), int(1965)]);
        let b = bindings_for(&store, &[Some(&int(1940)), Some(&int(1965))]);
        let lt = BoundExpr::Compare(
            CmpOp::Lt,
            Box::new(BoundExpr::Var(0)),
            Box::new(BoundExpr::Var(1)),
        );
        assert_eq!(lt.evaluate(&b, &store), Ok(true));
        let ge = BoundExpr::Compare(
            CmpOp::Ge,
            Box::new(BoundExpr::Var(0)),
            Box::new(BoundExpr::Var(1)),
        );
        assert_eq!(ge.evaluate(&b, &store), Ok(false));
    }

    #[test]
    fn numeric_compare_is_by_value_not_lexical() {
        let store = store_with(&[int(2), int(10)]);
        let b = bindings_for(&store, &[Some(&int(2)), Some(&int(10))]);
        let lt = BoundExpr::Compare(
            CmpOp::Lt,
            Box::new(BoundExpr::Var(0)),
            Box::new(BoundExpr::Var(1)),
        );
        assert_eq!(lt.evaluate(&b, &store), Ok(true), "2 < 10 numerically");
    }

    #[test]
    fn string_comparisons() {
        let store = store_with(&[s("Anna Alpha"), s("Bert Beta")]);
        let b = bindings_for(&store, &[Some(&s("Anna Alpha")), Some(&s("Bert Beta"))]);
        let lt = BoundExpr::Compare(
            CmpOp::Lt,
            Box::new(BoundExpr::Var(0)),
            Box::new(BoundExpr::Var(1)),
        );
        assert_eq!(lt.evaluate(&b, &store), Ok(true));
    }

    #[test]
    fn equality_between_term_kinds_is_false_not_error() {
        let store = store_with(&[Term::iri("http://x"), s("http://x")]);
        let b = bindings_for(
            &store,
            &[Some(&Term::iri("http://x")), Some(&s("http://x"))],
        );
        let eq = BoundExpr::Compare(
            CmpOp::Eq,
            Box::new(BoundExpr::Var(0)),
            Box::new(BoundExpr::Var(1)),
        );
        assert_eq!(eq.evaluate(&b, &store), Ok(false));
    }

    #[test]
    fn unbound_comparison_is_error_and_kleene_tables() {
        let store = store_with(&[int(1)]);
        let b = bindings_for(&store, &[Some(&int(1)), None]);
        let err = BoundExpr::Compare(
            CmpOp::Eq,
            Box::new(BoundExpr::Var(0)),
            Box::new(BoundExpr::Var(1)),
        );
        assert_eq!(err.evaluate(&b, &store), Err(TypeError));
        // false && error = false.
        let f = BoundExpr::Compare(
            CmpOp::Ne,
            Box::new(BoundExpr::Var(0)),
            Box::new(BoundExpr::Var(0)),
        );
        let and = BoundExpr::And(Box::new(f.clone()), Box::new(err.clone()));
        assert_eq!(and.evaluate(&b, &store), Ok(false));
        // true || error = true.
        let t = BoundExpr::Compare(
            CmpOp::Eq,
            Box::new(BoundExpr::Var(0)),
            Box::new(BoundExpr::Var(0)),
        );
        let or = BoundExpr::Or(Box::new(t.clone()), Box::new(err.clone()));
        assert_eq!(or.evaluate(&b, &store), Ok(true));
        // true && error = error; false || error = error.
        let and = BoundExpr::And(Box::new(t), Box::new(err.clone()));
        assert_eq!(and.evaluate(&b, &store), Err(TypeError));
        let or = BoundExpr::Or(Box::new(f), Box::new(err));
        assert_eq!(or.evaluate(&b, &store), Err(TypeError));
    }

    #[test]
    fn constant_not_in_store_still_compares_by_value() {
        let store = store_with(&[int(1940)]);
        let b = bindings_for(&store, &[Some(&int(1940))]);
        // 2000 does not occur in the data.
        let e = BoundExpr::Compare(
            CmpOp::Lt,
            Box::new(BoundExpr::Var(0)),
            Box::new(BoundExpr::Const(None, int(2000))),
        );
        assert_eq!(e.evaluate(&b, &store), Ok(true));
    }

    #[test]
    fn iri_ordering_is_error() {
        let store = store_with(&[Term::iri("http://a"), Term::iri("http://b")]);
        let b = bindings_for(
            &store,
            &[Some(&Term::iri("http://a")), Some(&Term::iri("http://b"))],
        );
        let lt = BoundExpr::Compare(
            CmpOp::Lt,
            Box::new(BoundExpr::Var(0)),
            Box::new(BoundExpr::Var(1)),
        );
        assert_eq!(lt.evaluate(&b, &store), Err(TypeError));
    }

    #[test]
    fn ebv_of_plain_string() {
        let store = store_with(&[s("x"), s("")]);
        let b = bindings_for(&store, &[Some(&s("x")), Some(&s(""))]);
        assert_eq!(BoundExpr::Var(0).evaluate(&b, &store), Ok(true));
        assert_eq!(BoundExpr::Var(1).evaluate(&b, &store), Ok(false));
    }
}
