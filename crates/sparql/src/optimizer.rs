//! The query optimizer: the three techniques Section V singles out.
//!
//! 1. **Triple-pattern reordering by selectivity estimation** (the paper's
//!    reference 5, akin to relational join reordering): within each BGP, a greedy
//!    ordering picks the cheapest next pattern given the variables bound
//!    so far, using [`sp2b_store::TripleStore::estimate`] — exact counts
//!    on the native store, posting-list heuristics on the memory store.
//!    Disconnected patterns (cartesian products) are heavily penalized.
//! 2. **Filter pushing**: conjuncts of a group filter move into the BGP
//!    and run as soon as their variables are bound, shrinking
//!    intermediate results; filters over a join/left-join distribute into
//!    the branch that certainly binds their variables.
//! 3. **Filter substitution** (constant propagation): an equality conjunct
//!    `?v = <const>` whose variable is otherwise unobserved is folded into
//!    the patterns, turning Q3-style "attribute test" filters into
//!    indexable constants.
//!
//! Every rewrite is result-preserving; the property tests in
//! `tests/optimizer_equivalence.rs` check optimized vs. naive evaluation
//! on randomized data.

use sp2b_rdf::Term;
use sp2b_store::{Id, StoreStats, TripleStore};

use crate::algebra::{Algebra, Expr, ResolvedPattern, Slot};
use crate::ast::CmpOp;

/// Which optimizations to apply. `Default` is all-off (the naive engine
/// configurations); [`OptimizerConfig::full`] enables everything.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OptimizerConfig {
    /// Greedy selectivity-based reordering of BGP patterns.
    pub reorder_patterns: bool,
    /// Push filter conjuncts down to their earliest application point.
    pub push_filters: bool,
    /// Fold `?v = const` equalities into pattern constants.
    pub substitute_filters: bool,
}

impl OptimizerConfig {
    /// Everything on (the `native-opt` engine configuration).
    pub fn full() -> Self {
        OptimizerConfig {
            reorder_patterns: true,
            push_filters: true,
            substitute_filters: true,
        }
    }

    /// Reordering and pushing, no substitution (the `mem-opt`
    /// configuration: heuristic engines reorder but do not rewrite).
    pub fn heuristic() -> Self {
        OptimizerConfig {
            reorder_patterns: true,
            push_filters: true,
            substitute_filters: false,
        }
    }
}

/// Optimizes an algebra tree for a store. `needed` carries the variables
/// observable above the root (projection + order keys).
pub fn optimize(
    algebra: Algebra,
    store: &dyn TripleStore,
    cfg: &OptimizerConfig,
    needed: &[usize],
) -> Algebra {
    let mut needed: Vec<usize> = needed.to_vec();
    rewrite(algebra, store, cfg, &mut needed)
}

fn rewrite(
    algebra: Algebra,
    store: &dyn TripleStore,
    cfg: &OptimizerConfig,
    needed: &mut Vec<usize>,
) -> Algebra {
    match algebra {
        Algebra::Filter(expr, inner) => rewrite_filter(expr, *inner, store, cfg, needed),
        Algebra::Bgp {
            patterns,
            inline_filters,
        } => finish_bgp(
            patterns,
            inline_filters.into_iter().map(|(_, e)| e).collect(),
            store,
            cfg,
            needed,
        ),
        Algebra::Join(a, b) => {
            let a = rewrite(*a, store, cfg, needed);
            let b = rewrite(*b, store, cfg, needed);
            Algebra::Join(Box::new(a), Box::new(b))
        }
        Algebra::LeftJoin(a, b, cond) => {
            // The condition's variables must stay observable in both sides.
            if let Some(c) = &cond {
                extend(needed, c.variables());
            }
            let a = rewrite(*a, store, cfg, needed);
            let b = rewrite(*b, store, cfg, needed);
            Algebra::LeftJoin(Box::new(a), Box::new(b), cond)
        }
        Algebra::Union(a, b) => {
            let a = rewrite(*a, store, cfg, needed);
            let b = rewrite(*b, store, cfg, needed);
            Algebra::Union(Box::new(a), Box::new(b))
        }
        Algebra::Distinct(inner) => {
            Algebra::Distinct(Box::new(rewrite(*inner, store, cfg, needed)))
        }
        Algebra::Project(vars, inner) => {
            extend(needed, vars.iter().copied());
            Algebra::Project(vars, Box::new(rewrite(*inner, store, cfg, needed)))
        }
        Algebra::OrderBy(keys, inner) => {
            for k in &keys {
                extend(needed, k.expr.variables());
            }
            Algebra::OrderBy(keys, Box::new(rewrite(*inner, store, cfg, needed)))
        }
        Algebra::Slice {
            offset,
            limit,
            input,
        } => Algebra::Slice {
            offset,
            limit,
            input: Box::new(rewrite(*input, store, cfg, needed)),
        },
        Algebra::Group(spec, input) => {
            // The group keys and count targets are the only variables
            // observable above the aggregation.
            extend(needed, spec.group_vars.iter().copied());
            extend(needed, spec.counts.iter().filter_map(|c| c.target));
            let input = rewrite(*input, store, cfg, needed);
            Algebra::Group(spec, Box::new(input))
        }
    }
}

fn extend(needed: &mut Vec<usize>, vars: impl IntoIterator<Item = usize>) {
    for v in vars {
        if !needed.contains(&v) {
            needed.push(v);
        }
    }
}

/// Handles `Filter(e, inner)`: distributes/pushes conjuncts where the
/// configuration allows, recursing into `inner`.
fn rewrite_filter(
    expr: Expr,
    inner: Algebra,
    store: &dyn TripleStore,
    cfg: &OptimizerConfig,
    needed: &mut Vec<usize>,
) -> Algebra {
    if !cfg.push_filters {
        // Still recurse below the filter.
        for v in expr.variables() {
            extend(needed, [v]);
        }
        let inner = rewrite(inner, store, cfg, needed);
        return Algebra::Filter(expr, Box::new(inner));
    }

    match inner {
        Algebra::Bgp {
            patterns,
            inline_filters,
        } => {
            let mut filters: Vec<Expr> = inline_filters.into_iter().map(|(_, e)| e).collect();
            filters.extend(expr.conjuncts());
            finish_bgp(patterns, filters, store, cfg, needed)
        }
        Algebra::Join(a, b) => {
            let (into_a, into_b, stay) = distribute(expr, &a, &b, /*left_only=*/ false);
            let mut left = *a;
            let mut right = *b;
            if let Some(e) = into_a {
                left = Algebra::Filter(e, Box::new(left));
            }
            if let Some(e) = into_b {
                right = Algebra::Filter(e, Box::new(right));
            }
            let joined = Algebra::Join(
                Box::new(rewrite(left, store, cfg, needed)),
                Box::new(rewrite(right, store, cfg, needed)),
            );
            match stay {
                Some(e) => Algebra::Filter(e, Box::new(joined)),
                None => joined,
            }
        }
        Algebra::LeftJoin(a, b, cond) => {
            // Only the preserved side may absorb filters.
            let (into_a, _, stay) = distribute(expr, &a, &b, /*left_only=*/ true);
            let mut left = *a;
            if let Some(e) = into_a {
                left = Algebra::Filter(e, Box::new(left));
            }
            if let Some(c) = &cond {
                extend(needed, c.variables());
            }
            let lj = Algebra::LeftJoin(
                Box::new(rewrite(left, store, cfg, needed)),
                Box::new(rewrite(*b, store, cfg, needed)),
                cond,
            );
            match stay {
                Some(e) => Algebra::Filter(e, Box::new(lj)),
                None => lj,
            }
        }
        other => {
            for v in expr.variables() {
                extend(needed, [v]);
            }
            Algebra::Filter(expr, Box::new(rewrite(other, store, cfg, needed)))
        }
    }
}

/// Splits `expr`'s conjuncts into (into-left, into-right, stay) by
/// certain-variable coverage. With `left_only`, the right side never
/// absorbs (LeftJoin safety).
fn distribute(
    expr: Expr,
    a: &Algebra,
    b: &Algebra,
    left_only: bool,
) -> (Option<Expr>, Option<Expr>, Option<Expr>) {
    let ca = a.certain_vars();
    let cb = b.certain_vars();
    let mut into_a = Vec::new();
    let mut into_b = Vec::new();
    let mut stay = Vec::new();
    for c in expr.conjuncts() {
        let vars = c.variables();
        if vars.iter().all(|v| ca.contains(v)) {
            into_a.push(c);
        } else if !left_only && vars.iter().all(|v| cb.contains(v)) {
            into_b.push(c);
        } else {
            stay.push(c);
        }
    }
    (
        Expr::fold_and(into_a),
        Expr::fold_and(into_b),
        Expr::fold_and(stay),
    )
}

/// Applies substitution, reordering and inline-filter placement to a BGP
/// whose candidate filters are `filters` (conjuncts that may or may not
/// reference only BGP variables).
fn finish_bgp(
    mut patterns: Vec<ResolvedPattern>,
    filters: Vec<Expr>,
    store: &dyn TripleStore,
    cfg: &OptimizerConfig,
    needed: &[usize],
) -> Algebra {
    let mut residual: Vec<Expr> = Vec::new();
    let mut pushable: Vec<Expr> = Vec::new();

    // Which variables does the BGP bind?
    let bgp_vars: Vec<usize> = patterns.iter().flat_map(|p| p.variables()).collect();

    let mut remaining = filters;
    if cfg.substitute_filters {
        // Substituting `?v = const` is only safe when dropping ?v's
        // binding is unobservable: ?v not needed above, and mentioned by
        // no other filter conjunct.
        let mut kept: Vec<Expr> = Vec::new();
        for (idx, c) in remaining.iter().enumerate() {
            let substitutable = as_var_eq_const(c).filter(|(v, _)| {
                bgp_vars.contains(v)
                    && !needed.contains(v)
                    && !remaining
                        .iter()
                        .enumerate()
                        .any(|(j, other)| j != idx && other.variables().contains(v))
            });
            if let Some((v, term)) = substitutable {
                for p in &mut patterns {
                    for slot in [&mut p.s, &mut p.p, &mut p.o] {
                        if slot.as_var() == Some(v) {
                            *slot = Slot::Const(term.clone());
                        }
                    }
                }
            } else {
                kept.push(c.clone());
            }
        }
        remaining = kept;
    }

    for c in remaining {
        let vars = c.variables();
        let current_vars: Vec<usize> = patterns.iter().flat_map(|p| p.variables()).collect();
        if cfg.push_filters && vars.iter().all(|v| current_vars.contains(v)) {
            pushable.push(c);
        } else {
            residual.push(c);
        }
    }

    if cfg.reorder_patterns {
        patterns = reorder(patterns, store);
    }

    // Attach pushable filters at the earliest position where all their
    // variables are bound.
    let mut inline: Vec<(usize, Expr)> = Vec::new();
    for c in pushable {
        let vars = c.variables();
        let mut bound: Vec<usize> = Vec::new();
        let mut pos = patterns.len().saturating_sub(1);
        for (i, p) in patterns.iter().enumerate() {
            bound.extend(p.variables());
            if vars.iter().all(|v| bound.contains(v)) {
                pos = i;
                break;
            }
        }
        inline.push((pos, c));
    }

    let bgp = Algebra::Bgp {
        patterns,
        inline_filters: inline,
    };
    match Expr::fold_and(residual) {
        Some(e) => Algebra::Filter(e, Box::new(bgp)),
        None => bgp,
    }
}

/// Recognizes `?v = const` / `const = ?v`.
fn as_var_eq_const(e: &Expr) -> Option<(usize, Term)> {
    if let Expr::Compare(CmpOp::Eq, a, b) = e {
        match (a.as_ref(), b.as_ref()) {
            (Expr::Var(v), Expr::Const(t)) | (Expr::Const(t), Expr::Var(v)) => {
                // Only IRIs are safe to substitute: literal equality is
                // value-based (e.g. "01"^^xsd:integer = "1"^^xsd:integer),
                // which pattern matching by id cannot capture.
                if matches!(t, Term::Iri(_)) {
                    return Some((*v, t.clone()));
                }
            }
            _ => {}
        }
    }
    None
}

/// The cartesian penalty: a pattern sharing no variable with the bound
/// set multiplies the intermediate result — only ever pick one when
/// nothing connected remains.
const CARTESIAN_PENALTY: f64 = 1e9;

/// Greedy cost-based ordering: repeatedly pick the pattern whose addition
/// is cheapest given the variables bound so far.
///
/// With [`TripleStore::stats`] available, "cheapest" means lowest
/// estimated *output cardinality* of the partial join after adding the
/// candidate — per-binding fan-outs come from characteristic sets for
/// star steps (a bound subject variable extended by another constant
/// predicate) and from distinct-count ratios everywhere else, plus the
/// fetch-vs-per-binding-lookup choice from the same numbers. Without
/// stats (a store type that collects none), the orderer falls back to
/// the historical fixed-discount heuristic.
fn reorder(patterns: Vec<ResolvedPattern>, store: &dyn TripleStore) -> Vec<ResolvedPattern> {
    let n = patterns.len();
    if n <= 1 {
        return patterns;
    }
    // Constant slots resolve once; `None` marks a pattern holding a term
    // absent from the data — zero matches, so it orders first and cuts
    // the plan immediately (the paper's "Q3c in constant time via
    // statistics").
    let resolved: Vec<Option<sp2b_store::Pattern>> =
        patterns.iter().map(|p| resolve_consts(p, store)).collect();
    let base: Vec<f64> = resolved
        .iter()
        .map(|r| r.map_or(0.0, |pat| store.estimate(pat) as f64))
        .collect();
    let order = match store.stats() {
        Some(stats) if stats.triples > 0 => stats_order(&patterns, &resolved, &base, stats),
        _ => heuristic_order(&patterns, &base),
    };
    order.into_iter().map(|i| patterns[i].clone()).collect()
}

/// The pattern's constant slots as store ids; `None` when a constant
/// does not occur in the data at all.
fn resolve_consts(p: &ResolvedPattern, store: &dyn TripleStore) -> Option<sp2b_store::Pattern> {
    let mut pattern: sp2b_store::Pattern = [None, None, None];
    for (i, slot) in p.slots().into_iter().enumerate() {
        if let Slot::Const(t) = slot {
            pattern[i] = Some(store.resolve(t)?);
        }
    }
    Some(pattern)
}

/// The historical fixed-discount greedy: each already-bound variable
/// earns a blind 8× discount on the pattern's base estimate.
fn heuristic_order(patterns: &[ResolvedPattern], base: &[f64]) -> Vec<usize> {
    let mut remaining: Vec<usize> = (0..patterns.len()).collect();
    let mut order = Vec::with_capacity(patterns.len());
    let mut bound = VarSet::default();
    while !remaining.is_empty() {
        let mut best_pos = 0;
        let mut best_score = f64::INFINITY;
        for (pos, &idx) in remaining.iter().enumerate() {
            let bound_vars = patterns[idx]
                .variables()
                .filter(|&v| bound.contains(v))
                .count();
            let connected = bound.is_empty() || bound_vars > 0;
            let mut score = base[idx] / 8f64.powi(bound_vars as i32);
            if !connected {
                score *= CARTESIAN_PENALTY;
            }
            if score < best_score {
                best_score = score;
                best_pos = pos;
            }
        }
        let idx = remaining.remove(best_pos);
        for v in patterns[idx].variables() {
            bound.insert(v);
        }
        order.push(idx);
    }
    order
}

/// The statistics-driven greedy: tracks the partial join's estimated
/// cardinality and, per candidate, the per-binding fan-out of adding it.
fn stats_order(
    patterns: &[ResolvedPattern],
    resolved: &[Option<sp2b_store::Pattern>],
    base: &[f64],
    stats: &StoreStats,
) -> Vec<usize> {
    let mut remaining: Vec<usize> = (0..patterns.len()).collect();
    let mut order = Vec::with_capacity(patterns.len());
    let mut bound = VarSet::default();
    // Per subject *variable*: the sorted constant-predicate ids of the
    // star placed on it so far — the characteristic-set context.
    let mut stars: Vec<(usize, Vec<Id>)> = Vec::new();
    let mut rows = 1.0f64;

    while !remaining.is_empty() {
        let mut best_pos = 0;
        let mut best_score = f64::INFINITY;
        let mut best_rows = 0.0;
        for (pos, &idx) in remaining.iter().enumerate() {
            let (out, cost) = candidate_cost(
                &patterns[idx],
                &resolved[idx],
                base[idx],
                stats,
                &bound,
                &stars,
                rows,
            );
            if cost < best_score {
                best_score = cost;
                best_pos = pos;
                best_rows = out;
            }
        }
        let idx = remaining.remove(best_pos);
        rows = best_rows.max(0.0);
        // Extend the star context: a constant predicate on a variable
        // subject contributes to that variable's characteristic set.
        if let (Slot::Var(sv), Some(pat)) = (&patterns[idx].s, &resolved[idx]) {
            if let Some(pid) = pat[1] {
                match stars.iter_mut().find(|(v, _)| v == sv) {
                    Some((_, preds)) => {
                        if let Err(at) = preds.binary_search(&pid) {
                            preds.insert(at, pid);
                        }
                    }
                    None => stars.push((*sv, vec![pid])),
                }
            }
        }
        for v in patterns[idx].variables() {
            bound.insert(v);
        }
        order.push(idx);
    }
    order
}

/// Estimated `(output_rows, cost)` of adding one candidate to a partial
/// join of `rows` estimated rows. The cost charges the cheaper of a
/// per-binding index lookup (one probe per current row) and fetching the
/// whole pattern once (a scan-then-hash-join shape), plus the rows the
/// step emits.
fn candidate_cost(
    pattern: &ResolvedPattern,
    resolved: &Option<sp2b_store::Pattern>,
    base: f64,
    stats: &StoreStats,
    bound: &VarSet,
    stars: &[(usize, Vec<Id>)],
    rows: f64,
) -> (f64, f64) {
    if resolved.is_none() || base == 0.0 {
        return (0.0, 0.0); // matches nothing: cut the plan right here
    }
    let pat = resolved.as_ref().expect("checked above");
    let s_bound = pattern.s.as_var().is_some_and(|v| bound.contains(v));
    let p_bound = pattern.p.as_var().is_some_and(|v| bound.contains(v));
    let o_bound = pattern.o.as_var().is_some_and(|v| bound.contains(v));
    let connected = bound.is_empty() || s_bound || p_bound || o_bound;

    // Per-binding fan-out of the candidate. A driving scan (nothing
    // bound yet) and a cartesian step (bound, but disjoint) both fan
    // out by the full pattern; the latter is penalized below.
    let fanout = if bound.is_empty() || !connected {
        base
    } else if s_bound && pat[1].is_some() {
        star_fanout(pattern, pat, base, stats, stars)
    } else {
        ratio_fanout(pat, base, stats, s_bound, p_bound, o_bound)
    };
    let out = rows * fanout;
    // Fetch + hash-join pays the whole pattern once; per-binding lookup
    // pays one probe per current row — take whichever is cheaper.
    let mut cost = out + rows.min(base);
    if !connected {
        cost *= CARTESIAN_PENALTY;
    }
    (out, cost)
}

/// Characteristic-set fan-out for a star step: the subject variable is
/// bound and the candidate adds constant predicate `p_new` to it. Among
/// subjects carrying the star's predicates so far, how many `p_new`
/// triples does each contribute on average?
fn star_fanout(
    pattern: &ResolvedPattern,
    pat: &sp2b_store::Pattern,
    base: f64,
    stats: &StoreStats,
    stars: &[(usize, Vec<Id>)],
) -> f64 {
    let p_new = pat[1].expect("caller checked the predicate is const");
    let star = pattern
        .s
        .as_var()
        .and_then(|sv| stars.iter().find(|(v, _)| *v == sv))
        .map(|(_, preds)| preds.as_slice())
        .filter(|preds| !preds.is_empty());
    if let (Some(preds), true) = (star, stats.has_characteristic_sets()) {
        let subjects = stats.subjects_with_predicates(preds);
        if subjects > 0 {
            let matched = stats.star_triples(preds, p_new) as f64;
            let mut fanout = matched / subjects as f64;
            // A bound or constant object filters further by its
            // distinct-count ratio.
            if pat[2].is_some() || pattern.o.as_var().is_none() {
                // Constant object: `base` already accounts for it — scale
                // the CS number by the same selectivity base implies.
                if let Some(ps) = stats.predicate(p_new) {
                    if ps.triples > 0 {
                        fanout *= base / ps.triples as f64;
                    }
                }
            }
            return fanout;
        }
    }
    // No star context (or CS overflowed): distinct-subject ratio.
    match stats.predicate(p_new) {
        Some(ps) => base / ps.distinct_subjects.max(1) as f64,
        None => 0.0,
    }
}

/// Distinct-count-ratio fan-out: the candidate's base estimate divided
/// by the distinct count of every position joining on a bound variable.
fn ratio_fanout(
    pat: &sp2b_store::Pattern,
    base: f64,
    stats: &StoreStats,
    s_bound: bool,
    p_bound: bool,
    o_bound: bool,
) -> f64 {
    let pred = pat[1].and_then(|p| stats.predicate(p));
    let mut fanout = base;
    if s_bound {
        let distinct = pred.map_or(stats.distinct_subjects, |ps| ps.distinct_subjects);
        fanout /= distinct.max(1) as f64;
    }
    if o_bound {
        let distinct = pred.map_or(stats.distinct_objects, |ps| ps.distinct_objects);
        fanout /= distinct.max(1) as f64;
    }
    if p_bound {
        fanout /= (stats.predicates.len() as u64).max(1) as f64;
    }
    fanout
}

/// A dense variable-index set backed by bit words — the bound-variable
/// tracker (replacing the old O(n²) `Vec::contains` scan).
#[derive(Default)]
struct VarSet {
    words: Vec<u64>,
    len: usize,
}

impl VarSet {
    fn insert(&mut self, v: usize) {
        let word = v / 64;
        if word >= self.words.len() {
            self.words.resize(word + 1, 0);
        }
        let mask = 1u64 << (v % 64);
        if self.words[word] & mask == 0 {
            self.words[word] |= mask;
            self.len += 1;
        }
    }

    fn contains(&self, v: usize) -> bool {
        self.words
            .get(v / 64)
            .is_some_and(|w| w & (1u64 << (v % 64)) != 0)
    }

    fn is_empty(&self) -> bool {
        self.len == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra::translate;
    use crate::parser::parse;
    use sp2b_rdf::{Graph, Iri, Subject};
    use sp2b_store::NativeStore;

    fn store() -> NativeStore {
        let mut g = Graph::new();
        // 100 "common" triples, 2 "rare" ones.
        for i in 0..100 {
            g.add(
                Subject::iri(format!("http://x/s{i}")),
                Iri::new("http://x/common"),
                Term::iri("http://x/o"),
            );
        }
        for i in 0..2 {
            g.add(
                Subject::iri(format!("http://x/s{i}")),
                Iri::new("http://x/rare"),
                Term::iri(format!("http://x/val{i}")),
            );
        }
        NativeStore::from_graph(&g)
    }

    fn bgp_of(alg: &Algebra) -> (&Vec<ResolvedPattern>, &Vec<(usize, Expr)>) {
        match alg {
            Algebra::Project(_, inner) | Algebra::Distinct(inner) => bgp_of(inner),
            Algebra::Filter(_, inner) => bgp_of(inner),
            Algebra::Bgp {
                patterns,
                inline_filters,
            } => (patterns, inline_filters),
            other => panic!("no BGP in {other:?}"),
        }
    }

    #[test]
    fn reorders_rare_pattern_first() {
        let t = translate(
            &parse("SELECT ?s WHERE { ?s <http://x/common> ?o . ?s <http://x/rare> ?v }").unwrap(),
        );
        let s = store();
        let optimized = optimize(
            t.algebra.clone(),
            &s,
            &OptimizerConfig::full(),
            &t.projection,
        );
        let (patterns, _) = bgp_of(&optimized);
        // The rare pattern must come first now.
        assert_eq!(
            patterns[0].p,
            Slot::Const(Term::iri("http://x/rare")),
            "{patterns:?}"
        );
    }

    #[test]
    fn no_reorder_when_disabled() {
        let t = translate(
            &parse("SELECT ?s WHERE { ?s <http://x/common> ?o . ?s <http://x/rare> ?v }").unwrap(),
        );
        let s = store();
        let optimized = optimize(
            t.algebra.clone(),
            &s,
            &OptimizerConfig::default(),
            &t.projection,
        );
        let (patterns, _) = bgp_of(&optimized);
        assert_eq!(patterns[0].p, Slot::Const(Term::iri("http://x/common")));
    }

    #[test]
    fn pushes_filter_inline() {
        let t = translate(
            &parse(
                "SELECT ?s WHERE { ?s <http://x/common> ?o . ?s <http://x/rare> ?v FILTER (?v != <http://x/val0>) }",
            )
            .unwrap(),
        );
        let s = store();
        let optimized = optimize(
            t.algebra.clone(),
            &s,
            &OptimizerConfig::full(),
            &t.projection,
        );
        let (_, inline) = bgp_of(&optimized);
        assert_eq!(inline.len(), 1, "filter must be inlined");
        // And no residual Filter node above the BGP.
        let Algebra::Project(_, inner) = &optimized else {
            panic!()
        };
        assert!(matches!(inner.as_ref(), Algebra::Bgp { .. }));
    }

    #[test]
    fn substitutes_iri_equality() {
        let t = translate(
            &parse("SELECT ?s WHERE { ?s ?p ?v FILTER (?p = <http://x/rare>) }").unwrap(),
        );
        let s = store();
        let optimized = optimize(
            t.algebra.clone(),
            &s,
            &OptimizerConfig::full(),
            &t.projection,
        );
        let (patterns, inline) = bgp_of(&optimized);
        assert_eq!(patterns[0].p, Slot::Const(Term::iri("http://x/rare")));
        assert!(inline.is_empty(), "equality folded away");
    }

    #[test]
    fn does_not_substitute_projected_variable() {
        let t = translate(
            &parse("SELECT ?p WHERE { ?s ?p ?v FILTER (?p = <http://x/rare>) }").unwrap(),
        );
        let s = store();
        let optimized = optimize(
            t.algebra.clone(),
            &s,
            &OptimizerConfig::full(),
            &t.projection,
        );
        // ?p is projected: substituting would lose its binding. The filter
        // must survive in some form (inline or residual).
        let (patterns, inline) = bgp_of(&optimized);
        let still_var = patterns[0].p == Slot::Var(t.vars.lookup("p").unwrap());
        assert!(still_var || !inline.is_empty());
    }

    #[test]
    fn filter_distributes_into_join_branches() {
        let t = translate(
            &parse(
                "SELECT ?a WHERE { { ?a <http://x/common> ?x } { ?b <http://x/rare> ?y } FILTER (?y != <http://x/val0>) }",
            )
            .unwrap(),
        );
        let s = store();
        let optimized = optimize(
            t.algebra.clone(),
            &s,
            &OptimizerConfig::full(),
            &t.projection,
        );
        // The filter must not remain at the top.
        let Algebra::Project(_, inner) = &optimized else {
            panic!()
        };
        assert!(
            matches!(inner.as_ref(), Algebra::Join(..)),
            "filter should be absorbed by a branch: {inner:?}"
        );
    }
}
