//! Streaming SELECT/ASK result serialization — the wire formats of the
//! SPARQL 1.1 Protocol, shared by the HTTP endpoint (`sp2b_server`) and
//! the CLI's `sp2b query --format …` output.
//!
//! All three writers ([`write_json`], [`write_csv`], [`write_tsv`] —
//! dispatched by [`write_solutions`]) consume a [`Solutions`] stream row
//! by row and emit directly into an [`io::Write`], so a SELECT result is
//! **never materialized** on the serializing side: memory stays bounded
//! by one row regardless of cardinality, and the first bytes hit the
//! wire before the last row was computed.
//!
//! Formats:
//!
//! * [`Format::Json`] — SPARQL 1.1 Query Results JSON
//!   (`application/sparql-results+json`): `head.vars` +
//!   `results.bindings`, each binding typed `uri`/`bnode`/`literal` with
//!   optional `datatype`/`xml:lang`. ASK serializes as
//!   `{"head":{},"boolean":…}`.
//! * [`Format::Csv`] — SPARQL 1.1 Results CSV (`text/csv`): header of
//!   bare variable names, RFC 4180 quoting, terms in plain lexical form
//!   (IRIs without angle brackets, blanks as `_:label`).
//! * [`Format::Tsv`] — SPARQL 1.1 Results TSV
//!   (`text/tab-separated-values`): header of `?var` names, terms in
//!   Turtle-ish encoded form with `\t`/`\n`/`\r`/`\"`/`\\` escaped.
//!
//! ASK has no CSV/TSV serialization in the spec; both writers emit the
//! single line `true`/`false` (endpoints conventionally label that body
//! `text/boolean`), which keeps every query shape servable in every
//! format.

use std::io::{self, Write};

use sp2b_rdf::Term;

use crate::api::{Error, Solution, Solutions};

/// A SELECT/ASK result wire format.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Format {
    /// SPARQL 1.1 Query Results JSON.
    Json,
    /// SPARQL 1.1 Query Results CSV.
    Csv,
    /// SPARQL 1.1 Query Results TSV.
    Tsv,
}

impl Format {
    /// The media type this format is served as.
    pub fn content_type(self) -> &'static str {
        match self {
            Format::Json => "application/sparql-results+json",
            Format::Csv => "text/csv; charset=utf-8",
            Format::Tsv => "text/tab-separated-values; charset=utf-8",
        }
    }

    /// The media type an ASK result is served as in this format (CSV/TSV
    /// have no spec'd boolean form; the conventional `text/boolean` body
    /// is a bare `true`/`false` line).
    pub fn ask_content_type(self) -> &'static str {
        match self {
            Format::Json => "application/sparql-results+json",
            Format::Csv | Format::Tsv => "text/boolean",
        }
    }

    /// Resolves a bare media type (no parameters) to a format. Accepts
    /// the registered names plus the pragmatic aliases endpoints see in
    /// the wild (`application/json`, `text/json`, `csv`, `tsv`).
    pub fn from_media_type(mt: &str) -> Option<Format> {
        match mt.trim().to_ascii_lowercase().as_str() {
            "application/sparql-results+json" | "application/json" | "text/json" | "json" => {
                Some(Format::Json)
            }
            "text/csv" | "csv" => Some(Format::Csv),
            "text/tab-separated-values" | "tsv" => Some(Format::Tsv),
            _ => None,
        }
    }

    /// The CLI spelling (`--format json|csv|tsv`).
    pub fn label(self) -> &'static str {
        match self {
            Format::Json => "json",
            Format::Csv => "csv",
            Format::Tsv => "tsv",
        }
    }
}

/// Why a streaming serialization stopped early.
#[derive(Debug)]
pub enum WriteError {
    /// The output sink failed (for the HTTP server: the client hung up
    /// mid-stream — the caller drops the `Solutions`, cancelling the
    /// query).
    Io(io::Error),
    /// The query itself failed mid-stream (timeout/cancellation).
    Query(Error),
}

impl std::fmt::Display for WriteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WriteError::Io(e) => write!(f, "write failed: {e}"),
            WriteError::Query(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for WriteError {}

impl From<io::Error> for WriteError {
    fn from(e: io::Error) -> Self {
        WriteError::Io(e)
    }
}

/// Serializes a whole solution stream in `format`, returning the number
/// of result rows written (ASK: 1 for `true`, 0 for `false` — the value
/// that agrees with `QueryEngine::count`).
///
/// `ask` must be the prepared query's ASK-ness: an ASK stream yields
/// zero or one *empty* solution, which the writers turn into the
/// boolean forms described on [`Format`].
pub fn write_solutions(
    out: &mut dyn Write,
    format: Format,
    solutions: &mut Solutions<'_>,
    ask: bool,
) -> Result<u64, WriteError> {
    match format {
        Format::Json => write_json(out, solutions, ask),
        Format::Csv => write_csv(out, solutions, ask),
        Format::Tsv => write_tsv(out, solutions, ask),
    }
}

/// Streams SPARQL 1.1 JSON results. See [`write_solutions`].
pub fn write_json(
    out: &mut dyn Write,
    solutions: &mut Solutions<'_>,
    ask: bool,
) -> Result<u64, WriteError> {
    if ask {
        let yes = next_ask(solutions)?;
        write!(out, "{{\"head\":{{}},\"boolean\":{yes}}}")?;
        return Ok(u64::from(yes));
    }
    let variables: Vec<String> = solutions.variables().to_vec();
    out.write_all(b"{\"head\":{\"vars\":[")?;
    for (i, v) in variables.iter().enumerate() {
        if i > 0 {
            out.write_all(b",")?;
        }
        write_json_string(out, v)?;
    }
    out.write_all(b"]},\"results\":{\"bindings\":[")?;
    let mut rows = 0u64;
    for solution in solutions.by_ref() {
        let solution = solution.map_err(WriteError::Query)?;
        if rows > 0 {
            out.write_all(b",")?;
        }
        out.write_all(b"{")?;
        let mut first = true;
        for (i, var) in variables.iter().enumerate() {
            let Some(term) = solution.get(i) else {
                continue; // unbound: omitted from the binding object
            };
            if !first {
                out.write_all(b",")?;
            }
            first = false;
            write_json_string(out, var)?;
            out.write_all(b":")?;
            write_json_term(out, &term)?;
        }
        out.write_all(b"}")?;
        rows += 1;
    }
    out.write_all(b"]}}")?;
    Ok(rows)
}

/// Streams SPARQL 1.1 CSV results. See [`write_solutions`].
pub fn write_csv(
    out: &mut dyn Write,
    solutions: &mut Solutions<'_>,
    ask: bool,
) -> Result<u64, WriteError> {
    if ask {
        let yes = next_ask(solutions)?;
        writeln!(out, "{yes}")?;
        return Ok(u64::from(yes));
    }
    let width = solutions.variables().len();
    for (i, v) in solutions.variables().iter().enumerate() {
        if i > 0 {
            out.write_all(b",")?;
        }
        write_csv_field(out, v)?;
    }
    out.write_all(b"\r\n")?;
    stream_rows(solutions, |solution| {
        for i in 0..width {
            if i > 0 {
                out.write_all(b",")?;
            }
            if let Some(term) = solution.get(i) {
                write_csv_field(out, &lexical_form(&term))?;
            }
        }
        out.write_all(b"\r\n")?;
        Ok(())
    })
}

/// Streams SPARQL 1.1 TSV results. See [`write_solutions`].
pub fn write_tsv(
    out: &mut dyn Write,
    solutions: &mut Solutions<'_>,
    ask: bool,
) -> Result<u64, WriteError> {
    if ask {
        let yes = next_ask(solutions)?;
        writeln!(out, "{yes}")?;
        return Ok(u64::from(yes));
    }
    let width = solutions.variables().len();
    let header: Vec<String> = solutions
        .variables()
        .iter()
        .map(|v| format!("?{v}"))
        .collect();
    writeln!(out, "{}", header.join("\t"))?;
    stream_rows(solutions, |solution| {
        for i in 0..width {
            if i > 0 {
                out.write_all(b"\t")?;
            }
            if let Some(term) = solution.get(i) {
                write_tsv_term(out, &term)?;
            }
        }
        out.write_all(b"\n")?;
        Ok(())
    })
}

/// The CLI's human-readable preview (the fourth "format"): a
/// tab-separated header and up to `limit` rows (unbound columns as
/// `-`), each line prefixed with `indent`, while the remaining rows are
/// only counted — the tail never decodes a term. Returns
/// `(total_rows, rows_shown)`.
pub fn write_table_preview(
    out: &mut dyn Write,
    solutions: &mut Solutions<'_>,
    limit: usize,
    indent: &str,
) -> Result<(u64, usize), WriteError> {
    writeln!(out, "{indent}{}", solutions.variables().join("\t"))?;
    let mut total = 0u64;
    let mut shown = 0usize;
    for solution in solutions {
        let solution = solution.map_err(WriteError::Query)?;
        total += 1;
        if shown < limit {
            let line: Vec<String> = (0..solution.len())
                .map(|i| solution.get(i).map_or("-".into(), |t| t.to_string()))
                .collect();
            writeln!(out, "{indent}{}", line.join("\t"))?;
            shown += 1;
        }
    }
    Ok((total, shown))
}

/// Drains the stream through `row`, counting rows and converting stream
/// errors.
fn stream_rows(
    solutions: &mut Solutions<'_>,
    mut row: impl FnMut(&Solution<'_>) -> io::Result<()>,
) -> Result<u64, WriteError> {
    let mut rows = 0u64;
    for solution in solutions {
        let solution = solution.map_err(WriteError::Query)?;
        row(&solution)?;
        rows += 1;
    }
    Ok(rows)
}

/// Resolves an ASK stream: one (empty) solution means `true`.
fn next_ask(solutions: &mut Solutions<'_>) -> Result<bool, WriteError> {
    match solutions.next() {
        None => Ok(false),
        Some(Ok(_)) => Ok(true),
        Some(Err(e)) => Err(WriteError::Query(e)),
    }
}

/// The CSV lexical form: IRIs bare, blanks `_:label`, literals their
/// lexical value (datatype/language dropped, per the CSV results spec).
fn lexical_form(term: &Term) -> String {
    match term {
        Term::Iri(iri) => iri.as_str().to_owned(),
        Term::Blank(b) => format!("_:{}", b.as_str()),
        Term::Literal(l) => l.lexical.clone(),
    }
}

fn write_csv_field(out: &mut dyn Write, s: &str) -> io::Result<()> {
    if s.contains(['"', ',', '\n', '\r']) {
        out.write_all(b"\"")?;
        out.write_all(s.replace('"', "\"\"").as_bytes())?;
        out.write_all(b"\"")
    } else {
        out.write_all(s.as_bytes())
    }
}

/// TSV term encoding: Turtle-ish forms with the tab/newline-sensitive
/// characters escaped so one row is always one line.
fn write_tsv_term(out: &mut dyn Write, term: &Term) -> io::Result<()> {
    match term {
        Term::Iri(iri) => write!(out, "<{}>", iri.as_str()),
        Term::Blank(b) => write!(out, "_:{}", b.as_str()),
        Term::Literal(l) => {
            write!(out, "\"{}\"", escape_tsv(&l.lexical))?;
            if let Some(lang) = &l.language {
                write!(out, "@{lang}")
            } else if let Some(dt) = &l.datatype {
                write!(out, "^^<{}>", dt.as_str())
            } else {
                Ok(())
            }
        }
    }
}

fn escape_tsv(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            other => out.push(other),
        }
    }
    out
}

/// JSON string literal with the mandatory escapes. This is the hottest
/// loop of the HTTP serving path (every variable name, IRI and literal
/// of every JSON row passes through), so contiguous runs of unescaped
/// bytes are written as single slices rather than per-character — the
/// only bytes needing escapes are ASCII, so byte-wise scanning is safe
/// on UTF-8 input.
fn write_json_string(out: &mut dyn Write, s: &str) -> io::Result<()> {
    out.write_all(b"\"")?;
    let bytes = s.as_bytes();
    let mut start = 0;
    for (i, &b) in bytes.iter().enumerate() {
        let escape: &[u8] = match b {
            b'"' => b"\\\"",
            b'\\' => b"\\\\",
            b'\n' => b"\\n",
            b'\r' => b"\\r",
            b'\t' => b"\\t",
            0x00..=0x1f => b"",
            _ => continue,
        };
        out.write_all(&bytes[start..i])?;
        if escape.is_empty() {
            write!(out, "\\u{b:04x}")?;
        } else {
            out.write_all(escape)?;
        }
        start = i + 1;
    }
    out.write_all(&bytes[start..])?;
    out.write_all(b"\"")
}

/// One SPARQL-JSON term object.
fn write_json_term(out: &mut dyn Write, term: &Term) -> io::Result<()> {
    match term {
        Term::Iri(iri) => {
            out.write_all(b"{\"type\":\"uri\",\"value\":")?;
            write_json_string(out, iri.as_str())?;
        }
        Term::Blank(b) => {
            out.write_all(b"{\"type\":\"bnode\",\"value\":")?;
            write_json_string(out, b.as_str())?;
        }
        Term::Literal(l) => {
            out.write_all(b"{\"type\":\"literal\",\"value\":")?;
            write_json_string(out, &l.lexical)?;
            if let Some(lang) = &l.language {
                out.write_all(b",\"xml:lang\":")?;
                write_json_string(out, lang)?;
            } else if let Some(dt) = &l.datatype {
                out.write_all(b",\"datatype\":")?;
                write_json_string(out, dt.as_str())?;
            }
        }
    }
    out.write_all(b"}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{QueryEngine, QueryOptions};
    use sp2b_rdf::{Graph, Iri, Literal, Subject};
    use sp2b_store::{MemStore, TripleStore};

    fn engine() -> QueryEngine {
        let mut g = Graph::new();
        g.add(
            Subject::iri("http://x/s1"),
            Iri::new("http://x/p"),
            Term::Literal(Literal::integer(7)),
        );
        g.add(
            Subject::iri("http://x/s2"),
            Iri::new("http://x/p"),
            Term::Literal(Literal::string("a,\"b\"\nc\td")),
        );
        g.add(
            Subject::blank("node1"),
            Iri::new("http://x/p"),
            Term::iri("http://x/o"),
        );
        QueryEngine::with_options(
            MemStore::from_graph(&g).into_shared(),
            QueryOptions::new().parallelism(1),
        )
    }

    fn serialize(format: Format, query: &str) -> (String, u64) {
        let engine = engine();
        let prepared = engine.prepare(query).unwrap();
        let mut out = Vec::new();
        let mut solutions = engine.solutions(&prepared);
        let rows = write_solutions(&mut out, format, &mut solutions, prepared.is_ask()).unwrap();
        (String::from_utf8(out).unwrap(), rows)
    }

    const ALL: &str = "SELECT ?s ?v WHERE { ?s <http://x/p> ?v } ORDER BY ?s";

    #[test]
    fn json_select_has_head_and_typed_bindings() {
        let (json, rows) = serialize(Format::Json, ALL);
        assert_eq!(rows, 3);
        assert!(
            json.starts_with("{\"head\":{\"vars\":[\"s\",\"v\"]}"),
            "{json}"
        );
        assert!(
            json.contains("\"type\":\"uri\",\"value\":\"http://x/s1\""),
            "{json}"
        );
        assert!(
            json.contains("\"type\":\"bnode\",\"value\":\"node1\""),
            "{json}"
        );
        assert!(
            json.contains("\"datatype\":\"http://www.w3.org/2001/XMLSchema#integer\""),
            "{json}"
        );
        // The awkward literal is escaped, newline included.
        assert!(json.contains("a,\\\"b\\\"\\nc\\td"), "{json}");
        assert!(json.ends_with("]}}"), "{json}");
    }

    #[test]
    fn csv_quotes_awkward_fields_and_counts_rows() {
        let (csv, rows) = serialize(Format::Csv, ALL);
        assert_eq!(rows, 3);
        let mut lines = csv.split("\r\n");
        assert_eq!(lines.next(), Some("s,v"));
        // Blank nodes sort first (SPARQL term order).
        assert_eq!(lines.next(), Some("_:node1,http://x/o"));
        assert_eq!(lines.next(), Some("http://x/s1,7"));
        // The embedded quote/comma/newline field is RFC 4180-quoted.
        assert!(csv.contains("\"a,\"\"b\"\"\nc\td\""), "{csv:?}");
    }

    #[test]
    fn tsv_rows_are_single_lines() {
        let (tsv, rows) = serialize(Format::Tsv, ALL);
        assert_eq!(rows, 3);
        let lines: Vec<&str> = tsv.lines().collect();
        assert_eq!(lines.len(), 4, "header + 3 rows exactly: {tsv:?}");
        assert_eq!(lines[0], "?s\t?v");
        assert!(lines[2].starts_with("<http://x/s1>\t\"7\"^^<"), "{tsv}");
        // The embedded tab/newline are escape sequences, not separators.
        assert!(tsv.contains("\\n"), "{tsv}");
        assert!(tsv.contains("\\t"), "{tsv}");
    }

    #[test]
    fn unbound_columns_serialize_empty() {
        let q = "SELECT ?s ?w WHERE { ?s <http://x/p> ?v OPTIONAL { ?v <http://x/q> ?w } }";
        let (csv, rows) = serialize(Format::Csv, q);
        assert_eq!(rows, 3);
        assert!(csv.contains(",\r\n"), "unbound CSV cell is empty: {csv:?}");
        let (json, _) = serialize(Format::Json, q);
        assert!(
            !json.contains("\"w\":"),
            "unbound JSON binding omitted: {json}"
        );
    }

    #[test]
    fn ask_serializes_as_boolean_in_every_format() {
        for (format, yes, no) in [
            (
                Format::Json,
                "{\"head\":{},\"boolean\":true}",
                "{\"head\":{},\"boolean\":false}",
            ),
            (Format::Csv, "true\n", "false\n"),
            (Format::Tsv, "true\n", "false\n"),
        ] {
            let (body, rows) = serialize(format, "ASK { ?s <http://x/p> 7 }");
            assert_eq!(body, yes);
            assert_eq!(rows, 1);
            let (body, rows) = serialize(format, "ASK { ?s <http://x/p> 9999 }");
            assert_eq!(body, no);
            assert_eq!(rows, 0);
        }
    }

    #[test]
    fn aggregate_streams_through_the_writers() {
        let (json, rows) = serialize(
            Format::Json,
            "SELECT (COUNT(*) AS ?n) WHERE { ?s <http://x/p> ?v }",
        );
        assert_eq!(rows, 1);
        assert!(
            json.contains("\"n\":{\"type\":\"literal\",\"value\":\"3\""),
            "{json}"
        );
    }

    #[test]
    fn table_preview_limits_but_counts_everything() {
        let engine = engine();
        let prepared = engine.prepare(ALL).unwrap();
        let mut out = Vec::new();
        let mut solutions = engine.solutions(&prepared);
        let (total, shown) = write_table_preview(&mut out, &mut solutions, 1, "  ").unwrap();
        assert_eq!((total, shown), (3, 1));
        let text = String::from_utf8(out).unwrap();
        assert_eq!(text.lines().count(), 2, "header + 1 row: {text:?}");
        assert!(text.starts_with("  s\tv\n"), "{text:?}");
    }

    #[test]
    fn media_type_resolution() {
        assert_eq!(
            Format::from_media_type("application/sparql-results+json"),
            Some(Format::Json)
        );
        assert_eq!(Format::from_media_type("TEXT/CSV"), Some(Format::Csv));
        assert_eq!(
            Format::from_media_type(" text/tab-separated-values "),
            Some(Format::Tsv)
        );
        assert_eq!(Format::from_media_type("application/xml"), None);
        for f in [Format::Json, Format::Csv, Format::Tsv] {
            assert_eq!(Format::from_media_type(f.label()), Some(f));
        }
    }
}
