//! Translation from the AST to the SPARQL algebra (spec §12.2.1).
//!
//! The translation is the part that makes the closed-world-negation
//! queries (Q6, Q7) work: a `FILTER` that is the last element of an
//! `OPTIONAL` group becomes the *condition* of the resulting
//! [`Algebra::LeftJoin`] — evaluated over the merged bindings of both
//! sides — rather than an inner filter, so it can reference variables of
//! the outer group (`?author = ?author2 && ?yr2 < ?yr`).
//!
//! Variables are resolved to dense indices ([`VarTable`]) here; the
//! evaluator represents a solution as one `Vec<Option<Id>>` slot per
//! variable.

use sp2b_rdf::Term;

use crate::ast::{
    CmpOp, Expression, GroupElement, GroupPattern, Query, QueryForm, TermOrVar, TriplePattern,
};

/// Maps variable names to dense indices.
#[derive(Debug, Default, Clone)]
pub struct VarTable {
    names: Vec<String>,
}

impl VarTable {
    /// Index of `name`, interning it if new.
    pub fn intern(&mut self, name: &str) -> usize {
        if let Some(i) = self.names.iter().position(|n| n == name) {
            return i;
        }
        self.names.push(name.to_owned());
        self.names.len() - 1
    }

    /// Index of `name`, if known.
    pub fn lookup(&self, name: &str) -> Option<usize> {
        self.names.iter().position(|n| n == name)
    }

    /// Name of variable `i`.
    pub fn name(&self, i: usize) -> &str {
        &self.names[i]
    }

    /// Number of variables.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True if no variable was interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// All names in index order.
    pub fn names(&self) -> &[String] {
        &self.names
    }
}

/// A triple-pattern slot after variable resolution.
#[derive(Debug, Clone, PartialEq)]
pub enum Slot {
    /// A constant term.
    Const(Term),
    /// Variable by index.
    Var(usize),
}

impl Slot {
    /// The variable index, if a variable.
    pub fn as_var(&self) -> Option<usize> {
        match self {
            Slot::Var(i) => Some(*i),
            Slot::Const(_) => None,
        }
    }
}

/// A resolved triple pattern.
#[derive(Debug, Clone, PartialEq)]
pub struct ResolvedPattern {
    /// Subject slot.
    pub s: Slot,
    /// Predicate slot.
    pub p: Slot,
    /// Object slot.
    pub o: Slot,
}

impl ResolvedPattern {
    /// The slots as an (s, p, o) array.
    pub fn slots(&self) -> [&Slot; 3] {
        [&self.s, &self.p, &self.o]
    }

    /// Variable indices of this pattern.
    pub fn variables(&self) -> impl Iterator<Item = usize> + '_ {
        self.slots().into_iter().filter_map(Slot::as_var)
    }
}

/// A compiled filter expression (variables by index).
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Variable reference.
    Var(usize),
    /// Constant term.
    Const(Term),
    /// `bound(?v)`.
    Bound(usize),
    /// `!e`.
    Not(Box<Expr>),
    /// `a && b`.
    And(Box<Expr>, Box<Expr>),
    /// `a || b`.
    Or(Box<Expr>, Box<Expr>),
    /// Comparison.
    Compare(CmpOp, Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Collects variable indices (deduplicated).
    pub fn variables(&self) -> Vec<usize> {
        fn walk(e: &Expr, out: &mut Vec<usize>) {
            match e {
                Expr::Var(i) | Expr::Bound(i) => {
                    if !out.contains(i) {
                        out.push(*i);
                    }
                }
                Expr::Const(_) => {}
                Expr::Not(a) => walk(a, out),
                Expr::And(a, b) | Expr::Or(a, b) | Expr::Compare(_, a, b) => {
                    walk(a, out);
                    walk(b, out);
                }
            }
        }
        let mut out = Vec::new();
        walk(self, &mut out);
        out
    }

    /// Splits a conjunction into its conjuncts.
    pub fn conjuncts(self) -> Vec<Expr> {
        match self {
            Expr::And(a, b) => {
                let mut out = a.conjuncts();
                out.extend(b.conjuncts());
                out
            }
            other => vec![other],
        }
    }

    /// Re-folds conjuncts into a single expression.
    pub fn fold_and(mut conjuncts: Vec<Expr>) -> Option<Expr> {
        let mut acc = conjuncts.pop()?;
        while let Some(e) = conjuncts.pop() {
            acc = Expr::And(Box::new(e), Box::new(acc));
        }
        Some(acc)
    }
}

/// A compiled ORDER BY key.
#[derive(Debug, Clone, PartialEq)]
pub struct ResolvedOrderKey {
    /// Sort expression.
    pub expr: Expr,
    /// Descending?
    pub descending: bool,
}

/// One COUNT column of the aggregation extension.
#[derive(Debug, Clone, PartialEq)]
pub struct CountSpec {
    /// Counted variable; `None` for `COUNT(*)`.
    pub target: Option<usize>,
    /// `COUNT(DISTINCT …)`.
    pub distinct: bool,
}

/// Grouping/counting specification of [`Algebra::Group`]. Store-
/// independent, so [`crate::plan::Plan::GroupAggregate`] reuses it as-is.
///
/// Output ordering and OFFSET/LIMIT live here rather than as outer
/// operators because they apply to *output columns* (group keys and
/// count aliases), which have no variable indices in the pattern.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupSpec {
    /// Group-key variable indices (empty = one implicit group).
    pub group_vars: Vec<usize>,
    /// COUNT columns, in projection order.
    pub counts: Vec<CountSpec>,
    /// Output column names: group-by names then aliases.
    pub columns: Vec<String>,
    /// Output-column order keys `(column, descending)`.
    pub order_by: Vec<(usize, bool)>,
    /// Aggregated rows to skip.
    pub offset: u64,
    /// Max aggregated rows.
    pub limit: Option<u64>,
}

/// The SPARQL algebra, over resolved patterns and expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Algebra {
    /// Basic graph pattern. `inline_filters` holds `(position, expr)`
    /// pairs placed by the optimizer's filter pushing: `expr` runs as soon
    /// as pattern `position` has been matched.
    Bgp {
        /// Triple patterns in evaluation order.
        patterns: Vec<ResolvedPattern>,
        /// Pushed-down filters: evaluated after `patterns[pos]` binds.
        inline_filters: Vec<(usize, Expr)>,
    },
    /// Inner join.
    Join(Box<Algebra>, Box<Algebra>),
    /// Left outer join with optional condition (the OPTIONAL translation).
    LeftJoin(Box<Algebra>, Box<Algebra>, Option<Expr>),
    /// Union.
    Union(Box<Algebra>, Box<Algebra>),
    /// Filter.
    Filter(Expr, Box<Algebra>),
    /// Duplicate elimination (order-preserving).
    Distinct(Box<Algebra>),
    /// Projection to the given variable indices.
    Project(Vec<usize>, Box<Algebra>),
    /// Sorting.
    OrderBy(Vec<ResolvedOrderKey>, Box<Algebra>),
    /// OFFSET/LIMIT.
    Slice {
        /// Rows to skip.
        offset: u64,
        /// Maximum rows to return (`None` = unlimited).
        limit: Option<u64>,
        /// Input.
        input: Box<Algebra>,
    },
    /// GROUP BY + COUNT over the input (aggregation extension). Always the
    /// root of an aggregate query's algebra; the optimizer rewrites its
    /// input with the group/count variables as the observable set.
    Group(GroupSpec, Box<Algebra>),
}

impl Algebra {
    /// The empty BGP (the algebra's unit element).
    pub fn unit() -> Algebra {
        Algebra::Bgp {
            patterns: Vec::new(),
            inline_filters: Vec::new(),
        }
    }

    /// True for the unit element.
    pub fn is_unit(&self) -> bool {
        matches!(self, Algebra::Bgp { patterns, .. } if patterns.is_empty())
    }

    /// Variables *certainly* bound in every solution (drives hash-join
    /// keys): BGP binds all its variables; a union binds the intersection
    /// of its branches; a left join guarantees only its left side.
    pub fn certain_vars(&self) -> Vec<usize> {
        match self {
            Algebra::Bgp { patterns, .. } => {
                let mut vars = Vec::new();
                for p in patterns {
                    for v in p.variables() {
                        if !vars.contains(&v) {
                            vars.push(v);
                        }
                    }
                }
                vars
            }
            Algebra::Join(a, b) => {
                let mut vars = a.certain_vars();
                for v in b.certain_vars() {
                    if !vars.contains(&v) {
                        vars.push(v);
                    }
                }
                vars
            }
            Algebra::LeftJoin(a, _, _) => a.certain_vars(),
            Algebra::Union(a, b) => {
                let bv = b.certain_vars();
                a.certain_vars()
                    .into_iter()
                    .filter(|v| bv.contains(v))
                    .collect()
            }
            Algebra::Filter(_, inner)
            | Algebra::Distinct(inner)
            | Algebra::OrderBy(_, inner)
            | Algebra::Slice { input: inner, .. } => inner.certain_vars(),
            Algebra::Project(vars, inner) => {
                let inner_vars = inner.certain_vars();
                vars.iter()
                    .copied()
                    .filter(|v| inner_vars.contains(v))
                    .collect()
            }
            Algebra::Group(spec, inner) => {
                let inner_vars = inner.certain_vars();
                spec.group_vars
                    .iter()
                    .copied()
                    .filter(|v| inner_vars.contains(v))
                    .collect()
            }
        }
    }

    /// Variables *possibly* bound (scoping / SELECT *).
    pub fn all_vars(&self) -> Vec<usize> {
        fn add(out: &mut Vec<usize>, vars: impl IntoIterator<Item = usize>) {
            for v in vars {
                if !out.contains(&v) {
                    out.push(v);
                }
            }
        }
        match self {
            Algebra::Bgp { patterns, .. } => {
                let mut out = Vec::new();
                for p in patterns {
                    add(&mut out, p.variables());
                }
                out
            }
            Algebra::Join(a, b) | Algebra::Union(a, b) | Algebra::LeftJoin(a, b, _) => {
                let mut out = a.all_vars();
                add(&mut out, b.all_vars());
                out
            }
            Algebra::Filter(_, inner)
            | Algebra::Distinct(inner)
            | Algebra::OrderBy(_, inner)
            | Algebra::Slice { input: inner, .. } => inner.all_vars(),
            Algebra::Project(vars, _) => vars.clone(),
            Algebra::Group(spec, _) => spec.group_vars.clone(),
        }
    }
}

/// A fully translated query.
#[derive(Debug, Clone)]
pub struct Translated {
    /// The algebra tree (projection/modifiers included for SELECT).
    pub algebra: Algebra,
    /// The variable table.
    pub vars: VarTable,
    /// Projected variable indices (empty for ASK and aggregate queries,
    /// whose output columns are not pattern variables).
    pub projection: Vec<usize>,
    /// Output column names (empty for ASK). For aggregate queries these
    /// are the group-by names followed by the COUNT aliases.
    pub columns: Vec<String>,
    /// True for ASK.
    pub ask: bool,
}

/// What can go wrong turning an AST into algebra (aggregation extension;
/// plain SPARQL 1.0 queries always translate).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TranslateError {
    /// A GROUP BY or COUNT variable does not occur in the WHERE pattern.
    UnboundVariable(String),
    /// A construct the algebra cannot express.
    Unsupported(String),
}

impl std::fmt::Display for TranslateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TranslateError::UnboundVariable(v) => {
                write!(f, "variable ?{v} is not bound in the query pattern")
            }
            TranslateError::Unsupported(what) => write!(f, "unsupported: {what}"),
        }
    }
}

impl std::error::Error for TranslateError {}

/// Translates a parsed query. Infallible convenience for non-aggregate
/// queries (the benchmark set); aggregate queries go through
/// [`translate_query`], which can reject unbound group/count variables.
pub fn translate(query: &Query) -> Translated {
    translate_query(query).expect("non-aggregate queries always translate")
}

/// Translates a parsed query, surfacing aggregation errors.
pub fn translate_query(query: &Query) -> Result<Translated, TranslateError> {
    if query.is_aggregate() {
        return translate_aggregate(query);
    }
    let mut vars = VarTable::default();
    let pattern = translate_group(&query.pattern, &mut vars);

    let ask = query.is_ask();
    if ask {
        return Ok(Translated {
            algebra: pattern,
            vars,
            projection: Vec::new(),
            columns: Vec::new(),
            ask,
        });
    }

    let QueryForm::Select {
        distinct,
        variables,
    } = &query.form
    else {
        unreachable!("non-ASK is SELECT")
    };
    let projection: Vec<usize> = if variables.is_empty() {
        pattern.all_vars() // SELECT *
    } else {
        variables.iter().map(|v| vars.intern(v)).collect()
    };

    let mut algebra = pattern;
    if !query.order_by.is_empty() {
        let keys = query
            .order_by
            .iter()
            .map(|k| ResolvedOrderKey {
                expr: compile_expr(&k.expression, &mut vars),
                descending: k.descending,
            })
            .collect();
        algebra = Algebra::OrderBy(keys, Box::new(algebra));
    }
    algebra = Algebra::Project(projection.clone(), Box::new(algebra));
    if *distinct {
        algebra = Algebra::Distinct(Box::new(algebra));
    }
    if query.limit.is_some() || query.offset.is_some() {
        algebra = Algebra::Slice {
            offset: query.offset.unwrap_or(0),
            limit: query.limit,
            input: Box::new(algebra),
        };
    }
    let columns = projection
        .iter()
        .map(|&i| vars.name(i).to_owned())
        .collect();
    Ok(Translated {
        algebra,
        vars,
        projection,
        columns,
        ask,
    })
}

/// Aggregation extension: the pattern algebra wrapped in
/// [`Algebra::Group`]. Group/count variables must occur in the pattern —
/// an absent one is a preparation error, not a panic.
fn translate_aggregate(query: &Query) -> Result<Translated, TranslateError> {
    let mut vars = VarTable::default();
    let pattern = translate_group(&query.pattern, &mut vars);

    let group_vars: Vec<usize> = query
        .group_by
        .iter()
        .map(|v| {
            vars.lookup(v)
                .ok_or_else(|| TranslateError::UnboundVariable(v.clone()))
        })
        .collect::<Result<_, _>>()?;
    let counts: Vec<CountSpec> = query
        .aggregates
        .iter()
        .map(|a| {
            let target = match &a.target {
                Some(v) => Some(
                    vars.lookup(v)
                        .ok_or_else(|| TranslateError::UnboundVariable(v.clone()))?,
                ),
                None => None,
            };
            Ok(CountSpec {
                target,
                distinct: a.distinct,
            })
        })
        .collect::<Result<_, _>>()?;

    let mut columns: Vec<String> = query.group_by.clone();
    columns.extend(query.aggregates.iter().map(|a| a.alias.clone()));
    // Output-column ORDER BY: keys must name a group var or an alias.
    let order_by: Vec<(usize, bool)> = query
        .order_by
        .iter()
        .map(|k| match &k.expression {
            Expression::Var(v) => columns
                .iter()
                .position(|c| c == v)
                .map(|col| (col, k.descending))
                .ok_or_else(|| {
                    TranslateError::Unsupported(format!(
                        "ORDER BY ?{v} must name a GROUP BY variable or aggregate alias"
                    ))
                }),
            other => Err(TranslateError::Unsupported(format!(
                "aggregate ORDER BY supports plain variables, got {other}"
            ))),
        })
        .collect::<Result<_, _>>()?;

    let spec = GroupSpec {
        group_vars,
        counts,
        columns: columns.clone(),
        order_by,
        offset: query.offset.unwrap_or(0),
        limit: query.limit,
    };
    Ok(Translated {
        algebra: Algebra::Group(spec, Box::new(pattern)),
        vars,
        projection: Vec::new(),
        columns,
        ask: false,
    })
}

/// Spec §12.2.1: group translation. Filters scope over the whole group and
/// are applied at the end — except that a filter inside an OPTIONAL group
/// becomes the LeftJoin condition (handled by the caller seeing the
/// `Filter` wrapper).
fn translate_group(group: &GroupPattern, vars: &mut VarTable) -> Algebra {
    let mut g = Algebra::unit();
    let mut filters: Vec<Expr> = Vec::new();

    for element in &group.elements {
        match element {
            GroupElement::Triples(patterns) => {
                let bgp = Algebra::Bgp {
                    patterns: patterns.iter().map(|p| resolve_pattern(p, vars)).collect(),
                    inline_filters: Vec::new(),
                };
                g = join(g, bgp);
            }
            GroupElement::Optional(inner) => {
                let translated = translate_group(inner, vars);
                // OPTIONAL { P FILTER C } → LeftJoin(G, P, C).
                let (algebra, condition) = match translated {
                    Algebra::Filter(c, a) => (*a, Some(c)),
                    other => (other, None),
                };
                g = Algebra::LeftJoin(Box::new(g), Box::new(algebra), condition);
            }
            GroupElement::Union(branches) => {
                let mut it = branches.iter();
                let first = translate_group(it.next().expect("nonempty union"), vars);
                let union = it.fold(first, |acc, b| {
                    Algebra::Union(Box::new(acc), Box::new(translate_group(b, vars)))
                });
                g = join(g, union);
            }
            GroupElement::Group(inner) => {
                let translated = translate_group(inner, vars);
                g = join(g, translated);
            }
            GroupElement::Filter(e) => filters.push(compile_expr(e, vars)),
        }
    }

    match Expr::fold_and(filters) {
        Some(f) => Algebra::Filter(f, Box::new(g)),
        None => g,
    }
}

/// `Join(unit, X) = X`; otherwise a Join node.
fn join(a: Algebra, b: Algebra) -> Algebra {
    if a.is_unit() {
        b
    } else if b.is_unit() {
        a
    } else {
        Algebra::Join(Box::new(a), Box::new(b))
    }
}

fn resolve_slot(t: &TermOrVar, vars: &mut VarTable) -> Slot {
    match t {
        TermOrVar::Term(term) => Slot::Const(term.clone()),
        TermOrVar::Var(name) => Slot::Var(vars.intern(name)),
    }
}

fn resolve_pattern(p: &TriplePattern, vars: &mut VarTable) -> ResolvedPattern {
    ResolvedPattern {
        s: resolve_slot(&p.subject, vars),
        p: resolve_slot(&p.predicate, vars),
        o: resolve_slot(&p.object, vars),
    }
}

/// Compiles an AST expression to variable indices.
pub fn compile_expr(e: &Expression, vars: &mut VarTable) -> Expr {
    match e {
        Expression::Var(v) => Expr::Var(vars.intern(v)),
        Expression::Constant(t) => Expr::Const(t.clone()),
        Expression::Bound(v) => Expr::Bound(vars.intern(v)),
        Expression::Not(a) => Expr::Not(Box::new(compile_expr(a, vars))),
        Expression::And(a, b) => Expr::And(
            Box::new(compile_expr(a, vars)),
            Box::new(compile_expr(b, vars)),
        ),
        Expression::Or(a, b) => Expr::Or(
            Box::new(compile_expr(a, vars)),
            Box::new(compile_expr(b, vars)),
        ),
        Expression::Compare(op, a, b) => Expr::Compare(
            *op,
            Box::new(compile_expr(a, vars)),
            Box::new(compile_expr(b, vars)),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn translated(q: &str) -> Translated {
        translate(&parse(q).unwrap())
    }

    #[test]
    fn simple_bgp_translation() {
        let t = translated("SELECT ?x WHERE { ?x <http://p> ?y . ?y <http://q> ?z }");
        // Project(Bgp).
        let Algebra::Project(proj, inner) = &t.algebra else {
            panic!()
        };
        assert_eq!(proj.len(), 1);
        let Algebra::Bgp { patterns, .. } = inner.as_ref() else {
            panic!()
        };
        assert_eq!(patterns.len(), 2);
    }

    #[test]
    fn optional_filter_becomes_leftjoin_condition() {
        let t = translated(
            "SELECT ?a WHERE { ?a <http://p> ?b OPTIONAL { ?b <http://q> ?c FILTER (?c = ?a) } }",
        );
        let Algebra::Project(_, inner) = &t.algebra else {
            panic!()
        };
        let Algebra::LeftJoin(_, _, cond) = inner.as_ref() else {
            panic!("expected LeftJoin, got {inner:?}")
        };
        assert!(
            cond.is_some(),
            "inner FILTER must become the join condition"
        );
    }

    #[test]
    fn plain_optional_has_no_condition() {
        let t = translated("SELECT ?a WHERE { ?a <http://p> ?b OPTIONAL { ?b <http://q> ?c } }");
        let Algebra::Project(_, inner) = &t.algebra else {
            panic!()
        };
        let Algebra::LeftJoin(_, _, cond) = inner.as_ref() else {
            panic!()
        };
        assert!(cond.is_none());
    }

    #[test]
    fn group_filters_scope_over_whole_group() {
        // Filter placed syntactically in the middle still applies last.
        let t =
            translated("SELECT ?a WHERE { ?a <http://p> ?b FILTER (?b = ?c) ?a <http://q> ?c }");
        let Algebra::Project(_, inner) = &t.algebra else {
            panic!()
        };
        let Algebra::Filter(_, filtered) = inner.as_ref() else {
            panic!("expected group-level filter, got {inner:?}")
        };
        // Both triple blocks joined beneath the filter.
        match filtered.as_ref() {
            Algebra::Join(..) | Algebra::Bgp { .. } => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn union_translation() {
        let t = translated(
            "SELECT ?x WHERE { { ?x <http://a> ?y } UNION { ?x <http://b> ?y } UNION { ?x <http://c> ?y } }",
        );
        let Algebra::Project(_, inner) = &t.algebra else {
            panic!()
        };
        let Algebra::Union(left, _) = inner.as_ref() else {
            panic!("{inner:?}")
        };
        assert!(
            matches!(left.as_ref(), Algebra::Union(..)),
            "left-deep union chain"
        );
    }

    #[test]
    fn modifiers_nest_in_spec_order() {
        let t = translated(
            "SELECT DISTINCT ?x WHERE { ?x <http://p> ?y } ORDER BY ?x LIMIT 10 OFFSET 5",
        );
        // Slice(Distinct(Project(OrderBy(Bgp)))).
        let Algebra::Slice {
            offset,
            limit,
            input,
        } = &t.algebra
        else {
            panic!()
        };
        assert_eq!((*offset, *limit), (5, Some(10)));
        let Algebra::Distinct(inner) = input.as_ref() else {
            panic!()
        };
        let Algebra::Project(_, inner) = inner.as_ref() else {
            panic!()
        };
        assert!(matches!(inner.as_ref(), Algebra::OrderBy(..)));
    }

    #[test]
    fn certain_vars_of_leftjoin_is_left_side() {
        let t = translated("SELECT ?a WHERE { ?a <http://p> ?b OPTIONAL { ?b <http://q> ?c } }");
        let Algebra::Project(_, inner) = &t.algebra else {
            panic!()
        };
        let certain = inner.certain_vars();
        let a = t.vars.lookup("a").unwrap();
        let b = t.vars.lookup("b").unwrap();
        let c = t.vars.lookup("c").unwrap();
        assert!(certain.contains(&a));
        assert!(certain.contains(&b));
        assert!(!certain.contains(&c), "optional var is not certain");
        assert!(inner.all_vars().contains(&c));
    }

    #[test]
    fn union_certain_vars_is_intersection() {
        let t = translated("SELECT ?x WHERE { { ?x <http://a> ?y } UNION { ?x <http://b> ?z } }");
        let Algebra::Project(_, inner) = &t.algebra else {
            panic!()
        };
        let certain = inner.certain_vars();
        assert_eq!(certain, vec![t.vars.lookup("x").unwrap()]);
    }

    #[test]
    fn ask_has_no_projection() {
        let t = translated("ASK { ?x <http://p> ?y }");
        assert!(t.ask);
        assert!(t.projection.is_empty());
        assert!(matches!(t.algebra, Algebra::Bgp { .. }));
    }

    #[test]
    fn conjunct_split_and_fold() {
        let mut vars = VarTable::default();
        let e = compile_expr(
            &parse(
                "SELECT ?a WHERE { ?a <http://p> ?b FILTER (?a != ?b && bound(?a) && ?b != ?a) }",
            )
            .map(|q| match &q.pattern.elements[1] {
                GroupElement::Filter(f) => f.clone(),
                _ => panic!(),
            })
            .unwrap(),
            &mut vars,
        );
        let parts = e.clone().conjuncts();
        assert_eq!(parts.len(), 3);
        let folded = Expr::fold_and(parts).unwrap();
        // Refolding preserves the conjunct set (evaluation semantics equal).
        assert_eq!(folded.variables(), e.variables());
    }
}
