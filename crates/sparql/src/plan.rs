//! Physical plans: the algebra bound to a concrete store.
//!
//! Binding resolves every constant term to its dictionary id (or `None`
//! when the term does not occur in the data — such a pattern matches
//! nothing, which is how Q3c/Q12c become constant-time on any store) and
//! precomputes hash-join keys (shared *certain* variables). Residual
//! possibly-shared variables need no plan field: the evaluator's
//! [`crate::eval::Bindings::merge_checked`] verifies *every* position at
//! merge time, which subsumes any explicit check list.
//!
//! [`parallelize`] is the physical optimization pass behind
//! [`crate::QueryOptions::parallelism`]: it inserts [`Plan::Exchange`]
//! above pipelines whose driving scan is estimated large enough to be
//! worth splitting into morsels (see [`crate::par`]).

use sp2b_store::{Id, TripleStore};

use crate::algebra::{Algebra, GroupSpec, ResolvedPattern, Slot};
use crate::expr::BoundExpr;

/// A pattern slot bound to the store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PlanSlot {
    /// Constant term: its id, or `None` if absent from the data.
    Const(Option<Id>),
    /// Variable by index.
    Var(usize),
}

/// A store-bound triple pattern.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanPattern {
    /// (s, p, o) slots.
    pub slots: [PlanSlot; 3],
}

impl PlanPattern {
    fn bind(p: &ResolvedPattern, store: &dyn TripleStore) -> Self {
        let bind_slot = |s: &Slot| match s {
            Slot::Const(t) => PlanSlot::Const(store.resolve(t)),
            Slot::Var(i) => PlanSlot::Var(*i),
        };
        PlanPattern {
            slots: [bind_slot(&p.s), bind_slot(&p.p), bind_slot(&p.o)],
        }
    }

    /// True if a constant failed to resolve (pattern can never match).
    pub fn is_unsatisfiable(&self) -> bool {
        self.slots
            .iter()
            .any(|s| matches!(s, PlanSlot::Const(None)))
    }
}

/// ORDER BY key in the plan.
#[derive(Debug, Clone)]
pub enum PlanOrderKey {
    /// Order by a variable's term value (the common case).
    Var {
        /// Variable index.
        var: usize,
        /// Descending?
        descending: bool,
    },
    /// Order by an expression's effective boolean value (rare).
    Expr {
        /// The expression.
        expr: BoundExpr,
        /// Descending?
        descending: bool,
    },
}

/// The physical plan tree.
#[derive(Debug, Clone)]
pub enum Plan {
    /// Index-nested-loop BGP with optionally pushed-down filters.
    Bgp {
        /// Patterns in execution order.
        patterns: Vec<PlanPattern>,
        /// `(position, filter)`: run `filter` once `patterns[position]`
        /// has bound its variables.
        filters: Vec<(usize, BoundExpr)>,
    },
    /// Hash join. Variables shared but only *possibly* bound on a side
    /// are not part of the key; they are enforced by the evaluator's
    /// full-row merge ([`crate::eval::Bindings::merge_checked`]).
    Join {
        /// Probe side (streamed).
        left: Box<Plan>,
        /// Build side (materialized).
        right: Box<Plan>,
        /// Hash-key variables (certainly bound on both sides).
        key: Vec<usize>,
    },
    /// Left outer join with optional condition.
    LeftJoin {
        /// Preserved side (streamed).
        left: Box<Plan>,
        /// Optional side (materialized).
        right: Box<Plan>,
        /// Hash-key variables.
        key: Vec<usize>,
        /// The OPTIONAL filter condition, if any.
        condition: Option<BoundExpr>,
    },
    /// Concatenation.
    Union(Box<Plan>, Box<Plan>),
    /// Row filter.
    Filter(BoundExpr, Box<Plan>),
    /// Order-preserving duplicate elimination.
    Distinct(Box<Plan>),
    /// Keep only the given variables bound.
    Project(Vec<usize>, Box<Plan>),
    /// Materializing sort.
    OrderBy(Vec<PlanOrderKey>, Box<Plan>),
    /// OFFSET/LIMIT.
    Slice {
        /// Rows to skip.
        offset: u64,
        /// Max rows.
        limit: Option<u64>,
        /// Input plan.
        input: Box<Plan>,
    },
    /// GROUP BY + COUNT over the input stream (the aggregation
    /// extension). Always the plan root: its output rows carry computed
    /// counts the dictionary has no ids for, so they leave the
    /// [`crate::eval::Bindings`] representation (see
    /// [`crate::eval::AggRow`]). Output ordering and OFFSET/LIMIT are part
    /// of the spec because they apply to aggregated rows.
    GroupAggregate {
        /// Grouping, counting and output-modifier specification.
        spec: GroupSpec,
        /// The pattern producing the rows to aggregate.
        input: Box<Plan>,
    },
    /// Morsel-driven parallel execution (inserted by [`parallelize`]):
    /// the driving scan of `input` — the first pattern of the leftmost
    /// BGP, reached through join probe sides and filters — is split into
    /// disjoint chunks via [`sp2b_store::TripleStore::scan_chunks`] and
    /// fanned out to `degree` worker threads, hash-join build sides
    /// shared read-only. Per-morsel results merge in morsel order, so the
    /// output order equals sequential evaluation; the merge materializes
    /// (like `OrderBy`). See [`crate::par`].
    Exchange {
        /// Worker-thread count (always ≥ 2; a degree of 1 is never
        /// planned — sequential plans simply omit the operator).
        degree: usize,
        /// The threshold base this exchange was planned under (see
        /// [`parallel_threshold_with`]): carried so eval-time fan-out
        /// decisions below the exchange — hash-join build sides — use
        /// the same calibrated base as the plan-level decision.
        base: u64,
        /// The pipeline each worker runs per morsel.
        input: Box<Plan>,
    },
}

/// Binds an algebra tree to a store.
pub fn bind(algebra: &Algebra, store: &dyn TripleStore) -> Plan {
    match algebra {
        Algebra::Bgp {
            patterns,
            inline_filters,
        } => Plan::Bgp {
            patterns: patterns
                .iter()
                .map(|p| PlanPattern::bind(p, store))
                .collect(),
            filters: inline_filters
                .iter()
                .map(|(pos, e)| (*pos, BoundExpr::bind(e, store)))
                .collect(),
        },
        Algebra::Join(a, b) => Plan::Join {
            left: Box::new(bind(a, store)),
            right: Box::new(bind(b, store)),
            key: join_key(a, b),
        },
        Algebra::LeftJoin(a, b, cond) => Plan::LeftJoin {
            left: Box::new(bind(a, store)),
            right: Box::new(bind(b, store)),
            key: join_key(a, b),
            condition: cond.as_ref().map(|c| BoundExpr::bind(c, store)),
        },
        Algebra::Union(a, b) => Plan::Union(Box::new(bind(a, store)), Box::new(bind(b, store))),
        Algebra::Filter(e, inner) => {
            Plan::Filter(BoundExpr::bind(e, store), Box::new(bind(inner, store)))
        }
        Algebra::Distinct(inner) => Plan::Distinct(Box::new(bind(inner, store))),
        Algebra::Project(vars, inner) => Plan::Project(vars.clone(), Box::new(bind(inner, store))),
        Algebra::OrderBy(keys, inner) => Plan::OrderBy(
            keys.iter()
                .map(|k| match &k.expr {
                    crate::algebra::Expr::Var(i) => PlanOrderKey::Var {
                        var: *i,
                        descending: k.descending,
                    },
                    other => PlanOrderKey::Expr {
                        expr: BoundExpr::bind(other, store),
                        descending: k.descending,
                    },
                })
                .collect(),
            Box::new(bind(inner, store)),
        ),
        Algebra::Slice {
            offset,
            limit,
            input,
        } => Plan::Slice {
            offset: *offset,
            limit: *limit,
            input: Box::new(bind(input, store)),
        },
        Algebra::Group(spec, input) => Plan::GroupAggregate {
            spec: spec.clone(),
            input: Box::new(bind(input, store)),
        },
    }
}

/// Hash-join key: the variables certainly bound on both sides. Shared
/// variables that are only *possibly* bound on a side (e.g. bound inside
/// an OPTIONAL) must not key the hash table — they are enforced at merge
/// time by [`crate::eval::Bindings::merge_checked`], which compares every
/// position of both rows.
fn join_key(a: &Algebra, b: &Algebra) -> Vec<usize> {
    let ca = a.certain_vars();
    let cb = b.certain_vars();
    ca.iter().copied().filter(|v| cb.contains(v)).collect()
}

// ---------------------------------------------------------------------------
// Parallelization (the physical pass behind QueryOptions::parallelism)
// ---------------------------------------------------------------------------

/// Driving-scan cardinality at which an [`Plan::Exchange`] pays off for a
/// pipeline of [`REFERENCE_PIPELINE_COST`] per driving row. Pipelines
/// cheaper per row need proportionally larger scans to amortize the
/// fan-out overhead; more expensive ones fan out earlier — see
/// [`parallel_threshold`].
pub const PARALLEL_BASE_THRESHOLD: u64 = 512;

/// Lower clamp of [`parallel_threshold`]: below this many driving rows,
/// thread-spawn and merge overhead dominates no matter how expensive the
/// per-row pipeline is.
pub const PARALLEL_MIN_THRESHOLD: u64 = 128;

/// Upper clamp of [`parallel_threshold`]: above this many driving rows,
/// even the cheapest scan-and-emit pipeline amortizes the fan-out.
pub const PARALLEL_MAX_THRESHOLD: u64 = 4096;

/// The per-driving-row pipeline cost that earns exactly the base
/// threshold: a moderate BGP chain of half a dozen index probes.
const REFERENCE_PIPELINE_COST: f64 = 8.0;

/// Per-operator cost weights for [`pipeline_cost_per_row`], in "index
/// probe" units. The defaults are the historical hand-tuned constants;
/// `sp2b calibrate` *measures* them (scan-emit, filter, hash-probe
/// micro-timings on generated data) and feeds the result through
/// [`crate::QueryOptions::cost_weights`], so the parallelize threshold
/// reflects the machine it runs on rather than the one the constants
/// were tuned on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostWeights {
    /// Emitting a driving row (the scan-and-emit floor).
    pub emit: f64,
    /// Evaluating one pushed-down or standalone filter.
    pub filter: f64,
    /// One binary-searched index probe (each subsequent BGP pattern).
    pub probe: f64,
    /// One hash-table bucket lookup (join probe, before fan-out).
    pub hash_probe: f64,
}

impl Default for CostWeights {
    fn default() -> Self {
        CostWeights {
            emit: 0.5,
            filter: 0.25,
            probe: 1.0,
            hash_probe: 1.0,
        }
    }
}

/// Heuristic cost of running one driving row through the rest of the
/// pipeline, in "index probe" units (the morsel driver's unit of work):
///
/// * emitting the row itself: ½ probe;
/// * each subsequent BGP pattern: one binary-searched index probe (the
///   log factor of its candidate-list size contributes mildly);
/// * each hash-join probe: one bucket lookup plus the expected per-probe
///   fan-out, approximated from the build side's driving-scan estimate —
///   this is what makes Q4-style quadratic joins "expensive" and fan out
///   early;
/// * filters: ¼ probe each.
///
/// Shapes the morsel driver cannot run per-morsel score the reference
/// cost (their threshold is the base — moot, since [`maybe_exchange`]
/// only wraps runnable segments).
pub fn pipeline_cost_per_row(plan: &Plan, store: &dyn TripleStore) -> f64 {
    pipeline_cost_per_row_with(plan, store, &CostWeights::default())
}

/// Like [`pipeline_cost_per_row`] with calibrated operator weights.
pub fn pipeline_cost_per_row_with(
    plan: &Plan,
    store: &dyn TripleStore,
    weights: &CostWeights,
) -> f64 {
    match plan {
        Plan::Bgp { patterns, filters } => {
            let mut cost = weights.emit + weights.filter * filters.len() as f64;
            for p in patterns.iter().skip(1) {
                let est = store.estimate(const_pattern(p)).max(2) as f64;
                cost += weights.probe + est.log2() / 16.0;
            }
            cost
        }
        Plan::Join { left, right, .. } | Plan::LeftJoin { left, right, .. } => {
            // Expected matches per probe: the build side's size relative
            // to a nominal key-diversity of 256 — crude, but it separates
            // "probe a small negation table" from "self-join the corpus".
            let build = driving_scan(right)
                .filter(|p| !p.is_unsatisfiable())
                .map_or(64.0, |p| store.estimate(const_pattern(p)).max(2) as f64);
            let fanout = (build / 256.0).clamp(1.0, 64.0);
            pipeline_cost_per_row_with(left, store, weights) + weights.hash_probe + fanout
        }
        Plan::Filter(_, inner) => {
            weights.filter + pipeline_cost_per_row_with(inner, store, weights)
        }
        _ => REFERENCE_PIPELINE_COST,
    }
}

/// The per-plan exchange threshold (replacing the old constant
/// `PARALLEL_THRESHOLD`): the base threshold scaled inversely by the
/// pipeline's estimated per-row cost and clamped to
/// [[`PARALLEL_MIN_THRESHOLD`], [`PARALLEL_MAX_THRESHOLD`]]. A
/// scan-and-emit pipeline (Q2-style cheap rows) must clear
/// [`PARALLEL_MAX_THRESHOLD`] driving rows before fanning out; a
/// join-heavy pipeline (Q4-style quadratic) fans out near the minimum.
pub fn parallel_threshold(plan: &Plan, store: &dyn TripleStore) -> u64 {
    parallel_threshold_with(plan, store, PARALLEL_BASE_THRESHOLD)
}

/// Like [`parallel_threshold`] with a caller-supplied base — the hook
/// for **measured** calibration: `sp2b calibrate` times per-morsel
/// fan-out overhead on generated data and the measured base flows in
/// through `QueryOptions::parallel_base`. The clamp window scales with
/// the base at the same ratios as the static one (base/4 … base×8, which
/// for the default base of 512 is exactly [128, 4096]), so a calibrated
/// base above 4096 — or below 128 — is honoured rather than clamped back
/// to the static window.
pub fn parallel_threshold_with(plan: &Plan, store: &dyn TripleStore, base: u64) -> u64 {
    parallel_threshold_calibrated(plan, store, base, &CostWeights::default())
}

/// Like [`parallel_threshold_with`] with calibrated operator weights.
pub fn parallel_threshold_calibrated(
    plan: &Plan,
    store: &dyn TripleStore,
    base: u64,
    weights: &CostWeights,
) -> u64 {
    let base = base.max(1);
    let cost = pipeline_cost_per_row_with(plan, store, weights).max(0.25);
    let scaled = base as f64 * (REFERENCE_PIPELINE_COST / cost);
    (scaled.round() as u64).clamp((base / 4).max(1), base.saturating_mul(8))
}

/// Inserts [`Plan::Exchange`] operators for a target `degree` of
/// parallelism. The pass descends through merge-side operators (project,
/// sort, distinct, aggregation, union branches) and wraps each pipeline
/// segment — BGP, join probe chain, filter — whose driving scan the
/// store estimates at that segment's [`parallel_threshold`] or more. With
/// `degree <= 1` the plan is returned unchanged (today's sequential
/// behavior).
///
/// `Slice` is a barrier: LIMIT/OFFSET execute as a lazy skip/take, and
/// an exchange below them would materialize the *full* input to deliver
/// a handful of rows. The pass only crosses a `Slice` when a
/// materializing sort sits directly beneath it (the `ORDER BY … LIMIT`
/// shape, e.g. Q11), where laziness is already gone.
pub fn parallelize(plan: Plan, store: &dyn TripleStore, degree: usize) -> Plan {
    parallelize_with(plan, store, degree, PARALLEL_BASE_THRESHOLD)
}

/// Like [`parallelize`] with an explicit threshold base (see
/// [`parallel_threshold_with`]) — what `QueryOptions::parallel_base`
/// feeds through `prepare`.
pub fn parallelize_with(plan: Plan, store: &dyn TripleStore, degree: usize, base: u64) -> Plan {
    parallelize_calibrated(plan, store, degree, base, &CostWeights::default())
}

/// Like [`parallelize_with`] with calibrated operator weights (see
/// [`CostWeights`]) — what `QueryOptions::cost_weights` feeds through
/// `prepare`.
pub fn parallelize_calibrated(
    plan: Plan,
    store: &dyn TripleStore,
    degree: usize,
    base: u64,
    weights: &CostWeights,
) -> Plan {
    if degree <= 1 {
        return plan;
    }
    match plan {
        Plan::Project(vars, inner) => Plan::Project(
            vars,
            Box::new(parallelize_calibrated(*inner, store, degree, base, weights)),
        ),
        Plan::OrderBy(keys, inner) => Plan::OrderBy(
            keys,
            Box::new(parallelize_calibrated(*inner, store, degree, base, weights)),
        ),
        Plan::Distinct(inner) => Plan::Distinct(Box::new(parallelize_calibrated(
            *inner, store, degree, base, weights,
        ))),
        Plan::Slice {
            offset,
            limit,
            input,
        } => {
            let input = if materializes_anyway(&input) {
                Box::new(parallelize_calibrated(*input, store, degree, base, weights))
            } else {
                input // keep the skip/take lazy: no exchange below
            };
            Plan::Slice {
                offset,
                limit,
                input,
            }
        }
        Plan::GroupAggregate { spec, input } => Plan::GroupAggregate {
            spec,
            input: Box::new(parallelize_calibrated(*input, store, degree, base, weights)),
        },
        Plan::Union(a, b) => Plan::Union(
            Box::new(parallelize_calibrated(*a, store, degree, base, weights)),
            Box::new(parallelize_calibrated(*b, store, degree, base, weights)),
        ),
        // Pipeline segments the parallel driver can run per-morsel.
        other @ (Plan::Bgp { .. }
        | Plan::Join { .. }
        | Plan::LeftJoin { .. }
        | Plan::Filter(..)) => maybe_exchange(other, store, degree, base, weights),
        // Already parallel (idempotence) — leave as is.
        other @ Plan::Exchange { .. } => other,
    }
}

/// True when a `Slice` input materializes regardless of parallelism — a
/// sort somewhere beneath its streaming wrappers (the `ORDER BY … LIMIT`
/// shape binds as `Slice(Project(OrderBy(…)))`). Only then is an
/// exchange below the slice free of a laziness cost.
fn materializes_anyway(plan: &Plan) -> bool {
    match plan {
        Plan::OrderBy(..) => true,
        Plan::Project(_, inner) | Plan::Distinct(inner) => materializes_anyway(inner),
        _ => false,
    }
}

/// Wraps `plan` in an Exchange when its driving scan clears the
/// pipeline's cost-scaled cardinality threshold.
fn maybe_exchange(
    plan: Plan,
    store: &dyn TripleStore,
    degree: usize,
    base: u64,
    weights: &CostWeights,
) -> Plan {
    let worthwhile = driving_scan(&plan).is_some_and(|p| {
        !p.is_unsatisfiable()
            && store.estimate(const_pattern(p))
                >= parallel_threshold_calibrated(&plan, store, base, weights)
    });
    if worthwhile {
        Plan::Exchange {
            degree,
            base,
            input: Box::new(plan),
        }
    } else {
        plan
    }
}

/// Whether a plan tree contains an [`Plan::Exchange`] — shared by tests
/// and the calibration report.
pub fn has_exchange(plan: &Plan) -> bool {
    match plan {
        Plan::Exchange { .. } => true,
        Plan::Bgp { .. } => false,
        Plan::Join { left, right, .. } | Plan::LeftJoin { left, right, .. } => {
            has_exchange(left) || has_exchange(right)
        }
        Plan::Union(a, b) => has_exchange(a) || has_exchange(b),
        Plan::Filter(_, inner)
        | Plan::Distinct(inner)
        | Plan::Project(_, inner)
        | Plan::OrderBy(_, inner) => has_exchange(inner),
        Plan::Slice { input, .. } | Plan::GroupAggregate { input, .. } => has_exchange(input),
    }
}

/// Every basic graph pattern in the plan, in join order (probe side
/// before build side) — the order `--explain`/`--trace` and the server's
/// slow-query log display operators in.
pub fn collect_patterns(plan: &Plan) -> Vec<&PlanPattern> {
    fn walk<'p>(plan: &'p Plan, out: &mut Vec<&'p PlanPattern>) {
        match plan {
            Plan::Bgp { patterns, .. } => out.extend(patterns.iter()),
            Plan::Join { left, right, .. } | Plan::LeftJoin { left, right, .. } => {
                walk(left, out);
                walk(right, out);
            }
            Plan::Union(a, b) => {
                walk(a, out);
                walk(b, out);
            }
            Plan::Filter(_, inner)
            | Plan::Distinct(inner)
            | Plan::Project(_, inner)
            | Plan::OrderBy(_, inner) => walk(inner, out),
            Plan::Slice { input, .. }
            | Plan::GroupAggregate { input, .. }
            | Plan::Exchange { input, .. } => walk(input, out),
        }
    }
    let mut out = Vec::new();
    walk(plan, &mut out);
    out
}

/// The driving scan of a pipeline: the first pattern of the leftmost BGP,
/// reached through join probe (streamed) sides and filters. `None` when
/// the pipeline has no partitionable driving scan (e.g. a union).
pub(crate) fn driving_scan(plan: &Plan) -> Option<&PlanPattern> {
    match plan {
        Plan::Bgp { patterns, .. } => patterns.first(),
        Plan::Join { left, .. } | Plan::LeftJoin { left, .. } => driving_scan(left),
        Plan::Filter(_, inner) => driving_scan(inner),
        _ => None,
    }
}

/// The store pattern of a plan pattern's constant slots — exactly the
/// pattern the driving scan issues for an empty input row (variables
/// unbound).
pub(crate) fn const_pattern(p: &PlanPattern) -> sp2b_store::Pattern {
    let mut out: sp2b_store::Pattern = [None, None, None];
    for (i, slot) in p.slots.iter().enumerate() {
        if let PlanSlot::Const(Some(id)) = slot {
            out[i] = Some(*id);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra::translate;
    use crate::parser::parse;
    use sp2b_rdf::{Graph, Iri, Subject, Term};
    use sp2b_store::MemStore;

    fn store() -> MemStore {
        let mut g = Graph::new();
        g.add(
            Subject::iri("http://x/s"),
            Iri::new("http://x/p"),
            Term::iri("http://x/o"),
        );
        MemStore::from_graph(&g)
    }

    #[test]
    fn binding_resolves_constants() {
        let t = translate(&parse("SELECT ?s WHERE { ?s <http://x/p> <http://x/o> }").unwrap());
        let plan = bind(&t.algebra, &store());
        let Plan::Project(_, inner) = plan else {
            panic!()
        };
        let Plan::Bgp { patterns, .. } = *inner else {
            panic!()
        };
        assert!(!patterns[0].is_unsatisfiable());
        assert!(matches!(patterns[0].slots[1], PlanSlot::Const(Some(_))));
    }

    #[test]
    fn missing_constant_marks_unsatisfiable() {
        let t = translate(&parse("SELECT ?s WHERE { ?s <http://x/nope> ?o }").unwrap());
        let plan = bind(&t.algebra, &store());
        let Plan::Project(_, inner) = plan else {
            panic!()
        };
        let Plan::Bgp { patterns, .. } = *inner else {
            panic!()
        };
        assert!(patterns[0].is_unsatisfiable());
    }

    #[test]
    fn join_keys_are_shared_certain_vars() {
        let t = translate(
            &parse("SELECT ?x WHERE { { ?x <http://x/p> ?y } { ?x <http://x/p> ?z } }").unwrap(),
        );
        let plan = bind(&t.algebra, &store());
        let Plan::Project(_, inner) = plan else {
            panic!()
        };
        let Plan::Join { key, .. } = *inner else {
            panic!("{inner:?}")
        };
        assert_eq!(key, vec![t.vars.lookup("x").unwrap()]);
    }

    #[test]
    fn possibly_bound_shared_var_stays_out_of_key() {
        // ?c appears in both branches but is only *possibly* bound on the
        // left (inside an OPTIONAL): it must not enter the hash key — the
        // evaluator's full-row merge enforces it instead (see
        // eval::tests::join_merges_possibly_bound_shared_variable).
        let t = translate(
            &parse(
                "SELECT ?a WHERE {
                    { ?a <http://x/p> ?b OPTIONAL { ?b <http://x/q> ?c } }
                    { ?a <http://x/r> ?c }
                 }",
            )
            .unwrap(),
        );
        let plan = bind(&t.algebra, &store());
        let Plan::Project(_, inner) = plan else {
            panic!()
        };
        let Plan::Join { key, .. } = *inner else {
            panic!("{inner:?}")
        };
        let a = t.vars.lookup("a").unwrap();
        let c = t.vars.lookup("c").unwrap();
        assert_eq!(key, vec![a], "only the certainly-shared var keys the join");
        assert!(!key.contains(&c), "?c is not certain on the left");
    }

    fn big_store() -> MemStore {
        let mut g = Graph::new();
        // Clears even the cheap-pipeline (max) threshold.
        for i in 0..(PARALLEL_MAX_THRESHOLD * 2) {
            g.add(
                Subject::iri(format!("http://x/s{i}")),
                Iri::new("http://x/p"),
                Term::iri(format!("http://x/o{i}")),
            );
        }
        MemStore::from_graph(&g)
    }

    #[test]
    fn parallelize_wraps_large_driving_scan() {
        let t = translate(&parse("SELECT ?s WHERE { ?s <http://x/p> ?o } ORDER BY ?s").unwrap());
        let plan = parallelize(bind(&t.algebra, &big_store()), &big_store(), 4);
        // Exchange sits below the merge-side operators, above the BGP.
        let Plan::Project(_, inner) = plan else {
            panic!()
        };
        let Plan::OrderBy(_, inner) = *inner else {
            panic!("{inner:?}")
        };
        let Plan::Exchange {
            degree,
            base,
            input,
        } = *inner
        else {
            panic!("{inner:?}")
        };
        assert_eq!(degree, 4);
        assert_eq!(base, PARALLEL_BASE_THRESHOLD);
        assert!(matches!(*input, Plan::Bgp { .. }));
    }

    #[test]
    fn parallelize_does_not_cross_a_lazy_slice() {
        let big = big_store();
        // LIMIT without ORDER BY: the skip/take stays lazy — an exchange
        // below it would materialize the full input for a handful of rows.
        let t = translate(&parse("SELECT ?s WHERE { ?s <http://x/p> ?o } LIMIT 3").unwrap());
        let plan = parallelize(bind(&t.algebra, &big), &big, 4);
        assert!(!has_exchange(&plan), "{plan:?}");
        // ORDER BY + LIMIT: the sort materializes anyway, so the exchange
        // below it is fair game.
        let t = translate(
            &parse("SELECT ?s WHERE { ?s <http://x/p> ?o } ORDER BY ?s LIMIT 3").unwrap(),
        );
        let plan = parallelize(bind(&t.algebra, &big), &big, 4);
        assert!(has_exchange(&plan), "{plan:?}");
    }

    #[test]
    fn parallelize_skips_small_scans_and_degree_one() {
        let t = translate(&parse("SELECT ?s WHERE { ?s <http://x/p> ?o }").unwrap());
        // Tiny store: below the threshold, no Exchange.
        let small = store();
        let plan = parallelize(bind(&t.algebra, &small), &small, 4);
        assert!(!has_exchange(&plan), "{plan:?}");
        // Large store but degree 1: sequential plan unchanged.
        let big = big_store();
        let plan = parallelize(bind(&t.algebra, &big), &big, 1);
        assert!(!has_exchange(&plan), "{plan:?}");
    }

    #[test]
    fn adaptive_threshold_scales_with_pipeline_cost() {
        let big = big_store();
        let plan_for = |q: &str| {
            let t = translate(&parse(q).unwrap());
            let Plan::Project(_, inner) = bind(&t.algebra, &big) else {
                panic!()
            };
            *inner
        };
        // Cheapest possible pipeline: scan and emit.
        let scan = plan_for("SELECT ?s WHERE { ?s <http://x/p> ?o }");
        // A BGP chain: several index probes per driving row.
        let chain = plan_for(
            "SELECT ?s WHERE { ?s <http://x/p> ?a . ?a <http://x/p> ?b . ?b <http://x/p> ?c . ?c <http://x/p> ?d }",
        );
        // A join against a large build side: per-probe fan-out dominates.
        let join = plan_for("SELECT ?s WHERE { { ?s <http://x/p> ?o } { ?t <http://x/p> ?o } }");
        let t_scan = parallel_threshold(&scan, &big);
        let t_chain = parallel_threshold(&chain, &big);
        let t_join = parallel_threshold(&join, &big);
        assert!(
            t_scan > t_chain && t_chain > t_join,
            "thresholds must order by per-row cost: scan {t_scan} > chain {t_chain} > join {t_join}"
        );
        for t in [t_scan, t_chain, t_join] {
            assert!((PARALLEL_MIN_THRESHOLD..=PARALLEL_MAX_THRESHOLD).contains(&t));
        }
        assert_eq!(
            t_scan, PARALLEL_MAX_THRESHOLD,
            "scan-and-emit clamps to the max threshold"
        );
    }

    #[test]
    fn threshold_base_overrides_scale_the_clamp_window() {
        let big = big_store();
        let t = translate(&parse("SELECT ?s WHERE { ?s <http://x/p> ?o }").unwrap());
        let Plan::Project(_, scan) = bind(&t.algebra, &big) else {
            panic!()
        };
        // Default base reproduces parallel_threshold exactly.
        assert_eq!(
            parallel_threshold_with(&scan, &big, PARALLEL_BASE_THRESHOLD),
            parallel_threshold(&scan, &big)
        );
        // A measured base scales the whole window: thresholds are
        // monotone in the base, and a base outside the static window is
        // honoured rather than clamped back into it.
        let low = parallel_threshold_with(&scan, &big, 8);
        let high = parallel_threshold_with(&scan, &big, 100_000);
        assert!(
            low < PARALLEL_MIN_THRESHOLD,
            "low base escapes the static clamp: {low}"
        );
        assert!(
            high > PARALLEL_MAX_THRESHOLD,
            "high base escapes the static clamp: {high}"
        );
        assert!(low < parallel_threshold(&scan, &big));
        // Base 0 is treated as 1, not a division hazard.
        assert!(parallel_threshold_with(&scan, &big, 0) >= 1);
    }

    #[test]
    fn parallelize_with_base_flips_the_fanout_decision() {
        let big = big_store();
        let t = translate(&parse("SELECT ?s WHERE { ?s <http://x/p> ?o }").unwrap());
        // A tiny base forces the exchange even for a cheap pipeline…
        let plan = parallelize_with(bind(&t.algebra, &big), &big, 4, 1);
        assert!(has_exchange(&plan), "{plan:?}");
        // …and a huge base suppresses it on the same store.
        let plan = parallelize_with(bind(&t.algebra, &big), &big, 4, u64::MAX / 16);
        assert!(!has_exchange(&plan), "{plan:?}");
    }
}
