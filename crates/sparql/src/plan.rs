//! Physical plans: the algebra bound to a concrete store.
//!
//! Binding resolves every constant term to its dictionary id (or `None`
//! when the term does not occur in the data — such a pattern matches
//! nothing, which is how Q3c/Q12c become constant-time on any store), and
//! precomputes hash-join keys (shared *certain* variables) plus residual
//! compatibility-check variables for every Join/LeftJoin.

use sp2b_store::{Id, TripleStore};

use crate::algebra::{Algebra, GroupSpec, ResolvedPattern, Slot};
use crate::expr::BoundExpr;

/// A pattern slot bound to the store.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PlanSlot {
    /// Constant term: its id, or `None` if absent from the data.
    Const(Option<Id>),
    /// Variable by index.
    Var(usize),
}

/// A store-bound triple pattern.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanPattern {
    /// (s, p, o) slots.
    pub slots: [PlanSlot; 3],
}

impl PlanPattern {
    fn bind(p: &ResolvedPattern, store: &dyn TripleStore) -> Self {
        let bind_slot = |s: &Slot| match s {
            Slot::Const(t) => PlanSlot::Const(store.resolve(t)),
            Slot::Var(i) => PlanSlot::Var(*i),
        };
        PlanPattern {
            slots: [bind_slot(&p.s), bind_slot(&p.p), bind_slot(&p.o)],
        }
    }

    /// True if a constant failed to resolve (pattern can never match).
    pub fn is_unsatisfiable(&self) -> bool {
        self.slots
            .iter()
            .any(|s| matches!(s, PlanSlot::Const(None)))
    }
}

/// ORDER BY key in the plan.
#[derive(Debug, Clone)]
pub enum PlanOrderKey {
    /// Order by a variable's term value (the common case).
    Var {
        /// Variable index.
        var: usize,
        /// Descending?
        descending: bool,
    },
    /// Order by an expression's effective boolean value (rare).
    Expr {
        /// The expression.
        expr: BoundExpr,
        /// Descending?
        descending: bool,
    },
}

/// The physical plan tree.
#[derive(Debug, Clone)]
pub enum Plan {
    /// Index-nested-loop BGP with optionally pushed-down filters.
    Bgp {
        /// Patterns in execution order.
        patterns: Vec<PlanPattern>,
        /// `(position, filter)`: run `filter` once `patterns[position]`
        /// has bound its variables.
        filters: Vec<(usize, BoundExpr)>,
    },
    /// Hash join.
    Join {
        /// Probe side (streamed).
        left: Box<Plan>,
        /// Build side (materialized).
        right: Box<Plan>,
        /// Hash-key variables (certainly bound on both sides).
        key: Vec<usize>,
        /// Additional possibly-shared variables needing a merge check.
        check: Vec<usize>,
    },
    /// Left outer join with optional condition.
    LeftJoin {
        /// Preserved side (streamed).
        left: Box<Plan>,
        /// Optional side (materialized).
        right: Box<Plan>,
        /// Hash-key variables.
        key: Vec<usize>,
        /// Residual shared variables.
        check: Vec<usize>,
        /// The OPTIONAL filter condition, if any.
        condition: Option<BoundExpr>,
    },
    /// Concatenation.
    Union(Box<Plan>, Box<Plan>),
    /// Row filter.
    Filter(BoundExpr, Box<Plan>),
    /// Order-preserving duplicate elimination.
    Distinct(Box<Plan>),
    /// Keep only the given variables bound.
    Project(Vec<usize>, Box<Plan>),
    /// Materializing sort.
    OrderBy(Vec<PlanOrderKey>, Box<Plan>),
    /// OFFSET/LIMIT.
    Slice {
        /// Rows to skip.
        offset: u64,
        /// Max rows.
        limit: Option<u64>,
        /// Input plan.
        input: Box<Plan>,
    },
    /// GROUP BY + COUNT over the input stream (the aggregation
    /// extension). Always the plan root: its output rows carry computed
    /// counts the dictionary has no ids for, so they leave the
    /// [`crate::eval::Bindings`] representation (see
    /// [`crate::eval::AggRow`]). Output ordering and OFFSET/LIMIT are part
    /// of the spec because they apply to aggregated rows.
    GroupAggregate {
        /// Grouping, counting and output-modifier specification.
        spec: GroupSpec,
        /// The pattern producing the rows to aggregate.
        input: Box<Plan>,
    },
}

/// Binds an algebra tree to a store.
pub fn bind(algebra: &Algebra, store: &dyn TripleStore) -> Plan {
    match algebra {
        Algebra::Bgp {
            patterns,
            inline_filters,
        } => Plan::Bgp {
            patterns: patterns
                .iter()
                .map(|p| PlanPattern::bind(p, store))
                .collect(),
            filters: inline_filters
                .iter()
                .map(|(pos, e)| (*pos, BoundExpr::bind(e, store)))
                .collect(),
        },
        Algebra::Join(a, b) => {
            let (key, check) = join_vars(a, b);
            Plan::Join {
                left: Box::new(bind(a, store)),
                right: Box::new(bind(b, store)),
                key,
                check,
            }
        }
        Algebra::LeftJoin(a, b, cond) => {
            let (key, check) = join_vars(a, b);
            Plan::LeftJoin {
                left: Box::new(bind(a, store)),
                right: Box::new(bind(b, store)),
                key,
                check,
                condition: cond.as_ref().map(|c| BoundExpr::bind(c, store)),
            }
        }
        Algebra::Union(a, b) => Plan::Union(Box::new(bind(a, store)), Box::new(bind(b, store))),
        Algebra::Filter(e, inner) => {
            Plan::Filter(BoundExpr::bind(e, store), Box::new(bind(inner, store)))
        }
        Algebra::Distinct(inner) => Plan::Distinct(Box::new(bind(inner, store))),
        Algebra::Project(vars, inner) => Plan::Project(vars.clone(), Box::new(bind(inner, store))),
        Algebra::OrderBy(keys, inner) => Plan::OrderBy(
            keys.iter()
                .map(|k| match &k.expr {
                    crate::algebra::Expr::Var(i) => PlanOrderKey::Var {
                        var: *i,
                        descending: k.descending,
                    },
                    other => PlanOrderKey::Expr {
                        expr: BoundExpr::bind(other, store),
                        descending: k.descending,
                    },
                })
                .collect(),
            Box::new(bind(inner, store)),
        ),
        Algebra::Slice {
            offset,
            limit,
            input,
        } => Plan::Slice {
            offset: *offset,
            limit: *limit,
            input: Box::new(bind(input, store)),
        },
        Algebra::Group(spec, input) => Plan::GroupAggregate {
            spec: spec.clone(),
            input: Box::new(bind(input, store)),
        },
    }
}

/// Hash-join key (shared certain vars) and residual check vars (shared
/// possible vars not in the key).
fn join_vars(a: &Algebra, b: &Algebra) -> (Vec<usize>, Vec<usize>) {
    let ca = a.certain_vars();
    let cb = b.certain_vars();
    let key: Vec<usize> = ca.iter().copied().filter(|v| cb.contains(v)).collect();
    let aa = a.all_vars();
    let ab = b.all_vars();
    let check: Vec<usize> = aa
        .iter()
        .copied()
        .filter(|v| ab.contains(v) && !key.contains(v))
        .collect();
    (key, check)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra::translate;
    use crate::parser::parse;
    use sp2b_rdf::{Graph, Iri, Subject, Term};
    use sp2b_store::MemStore;

    fn store() -> MemStore {
        let mut g = Graph::new();
        g.add(
            Subject::iri("http://x/s"),
            Iri::new("http://x/p"),
            Term::iri("http://x/o"),
        );
        MemStore::from_graph(&g)
    }

    #[test]
    fn binding_resolves_constants() {
        let t = translate(&parse("SELECT ?s WHERE { ?s <http://x/p> <http://x/o> }").unwrap());
        let plan = bind(&t.algebra, &store());
        let Plan::Project(_, inner) = plan else {
            panic!()
        };
        let Plan::Bgp { patterns, .. } = *inner else {
            panic!()
        };
        assert!(!patterns[0].is_unsatisfiable());
        assert!(matches!(patterns[0].slots[1], PlanSlot::Const(Some(_))));
    }

    #[test]
    fn missing_constant_marks_unsatisfiable() {
        let t = translate(&parse("SELECT ?s WHERE { ?s <http://x/nope> ?o }").unwrap());
        let plan = bind(&t.algebra, &store());
        let Plan::Project(_, inner) = plan else {
            panic!()
        };
        let Plan::Bgp { patterns, .. } = *inner else {
            panic!()
        };
        assert!(patterns[0].is_unsatisfiable());
    }

    #[test]
    fn join_keys_are_shared_certain_vars() {
        let t = translate(
            &parse("SELECT ?x WHERE { { ?x <http://x/p> ?y } { ?x <http://x/p> ?z } }").unwrap(),
        );
        let plan = bind(&t.algebra, &store());
        let Plan::Project(_, inner) = plan else {
            panic!()
        };
        let Plan::Join { key, check, .. } = *inner else {
            panic!("{inner:?}")
        };
        assert_eq!(key, vec![t.vars.lookup("x").unwrap()]);
        assert!(check.is_empty());
    }

    #[test]
    fn leftjoin_with_optional_var_gets_check() {
        // ?c appears in both branches but is only certain in neither-left:
        // left = {a p b}, right = LeftJoin-translated optional with ?c.
        let t = translate(
            &parse(
                "SELECT ?a WHERE {
                    { ?a <http://x/p> ?b OPTIONAL { ?b <http://x/q> ?c } }
                    { ?a <http://x/r> ?c }
                 }",
            )
            .unwrap(),
        );
        let plan = bind(&t.algebra, &store());
        let Plan::Project(_, inner) = plan else {
            panic!()
        };
        let Plan::Join { key, check, .. } = *inner else {
            panic!("{inner:?}")
        };
        let a = t.vars.lookup("a").unwrap();
        let c = t.vars.lookup("c").unwrap();
        assert_eq!(key, vec![a]);
        assert_eq!(check, vec![c], "?c is shared but not certain on the left");
    }
}
