//! Tokenizer for the SPARQL subset.

use std::fmt;

/// Lexical error with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Byte offset in the query string.
    pub offset: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lexical error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for LexError {}

/// A token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Keyword (uppercased): SELECT, ASK, WHERE, PREFIX, DISTINCT, FILTER,
    /// OPTIONAL, UNION, ORDER, BY, LIMIT, OFFSET, ASC, DESC, BOUND, A
    /// (the `a` shorthand keeps its own token), TRUE, FALSE.
    Keyword(String),
    /// `<…>` IRI reference.
    IriRef(String),
    /// `prefix:local` name (prefix may be empty).
    PrefixedName(String, String),
    /// `?name` or `$name`.
    Var(String),
    /// `_:label` blank node.
    BlankNode(String),
    /// String literal (unescaped lexical form).
    String(String),
    /// Integer literal.
    Integer(i64),
    /// `^^` datatype marker.
    DatatypeMarker,
    /// `@lang` tag.
    LangTag(String),
    /// Punctuation and operators.
    Punct(Punct),
}

/// Punctuation tokens.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Punct {
    /// `{`.
    LBrace,
    /// `}`.
    RBrace,
    /// `(`.
    LParen,
    /// `)`.
    RParen,
    /// `.`.
    Dot,
    /// `;`.
    Semicolon,
    /// `,`.
    Comma,
    /// `&&`.
    AndAnd,
    /// `||`.
    OrOr,
    /// `!`.
    Bang,
    /// `=`.
    Eq,
    /// `!=`.
    Ne,
    /// `<`.
    Lt,
    /// `<=`.
    Le,
    /// `>`.
    Gt,
    /// `>=`.
    Ge,
    /// `*`.
    Star,
}

const KEYWORDS: &[&str] = &[
    "SELECT", "ASK", "WHERE", "PREFIX", "DISTINCT", "FILTER", "OPTIONAL", "UNION", "ORDER", "BY",
    "LIMIT", "OFFSET", "ASC", "DESC", "BOUND", "TRUE", "FALSE", "COUNT", "AS", "GROUP",
];

/// Tokenizes a query string.
pub fn tokenize(input: &str) -> Result<Vec<Token>, LexError> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;

    let err = |offset: usize, message: &str| LexError {
        offset,
        message: message.into(),
    };

    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => i += 1,
            b'#' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'{' => {
                tokens.push(Token::Punct(Punct::LBrace));
                i += 1;
            }
            b'}' => {
                tokens.push(Token::Punct(Punct::RBrace));
                i += 1;
            }
            b'(' => {
                tokens.push(Token::Punct(Punct::LParen));
                i += 1;
            }
            b')' => {
                tokens.push(Token::Punct(Punct::RParen));
                i += 1;
            }
            b'.' => {
                tokens.push(Token::Punct(Punct::Dot));
                i += 1;
            }
            b';' => {
                tokens.push(Token::Punct(Punct::Semicolon));
                i += 1;
            }
            b',' => {
                tokens.push(Token::Punct(Punct::Comma));
                i += 1;
            }
            b'*' => {
                tokens.push(Token::Punct(Punct::Star));
                i += 1;
            }
            b'&' => {
                if bytes.get(i + 1) == Some(&b'&') {
                    tokens.push(Token::Punct(Punct::AndAnd));
                    i += 2;
                } else {
                    return Err(err(i, "expected '&&'"));
                }
            }
            b'|' => {
                if bytes.get(i + 1) == Some(&b'|') {
                    tokens.push(Token::Punct(Punct::OrOr));
                    i += 2;
                } else {
                    return Err(err(i, "expected '||'"));
                }
            }
            b'!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::Punct(Punct::Ne));
                    i += 2;
                } else {
                    tokens.push(Token::Punct(Punct::Bang));
                    i += 1;
                }
            }
            b'=' => {
                tokens.push(Token::Punct(Punct::Eq));
                i += 1;
            }
            b'<' => {
                // `<` starts either an IRI ref or a comparison. An IRI ref
                // contains no whitespace and closes with `>` before any
                // whitespace; `<=` is always the operator.
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::Punct(Punct::Le));
                    i += 2;
                } else if let Some(end) = scan_iri_end(bytes, i + 1) {
                    let iri = &input[i + 1..end];
                    tokens.push(Token::IriRef(iri.to_owned()));
                    i = end + 1;
                } else {
                    tokens.push(Token::Punct(Punct::Lt));
                    i += 1;
                }
            }
            b'>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::Punct(Punct::Ge));
                    i += 2;
                } else {
                    tokens.push(Token::Punct(Punct::Gt));
                    i += 1;
                }
            }
            b'?' | b'$' => {
                let start = i + 1;
                let end = scan_name(bytes, start);
                if end == start {
                    return Err(err(i, "empty variable name"));
                }
                tokens.push(Token::Var(input[start..end].to_owned()));
                i = end;
            }
            b'_' if bytes.get(i + 1) == Some(&b':') => {
                let start = i + 2;
                let end = scan_name(bytes, start);
                if end == start {
                    return Err(err(i, "empty blank node label"));
                }
                tokens.push(Token::BlankNode(input[start..end].to_owned()));
                i = end;
            }
            b'"' => {
                let (lexical, next) = scan_string(input, bytes, i)?;
                tokens.push(Token::String(lexical));
                i = next;
            }
            b'^' => {
                if bytes.get(i + 1) == Some(&b'^') {
                    tokens.push(Token::DatatypeMarker);
                    i += 2;
                } else {
                    return Err(err(i, "expected '^^'"));
                }
            }
            b'@' => {
                let start = i + 1;
                let mut end = start;
                while end < bytes.len()
                    && (bytes[end].is_ascii_alphanumeric() || bytes[end] == b'-')
                {
                    end += 1;
                }
                if end == start {
                    return Err(err(i, "empty language tag"));
                }
                tokens.push(Token::LangTag(input[start..end].to_owned()));
                i = end;
            }
            b'0'..=b'9' | b'-' | b'+' => {
                let start = i;
                let mut end = if b == b'-' || b == b'+' { i + 1 } else { i };
                while end < bytes.len() && bytes[end].is_ascii_digit() {
                    end += 1;
                }
                if end == start || (end == start + 1 && !bytes[start].is_ascii_digit()) {
                    return Err(err(i, "malformed numeric literal"));
                }
                let value: i64 = input[start..end]
                    .parse()
                    .map_err(|_| err(i, "integer out of range"))?;
                tokens.push(Token::Integer(value));
                i = end;
            }
            _ if b.is_ascii_alphabetic() => {
                let start = i;
                let end = scan_name(bytes, start);
                let word = &input[start..end];
                // `prefix:local`?
                if bytes.get(end) == Some(&b':') {
                    let lstart = end + 1;
                    let lend = scan_name(bytes, lstart);
                    tokens.push(Token::PrefixedName(
                        word.to_owned(),
                        input[lstart..lend].to_owned(),
                    ));
                    i = lend;
                } else if word == "a" {
                    // The rdf:type shorthand.
                    tokens.push(Token::Keyword("A".to_owned()));
                    i = end;
                } else {
                    let upper = word.to_ascii_uppercase();
                    if KEYWORDS.contains(&upper.as_str()) {
                        tokens.push(Token::Keyword(upper));
                        i = end;
                    } else {
                        return Err(err(start, &format!("unexpected word '{word}'")));
                    }
                }
            }
            b':' => {
                // Default-prefix name `:local`.
                let lstart = i + 1;
                let lend = scan_name(bytes, lstart);
                tokens.push(Token::PrefixedName(
                    String::new(),
                    input[lstart..lend].to_owned(),
                ));
                i = lend;
            }
            _ => return Err(err(i, &format!("unexpected byte 0x{b:02x}"))),
        }
    }
    Ok(tokens)
}

/// Scans a name run (letters, digits, `_`).
fn scan_name(bytes: &[u8], mut i: usize) -> usize {
    while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
        i += 1;
    }
    i
}

/// If an IRI ref starts at `start` (after `<`), returns the index of the
/// closing `>`; IRIs may not contain whitespace or `<`.
fn scan_iri_end(bytes: &[u8], start: usize) -> Option<usize> {
    let mut i = start;
    while i < bytes.len() {
        match bytes[i] {
            b'>' => return Some(i),
            b' ' | b'\t' | b'\r' | b'\n' | b'<' | b'"' => return None,
            _ => i += 1,
        }
    }
    None
}

/// Scans a quoted string starting at `i` (which is the opening quote);
/// returns (unescaped value, index after closing quote).
fn scan_string(input: &str, bytes: &[u8], i: usize) -> Result<(String, usize), LexError> {
    let mut out = String::new();
    let mut j = i + 1;
    while j < bytes.len() {
        match bytes[j] {
            b'"' => return Ok((out, j + 1)),
            b'\\' => {
                let esc = bytes.get(j + 1).ok_or(LexError {
                    offset: j,
                    message: "dangling escape".into(),
                })?;
                out.push(match esc {
                    b'"' => '"',
                    b'\\' => '\\',
                    b'n' => '\n',
                    b'r' => '\r',
                    b't' => '\t',
                    other => {
                        return Err(LexError {
                            offset: j,
                            message: format!("unsupported escape \\{}", *other as char),
                        })
                    }
                });
                j += 2;
            }
            _ => {
                // Copy one UTF-8 scalar.
                let ch = input[j..].chars().next().expect("valid UTF-8");
                out.push(ch);
                j += ch.len_utf8();
            }
        }
    }
    Err(LexError {
        offset: i,
        message: "unterminated string".into(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_basic_select() {
        let toks = tokenize("SELECT ?yr WHERE { ?j rdf:type bench:Journal . }").unwrap();
        assert_eq!(toks[0], Token::Keyword("SELECT".into()));
        assert_eq!(toks[1], Token::Var("yr".into()));
        assert!(toks.contains(&Token::PrefixedName("rdf".into(), "type".into())));
        assert!(toks.contains(&Token::Punct(Punct::Dot)));
    }

    #[test]
    fn distinguishes_iri_from_less_than() {
        let toks = tokenize("FILTER (?a < ?b)").unwrap();
        assert!(toks.contains(&Token::Punct(Punct::Lt)));
        let toks = tokenize("<http://example.org/x>").unwrap();
        assert_eq!(toks, vec![Token::IriRef("http://example.org/x".into())]);
        // `<= ` is an operator even though `<` could open an IRI.
        let toks = tokenize("?a <= 5").unwrap();
        assert!(toks.contains(&Token::Punct(Punct::Le)));
    }

    #[test]
    fn typed_literal_tokens() {
        let toks = tokenize(r#""Journal 1 (1940)"^^xsd:string"#).unwrap();
        assert_eq!(
            toks,
            vec![
                Token::String("Journal 1 (1940)".into()),
                Token::DatatypeMarker,
                Token::PrefixedName("xsd".into(), "string".into()),
            ]
        );
    }

    #[test]
    fn operators_and_logicals() {
        let toks = tokenize("!= && || ! = >= <=").unwrap();
        use Punct::*;
        let expect: Vec<Token> = [Ne, AndAnd, OrOr, Bang, Eq, Ge, Le]
            .map(Token::Punct)
            .to_vec();
        assert_eq!(toks, expect);
    }

    #[test]
    fn keywords_case_insensitive() {
        let toks = tokenize("select Where oPtIoNaL").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Keyword("SELECT".into()),
                Token::Keyword("WHERE".into()),
                Token::Keyword("OPTIONAL".into()),
            ]
        );
    }

    #[test]
    fn rdf_type_shorthand() {
        let toks = tokenize("?s a foaf:Person").unwrap();
        assert_eq!(toks[1], Token::Keyword("A".into()));
    }

    #[test]
    fn comments_are_skipped() {
        let toks = tokenize("SELECT # comment ?x\n?y").unwrap();
        assert_eq!(
            toks,
            vec![Token::Keyword("SELECT".into()), Token::Var("y".into())]
        );
    }

    #[test]
    fn string_escapes() {
        let toks = tokenize(r#""a\"b\\c\nd""#).unwrap();
        assert_eq!(toks, vec![Token::String("a\"b\\c\nd".into())]);
    }

    #[test]
    fn integers_with_sign() {
        let toks = tokenize("LIMIT 10 OFFSET 50").unwrap();
        assert!(toks.contains(&Token::Integer(10)));
        assert!(toks.contains(&Token::Integer(50)));
        assert_eq!(tokenize("-42").unwrap(), vec![Token::Integer(-42)]);
    }

    #[test]
    fn blank_nodes_and_vars() {
        let toks = tokenize("_:b1 ?x $y").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::BlankNode("b1".into()),
                Token::Var("x".into()),
                Token::Var("y".into()),
            ]
        );
    }

    #[test]
    fn error_reports_offset() {
        let e = tokenize("SELECT @").unwrap_err();
        assert_eq!(e.offset, 7);
    }
}
