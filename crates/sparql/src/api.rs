//! The crate's high-level query API: parse → translate → optimize → bind
//! → evaluate, with timeout support.

use std::fmt;
use std::time::{Duration, Instant};

use sp2b_rdf::Term;
use sp2b_store::TripleStore;

use crate::algebra::{translate, Algebra, VarTable};
use crate::ast::Query;
use crate::eval::{Bindings, Cancellation, EvalContext};
use crate::optimizer::{optimize, OptimizerConfig};
use crate::parser::{parse, ParseError};
use crate::plan::{bind, Plan};

/// Everything that can go wrong running a query.
#[derive(Debug)]
pub enum Error {
    /// Syntax error.
    Parse(ParseError),
    /// Evaluation hit the timeout / was cancelled.
    Cancelled,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Parse(e) => e.fmt(f),
            Error::Cancelled => f.write_str("query evaluation cancelled (timeout)"),
        }
    }
}

impl std::error::Error for Error {}

impl From<ParseError> for Error {
    fn from(e: ParseError) -> Self {
        Error::Parse(e)
    }
}

/// A query prepared against a specific store (constants resolved,
/// optimizations applied). Reusable across executions.
pub struct Prepared {
    plan: Plan,
    vars: VarTable,
    projection: Vec<usize>,
    ask: bool,
    /// Post-processing for the aggregation extension (GROUP BY + COUNT).
    aggregation: Option<Aggregation>,
}

/// Grouping/counting specification, applied after plan evaluation.
struct Aggregation {
    /// Group-key variable indices (empty = one implicit group).
    group_vars: Vec<usize>,
    /// `(target var, distinct)` per COUNT; target `None` = `COUNT(*)`.
    counts: Vec<(Option<usize>, bool)>,
    /// Output column names: group-by names then aliases.
    columns: Vec<String>,
    /// Output-column order keys `(column, descending)`.
    order_by: Vec<(usize, bool)>,
    offset: u64,
    limit: Option<u64>,
}

/// Result of a query.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryResult {
    /// SELECT: variable names + rows of optional terms.
    Solutions {
        /// Projected variable names.
        variables: Vec<String>,
        /// Result rows aligned with `variables`.
        rows: Vec<Vec<Option<Term>>>,
    },
    /// ASK: yes/no.
    Boolean(bool),
}

impl QueryResult {
    /// Number of solutions (1 for ASK, counting the boolean itself).
    pub fn len(&self) -> usize {
        match self {
            QueryResult::Solutions { rows, .. } => rows.len(),
            QueryResult::Boolean(_) => 1,
        }
    }

    /// True if a SELECT returned no rows (ASK is never "empty").
    pub fn is_empty(&self) -> bool {
        matches!(self, QueryResult::Solutions { rows, .. } if rows.is_empty())
    }

    /// The boolean of an ASK result.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            QueryResult::Boolean(b) => Some(*b),
            QueryResult::Solutions { .. } => None,
        }
    }
}

impl Prepared {
    /// Prepares a parsed query against a store.
    pub fn new(query: &Query, store: &dyn TripleStore, cfg: &OptimizerConfig) -> Prepared {
        if query.is_aggregate() {
            return Self::new_aggregate(query, store, cfg);
        }
        let translated = translate(query);
        let needed: Vec<usize> = translated.projection.clone();
        let algebra: Algebra = optimize(translated.algebra, store, cfg, &needed);
        Prepared {
            plan: bind(&algebra, store),
            vars: translated.vars,
            projection: translated.projection,
            ask: translated.ask,
            aggregation: None,
        }
    }

    /// Aggregation extension: evaluate the pattern with the group/target
    /// variables projected, then group and count in a post-pass.
    fn new_aggregate(
        query: &Query,
        store: &dyn TripleStore,
        cfg: &OptimizerConfig,
    ) -> Prepared {
        // Inner query: same pattern, projection = group keys + count
        // targets, no modifiers (they apply to the aggregated output).
        let mut inner_vars: Vec<String> = query.group_by.clone();
        for agg in &query.aggregates {
            if let Some(v) = &agg.target {
                if !inner_vars.contains(v) {
                    inner_vars.push(v.clone());
                }
            }
        }
        let inner = Query {
            form: crate::ast::QueryForm::Select { distinct: false, variables: inner_vars },
            aggregates: Vec::new(),
            group_by: Vec::new(),
            pattern: query.pattern.clone(),
            order_by: Vec::new(),
            limit: None,
            offset: None,
        };
        let translated = translate(&inner);
        let needed: Vec<usize> = translated.projection.clone();
        let algebra: Algebra = optimize(translated.algebra, store, cfg, &needed);

        let group_vars: Vec<usize> = query
            .group_by
            .iter()
            .map(|v| translated.vars.lookup(v).expect("group var in pattern"))
            .collect();
        let counts: Vec<(Option<usize>, bool)> = query
            .aggregates
            .iter()
            .map(|a| {
                (
                    a.target.as_ref().map(|v| {
                        translated.vars.lookup(v).expect("count target in pattern")
                    }),
                    a.distinct,
                )
            })
            .collect();
        let mut columns: Vec<String> = query.group_by.clone();
        columns.extend(query.aggregates.iter().map(|a| a.alias.clone()));
        // Output-column ORDER BY: keys must name a group var or an alias.
        let order_by: Vec<(usize, bool)> = query
            .order_by
            .iter()
            .filter_map(|k| match &k.expression {
                crate::ast::Expression::Var(v) => columns
                    .iter()
                    .position(|c| c == v)
                    .map(|col| (col, k.descending)),
                _ => None,
            })
            .collect();

        Prepared {
            plan: bind(&algebra, store),
            vars: translated.vars,
            projection: translated.projection,
            ask: false,
            aggregation: Some(Aggregation {
                group_vars,
                counts,
                columns,
                order_by,
                offset: query.offset.unwrap_or(0),
                limit: query.limit,
            }),
        }
    }

    /// Parses and prepares in one step.
    pub fn parse(text: &str, store: &dyn TripleStore, cfg: &OptimizerConfig) -> Result<Prepared, Error> {
        let query = parse(text)?;
        Ok(Prepared::new(&query, store, cfg))
    }

    /// The physical plan (diagnostics, tests).
    pub fn plan(&self) -> &Plan {
        &self.plan
    }

    /// Projected variable names.
    pub fn variables(&self) -> Vec<String> {
        self.projection.iter().map(|&i| self.vars.name(i).to_owned()).collect()
    }

    /// Executes, materializing terms. `cancel` aborts evaluation
    /// cooperatively; on trigger the result is [`Error::Cancelled`].
    pub fn execute(
        &self,
        store: &dyn TripleStore,
        cancel: &Cancellation,
    ) -> Result<QueryResult, Error> {
        if let Some(agg) = &self.aggregation {
            return self.execute_aggregate(store, cancel, agg);
        }
        if self.ask {
            let found = self.raw_rows(store, cancel).next().is_some();
            if cancel.was_triggered() {
                return Err(Error::Cancelled);
            }
            return Ok(QueryResult::Boolean(found));
        }
        let dict = store.dictionary();
        let mut rows: Vec<Vec<Option<Term>>> = Vec::new();
        for row in self.raw_rows(store, cancel) {
            rows.push(
                self.projection
                    .iter()
                    .map(|&v| row.get(v).map(|id| dict.decode(id).clone()))
                    .collect(),
            );
        }
        if cancel.was_triggered() {
            return Err(Error::Cancelled);
        }
        Ok(QueryResult::Solutions { variables: self.variables(), rows })
    }

    /// Executes, returning only the solution count (ASK → 0/1; aggregate
    /// queries → number of groups). Avoids term materialization — the
    /// Table V result-size harness uses this.
    pub fn count(
        &self,
        store: &dyn TripleStore,
        cancel: &Cancellation,
    ) -> Result<u64, Error> {
        if self.aggregation.is_some() {
            return self.execute(store, cancel).map(|r| r.len() as u64);
        }
        let n = if self.ask {
            u64::from(self.raw_rows(store, cancel).next().is_some())
        } else {
            self.raw_rows(store, cancel).count() as u64
        };
        if cancel.was_triggered() {
            return Err(Error::Cancelled);
        }
        Ok(n)
    }

    /// Grouping/counting post-pass of the aggregation extension.
    fn execute_aggregate(
        &self,
        store: &dyn TripleStore,
        cancel: &Cancellation,
        agg: &Aggregation,
    ) -> Result<QueryResult, Error> {
        use std::collections::{HashMap, HashSet};

        struct GroupState {
            plain: Vec<u64>,
            distinct: Vec<HashSet<Option<sp2b_store::Id>>>,
        }

        let mut groups: HashMap<Vec<Option<sp2b_store::Id>>, GroupState> = HashMap::new();
        for row in self.raw_rows(store, cancel) {
            let key: Vec<Option<sp2b_store::Id>> =
                agg.group_vars.iter().map(|&v| row.get(v)).collect();
            let state = groups.entry(key).or_insert_with(|| GroupState {
                plain: vec![0; agg.counts.len()],
                distinct: vec![HashSet::new(); agg.counts.len()],
            });
            for (i, (target, distinct)) in agg.counts.iter().enumerate() {
                let value = match target {
                    // COUNT(?v) counts rows where ?v is bound.
                    Some(v) => row.get(*v).map(Some),
                    // COUNT(*) counts every row.
                    None => Some(None),
                };
                if let Some(value) = value {
                    if *distinct {
                        state.distinct[i].insert(value);
                    } else {
                        state.plain[i] += 1;
                    }
                }
            }
        }
        if cancel.was_triggered() {
            return Err(Error::Cancelled);
        }
        // SPARQL 1.1: with no GROUP BY, an empty input still yields one
        // group of zero counts.
        if groups.is_empty() && agg.group_vars.is_empty() {
            groups.insert(
                Vec::new(),
                GroupState {
                    plain: vec![0; agg.counts.len()],
                    distinct: vec![HashSet::new(); agg.counts.len()],
                },
            );
        }

        let dict = store.dictionary();
        let mut rows: Vec<Vec<Option<Term>>> = groups
            .into_iter()
            .map(|(key, state)| {
                let mut row: Vec<Option<Term>> = key
                    .iter()
                    .map(|id| id.map(|id| dict.decode(id).clone()))
                    .collect();
                for (i, (_, distinct)) in agg.counts.iter().enumerate() {
                    let n = if *distinct {
                        state.distinct[i].len() as u64
                    } else {
                        state.plain[i]
                    };
                    row.push(Some(Term::Literal(sp2b_rdf::Literal::integer(n as i64))));
                }
                row
            })
            .collect();

        // Deterministic output: explicit ORDER BY keys first, then the
        // full row as a tiebreaker.
        rows.sort_by(|a, b| {
            for &(col, desc) in &agg.order_by {
                let ord = compare_cells(&a[col], &b[col]);
                let ord = if desc { ord.reverse() } else { ord };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal)
        });
        let rows: Vec<_> = rows
            .into_iter()
            .skip(agg.offset as usize)
            .take(agg.limit.map_or(usize::MAX, |l| l as usize))
            .collect();
        Ok(QueryResult::Solutions { variables: agg.columns.clone(), rows })
    }

    fn raw_rows<'a>(
        &'a self,
        store: &'a dyn TripleStore,
        cancel: &'a Cancellation,
    ) -> impl Iterator<Item = Bindings> + 'a {
        let ctx = EvalContext { store, cancel, width: self.vars.len() };
        ctx.eval(&self.plan)
    }
}

/// Orders two result cells: unbound first, integers numerically, then the
/// term total order.
fn compare_cells(a: &Option<Term>, b: &Option<Term>) -> std::cmp::Ordering {
    match (a, b) {
        (None, None) => std::cmp::Ordering::Equal,
        (None, Some(_)) => std::cmp::Ordering::Less,
        (Some(_), None) => std::cmp::Ordering::Greater,
        (Some(x), Some(y)) => x.cmp(y),
    }
}

/// One-shot convenience: parse, prepare, and execute with optional timeout.
pub fn execute_query(
    store: &dyn TripleStore,
    text: &str,
    cfg: &OptimizerConfig,
    timeout: Option<Duration>,
) -> Result<QueryResult, Error> {
    let prepared = Prepared::parse(text, store, cfg)?;
    let cancel = match timeout {
        Some(t) => Cancellation::with_deadline(Instant::now() + t),
        None => Cancellation::none(),
    };
    prepared.execute(store, &cancel)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sp2b_rdf::{Graph, Iri, Literal, Subject};
    use sp2b_store::MemStore;

    fn store() -> MemStore {
        let mut g = Graph::new();
        for i in 0..10 {
            g.add(
                Subject::iri(format!("http://x/s{i}")),
                Iri::new("http://x/value"),
                Term::Literal(Literal::integer(i)),
            );
        }
        MemStore::from_graph(&g)
    }

    #[test]
    fn execute_select() {
        let s = store();
        let r = execute_query(
            &s,
            "SELECT ?v WHERE { ?s <http://x/value> ?v FILTER (?v >= 7) }",
            &OptimizerConfig::full(),
            None,
        )
        .unwrap();
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn execute_ask() {
        let s = store();
        let yes = execute_query(
            &s,
            "ASK { ?s <http://x/value> 5 }",
            &OptimizerConfig::default(),
            None,
        )
        .unwrap();
        assert_eq!(yes.as_bool(), Some(true));
        let no = execute_query(
            &s,
            "ASK { ?s <http://x/value> 99 }",
            &OptimizerConfig::default(),
            None,
        )
        .unwrap();
        assert_eq!(no.as_bool(), Some(false));
    }

    #[test]
    fn count_matches_execute() {
        let s = store();
        let p = Prepared::parse(
            "SELECT ?v WHERE { ?s <http://x/value> ?v }",
            &s,
            &OptimizerConfig::default(),
        )
        .unwrap();
        let cancel = Cancellation::none();
        assert_eq!(p.count(&s, &cancel).unwrap(), 10);
        assert_eq!(p.execute(&s, &cancel).unwrap().len(), 10);
    }

    #[test]
    fn cancelled_query_errors() {
        let s = store();
        let p = Prepared::parse(
            "SELECT ?a ?b WHERE { ?a <http://x/value> ?x . ?b <http://x/value> ?y }",
            &s,
            &OptimizerConfig::default(),
        )
        .unwrap();
        let cancel = Cancellation::none();
        cancel.cancel();
        assert!(matches!(p.execute(&s, &cancel), Err(Error::Cancelled)));
    }

    #[test]
    fn parse_error_surfaces() {
        let s = store();
        assert!(matches!(
            execute_query(&s, "SELECT WHERE", &OptimizerConfig::default(), None),
            Err(Error::Parse(_))
        ));
    }
}
