//! The crate's high-level query API.
//!
//! [`QueryEngine`] is the facade: it **owns** its store (a
//! [`SharedStore`], i.e. `Arc<dyn TripleStore>`) and a [`QueryOptions`]
//! policy bundle (optimizer configuration, timeout, row-limit), prepares
//! queries into reusable [`Prepared`] statements and executes them three
//! ways off one evaluation path:
//!
//! * [`QueryEngine::solutions`] — a streaming [`Solutions`] iterator whose
//!   items are lazy [`Solution`] row handles that decode terms against the
//!   dictionary *on demand*;
//! * [`QueryEngine::execute`] — the materialized [`QueryResult`] (every
//!   term decoded), for callers that want plain rows;
//! * [`QueryEngine::count`] — the solution count alone, decoding nothing
//!   (the Table V result-size harness path).
//!
//! Aggregation (`GROUP BY` + `COUNT`) is a first-class plan operator
//! ([`crate::plan::Plan::GroupAggregate`]), not an api-layer post-pass, so
//! it participates in optimization and cancellation like every other
//! operator and all three consumers above agree by construction.
//!
//! Owning the store (rather than borrowing it, as the engine did before
//! this redesign) is what enables the two concurrent workloads the
//! benchmark targets: detached exchange worker threads that stream
//! morsel results past the lifetime of the `eval` call ([`crate::par`]),
//! and any number of client threads sharing one store through cheap
//! engine clones — the long-lived-server prerequisite. Migration:
//! `QueryEngine::new(&store)` becomes
//! `QueryEngine::new(store.into_shared())` (or `Arc::new(store)`), and
//! engines handed to other threads take an `Arc` clone.

use std::fmt;
use std::time::{Duration, Instant};

use sp2b_rdf::Term;
use sp2b_store::{Dictionary, Id, SharedStore, TripleStore};

use std::sync::Arc;

use crate::algebra::{translate_query, GroupSpec, TranslateError};
use crate::ast::Query;
use crate::eval::{AggCell, AggRow, Bindings, Cancellation, EvalContext, RowIter, ScanCounters};
use crate::optimizer::{optimize, OptimizerConfig};
use crate::parser::{parse, ParseError};
use crate::plan::{bind, parallelize_calibrated, CostWeights, Plan};

/// Everything that can go wrong preparing or running a query.
#[derive(Debug)]
pub enum Error {
    /// Syntax error.
    Parse(ParseError),
    /// A GROUP BY or COUNT variable is not bound in the query pattern.
    UnboundVariable(String),
    /// Evaluation hit the timeout / was cancelled.
    Cancelled,
    /// A construct the engine does not support.
    Unsupported(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Parse(e) => e.fmt(f),
            Error::UnboundVariable(v) => {
                write!(f, "variable ?{v} is not bound in the query pattern")
            }
            Error::Cancelled => f.write_str("query evaluation cancelled (timeout)"),
            Error::Unsupported(what) => write!(f, "unsupported: {what}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<ParseError> for Error {
    fn from(e: ParseError) -> Self {
        Error::Parse(e)
    }
}

impl From<TranslateError> for Error {
    fn from(e: TranslateError) -> Self {
        match e {
            TranslateError::UnboundVariable(v) => Error::UnboundVariable(v),
            TranslateError::Unsupported(s) => Error::Unsupported(s),
        }
    }
}

/// Execution policy of a [`QueryEngine`]: optimizer configuration, the
/// per-execution timeout, the row-limit applied to delivered results
/// (`execute` and `solutions`; `count` always reports the true
/// cardinality), and the degree of intra-query parallelism.
#[derive(Debug, Clone)]
pub struct QueryOptions {
    optimizer: OptimizerConfig,
    timeout: Option<Duration>,
    row_limit: Option<u64>,
    parallelism: usize,
    parallel_base: u64,
    cost_weights: CostWeights,
    cache_bytes: Option<u64>,
}

impl Default for QueryOptions {
    /// Full optimization, no timeout, no row limit, parallelism = number
    /// of available cores, the static exchange-threshold base and the
    /// hand-tuned operator cost weights.
    fn default() -> Self {
        QueryOptions {
            optimizer: OptimizerConfig::full(),
            timeout: None,
            row_limit: None,
            parallelism: default_parallelism(),
            parallel_base: crate::plan::PARALLEL_BASE_THRESHOLD,
            cost_weights: CostWeights::default(),
            cache_bytes: None,
        }
    }
}

/// The default execution parallelism: every available core (1 when the
/// platform cannot report a count).
pub fn default_parallelism() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

impl QueryOptions {
    /// The default policy (full optimization, no timeout, no row limit,
    /// parallelism = available cores).
    pub fn new() -> Self {
        QueryOptions::default()
    }

    /// Sets the optimizer configuration.
    pub fn optimizer(mut self, cfg: OptimizerConfig) -> Self {
        self.optimizer = cfg;
        self
    }

    /// Sets the per-execution timeout.
    pub fn timeout(mut self, timeout: Duration) -> Self {
        self.timeout = Some(timeout);
        self
    }

    /// Caps the number of rows `execute`/`solutions` deliver. Counting is
    /// unaffected — `count` reports the true cardinality.
    pub fn row_limit(mut self, rows: u64) -> Self {
        self.row_limit = Some(rows);
        self
    }

    /// Sets the degree of intra-query parallelism: the number of worker
    /// threads morsel-driven execution may use for large driving scans
    /// (see [`crate::plan::parallelize`]). `1` reproduces strictly
    /// single-threaded evaluation; `0` is treated as `1`. The default is
    /// the number of available cores.
    ///
    /// Parallel execution preserves result *multisets* for every query,
    /// and the current merge preserves row order too; deterministic
    /// ordering is only *guaranteed* when the query has `ORDER BY` (or
    /// consumers are order-insensitive, e.g. `DISTINCT` sets and counts)
    /// — otherwise treat the order as unspecified, like SPARQL does.
    pub fn parallelism(mut self, degree: usize) -> Self {
        self.parallelism = degree.max(1);
        self
    }

    /// The configured optimizer.
    pub fn optimizer_config(&self) -> &OptimizerConfig {
        &self.optimizer
    }

    /// The configured timeout, if any.
    pub fn timeout_duration(&self) -> Option<Duration> {
        self.timeout
    }

    /// The configured row limit, if any.
    pub fn row_limit_rows(&self) -> Option<u64> {
        self.row_limit
    }

    /// The configured degree of parallelism (≥ 1).
    pub fn parallelism_degree(&self) -> usize {
        self.parallelism
    }

    /// Sets the exchange-threshold **base**: the driving-scan cardinality
    /// at which a reference-cost pipeline is worth fanning out (see
    /// [`crate::plan::parallel_threshold_with`]). The default is the
    /// static [`crate::plan::PARALLEL_BASE_THRESHOLD`]; `sp2b calibrate`
    /// measures a base from per-morsel fan-out overhead on the actual
    /// host and feeds it in here. `0` is treated as `1`.
    pub fn parallel_base(mut self, rows: u64) -> Self {
        self.parallel_base = rows.max(1);
        self
    }

    /// The configured exchange-threshold base (≥ 1).
    pub fn parallel_base_rows(&self) -> u64 {
        self.parallel_base
    }

    /// Sets the per-operator cost weights the planner's pipeline cost
    /// model uses (see [`crate::plan::CostWeights`]). The default is the
    /// hand-tuned constants; `sp2b calibrate` measures scan-emit, filter
    /// and hash-probe timings on the actual host and feeds them in here.
    pub fn cost_weights(mut self, weights: CostWeights) -> Self {
        self.cost_weights = weights;
        self
    }

    /// The configured per-operator cost weights.
    pub fn cost_weight_values(&self) -> &CostWeights {
        &self.cost_weights
    }

    /// Sets the block-cache byte budget for out-of-core segment stores
    /// (CLI `--cache-bytes`). Query execution never reopens a store, so
    /// this is consumed by the store-opening front ends — they forward
    /// it into `sp2b_store::open_store_with` — and carried here so one
    /// options value describes the whole session policy. The default
    /// (`None`) lets the open pick a fraction of the document size.
    pub fn cache_bytes(mut self, bytes: u64) -> Self {
        self.cache_bytes = Some(bytes);
        self
    }

    /// The configured block-cache byte budget, if any.
    pub fn cache_byte_budget(&self) -> Option<u64> {
        self.cache_bytes
    }
}

/// The query facade: an **owned** store handle plus a [`QueryOptions`]
/// policy. Cloning an engine is an `Arc` bump — hand clones to as many
/// client threads as the workload needs; they all query the one store.
///
/// ```
/// use sp2b_rdf::{Graph, Iri, Subject, Term};
/// use sp2b_store::{MemStore, TripleStore};
/// use sp2b_sparql::QueryEngine;
///
/// let mut g = Graph::new();
/// g.add(Subject::iri("http://x/s"), Iri::new("http://x/p"), Term::iri("http://x/o"));
/// let store = MemStore::from_graph(&g);
///
/// let engine = QueryEngine::new(store.into_shared());
/// let prepared = engine.prepare("SELECT ?s WHERE { ?s <http://x/p> ?o }").unwrap();
/// // Stream rows lazily…
/// for solution in engine.solutions(&prepared) {
///     let row = solution.unwrap();
///     assert!(row.get(0).is_some());
/// }
/// // …or just count, which decodes nothing.
/// assert_eq!(engine.count(&prepared).unwrap(), 1);
/// ```
#[derive(Clone)]
pub struct QueryEngine {
    store: SharedStore,
    options: QueryOptions,
    counters: Option<Arc<ScanCounters>>,
}

impl QueryEngine {
    /// An engine owning `store`, with default options (full optimization,
    /// no timeout, no row limit). Build the handle with
    /// [`TripleStore::into_shared`] or `Arc::new`.
    pub fn new(store: SharedStore) -> Self {
        QueryEngine {
            store,
            options: QueryOptions::default(),
            counters: None,
        }
    }

    /// An engine with an explicit policy.
    pub fn with_options(store: SharedStore, options: QueryOptions) -> Self {
        QueryEngine {
            store,
            options,
            counters: None,
        }
    }

    /// Replaces the optimizer configuration.
    pub fn optimizer(mut self, cfg: OptimizerConfig) -> Self {
        self.options.optimizer = cfg;
        self
    }

    /// Sets the per-execution timeout.
    pub fn timeout(mut self, timeout: Duration) -> Self {
        self.options.timeout = Some(timeout);
        self
    }

    /// Caps delivered rows (see [`QueryOptions::row_limit`]).
    pub fn row_limit(mut self, rows: u64) -> Self {
        self.options.row_limit = Some(rows);
        self
    }

    /// Sets the degree of intra-query parallelism (see
    /// [`QueryOptions::parallelism`]). Affects plans produced by
    /// subsequent [`QueryEngine::prepare`] calls — `stream`, `execute`
    /// and `count` all run whatever the prepared plan contains.
    pub fn parallelism(mut self, degree: usize) -> Self {
        self.options = self.options.parallelism(degree);
        self
    }

    /// Sets the exchange-threshold base (see
    /// [`QueryOptions::parallel_base`]). Affects subsequent `prepare`
    /// calls.
    pub fn parallel_base(mut self, rows: u64) -> Self {
        self.options = self.options.parallel_base(rows);
        self
    }

    /// Attaches per-pattern row-count instrumentation: every execution
    /// through this engine adds the rows each BGP pattern step emits to
    /// `counters` (see [`ScanCounters`]) — the `--explain` flag and the
    /// planner regression tests read them back. Instrumentation is off
    /// (and free) unless attached.
    pub fn scan_counters(mut self, counters: Arc<ScanCounters>) -> Self {
        self.counters = Some(counters);
        self
    }

    /// The store this engine queries.
    pub fn store(&self) -> &dyn TripleStore {
        &*self.store
    }

    /// An owning handle to the store — e.g. to build another engine with
    /// different options over the same data.
    pub fn shared_store(&self) -> SharedStore {
        self.store.clone()
    }

    /// The active policy.
    pub fn options(&self) -> &QueryOptions {
        &self.options
    }

    /// Counters of the store's block cache — `Some` only for
    /// out-of-core stores (see `TripleStore::cache_stats`), where they
    /// show how the bounded-memory budget is behaving under the
    /// workload this engine has run.
    pub fn cache_stats(&self) -> Option<sp2b_store::CacheStats> {
        self.store.cache_stats()
    }

    /// Parses and prepares a query. Preparation resolves constants against
    /// the store, applies the optimizer, binds the physical plan and —
    /// when the configured [`QueryOptions::parallelism`] exceeds 1 —
    /// inserts morsel-driven [`Plan::Exchange`] operators above driving
    /// scans large enough to pay for fan-out. The result is reusable
    /// across executions.
    pub fn prepare(&self, text: &str) -> Result<Prepared, Error> {
        let query = parse(text)?;
        self.prepare_query(&query)
    }

    /// Prepares an already-parsed query.
    pub fn prepare_query(&self, query: &Query) -> Result<Prepared, Error> {
        let translated = translate_query(query)?;
        let needed: Vec<usize> = translated.projection.clone();
        let algebra = optimize(
            translated.algebra,
            self.store(),
            &self.options.optimizer,
            &needed,
        );
        let plan = bind(&algebra, self.store());
        let plan = parallelize_calibrated(
            plan,
            self.store(),
            self.options.parallelism,
            self.options.parallel_base,
            &self.options.cost_weights,
        );
        Ok(Prepared {
            plan,
            width: translated.vars.len(),
            projection: translated.projection,
            columns: translated.columns,
            ask: translated.ask,
        })
    }

    /// A fresh cancellation handle honouring the configured timeout.
    pub fn cancellation(&self) -> Cancellation {
        match self.options.timeout {
            Some(t) => Cancellation::with_deadline(Instant::now() + t),
            None => Cancellation::none(),
        }
    }

    fn context(&self, prepared: &Prepared, cancel: &Cancellation) -> EvalContext<'_> {
        EvalContext {
            store: &*self.store,
            // The owning handle detached exchange workers hold on to.
            shared: Some(self.store.clone()),
            cancel: cancel.clone(),
            width: prepared.width,
            counters: self.counters.clone(),
        }
    }

    /// Streams solutions lazily; terms decode only when a [`Solution`]
    /// column is read. Cancellation (from the configured timeout) surfaces
    /// as an `Err(Error::Cancelled)` item.
    pub fn solutions<'p>(&'p self, prepared: &'p Prepared) -> Solutions<'p> {
        let cancel = self.cancellation();
        self.solutions_with(prepared, &cancel)
    }

    /// Like [`QueryEngine::solutions`] with an externally owned
    /// cancellation handle (e.g. shared with a watchdog thread).
    pub fn solutions_with<'p>(
        &'p self,
        prepared: &'p Prepared,
        cancel: &Cancellation,
    ) -> Solutions<'p> {
        let cancel = cancel.clone();
        let ctx = self.context(prepared, &cancel);
        let state = if let Plan::GroupAggregate { spec, input } = &prepared.plan {
            StreamState::PendingGroups { ctx, spec, input }
        } else if prepared.ask {
            StreamState::Ask(Some(ctx.eval(&prepared.plan)))
        } else {
            StreamState::Rows {
                iter: ctx.eval(&prepared.plan),
                projection: &prepared.projection,
            }
        };
        Solutions {
            dict: self.store.dictionary(),
            cancel,
            columns: &prepared.columns,
            remaining: self.options.row_limit,
            state,
        }
    }

    /// Executes, materializing every term. Respects the row limit.
    pub fn execute(&self, prepared: &Prepared) -> Result<QueryResult, Error> {
        let cancel = self.cancellation();
        self.execute_with(prepared, &cancel)
    }

    /// Like [`QueryEngine::execute`] with an external cancellation handle.
    pub fn execute_with(
        &self,
        prepared: &Prepared,
        cancel: &Cancellation,
    ) -> Result<QueryResult, Error> {
        if cancel.should_stop() {
            return Err(Error::Cancelled);
        }
        let ctx = self.context(prepared, cancel);
        if let Plan::GroupAggregate { spec, input } = &prepared.plan {
            let rows = ctx.eval_groups(spec, input);
            if cancel.was_triggered() {
                return Err(Error::Cancelled);
            }
            let mut rows = ctx.sort_and_slice_groups(spec, rows);
            // Apply the row limit before decoding: discarded rows must not
            // pay decode cost (the streaming path never decodes them).
            if let Some(limit) = self.options.row_limit {
                rows.truncate(limit as usize);
            }
            let dict = self.store.dictionary();
            let rows: Vec<Vec<Option<Term>>> = rows
                .iter()
                .map(|row| row.iter().map(|cell| cell.decode(dict)).collect())
                .collect();
            return Ok(QueryResult::Solutions {
                variables: prepared.columns.clone(),
                rows,
            });
        }
        if prepared.ask {
            let found = ctx.clone().eval(&prepared.plan).next().is_some();
            if cancel.was_triggered() {
                return Err(Error::Cancelled);
            }
            return Ok(QueryResult::Boolean(found));
        }
        let dict = self.store.dictionary();
        let limit = self.options.row_limit.map_or(usize::MAX, |l| l as usize);
        let mut rows: Vec<Vec<Option<Term>>> = Vec::new();
        for row in ctx.clone().eval(&prepared.plan) {
            if rows.len() >= limit {
                break;
            }
            rows.push(
                prepared
                    .projection
                    .iter()
                    .map(|&v| row.get(v).map(|id| dict.decode(id).clone()))
                    .collect(),
            );
        }
        if cancel.was_triggered() {
            return Err(Error::Cancelled);
        }
        Ok(QueryResult::Solutions {
            variables: prepared.columns.clone(),
            rows,
        })
    }

    /// Executes, returning only the solution count (ASK → 0/1; aggregate
    /// queries → number of groups). This path never decodes a term: ORDER
    /// BY is skipped (sorting preserves cardinality), OFFSET/LIMIT become
    /// arithmetic, and grouping runs over raw dictionary ids.
    pub fn count(&self, prepared: &Prepared) -> Result<u64, Error> {
        let cancel = self.cancellation();
        self.count_with(prepared, &cancel)
    }

    /// Like [`QueryEngine::count`] with an external cancellation handle.
    pub fn count_with(&self, prepared: &Prepared, cancel: &Cancellation) -> Result<u64, Error> {
        if cancel.should_stop() {
            return Err(Error::Cancelled);
        }
        let ctx = self.context(prepared, cancel);
        let n = if prepared.ask {
            u64::from(ctx.clone().eval(&prepared.plan).next().is_some())
        } else {
            ctx.count_rows(&prepared.plan)
        };
        if cancel.was_triggered() {
            return Err(Error::Cancelled);
        }
        Ok(n)
    }

    /// One-shot convenience: parse, prepare and execute.
    pub fn run(&self, text: &str) -> Result<QueryResult, Error> {
        let prepared = self.prepare(text)?;
        self.execute(&prepared)
    }
}

/// A query prepared against a specific store (constants resolved,
/// optimizations applied, physical plan bound). Reusable across
/// executions of the [`QueryEngine`] that prepared it.
#[derive(Debug)]
pub struct Prepared {
    plan: Plan,
    /// Number of pattern variables (the bindings row width).
    width: usize,
    /// Projected variable indices (empty for ASK/aggregate).
    projection: Vec<usize>,
    /// Output column names.
    columns: Vec<String>,
    ask: bool,
}

impl Prepared {
    /// The physical plan (diagnostics, tests).
    pub fn plan(&self) -> &Plan {
        &self.plan
    }

    /// Output column names (projected variables, or group keys followed by
    /// aggregate aliases; empty for ASK).
    pub fn variables(&self) -> &[String] {
        &self.columns
    }

    /// True for ASK queries.
    pub fn is_ask(&self) -> bool {
        self.ask
    }

    /// True when the plan root is the GroupAggregate operator.
    pub fn is_aggregate(&self) -> bool {
        matches!(self.plan, Plan::GroupAggregate { .. })
    }
}

/// One [`sp2b_obs::OpSpan`] per BGP pattern of `prepared`'s plan, in join
/// order: the label renders the pattern's slots against the store
/// dictionary, `est_rows` is the store's cardinality estimate (0 for
/// unsatisfiable patterns), and `rows`/`time` are read back from the
/// [`ScanCounters`] the execution ran with. Shared by the CLI's `--trace`
/// report and the server's slow-query log.
pub fn operator_spans(
    prepared: &Prepared,
    store: &dyn TripleStore,
    counters: &ScanCounters,
) -> Vec<sp2b_obs::OpSpan> {
    use crate::plan::{collect_patterns, PlanSlot};
    let dict = store.dictionary();
    let slot = |s: &PlanSlot| match s {
        PlanSlot::Var(v) => format!("?{v}"),
        PlanSlot::Const(Some(id)) => dict.decode(*id).to_string(),
        PlanSlot::Const(None) => "<absent-from-data>".to_owned(),
    };
    collect_patterns(prepared.plan())
        .into_iter()
        .map(|p| {
            let mut store_pattern: sp2b_store::Pattern = [None, None, None];
            for (pos, s) in p.slots.iter().enumerate() {
                if let PlanSlot::Const(Some(id)) = s {
                    store_pattern[pos] = Some(*id);
                }
            }
            let est = if p.is_unsatisfiable() {
                0
            } else {
                store.estimate(store_pattern)
            };
            sp2b_obs::OpSpan {
                label: format!(
                    "{} {} {}",
                    slot(&p.slots[0]),
                    slot(&p.slots[1]),
                    slot(&p.slots[2])
                ),
                est_rows: est,
                rows: counters.rows_for(&p.slots),
                time: counters.time_for(&p.slots),
            }
        })
        .collect()
}

/// Result of a materializing execution.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryResult {
    /// SELECT (or aggregate): column names + rows of optional terms.
    Solutions {
        /// Output column names.
        variables: Vec<String>,
        /// Result rows aligned with `variables`.
        rows: Vec<Vec<Option<Term>>>,
    },
    /// ASK: yes/no.
    Boolean(bool),
}

impl QueryResult {
    /// Number of solutions, *counting an ASK boolean as one solution* —
    /// even `Boolean(false)` has `len() == 1`, because the answer itself
    /// is the solution. Use [`QueryResult::row_count`] for the value that
    /// agrees with [`QueryEngine::count`], and [`QueryResult::as_bool`]
    /// for the ASK answer.
    pub fn len(&self) -> usize {
        match self {
            QueryResult::Solutions { rows, .. } => rows.len(),
            QueryResult::Boolean(_) => 1,
        }
    }

    /// Number of result rows: SELECT row count; ASK → 1 if `true`, else 0.
    /// Always equals what [`QueryEngine::count`] reports for the same
    /// query (absent a row limit).
    pub fn row_count(&self) -> usize {
        match self {
            QueryResult::Solutions { rows, .. } => rows.len(),
            QueryResult::Boolean(b) => usize::from(*b),
        }
    }

    /// True if a SELECT returned no rows (ASK is never "empty").
    pub fn is_empty(&self) -> bool {
        matches!(self, QueryResult::Solutions { rows, .. } if rows.is_empty())
    }

    /// The boolean of an ASK result.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            QueryResult::Boolean(b) => Some(*b),
            QueryResult::Solutions { .. } => None,
        }
    }
}

/// A streaming result set: pulls rows out of the evaluator one at a time.
/// Memory stays bounded by the plan (no result-set materialization), and
/// a triggered cancellation surfaces as a single `Err(Error::Cancelled)`
/// item followed by end-of-stream.
pub struct Solutions<'a> {
    dict: &'a Dictionary,
    cancel: Cancellation,
    columns: &'a [String],
    remaining: Option<u64>,
    state: StreamState<'a>,
}

enum StreamState<'a> {
    /// SELECT: lazy bindings stream + projection map.
    Rows {
        iter: RowIter<'a>,
        projection: &'a [usize],
    },
    /// Aggregate: grouping deferred until the first pull.
    PendingGroups {
        ctx: EvalContext<'a>,
        spec: &'a GroupSpec,
        input: &'a Plan,
    },
    /// Aggregate: ordered output rows.
    Groups(std::vec::IntoIter<AggRow>),
    /// ASK: pending probe — yields one empty solution when `true`.
    Ask(Option<RowIter<'a>>),
    /// Exhausted (end of stream, row limit hit, or error delivered).
    Done,
}

impl<'a> Solutions<'a> {
    /// Output column names.
    pub fn variables(&self) -> &'a [String] {
        self.columns
    }

    /// The cancellation handle driving this stream (e.g. to hand to a
    /// watchdog thread).
    pub fn cancellation(&self) -> &Cancellation {
        &self.cancel
    }
}

impl<'a> Iterator for Solutions<'a> {
    type Item = Result<Solution<'a>, Error>;

    fn next(&mut self) -> Option<Self::Item> {
        if matches!(self.state, StreamState::Done) {
            return None;
        }
        if self.remaining == Some(0) {
            self.state = StreamState::Done;
            return None;
        }
        // Cooperative stop between rows (evaluation also checks inside
        // operators; this catches pre-triggered handles and deadlines that
        // pass while the consumer holds the stream).
        if self.cancel.should_stop() {
            self.state = StreamState::Done;
            return Some(Err(Error::Cancelled));
        }
        // ASK: a single probe decides everything.
        if matches!(self.state, StreamState::Ask(_)) {
            let StreamState::Ask(iter) = std::mem::replace(&mut self.state, StreamState::Done)
            else {
                unreachable!()
            };
            let found = iter.into_iter().flatten().next().is_some();
            if self.cancel.was_triggered() {
                return Some(Err(Error::Cancelled));
            }
            return found.then_some(Ok(Solution {
                dict: self.dict,
                row: SolutionRow::Empty,
            }));
        }
        // Aggregates group on the first pull (cancellation-checked per
        // input row inside the operator).
        if matches!(self.state, StreamState::PendingGroups { .. }) {
            let StreamState::PendingGroups { ctx, spec, input } =
                std::mem::replace(&mut self.state, StreamState::Done)
            else {
                unreachable!()
            };
            let rows = ctx.eval_groups(spec, input);
            if self.cancel.was_triggered() {
                return Some(Err(Error::Cancelled));
            }
            let rows = ctx.sort_and_slice_groups(spec, rows);
            self.state = StreamState::Groups(rows.into_iter());
        }
        let item = match &mut self.state {
            StreamState::Rows { iter, projection } => iter.next().map(|bindings| Solution {
                dict: self.dict,
                row: SolutionRow::Bindings {
                    bindings,
                    projection,
                },
            }),
            StreamState::Groups(rows) => rows.next().map(|cells| Solution {
                dict: self.dict,
                row: SolutionRow::Cells(cells),
            }),
            StreamState::Done | StreamState::Ask(_) | StreamState::PendingGroups { .. } => {
                unreachable!()
            }
        };
        if self.cancel.was_triggered() {
            self.state = StreamState::Done;
            return Some(Err(Error::Cancelled));
        }
        match item {
            Some(solution) => {
                if let Some(r) = &mut self.remaining {
                    *r -= 1;
                }
                Some(Ok(solution))
            }
            None => {
                self.state = StreamState::Done;
                None
            }
        }
    }
}

/// One solution row, decoded lazily: reading a column decodes exactly that
/// column. Consumers that never read a column never pay for its term.
pub struct Solution<'a> {
    dict: &'a Dictionary,
    row: SolutionRow<'a>,
}

enum SolutionRow<'a> {
    /// A projected pattern row (terms still dictionary ids).
    Bindings {
        bindings: Bindings,
        projection: &'a [usize],
    },
    /// An aggregated row (group keys as ids, counts as computed values).
    Cells(AggRow),
    /// The ASK witness (no columns).
    Empty,
}

impl Solution<'_> {
    /// Number of output columns.
    pub fn len(&self) -> usize {
        match &self.row {
            SolutionRow::Bindings { projection, .. } => projection.len(),
            SolutionRow::Cells(cells) => cells.len(),
            SolutionRow::Empty => 0,
        }
    }

    /// True for a zero-column row (the ASK witness).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Decodes column `i` (`None` when unbound or out of range).
    pub fn get(&self, i: usize) -> Option<Term> {
        match &self.row {
            SolutionRow::Bindings {
                bindings,
                projection,
            } => projection
                .get(i)
                .and_then(|&v| bindings.get(v))
                .map(|id| self.dict.decode(id).clone()),
            SolutionRow::Cells(cells) => cells.get(i)?.decode(self.dict),
            SolutionRow::Empty => None,
        }
    }

    /// The dictionary id of column `i` without decoding — `None` when
    /// unbound, out of range, or a computed value (COUNT columns have no
    /// dictionary id).
    pub fn id(&self, i: usize) -> Option<Id> {
        match &self.row {
            SolutionRow::Bindings {
                bindings,
                projection,
            } => projection.get(i).and_then(|&v| bindings.get(v)),
            SolutionRow::Cells(cells) => match cells.get(i) {
                Some(AggCell::Key(id)) => Some(*id),
                _ => None,
            },
            SolutionRow::Empty => None,
        }
    }

    /// Decodes the whole row.
    pub fn materialize(&self) -> Vec<Option<Term>> {
        (0..self.len()).map(|i| self.get(i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sp2b_rdf::{Graph, Iri, Literal, Subject};
    use sp2b_store::MemStore;

    fn store() -> MemStore {
        let mut g = Graph::new();
        for i in 0..10 {
            g.add(
                Subject::iri(format!("http://x/s{i}")),
                Iri::new("http://x/value"),
                Term::Literal(Literal::integer(i)),
            );
        }
        MemStore::from_graph(&g)
    }

    #[test]
    fn execute_select() {
        let r = QueryEngine::new(store().into_shared())
            .run("SELECT ?v WHERE { ?s <http://x/value> ?v FILTER (?v >= 7) }")
            .unwrap();
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn execute_ask() {
        let engine = QueryEngine::new(store().into_shared()).optimizer(OptimizerConfig::default());
        let yes = engine.run("ASK { ?s <http://x/value> 5 }").unwrap();
        assert_eq!(yes.as_bool(), Some(true));
        let no = engine.run("ASK { ?s <http://x/value> 99 }").unwrap();
        assert_eq!(no.as_bool(), Some(false));
    }

    #[test]
    fn ask_len_vs_row_count() {
        // The historical surprise, now documented and split: `len()`
        // counts the boolean itself (always 1), `row_count()` agrees with
        // `count()` (1 for yes, 0 for no).
        let engine = QueryEngine::new(store().into_shared());
        let no = engine.run("ASK { ?s <http://x/value> 99 }").unwrap();
        assert_eq!(no.len(), 1);
        assert_eq!(no.row_count(), 0);
        let p = engine.prepare("ASK { ?s <http://x/value> 99 }").unwrap();
        assert_eq!(engine.count(&p).unwrap(), 0);
        let yes = engine.run("ASK { ?s <http://x/value> 5 }").unwrap();
        assert_eq!(yes.len(), 1);
        assert_eq!(yes.row_count(), 1);
    }

    #[test]
    fn count_matches_execute_and_stream() {
        let engine = QueryEngine::new(store().into_shared()).optimizer(OptimizerConfig::default());
        let p = engine
            .prepare("SELECT ?v WHERE { ?s <http://x/value> ?v }")
            .unwrap();
        assert_eq!(engine.count(&p).unwrap(), 10);
        assert_eq!(engine.execute(&p).unwrap().len(), 10);
        assert_eq!(engine.solutions(&p).count(), 10);
    }

    #[test]
    fn streaming_rows_decode_lazily() {
        let engine = QueryEngine::new(store().into_shared());
        let p = engine
            .prepare("SELECT ?s ?v WHERE { ?s <http://x/value> ?v FILTER (?v = 3) }")
            .unwrap();
        let mut stream = engine.solutions(&p);
        let row = stream.next().unwrap().unwrap();
        assert_eq!(row.len(), 2);
        assert_eq!(row.get(0), Some(Term::iri("http://x/s3")));
        assert!(row.id(0).is_some(), "ids are readable without decoding");
        assert!(stream.next().is_none());
    }

    #[test]
    fn row_limit_caps_delivery_not_count() {
        let engine = QueryEngine::new(store().into_shared()).row_limit(4);
        let p = engine
            .prepare("SELECT ?v WHERE { ?s <http://x/value> ?v }")
            .unwrap();
        assert_eq!(engine.execute(&p).unwrap().len(), 4);
        assert_eq!(engine.solutions(&p).count(), 4);
        assert_eq!(
            engine.count(&p).unwrap(),
            10,
            "count reports true cardinality"
        );
    }

    #[test]
    fn cancelled_query_errors() {
        let engine = QueryEngine::new(store().into_shared()).optimizer(OptimizerConfig::default());
        let p = engine
            .prepare("SELECT ?a ?b WHERE { ?a <http://x/value> ?x . ?b <http://x/value> ?y }")
            .unwrap();
        let cancel = Cancellation::none();
        cancel.cancel();
        assert!(matches!(
            engine.execute_with(&p, &cancel),
            Err(Error::Cancelled)
        ));
        assert!(matches!(
            engine.count_with(&p, &cancel),
            Err(Error::Cancelled)
        ));
        let mut stream = engine.solutions_with(&p, &cancel);
        assert!(matches!(stream.next(), Some(Err(Error::Cancelled))));
        assert!(stream.next().is_none(), "error terminates the stream");
    }

    #[test]
    fn parse_error_surfaces() {
        assert!(matches!(
            QueryEngine::new(store().into_shared()).run("SELECT WHERE"),
            Err(Error::Parse(_))
        ));
    }

    #[test]
    fn unbound_group_variable_is_an_error_not_a_panic() {
        let engine = QueryEngine::new(store().into_shared());
        // ?g never occurs in the pattern.
        let err = engine
            .prepare("SELECT ?g (COUNT(*) AS ?n) WHERE { ?s <http://x/value> ?v } GROUP BY ?g")
            .unwrap_err();
        assert!(
            matches!(err, Error::UnboundVariable(ref v) if v == "g"),
            "{err}"
        );
        // Same for a COUNT target.
        let err = engine
            .prepare("SELECT (COUNT(?nope) AS ?n) WHERE { ?s <http://x/value> ?v }")
            .unwrap_err();
        assert!(
            matches!(err, Error::UnboundVariable(ref v) if v == "nope"),
            "{err}"
        );
    }

    #[test]
    fn aggregate_runs_through_plan_operator() {
        let engine = QueryEngine::new(store().into_shared());
        let p = engine
            .prepare("SELECT (COUNT(*) AS ?n) WHERE { ?s <http://x/value> ?v }")
            .unwrap();
        assert!(p.is_aggregate(), "plan root must be GroupAggregate");
        let QueryResult::Solutions { rows, .. } = engine.execute(&p).unwrap() else {
            panic!()
        };
        assert_eq!(rows, vec![vec![Some(Term::Literal(Literal::integer(10)))]]);
        assert_eq!(engine.count(&p).unwrap(), 1, "one group");
        let streamed: Vec<_> = engine
            .solutions(&p)
            .map(|s| s.unwrap().materialize())
            .collect();
        assert_eq!(
            streamed,
            vec![vec![Some(Term::Literal(Literal::integer(10)))]]
        );
    }

    #[test]
    fn parallel_base_controls_the_fanout_decision() {
        use crate::plan::has_exchange;
        fn exchange_base(plan: &Plan) -> Option<u64> {
            match plan {
                Plan::Exchange { base, .. } => Some(*base),
                Plan::Project(_, inner)
                | Plan::Distinct(inner)
                | Plan::OrderBy(_, inner)
                | Plan::Filter(_, inner) => exchange_base(inner),
                Plan::Slice { input, .. } | Plan::GroupAggregate { input, .. } => {
                    exchange_base(input)
                }
                _ => None,
            }
        }
        // The 10-row store is far below the default threshold; a
        // measured base of 1 forces the exchange anyway, and the default
        // keeps the plan sequential.
        let store = store().into_shared();
        let text = "SELECT ?v WHERE { ?s <http://x/value> ?v }";
        let eager = QueryEngine::with_options(
            store.clone(),
            QueryOptions::new().parallelism(4).parallel_base(1),
        );
        assert!(has_exchange(eager.prepare(text).unwrap().plan()));
        assert_eq!(eager.options().parallel_base_rows(), 1);
        // The planned Exchange carries the calibrated base, so eval-time
        // fan-out decisions beneath it (hash-join build sides) use the
        // same base as the plan-level decision.
        assert_eq!(exchange_base(eager.prepare(text).unwrap().plan()), Some(1));
        let default = QueryEngine::with_options(store.clone(), QueryOptions::new().parallelism(4));
        assert!(!has_exchange(default.prepare(text).unwrap().plan()));
        // The forced-parallel plan still answers correctly.
        let p = eager.prepare(text).unwrap();
        assert_eq!(eager.count(&p).unwrap(), 10);
    }

    #[test]
    fn timeout_in_options_cancels() {
        let engine = QueryEngine::new(store().into_shared())
            .optimizer(OptimizerConfig::default())
            .timeout(Duration::ZERO);
        let p = engine
            .prepare("SELECT ?a ?b WHERE { ?a <http://x/value> ?x . ?b <http://x/value> ?y }")
            .unwrap();
        assert!(matches!(engine.execute(&p), Err(Error::Cancelled)));
    }
}
