//! The pull-based plan evaluator.
//!
//! Solutions stream lazily wherever the algebra allows: BGPs evaluate as
//! index-nested-loop joins (one store scan per pattern step), hash joins
//! materialize only their build side, and `ASK` stops at the first
//! solution ("engines should break as soon a solution has been found").
//! Sorting and duplicate elimination materialize by nature.
//!
//! Every row produced passes a [`Cancellation`] check, which is how the
//! benchmark runner enforces the paper's 30-minute query timeout without
//! detaching runaway threads.

use std::sync::atomic::{AtomicBool, Ordering as AtomicOrdering};
use std::sync::Arc;
use std::time::Instant;

use sp2b_rdf::{Literal, Term};
use sp2b_store::{Dictionary, Id, IdTriple, SharedStore, TripleStore};

use crate::algebra::GroupSpec;
use crate::expr::BoundExpr;
use crate::plan::{Plan, PlanOrderKey, PlanPattern, PlanSlot};

use sp2b_store::hash::{FxHashMap, FxHashSet};

/// One solution row: a value slot per query variable.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Bindings(Vec<Option<Id>>);

impl Bindings {
    /// All-unbound row of the given width.
    pub fn empty(width: usize) -> Self {
        Bindings(vec![None; width])
    }

    /// Wraps explicit values.
    pub fn new(values: Vec<Option<Id>>) -> Self {
        Bindings(values)
    }

    /// Value of variable `i`.
    #[inline]
    pub fn get(&self, i: usize) -> Option<Id> {
        self.0.get(i).copied().flatten()
    }

    /// Binds variable `i`.
    #[inline]
    pub fn set(&mut self, i: usize, v: Id) {
        self.0[i] = Some(v);
    }

    /// Number of slots.
    pub fn width(&self) -> usize {
        self.0.len()
    }

    /// Raw slots.
    pub fn as_slice(&self) -> &[Option<Id>] {
        &self.0
    }

    /// SPARQL merge: `None` on a conflict, otherwise the union of both
    /// rows' bindings.
    pub fn merge_checked(&self, other: &Bindings) -> Option<Bindings> {
        debug_assert_eq!(self.width(), other.width());
        let mut out = self.clone();
        for (slot, &theirs) in out.0.iter_mut().zip(other.0.iter()) {
            match (&slot, theirs) {
                (Some(a), Some(b)) if *a != b => return None,
                (None, Some(b)) => *slot = Some(b),
                _ => {}
            }
        }
        Some(out)
    }
}

/// Cooperative cancellation: a deadline and/or an external flag.
///
/// Clones share one state (`Clone` is an `Arc` bump), so a streaming
/// [`crate::Solutions`] iterator can *own* its cancellation handle while a
/// watchdog thread holds another — no scoped borrows required.
#[derive(Debug, Clone, Default)]
pub struct Cancellation {
    state: Arc<CancelState>,
}

#[derive(Debug, Default)]
struct CancelState {
    deadline: Option<Instant>,
    flag: AtomicBool,
    triggered: AtomicBool,
}

impl Cancellation {
    /// Never cancels.
    pub fn none() -> Self {
        Cancellation::default()
    }

    /// Cancels when `deadline` passes.
    pub fn with_deadline(deadline: Instant) -> Self {
        Cancellation {
            state: Arc::new(CancelState {
                deadline: Some(deadline),
                ..Default::default()
            }),
        }
    }

    /// Requests cancellation (observed by every clone).
    pub fn cancel(&self) {
        self.state.flag.store(true, AtomicOrdering::Relaxed);
    }

    /// Checks whether evaluation should stop (records the trigger).
    #[inline]
    pub fn should_stop(&self) -> bool {
        if self.state.triggered.load(AtomicOrdering::Relaxed) {
            return true;
        }
        let hit = self.state.flag.load(AtomicOrdering::Relaxed)
            || self.state.deadline.is_some_and(|d| Instant::now() >= d);
        if hit {
            self.state.triggered.store(true, AtomicOrdering::Relaxed);
        }
        hit
    }

    /// Whether a stop was ever triggered (distinguishes "stream ended"
    /// from "stream aborted" after evaluation).
    pub fn was_triggered(&self) -> bool {
        self.state.triggered.load(AtomicOrdering::Relaxed)
    }
}

/// Per-pattern tallies for plan instrumentation (the `--explain` and
/// `--trace` flags and the planner regression tests): each BGP pattern
/// step records how many rows it emitted and the wall time spent
/// producing them, keyed by the pattern's slots. Shared across exchange
/// worker threads via `Arc` (worker time accumulates, so a pattern's
/// time can exceed the query's wall clock under parallelism); when
/// absent ([`EvalContext::counters`] is `None`, the default) the
/// instrumentation costs one branch per pattern-step drop and no clock
/// reads.
#[derive(Debug, Default)]
pub struct ScanCounters {
    tallies: std::sync::Mutex<FxHashMap<[PlanSlot; 3], PatternTally>>,
}

#[derive(Debug, Default, Clone, Copy)]
struct PatternTally {
    rows: u64,
    nanos: u64,
}

impl ScanCounters {
    /// Rows emitted by the pattern step with these slots (0 if it never
    /// ran).
    pub fn rows_for(&self, slots: &[PlanSlot; 3]) -> u64 {
        self.tallies
            .lock()
            .unwrap()
            .get(slots)
            .map_or(0, |t| t.rows)
    }

    /// Wall time spent inside the pattern step with these slots (zero if
    /// it never ran). Under an exchange this sums across workers.
    pub fn time_for(&self, slots: &[PlanSlot; 3]) -> std::time::Duration {
        std::time::Duration::from_nanos(
            self.tallies
                .lock()
                .unwrap()
                .get(slots)
                .map_or(0, |t| t.nanos),
        )
    }

    /// Total rows emitted across all pattern steps — the query's
    /// intermediate-result volume, the planner's work metric.
    pub fn total_rows(&self) -> u64 {
        self.tallies.lock().unwrap().values().map(|t| t.rows).sum()
    }

    fn add(&self, slots: [PlanSlot; 3], rows: u64, nanos: u64) {
        let mut tallies = self.tallies.lock().unwrap();
        let tally = tallies.entry(slots).or_default();
        tally.rows += rows;
        tally.nanos += nanos;
    }
}

/// Evaluation context: store + cancellation + row width. Cloning is cheap
/// (a reference copy plus an `Arc` bump), so the lazy iterators capture it
/// by value.
#[derive(Clone)]
pub struct EvalContext<'a> {
    /// The store being queried (the borrow every lazy scan iterator ties
    /// its lifetime to).
    pub store: &'a dyn TripleStore,
    /// An *owning* handle to the same store, when the caller has one.
    /// This is what [`crate::par`] hands to detached exchange worker
    /// threads — they cannot borrow `store` because they outlive the call
    /// that spawned them. `None` (a raw, borrow-only context) disables
    /// detached parallelism: `Plan::Exchange` then degrades to sequential
    /// evaluation, never to unsoundness.
    pub shared: Option<SharedStore>,
    /// Cancellation control.
    pub cancel: Cancellation,
    /// Number of variables (row width).
    pub width: usize,
    /// Row-count instrumentation, when the caller wants it (see
    /// [`ScanCounters`]).
    pub counters: Option<std::sync::Arc<ScanCounters>>,
}

/// A stream of solutions.
pub type RowIter<'a> = Box<dyn Iterator<Item = Bindings> + 'a>;

impl<'a> EvalContext<'a> {
    /// Evaluates a plan to a lazy solution stream.
    pub fn eval(self, plan: &'a Plan) -> RowIter<'a> {
        match plan {
            Plan::Bgp { patterns, filters } => self.eval_bgp(patterns, filters),
            Plan::Join { left, right, key } => self.eval_join(left, right, key),
            Plan::LeftJoin {
                left,
                right,
                key,
                condition,
            } => self.eval_left_join(left, right, key, condition.as_ref()),
            Plan::Exchange {
                degree,
                base,
                input,
            } => crate::par::eval_exchange(self, *degree, *base, input),
            Plan::Union(a, b) => {
                let this = self.clone();
                let left = self.eval(a);
                // Defer building the right side until the left is drained.
                let mut right: Option<RowIter<'a>> = None;
                let mut left = Some(left);
                Box::new(std::iter::from_fn(move || loop {
                    if let Some(l) = left.as_mut() {
                        match l.next() {
                            Some(row) => return Some(row),
                            None => left = None,
                        }
                    } else {
                        let r = right.get_or_insert_with(|| this.clone().eval(b));
                        return r.next();
                    }
                }))
            }
            Plan::Filter(expr, inner) => {
                let store = self.store;
                let input = self.eval(inner);
                Box::new(input.filter(move |row| expr.evaluate(row, store) == Ok(true)))
            }
            Plan::Distinct(inner) => {
                let input = self.eval(inner);
                let mut seen: FxHashSet<Bindings> = FxHashSet::default();
                Box::new(input.filter(move |row| seen.insert(row.clone())))
            }
            Plan::Project(vars, inner) => {
                let width = self.width;
                let input = self.eval(inner);
                project_rows(input, vars, width)
            }
            Plan::OrderBy(keys, inner) => {
                let this = self.clone();
                let mut rows: Vec<Bindings> = Vec::new();
                for row in self.eval(inner) {
                    if this.cancel.should_stop() {
                        break;
                    }
                    rows.push(row);
                }
                rows.sort_by(|a, b| this.compare_rows(keys, a, b));
                Box::new(rows.into_iter())
            }
            Plan::Slice {
                offset,
                limit,
                input,
            } => {
                let it = self.eval(input).skip(*offset as usize);
                match limit {
                    Some(n) => Box::new(it.take(*n as usize)),
                    None => Box::new(it),
                }
            }
            // Aggregation is not a bindings stream: the api layer evaluates
            // it via [`EvalContext::eval_groups`]. `bind` only ever places
            // it at the plan root, so a bindings consumer cannot reach it.
            Plan::GroupAggregate { .. } => {
                unreachable!("GroupAggregate is evaluated via eval_groups")
            }
        }
    }

    /// Like [`EvalContext::eval`], but elides `ORDER BY` nodes: sorting
    /// cannot change which rows exist, so order-insensitive consumers
    /// (counting, DISTINCT-counting) skip the materializing sort — and with
    /// it every term decode the comparisons would perform.
    fn eval_unordered(self, plan: &'a Plan) -> RowIter<'a> {
        match plan {
            // When the sort is elided, an Exchange placed directly under
            // it loses its purpose as well: bounded consumers (the count
            // path's `take(offset+limit)`) stop after a handful of rows,
            // and spinning up detached workers that race ahead of a
            // consumer about to hang up is pure overhead — unwrap it too.
            Plan::OrderBy(_, inner) => match inner.as_ref() {
                Plan::Exchange { input, .. } => self.eval_unordered(input),
                other => self.eval_unordered(other),
            },
            Plan::Project(vars, inner) => {
                let width = self.width;
                project_rows(self.eval_unordered(inner), vars, width)
            }
            // The distinct *set* is order-independent, so deduplication
            // composes with the elided sort.
            Plan::Distinct(inner) => {
                let input = self.eval_unordered(inner);
                let mut seen: FxHashSet<Bindings> = FxHashSet::default();
                Box::new(input.filter(move |row| seen.insert(row.clone())))
            }
            other => self.eval(other),
        }
    }

    /// Counts a plan's solutions without materializing or decoding terms:
    /// `ORDER BY` is skipped (sorting preserves cardinality), `OFFSET` /
    /// `LIMIT` become arithmetic, and `DISTINCT` deduplicates over raw id
    /// rows. This is the engine behind [`crate::QueryEngine::count`] and
    /// the Table V result-size harness.
    pub fn count_rows(&self, plan: &'a Plan) -> u64 {
        match plan {
            Plan::OrderBy(_, inner) | Plan::Project(_, inner) => self.count_rows(inner),
            Plan::Slice {
                offset,
                limit,
                input,
            } => {
                let n = match limit {
                    // Bounded: pull at most offset+limit rows, exactly like
                    // the lazy skip/take execution path would — a LIMIT
                    // query's count must not enumerate the full input.
                    Some(l) => {
                        let cap = offset.saturating_add(*l);
                        self.clone()
                            .eval_unordered(input)
                            .take(cap as usize)
                            .count() as u64
                    }
                    None => self.count_rows(input),
                };
                n.saturating_sub(*offset)
            }
            Plan::Distinct(inner) => {
                let mut seen: FxHashSet<Bindings> = FxHashSet::default();
                let mut n = 0;
                for row in self.clone().eval_unordered(inner) {
                    if self.cancel.should_stop() {
                        break;
                    }
                    if seen.insert(row) {
                        n += 1;
                    }
                }
                n
            }
            Plan::GroupAggregate { spec, input } => {
                let n = (self.eval_groups(spec, input).len() as u64).saturating_sub(spec.offset);
                match spec.limit {
                    Some(l) => n.min(l),
                    None => n,
                }
            }
            _ => self.clone().eval(plan).count() as u64,
        }
    }

    // -- BGP ---------------------------------------------------------------

    fn eval_bgp(
        self,
        patterns: &'a [PlanPattern],
        filters: &'a [(usize, BoundExpr)],
    ) -> RowIter<'a> {
        let seed: RowIter<'a> = Box::new(std::iter::once(Bindings::empty(self.width)));
        self.eval_bgp_from(seed, patterns, filters, 0)
    }

    /// The index-nested-loop BGP pipeline from pattern `start` onward,
    /// fed by already-extended `seed` rows. Inline filters positioned
    /// before `start` apply to the seed rows (their variables are bound
    /// there); later filters attach after their pattern as usual. The
    /// sequential [`EvalContext::eval_bgp`] seeds with one empty row and
    /// `start = 0`; the morsel driver ([`crate::par`]) seeds with a
    /// chunk's pattern-0 rows and `start = 1`.
    pub(crate) fn eval_bgp_from(
        self,
        seed: RowIter<'a>,
        patterns: &'a [PlanPattern],
        filters: &'a [(usize, BoundExpr)],
        start: usize,
    ) -> RowIter<'a> {
        let mut iter = seed;
        for (fpos, filter) in filters {
            if *fpos < start {
                let store = self.store;
                iter = Box::new(iter.filter(move |row| filter.evaluate(row, store) == Ok(true)));
            }
        }
        for (pos, pattern) in patterns.iter().enumerate().skip(start) {
            let this = self.clone();
            iter = Box::new(iter.flat_map(move |row| PatternBind::new(this.clone(), pattern, row)));
            for (fpos, filter) in filters {
                if *fpos == pos {
                    let store = self.store;
                    iter =
                        Box::new(iter.filter(move |row| filter.evaluate(row, store) == Ok(true)));
                }
            }
        }
        iter
    }

    // -- joins ---------------------------------------------------------

    /// Materializes a side into a key-indexed map (plus a flat list when
    /// the key is empty). The parallel driver ([`crate::par`]) builds the
    /// same structure once per join and shares it across workers.
    pub(crate) fn build_side(
        &self,
        plan: &'a Plan,
        key: &[usize],
    ) -> (FxHashMap<Vec<Id>, Vec<Bindings>>, Vec<Bindings>) {
        let mut map: FxHashMap<Vec<Id>, Vec<Bindings>> = FxHashMap::default();
        let mut flat: Vec<Bindings> = Vec::new();
        for row in self.clone().eval(plan) {
            if self.cancel.should_stop() {
                break;
            }
            insert_build_row(&mut map, &mut flat, key, row);
        }
        (map, flat)
    }

    fn eval_join(self, left: &'a Plan, right: &'a Plan, key: &'a [usize]) -> RowIter<'a> {
        let (map, flat) = self.build_side(right, key);
        let this = self.clone();
        let probe = self.eval(left);
        Box::new(probe.flat_map(move |l| {
            if this.cancel.should_stop() {
                return Vec::new().into_iter();
            }
            probe_inner(&map, &flat, key, l).into_iter()
        }))
    }

    fn eval_left_join(
        self,
        left: &'a Plan,
        right: &'a Plan,
        key: &'a [usize],
        condition: Option<&'a BoundExpr>,
    ) -> RowIter<'a> {
        let (map, flat) = self.build_side(right, key);
        let this = self.clone();
        let probe = self.eval(left);
        Box::new(probe.flat_map(move |l| {
            if this.cancel.should_stop() {
                return Vec::new().into_iter();
            }
            probe_left(&this, &map, &flat, key, condition, l).into_iter()
        }))
    }

    // -- ordering ------------------------------------------------------

    fn compare_rows(
        &self,
        keys: &[PlanOrderKey],
        a: &Bindings,
        b: &Bindings,
    ) -> std::cmp::Ordering {
        use std::cmp::Ordering;
        for k in keys {
            let (ord, desc) = match k {
                PlanOrderKey::Var { var, descending } => {
                    let ta = a.get(*var);
                    let tb = b.get(*var);
                    let ord = match (ta, tb) {
                        (None, None) => Ordering::Equal,
                        (None, Some(_)) => Ordering::Less, // unbound first
                        (Some(_), None) => Ordering::Greater,
                        (Some(x), Some(y)) => {
                            if x == y {
                                Ordering::Equal
                            } else {
                                let dict = self.store.dictionary();
                                dict.decode(x).cmp(dict.decode(y))
                            }
                        }
                    };
                    (ord, *descending)
                }
                PlanOrderKey::Expr { expr, descending } => {
                    let va = expr.evaluate(a, self.store).unwrap_or(false);
                    let vb = expr.evaluate(b, self.store).unwrap_or(false);
                    (va.cmp(&vb), *descending)
                }
            };
            let ord = if desc { ord.reverse() } else { ord };
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    }

    // -- aggregation ---------------------------------------------------

    /// Evaluates a [`Plan::GroupAggregate`]: streams the input, groups by
    /// the key variables and computes every COUNT column, checking
    /// cancellation per input row like every other operator. The output is
    /// unordered and unsliced — counting consumers need only `len()` plus
    /// slice arithmetic (no sort, no term decoding), while result delivery
    /// finishes with [`EvalContext::sort_and_slice_groups`].
    pub fn eval_groups(&self, spec: &GroupSpec, input: &'a Plan) -> Vec<AggRow> {
        struct GroupState {
            plain: Vec<u64>,
            distinct: Vec<FxHashSet<Option<Id>>>,
        }

        let mut groups: FxHashMap<Vec<Option<Id>>, GroupState> = FxHashMap::default();
        for row in self.clone().eval_unordered(input) {
            if self.cancel.should_stop() {
                break;
            }
            let key: Vec<Option<Id>> = spec.group_vars.iter().map(|&v| row.get(v)).collect();
            let state = groups.entry(key).or_insert_with(|| GroupState {
                plain: vec![0; spec.counts.len()],
                distinct: vec![FxHashSet::default(); spec.counts.len()],
            });
            for (i, count) in spec.counts.iter().enumerate() {
                let value = match count.target {
                    // COUNT(?v) counts rows where ?v is bound.
                    Some(v) => row.get(v).map(Some),
                    // COUNT(*) counts every row.
                    None => Some(None),
                };
                if let Some(value) = value {
                    if count.distinct {
                        state.distinct[i].insert(value);
                    } else {
                        state.plain[i] += 1;
                    }
                }
            }
        }
        // SPARQL 1.1: with no GROUP BY, an empty input still yields one
        // group of zero counts.
        if groups.is_empty() && spec.group_vars.is_empty() {
            groups.insert(
                Vec::new(),
                GroupState {
                    plain: vec![0; spec.counts.len()],
                    distinct: vec![FxHashSet::default(); spec.counts.len()],
                },
            );
        }
        groups
            .into_iter()
            .map(|(key, state)| {
                let mut row: AggRow = key
                    .iter()
                    .map(|id| match id {
                        Some(id) => AggCell::Key(*id),
                        None => AggCell::Unbound,
                    })
                    .collect();
                for (i, count) in spec.counts.iter().enumerate() {
                    let n = if count.distinct {
                        state.distinct[i].len() as u64
                    } else {
                        state.plain[i]
                    };
                    row.push(AggCell::Count(n));
                }
                row
            })
            .collect()
    }

    /// Deterministic aggregate output: explicit ORDER BY keys first (term
    /// values compared through the dictionary, counts numerically), the
    /// full row as a tiebreaker; then OFFSET/LIMIT.
    pub fn sort_and_slice_groups(&self, spec: &GroupSpec, mut rows: Vec<AggRow>) -> Vec<AggRow> {
        let dict = self.store.dictionary();
        rows.sort_by(|a, b| {
            for &(col, desc) in &spec.order_by {
                let ord = compare_agg_cells(dict, &a[col], &b[col]);
                let ord = if desc { ord.reverse() } else { ord };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            for (x, y) in a.iter().zip(b.iter()) {
                let ord = compare_agg_cells(dict, x, y);
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
        rows.into_iter()
            .skip(spec.offset as usize)
            .take(spec.limit.map_or(usize::MAX, |l| l as usize))
            .collect()
    }
}

/// One cell of an aggregated output row (see [`Plan::GroupAggregate`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AggCell {
    /// Unbound group key.
    Unbound,
    /// Bound group-key term, by dictionary id.
    Key(Id),
    /// A computed COUNT — a value the dictionary has no id for.
    Count(u64),
}

impl AggCell {
    /// Materializes the cell against a dictionary.
    pub fn decode(&self, dict: &Dictionary) -> Option<Term> {
        match self {
            AggCell::Unbound => None,
            AggCell::Key(id) => Some(dict.decode(*id).clone()),
            AggCell::Count(n) => Some(Term::Literal(Literal::integer(*n as i64))),
        }
    }
}

/// An aggregated output row: group keys then counts, in output-column
/// order.
pub type AggRow = Vec<AggCell>;

/// Orders two aggregate cells: unbound first, then decoded term order
/// (counts compare as integer literals, i.e. numerically).
fn compare_agg_cells(dict: &Dictionary, a: &AggCell, b: &AggCell) -> std::cmp::Ordering {
    use std::cmp::Ordering;
    match (a, b) {
        (AggCell::Unbound, AggCell::Unbound) => Ordering::Equal,
        (AggCell::Unbound, _) => Ordering::Less,
        (_, AggCell::Unbound) => Ordering::Greater,
        (AggCell::Count(x), AggCell::Count(y)) => x.cmp(y),
        (AggCell::Key(x), AggCell::Key(y)) => {
            if x == y {
                Ordering::Equal
            } else {
                dict.decode(*x).cmp(dict.decode(*y))
            }
        }
        (AggCell::Key(x), AggCell::Count(n)) => dict
            .decode(*x)
            .cmp(&Term::Literal(Literal::integer(*n as i64))),
        (AggCell::Count(n), AggCell::Key(y)) => {
            Term::Literal(Literal::integer(*n as i64)).cmp(dict.decode(*y))
        }
    }
}

/// Keeps only `vars` bound in each row (the Project operator's mapping).
fn project_rows<'a>(input: RowIter<'a>, vars: &'a [usize], width: usize) -> RowIter<'a> {
    Box::new(input.map(move |row| {
        let mut out = Bindings::empty(width);
        for &v in vars {
            if let Some(val) = row.get(v) {
                out.set(v, val);
            }
        }
        out
    }))
}

/// Files one build-side row into the hash map (or the flat overflow list
/// when the key is empty or a key variable is unbound — possible under
/// partial optional results — so no match is lost). Shared between the
/// sequential [`EvalContext::build_side`] and the parallel partitioned
/// build in [`crate::par`], which feeds rows in chunk order so bucket
/// insertion order equals sequential evaluation order.
pub(crate) fn insert_build_row(
    map: &mut FxHashMap<Vec<Id>, Vec<Bindings>>,
    flat: &mut Vec<Bindings>,
    key: &[usize],
    row: Bindings,
) {
    if key.is_empty() {
        flat.push(row);
        return;
    }
    let k: Option<Vec<Id>> = key.iter().map(|&v| row.get(v)).collect();
    match k {
        Some(k) => map.entry(k).or_default().push(row),
        None => flat.push(row),
    }
}

/// Inner-join probe of one row: merges `l` with every compatible build
/// row (the residual check of possibly-shared variables happens inside
/// [`Bindings::merge_checked`]). Shared between the sequential
/// [`EvalContext::eval`] and the morsel driver ([`crate::par`]) so join
/// semantics live in exactly one place.
pub(crate) fn probe_inner(
    map: &FxHashMap<Vec<Id>, Vec<Bindings>>,
    flat: &[Bindings],
    key: &[usize],
    l: Bindings,
) -> Vec<Bindings> {
    let mut out: Vec<Bindings> = Vec::new();
    for r in lookup(map, flat, key, &l) {
        if let Some(m) = l.merge_checked(r) {
            out.push(m);
        }
    }
    out
}

/// Left-join probe of one row: like [`probe_inner`] with the OPTIONAL
/// condition applied per merged row, preserving `l` itself when nothing
/// matched. Shared between sequential and parallel evaluation.
pub(crate) fn probe_left(
    ctx: &EvalContext<'_>,
    map: &FxHashMap<Vec<Id>, Vec<Bindings>>,
    flat: &[Bindings],
    key: &[usize],
    condition: Option<&BoundExpr>,
    l: Bindings,
) -> Vec<Bindings> {
    let mut out: Vec<Bindings> = Vec::new();
    let mut matched = false;
    for r in lookup(map, flat, key, &l) {
        if ctx.cancel.should_stop() {
            break;
        }
        if let Some(m) = l.merge_checked(r) {
            let pass = match condition {
                Some(c) => c.evaluate(&m, ctx.store) == Ok(true),
                None => true,
            };
            if pass {
                matched = true;
                out.push(m);
            }
        }
    }
    if !matched {
        out.push(l);
    }
    out
}

/// Candidate rows for a probe row: the hash bucket plus the flat overflow
/// list (rows that could not be keyed).
fn lookup<'m>(
    map: &'m FxHashMap<Vec<Id>, Vec<Bindings>>,
    flat: &'m [Bindings],
    key: &[usize],
    probe: &Bindings,
) -> impl Iterator<Item = &'m Bindings> {
    let bucket: &[Bindings] = if key.is_empty() {
        &[]
    } else {
        let k: Option<Vec<Id>> = key.iter().map(|&v| probe.get(v)).collect();
        match k.and_then(|k| map.get(&k)) {
            Some(rows) => rows.as_slice(),
            None => &[],
        }
    };
    bucket.iter().chain(flat.iter())
}

/// One pattern step of the index-nested-loop BGP evaluation: scans the
/// store with the pattern's constants plus the input row's bindings, and
/// extends the row for each match.
pub(crate) struct PatternBind<'a> {
    ctx: EvalContext<'a>,
    scan: Box<dyn Iterator<Item = IdTriple> + 'a>,
    pattern: &'a PlanPattern,
    base: Bindings,
    dead: bool,
    /// Clock reads only happen when counters are attached (`--explain`
    /// / `--trace`); plain evaluation never touches the clock.
    timed: bool,
    emitted: u64,
    nanos: u64,
}

impl<'a> PatternBind<'a> {
    pub(crate) fn new(ctx: EvalContext<'a>, pattern: &'a PlanPattern, base: Bindings) -> Self {
        let mut store_pattern: sp2b_store::Pattern = [None, None, None];
        let mut dead = false;
        for (i, slot) in pattern.slots.iter().enumerate() {
            match slot {
                PlanSlot::Const(Some(id)) => store_pattern[i] = Some(*id),
                PlanSlot::Const(None) => dead = true,
                PlanSlot::Var(v) => store_pattern[i] = base.get(*v),
            }
        }
        let scan: Box<dyn Iterator<Item = IdTriple> + 'a> = if dead {
            Box::new(std::iter::empty())
        } else {
            ctx.store.scan(store_pattern)
        };
        let timed = ctx.counters.is_some();
        PatternBind {
            ctx,
            scan,
            pattern,
            base,
            dead,
            timed,
            emitted: 0,
            nanos: 0,
        }
    }
}

impl Drop for PatternBind<'_> {
    fn drop(&mut self) {
        // Flush once per step: the per-row path stays a plain increment.
        if self.emitted > 0 || self.nanos > 0 {
            if let Some(counters) = &self.ctx.counters {
                counters.add(self.pattern.slots, self.emitted, self.nanos);
            }
        }
    }
}

impl Iterator for PatternBind<'_> {
    type Item = Bindings;

    fn next(&mut self) -> Option<Bindings> {
        if self.dead {
            return None;
        }
        let started = self.timed.then(std::time::Instant::now);
        let result = loop {
            if self.ctx.cancel.should_stop() {
                break None;
            }
            let Some(triple) = self.scan.next() else {
                break None;
            };
            if let Some(row) = extend_row(&self.base, self.pattern, &triple) {
                self.emitted += 1;
                break Some(row);
            }
        };
        if let Some(t0) = started {
            self.nanos += t0.elapsed().as_nanos() as u64;
        }
        result
    }
}

/// Extends `base` with the variable bindings `pattern` takes from
/// `triple`; `None` when a variable disagrees across positions — either
/// with the base row or repeated within the pattern (e.g. `?x ?p ?x`).
pub(crate) fn extend_row(
    base: &Bindings,
    pattern: &PlanPattern,
    triple: &IdTriple,
) -> Option<Bindings> {
    let mut row = base.clone();
    for (i, slot) in pattern.slots.iter().enumerate() {
        if let PlanSlot::Var(v) = slot {
            match row.get(*v) {
                Some(existing) if existing != triple[i] => return None,
                Some(_) => {}
                None => row.set(*v, triple[i]),
            }
        }
    }
    Some(row)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra::translate;
    use crate::parser::parse;
    use crate::plan::bind;
    use sp2b_rdf::{Graph, Iri, Literal, Subject, Term};
    use sp2b_store::{MemStore, NativeStore};

    fn graph() -> Graph {
        let mut g = Graph::new();
        let p = |s: &str| Subject::iri(format!("http://x/{s}"));
        let i = |s: &str| Iri::new(format!("http://x/{s}"));
        let t = |s: &str| Term::iri(format!("http://x/{s}"));
        g.add(p("alice"), i("knows"), t("bob"));
        g.add(p("bob"), i("knows"), t("carol"));
        g.add(p("carol"), i("knows"), t("alice"));
        g.add(p("alice"), i("age"), Term::Literal(Literal::integer(30)));
        g.add(p("bob"), i("age"), Term::Literal(Literal::integer(40)));
        g.add(
            p("alice"),
            i("name"),
            Term::Literal(Literal::string("Alice")),
        );
        g
    }

    fn run(query: &str) -> Vec<Vec<Option<String>>> {
        run_on(&MemStore::from_graph(&graph()), query)
    }

    fn run_on(store: &dyn TripleStore, query: &str) -> Vec<Vec<Option<String>>> {
        let t = translate(&parse(query).unwrap());
        let plan = bind(&t.algebra, store);
        let cancel = Cancellation::none();
        let ctx = EvalContext {
            store,
            shared: None,
            cancel: cancel.clone(),
            width: t.vars.len(),
            counters: None,
        };
        ctx.eval(&plan)
            .map(|row| {
                t.projection
                    .iter()
                    .map(|&v| {
                        row.get(v)
                            .map(|id| store.dictionary().decode(id).to_string())
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn single_pattern() {
        let rows = run("SELECT ?o WHERE { <http://x/alice> <http://x/knows> ?o }");
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][0].as_deref(), Some("<http://x/bob>"));
    }

    #[test]
    fn two_pattern_chain() {
        let rows = run(
            "SELECT ?c WHERE { <http://x/alice> <http://x/knows> ?b . ?b <http://x/knows> ?c }",
        );
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][0].as_deref(), Some("<http://x/carol>"));
    }

    #[test]
    fn filter_on_integer() {
        let rows = run("SELECT ?p WHERE { ?p <http://x/age> ?a FILTER (?a > 35) }");
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][0].as_deref(), Some("<http://x/bob>"));
    }

    #[test]
    fn optional_keeps_unmatched_rows() {
        let rows =
            run("SELECT ?p ?n WHERE { ?p <http://x/age> ?a OPTIONAL { ?p <http://x/name> ?n } }");
        assert_eq!(rows.len(), 2);
        let with_name = rows.iter().filter(|r| r[1].is_some()).count();
        assert_eq!(with_name, 1, "only alice has a name");
    }

    #[test]
    fn optional_filter_condition_scopes_outer_vars() {
        // The LeftJoin condition references ?a from the outer group: only
        // persons older than 35 get the name joined (nobody, since only
        // alice has a name and she is 30) — all rows survive unmatched.
        let rows = run(
            "SELECT ?p ?n WHERE { ?p <http://x/age> ?a OPTIONAL { ?p <http://x/name> ?n FILTER (?a > 35) } }",
        );
        assert_eq!(rows.len(), 2);
        assert!(rows.iter().all(|r| r[1].is_none()));
    }

    #[test]
    fn closed_world_negation() {
        // Persons with age but no name: bob.
        let rows = run(
            "SELECT ?p WHERE { ?p <http://x/age> ?x OPTIONAL { ?p <http://x/name> ?n } FILTER (!bound(?n)) }",
        );
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][0].as_deref(), Some("<http://x/bob>"));
    }

    #[test]
    fn union_concatenates() {
        let rows =
            run("SELECT ?x WHERE { { ?x <http://x/age> ?y } UNION { ?x <http://x/name> ?y } }");
        assert_eq!(rows.len(), 3);
    }

    #[test]
    fn distinct_deduplicates() {
        let rows = run("SELECT DISTINCT ?p WHERE { ?s ?p ?o }");
        assert_eq!(rows.len(), 3); // knows, age, name
    }

    #[test]
    fn order_by_with_limit_offset() {
        let rows = run("SELECT ?s WHERE { ?s <http://x/knows> ?o } ORDER BY ?s LIMIT 2 OFFSET 1");
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0][0].as_deref(), Some("<http://x/bob>"));
        assert_eq!(rows[1][0].as_deref(), Some("<http://x/carol>"));
    }

    #[test]
    fn order_by_desc() {
        let rows = run("SELECT ?a WHERE { ?p <http://x/age> ?a } ORDER BY DESC(?a)");
        assert_eq!(
            rows[0][0].as_deref(),
            Some("\"40\"^^<http://www.w3.org/2001/XMLSchema#integer>")
        );
    }

    #[test]
    fn repeated_variable_in_pattern() {
        // ?x knows ?x — nobody knows themselves.
        let rows = run("SELECT ?x WHERE { ?x <http://x/knows> ?x }");
        assert!(rows.is_empty());
    }

    #[test]
    fn join_merges_possibly_bound_shared_variable() {
        // ?c is shared between the two join sides but only *possibly*
        // bound on the left (inside an OPTIONAL): it cannot be part of
        // the hash key, so the residual compatibility must come from the
        // full-row merge. alice's left row carries ?c = "Alice"; her
        // right rows bind ?c = "Alice" (compatible → merges) and
        // ?c = "Wonderland" (conflict → dropped). bob's left row leaves
        // ?c unbound, so it merges with his right binding.
        let mut g = graph();
        let p = |s: &str| Subject::iri(format!("http://x/{s}"));
        let i = |s: &str| Iri::new(format!("http://x/{s}"));
        g.add(
            p("alice"),
            i("likes"),
            Term::Literal(Literal::string("Alice")),
        );
        g.add(
            p("alice"),
            i("likes"),
            Term::Literal(Literal::string("Wonderland")),
        );
        g.add(p("bob"), i("likes"), Term::Literal(Literal::string("Math")));
        let store = MemStore::from_graph(&g);
        let mut rows = run_on(
            &store,
            "SELECT ?p ?c WHERE {
                { ?p <http://x/age> ?a OPTIONAL { ?p <http://x/name> ?c } }
                { ?p <http://x/likes> ?c }
             }",
        );
        rows.sort();
        let string_lit = |s: &str| format!("\"{s}\"^^<http://www.w3.org/2001/XMLSchema#string>");
        assert_eq!(
            rows,
            vec![
                vec![
                    Some("<http://x/alice>".to_owned()),
                    Some(string_lit("Alice"))
                ],
                vec![Some("<http://x/bob>".to_owned()), Some(string_lit("Math"))],
            ],
            "conflicting ?c must be rejected, unbound ?c must merge"
        );
    }

    #[test]
    fn exchange_matches_sequential_order_exactly() {
        // A store big enough for several morsels; the Exchange output
        // must equal the sequential rows in the same order.
        let mut g = Graph::new();
        for i in 0..3000 {
            g.add(
                Subject::iri(format!("http://x/s{i:04}")),
                Iri::new("http://x/p"),
                Term::Literal(Literal::integer(i)),
            );
        }
        let store: SharedStore = NativeStore::from_graph(&g).into_shared();
        let t = translate(&parse("SELECT ?s ?v WHERE { ?s <http://x/p> ?v }").unwrap());
        let plan = bind(&t.algebra, &*store);
        let Plan::Project(vars, inner) = plan else {
            panic!()
        };
        let parallel = Plan::Project(
            vars.clone(),
            Box::new(Plan::Exchange {
                degree: 4,
                base: crate::plan::PARALLEL_BASE_THRESHOLD,
                input: inner.clone(),
            }),
        );
        let sequential = Plan::Project(vars, inner);
        let ctx = || EvalContext {
            store: &*store,
            shared: Some(store.clone()),
            cancel: Cancellation::none(),
            width: t.vars.len(),
            counters: None,
        };
        let seq: Vec<Bindings> = ctx().eval(&sequential).collect();
        let par: Vec<Bindings> = ctx().eval(&parallel).collect();
        assert_eq!(seq.len(), 3000);
        assert_eq!(seq, par, "parallel merge must preserve sequential order");
    }

    #[test]
    fn exchange_honours_pre_triggered_cancellation() {
        let mut g = Graph::new();
        for i in 0..2000 {
            g.add(
                Subject::iri(format!("http://x/s{i}")),
                Iri::new("http://x/p"),
                Term::Literal(Literal::integer(i)),
            );
        }
        let store: SharedStore = NativeStore::from_graph(&g).into_shared();
        let t = translate(&parse("SELECT ?s WHERE { ?s <http://x/p> ?v }").unwrap());
        let Plan::Project(_, inner) = bind(&t.algebra, &*store) else {
            panic!()
        };
        let plan = Plan::Exchange {
            degree: 4,
            base: crate::plan::PARALLEL_BASE_THRESHOLD,
            input: inner,
        };
        let cancel = Cancellation::none();
        cancel.cancel();
        let ctx = EvalContext {
            store: &*store,
            shared: Some(store.clone()),
            cancel: cancel.clone(),
            width: t.vars.len(),
            counters: None,
        };
        assert_eq!(ctx.eval(&plan).count(), 0);
        assert!(cancel.was_triggered());
    }

    #[test]
    fn cross_product_when_no_shared_vars() {
        let rows = run("SELECT ?a ?b WHERE { { ?a <http://x/age> ?x } { ?b <http://x/name> ?y } }");
        assert_eq!(rows.len(), 2); // 2 ages × 1 name
    }

    #[test]
    fn native_store_agrees_with_mem_store() {
        let g = graph();
        let mem = MemStore::from_graph(&g);
        let native = NativeStore::from_graph(&g);
        for q in [
            "SELECT ?s ?o WHERE { ?s <http://x/knows> ?o }",
            "SELECT ?p WHERE { ?p <http://x/age> ?a FILTER (?a > 35) }",
            "SELECT DISTINCT ?p WHERE { ?s ?p ?o }",
            "SELECT ?p ?n WHERE { ?p <http://x/age> ?a OPTIONAL { ?p <http://x/name> ?n } }",
        ] {
            let mut a = run_on(&mem, q);
            let mut b = run_on(&native, q);
            a.sort();
            b.sort();
            assert_eq!(a, b, "query {q}");
        }
    }

    #[test]
    fn cancellation_stops_evaluation() {
        let store = MemStore::from_graph(&graph());
        let t = translate(&parse("SELECT ?s ?p ?o WHERE { ?s ?p ?o . ?s2 ?p2 ?o2 }").unwrap());
        let plan = bind(&t.algebra, &store);
        let cancel = Cancellation::none();
        cancel.cancel();
        let ctx = EvalContext {
            store: &store,
            shared: None,
            cancel: cancel.clone(),
            width: t.vars.len(),
            counters: None,
        };
        assert_eq!(ctx.eval(&plan).count(), 0);
        assert!(cancel.was_triggered());
    }

    #[test]
    fn unbound_rows_sort_first() {
        let rows = run(
            "SELECT ?p ?n WHERE { ?p <http://x/age> ?a OPTIONAL { ?p <http://x/name> ?n } } ORDER BY ?n",
        );
        assert_eq!(rows.len(), 2);
        assert!(rows[0][1].is_none());
        assert!(rows[1][1].is_some());
    }
}
