//! Tests for the aggregation extension (GROUP BY + COUNT) — the paper's
//! Section VII: "Concerning aggregations, the detailed knowledge of the
//! document class counts and distributions facilitates the design of
//! challenging aggregate queries."

use sp2b_rdf::{Graph, Iri, Literal, Subject, Term};
use sp2b_sparql::{QueryEngine, QueryResult};
use sp2b_store::{MemStore, TripleStore};

fn store() -> MemStore {
    let mut g = Graph::new();
    // Three classes with 3, 2, 1 instances; persons with names.
    for (i, class) in [(0, "A"), (1, "A"), (2, "A"), (3, "B"), (4, "B"), (5, "C")] {
        g.add(
            Subject::iri(format!("http://x/d{i}")),
            Iri::new("http://x/type"),
            Term::iri(format!("http://x/{class}")),
        );
    }
    // d0 has two creators; d1 one; d2 none.
    for (d, p) in [(0, "alice"), (0, "bob"), (1, "alice")] {
        g.add(
            Subject::iri(format!("http://x/d{d}")),
            Iri::new("http://x/creator"),
            Term::iri(format!("http://x/{p}")),
        );
    }
    g.add(
        Subject::iri("http://x/alice"),
        Iri::new("http://x/age"),
        Term::Literal(Literal::integer(30)),
    );
    MemStore::from_graph(&g)
}

fn rows(query: &str) -> (Vec<String>, Vec<Vec<Option<Term>>>) {
    match QueryEngine::new(store().into_shared()).run(query).unwrap() {
        QueryResult::Solutions { variables, rows } => (variables, rows),
        other => panic!("{other:?}"),
    }
}

fn int(t: &Option<Term>) -> i64 {
    match t {
        Some(Term::Literal(l)) => l.as_integer().expect("integer literal"),
        other => panic!("expected integer, got {other:?}"),
    }
}

#[test]
fn count_star_grouped_by_class() {
    let (vars, rows) = rows(
        "SELECT ?class (COUNT(*) AS ?n) WHERE { ?d <http://x/type> ?class } \
         GROUP BY ?class ORDER BY DESC(?n)",
    );
    assert_eq!(vars, ["class", "n"]);
    assert_eq!(rows.len(), 3);
    let counts: Vec<i64> = rows.iter().map(|r| int(&r[1])).collect();
    assert_eq!(counts, [3, 2, 1], "ordered by descending count");
}

#[test]
fn count_variable_skips_unbound() {
    // d2 has a class but no creator: COUNT(?p) must not count its row.
    let (_, rows) = rows(
        "SELECT ?d (COUNT(?p) AS ?n) WHERE { ?d <http://x/type> <http://x/A> \
         OPTIONAL { ?d <http://x/creator> ?p } } GROUP BY ?d",
    );
    assert_eq!(rows.len(), 3);
    let mut counts: Vec<i64> = rows.iter().map(|r| int(&r[1])).collect();
    counts.sort_unstable();
    assert_eq!(counts, [0, 1, 2]);
}

#[test]
fn count_distinct() {
    // alice creates d0 and d1 → plain count 3 creator edges, distinct
    // creators = 2.
    let (_, plain) = rows("SELECT (COUNT(?p) AS ?n) WHERE { ?d <http://x/creator> ?p }");
    assert_eq!(int(&plain[0][0]), 3);
    let (_, distinct) =
        rows("SELECT (COUNT(DISTINCT ?p) AS ?n) WHERE { ?d <http://x/creator> ?p }");
    assert_eq!(int(&distinct[0][0]), 2);
}

#[test]
fn global_count_over_empty_pattern_is_zero_row() {
    // SPARQL 1.1: implicit group over an empty solution set yields one
    // row with count 0.
    let (_, rows) = rows("SELECT (COUNT(*) AS ?n) WHERE { ?d <http://x/nonexistent> ?x }");
    assert_eq!(rows.len(), 1);
    assert_eq!(int(&rows[0][0]), 0);
}

#[test]
fn grouped_count_over_empty_pattern_is_empty() {
    let (_, rows) =
        rows("SELECT ?d (COUNT(*) AS ?n) WHERE { ?d <http://x/nonexistent> ?x } GROUP BY ?d");
    assert!(rows.is_empty());
}

#[test]
fn limit_and_offset_apply_to_groups() {
    let (_, rows) = rows(
        "SELECT ?class (COUNT(*) AS ?n) WHERE { ?d <http://x/type> ?class } \
         GROUP BY ?class ORDER BY DESC(?n) LIMIT 1 OFFSET 1",
    );
    assert_eq!(rows.len(), 1);
    assert_eq!(int(&rows[0][1]), 2, "second-largest group");
}

#[test]
fn multiple_aggregates_in_one_query() {
    let (vars, rows) = rows(
        "SELECT ?d (COUNT(?p) AS ?edges) (COUNT(DISTINCT ?p) AS ?people) \
         WHERE { ?d <http://x/creator> ?p } GROUP BY ?d",
    );
    assert_eq!(vars, ["d", "edges", "people"]);
    // d0: 2 edges 2 people; d1: 1 edge 1 person.
    let d0 = rows
        .iter()
        .find(|r| r[0].as_ref().unwrap().to_string().contains("d0"))
        .expect("d0 group");
    assert_eq!(int(&d0[1]), 2);
    assert_eq!(int(&d0[2]), 2);
}

#[test]
fn projection_restriction_enforced() {
    // ?d projected next to an aggregate but not grouped → parse error.
    let result = QueryEngine::new(store().into_shared())
        .run("SELECT ?d (COUNT(*) AS ?n) WHERE { ?d <http://x/type> ?c }");
    assert!(result.is_err());
}

#[test]
fn group_by_without_aggregate_rejected() {
    let result = QueryEngine::new(store().into_shared())
        .run("SELECT ?c WHERE { ?d <http://x/type> ?c } GROUP BY ?c");
    assert!(result.is_err());
}

#[test]
fn aggregate_count_method_returns_group_count() {
    let engine = QueryEngine::new(store().into_shared());
    let p = engine
        .prepare(
            "SELECT ?class (COUNT(*) AS ?n) WHERE { ?d <http://x/type> ?class } GROUP BY ?class",
        )
        .unwrap();
    assert_eq!(engine.count(&p).unwrap(), 3);
}

#[test]
fn deterministic_output_order_without_order_by() {
    // Grouped results sort by the full row when no ORDER BY is given.
    let q = "SELECT ?class (COUNT(*) AS ?n) WHERE { ?d <http://x/type> ?class } GROUP BY ?class";
    let (_, a) = rows(q);
    let (_, b) = rows(q);
    assert_eq!(a, b);
}
