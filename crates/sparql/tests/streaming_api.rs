//! Behavioural tests of the streaming `QueryEngine` API: lazy `Solution`
//! rows, row limits, cancellation mid-stream, ASK streaming, and the
//! aggregation operator's agreement across the three consumption modes.

use std::time::{Duration, Instant};

use sp2b_rdf::{Graph, Iri, Literal, Subject, Term};
use sp2b_sparql::{Cancellation, Error, QueryEngine, QueryOptions, QueryResult};
use sp2b_store::{MemStore, NativeStore, TripleStore};

fn graph() -> Graph {
    let mut g = Graph::new();
    for i in 0..20 {
        let s = Subject::iri(format!("http://x/d{i}"));
        g.add(
            s.clone(),
            Iri::new("http://x/type"),
            Term::iri(format!("http://x/c{}", i % 4)),
        );
        g.add(
            s.clone(),
            Iri::new("http://x/rank"),
            Term::Literal(Literal::integer(i)),
        );
        if i % 3 == 0 {
            g.add(
                s,
                Iri::new("http://x/tag"),
                Term::Literal(Literal::string("x")),
            );
        }
    }
    g
}

#[test]
fn streaming_equals_execute_on_both_stores() {
    let g = graph();
    let queries = [
        "SELECT ?d ?c WHERE { ?d <http://x/type> ?c } ORDER BY ?d",
        "SELECT DISTINCT ?c WHERE { ?d <http://x/type> ?c } ORDER BY ?c",
        "SELECT ?d ?t WHERE { ?d <http://x/rank> ?r OPTIONAL { ?d <http://x/tag> ?t } } ORDER BY ?r LIMIT 7 OFFSET 2",
        "SELECT ?c (COUNT(*) AS ?n) WHERE { ?d <http://x/type> ?c } GROUP BY ?c ORDER BY DESC(?n)",
    ];
    let stores: [sp2b_store::SharedStore; 2] = [
        MemStore::from_graph(&g).into_shared(),
        NativeStore::from_graph(&g).into_shared(),
    ];
    for store in stores {
        let engine = QueryEngine::new(store);
        for q in queries {
            let prepared = engine.prepare(q).unwrap();
            let QueryResult::Solutions { rows, .. } = engine.execute(&prepared).unwrap() else {
                panic!("SELECT query")
            };
            let streamed: Vec<Vec<Option<Term>>> = engine
                .solutions(&prepared)
                .map(|s| s.unwrap().materialize())
                .collect();
            assert_eq!(streamed, rows, "stream/execute disagree on {q}");
            assert_eq!(engine.count(&prepared).unwrap(), rows.len() as u64, "{q}");
        }
    }
}

#[test]
fn ask_streams_zero_or_one_empty_solution() {
    let engine = QueryEngine::new(MemStore::from_graph(&graph()).into_shared());
    let yes = engine
        .prepare("ASK { ?d <http://x/type> <http://x/c1> }")
        .unwrap();
    let rows: Vec<_> = engine.solutions(&yes).collect::<Result<_, _>>().unwrap();
    assert_eq!(rows.len(), 1);
    assert!(rows[0].is_empty(), "the ASK witness has no columns");
    let no = engine
        .prepare("ASK { ?d <http://x/type> <http://x/nope> }")
        .unwrap();
    assert_eq!(engine.solutions(&no).count(), 0);
}

#[test]
fn row_limit_policy_applies_to_streams() {
    let store = MemStore::from_graph(&graph()).into_shared();
    let engine = QueryEngine::with_options(store, QueryOptions::new().row_limit(3));
    let p = engine
        .prepare("SELECT ?d WHERE { ?d <http://x/type> ?c }")
        .unwrap();
    assert_eq!(engine.solutions(&p).count(), 3);
    assert_eq!(engine.execute(&p).unwrap().row_count(), 3);
    assert_eq!(engine.count(&p).unwrap(), 20);
}

#[test]
fn cancellation_mid_stream_surfaces_once() {
    let engine = QueryEngine::new(MemStore::from_graph(&graph()).into_shared());
    let p = engine
        .prepare("SELECT ?a ?b WHERE { ?a <http://x/type> ?x . ?b <http://x/type> ?y }")
        .unwrap();
    let cancel = Cancellation::none();
    let mut stream = engine.solutions_with(&p, &cancel);
    assert!(stream.next().unwrap().is_ok(), "stream starts fine");
    cancel.cancel();
    assert!(matches!(stream.next(), Some(Err(Error::Cancelled))));
    assert!(stream.next().is_none(), "stream ends after the error");
}

#[test]
fn deadline_cancels_a_stream() {
    let engine = QueryEngine::new(MemStore::from_graph(&graph()).into_shared());
    let p = engine
        .prepare("SELECT ?a ?b WHERE { ?a <http://x/type> ?x . ?b <http://x/type> ?y }")
        .unwrap();
    let cancel = Cancellation::with_deadline(Instant::now() - Duration::from_secs(1));
    let mut stream = engine.solutions_with(&p, &cancel);
    assert!(matches!(stream.next(), Some(Err(Error::Cancelled))));
    assert!(stream.next().is_none());
}

#[test]
fn aggregate_streams_lazily_too() {
    let engine = QueryEngine::new(NativeStore::from_graph(&graph()).into_shared());
    let p = engine
        .prepare(
            "SELECT ?c (COUNT(?d) AS ?n) WHERE { ?d <http://x/type> ?c } \
             GROUP BY ?c ORDER BY ?c",
        )
        .unwrap();
    assert!(p.is_aggregate());
    let mut counts = Vec::new();
    for solution in engine.solutions(&p) {
        let row = solution.unwrap();
        // Count columns decode to integer literals on demand.
        let Some(Term::Literal(l)) = row.get(1) else {
            panic!("count bound")
        };
        counts.push(l.as_integer().unwrap());
    }
    assert_eq!(counts, [5, 5, 5, 5]);
}

#[test]
fn prepared_exposes_columns() {
    let engine = QueryEngine::new(MemStore::from_graph(&graph()).into_shared());
    let p = engine
        .prepare("SELECT ?c (COUNT(*) AS ?n) WHERE { ?d <http://x/type> ?c } GROUP BY ?c")
        .unwrap();
    assert_eq!(p.variables(), ["c", "n"]);
    let select = engine
        .prepare("SELECT ?d ?c WHERE { ?d <http://x/type> ?c }")
        .unwrap();
    assert_eq!(select.variables(), ["d", "c"]);
}
