//! Property tests for the evaluator's join semantics: the hash-based
//! Join/LeftJoin implementations must match a trivially-correct reference
//! (nested loops over materialized sides, straight from the SPARQL
//! algebra definitions).

use proptest::prelude::*;

use sp2b_rdf::{Graph, Iri, Subject, Term};
use sp2b_sparql::{OptimizerConfig, QueryEngine, QueryResult};
use sp2b_store::{MemStore, SharedStore, TripleStore};

fn graph_strategy() -> impl Strategy<Value = Graph> {
    prop::collection::vec((0u8..5, 0u8..3, 0u8..5), 0..40).prop_map(|v| {
        let mut g = Graph::new();
        for (s, p, o) in v {
            g.add(
                Subject::iri(format!("http://j/s{s}")),
                Iri::new(format!("http://j/p{p}")),
                Term::iri(format!("http://j/o{o}")),
            );
        }
        g
    })
}

/// Materializes a single-pattern query as (subject, object) pairs.
fn scan_pairs(store: &SharedStore, predicate: &str) -> Vec<(String, String)> {
    let q = format!("SELECT ?s ?o WHERE {{ ?s <{predicate}> ?o }}");
    rows(store, &q)
        .into_iter()
        .map(|r| (r[0].clone(), r[1].clone()))
        .collect()
}

fn rows(store: &SharedStore, query: &str) -> Vec<Vec<String>> {
    let engine = QueryEngine::new(store.clone()).optimizer(OptimizerConfig::default());
    let prepared = engine.prepare(query).expect("query parses");
    let QueryResult::Solutions { rows, .. } =
        engine.execute(&prepared).expect("evaluation succeeds")
    else {
        panic!("SELECT query")
    };
    rows.iter()
        .map(|r| {
            r.iter()
                .map(|t| t.as_ref().map_or("-".to_owned(), ToString::to_string))
                .collect()
        })
        .collect()
}

fn sorted(mut v: Vec<Vec<String>>) -> Vec<Vec<String>> {
    v.sort();
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Join(p0, p1) on the shared subject == reference nested loop.
    #[test]
    fn join_matches_reference(g in graph_strategy()) {
        let store = MemStore::from_graph(&g).into_shared();
        let engine_rows = sorted(rows(
            &store,
            "SELECT ?s ?a ?b WHERE { ?s <http://j/p0> ?a . ?s <http://j/p1> ?b }",
        ));
        // Reference: nested loop over the two scans.
        let left = scan_pairs(&store, "http://j/p0");
        let right = scan_pairs(&store, "http://j/p1");
        let mut expected = Vec::new();
        for (s1, a) in &left {
            for (s2, b) in &right {
                if s1 == s2 {
                    expected.push(vec![s1.clone(), a.clone(), b.clone()]);
                }
            }
        }
        prop_assert_eq!(engine_rows, sorted(expected));
    }

    /// LeftJoin == matched join rows plus unmatched left rows.
    #[test]
    fn left_join_matches_reference(g in graph_strategy()) {
        let store = MemStore::from_graph(&g).into_shared();
        let engine_rows = sorted(rows(
            &store,
            "SELECT ?s ?a ?b WHERE { ?s <http://j/p0> ?a OPTIONAL { ?s <http://j/p1> ?b } }",
        ));
        let left = scan_pairs(&store, "http://j/p0");
        let right = scan_pairs(&store, "http://j/p1");
        let mut expected = Vec::new();
        for (s1, a) in &left {
            let matches: Vec<_> = right.iter().filter(|(s2, _)| s1 == s2).collect();
            if matches.is_empty() {
                expected.push(vec![s1.clone(), a.clone(), "-".to_owned()]);
            } else {
                for (_, b) in matches {
                    expected.push(vec![s1.clone(), a.clone(), b.clone()]);
                }
            }
        }
        prop_assert_eq!(engine_rows, sorted(expected));
    }

    /// LeftJoin with a condition implements the spec's Filter∪Diff
    /// definition: rows where the condition holds, plus left rows with no
    /// passing partner.
    #[test]
    fn conditional_left_join_matches_reference(g in graph_strategy()) {
        let store = MemStore::from_graph(&g).into_shared();
        let engine_rows = sorted(rows(
            &store,
            "SELECT ?s ?a ?b WHERE { ?s <http://j/p0> ?a \
             OPTIONAL { ?s <http://j/p1> ?b FILTER (?b != ?a) } }",
        ));
        let left = scan_pairs(&store, "http://j/p0");
        let right = scan_pairs(&store, "http://j/p1");
        let mut expected = Vec::new();
        for (s1, a) in &left {
            let passing: Vec<_> = right
                .iter()
                .filter(|(s2, b)| s1 == s2 && b != a)
                .collect();
            if passing.is_empty() {
                expected.push(vec![s1.clone(), a.clone(), "-".to_owned()]);
            } else {
                for (_, b) in passing {
                    expected.push(vec![s1.clone(), a.clone(), b.clone()]);
                }
            }
        }
        prop_assert_eq!(engine_rows, sorted(expected));
    }

    /// !bound() negation == set difference of the two scans.
    #[test]
    fn negation_matches_set_difference(g in graph_strategy()) {
        let store = MemStore::from_graph(&g).into_shared();
        let engine_rows = sorted(rows(
            &store,
            "SELECT ?s ?a WHERE { ?s <http://j/p0> ?a \
             OPTIONAL { ?s <http://j/p1> ?b } FILTER (!bound(?b)) }",
        ));
        let left = scan_pairs(&store, "http://j/p0");
        let right_subjects: std::collections::HashSet<String> =
            scan_pairs(&store, "http://j/p1").into_iter().map(|(s, _)| s).collect();
        let expected: Vec<Vec<String>> = left
            .into_iter()
            .filter(|(s, _)| !right_subjects.contains(s))
            .map(|(s, a)| vec![s, a])
            .collect();
        prop_assert_eq!(engine_rows, sorted(expected));
    }

    /// UNION == concatenation (multiset semantics, before DISTINCT).
    #[test]
    fn union_is_multiset_concatenation(g in graph_strategy()) {
        let store = MemStore::from_graph(&g).into_shared();
        let union_rows = rows(
            &store,
            "SELECT ?s ?o WHERE { { ?s <http://j/p0> ?o } UNION { ?s <http://j/p1> ?o } }",
        );
        let a = scan_pairs(&store, "http://j/p0").len();
        let b = scan_pairs(&store, "http://j/p1").len();
        prop_assert_eq!(union_rows.len(), a + b);
    }

    /// DISTINCT never increases and dedups exactly.
    #[test]
    fn distinct_semantics(g in graph_strategy()) {
        let store = MemStore::from_graph(&g).into_shared();
        let all = rows(&store, "SELECT ?s WHERE { ?s ?p ?o }");
        let distinct = rows(&store, "SELECT DISTINCT ?s WHERE { ?s ?p ?o }");
        let unique: std::collections::HashSet<_> = all.iter().cloned().collect();
        prop_assert_eq!(distinct.len(), unique.len());
    }

    /// OFFSET/LIMIT slice the ordered stream exactly.
    #[test]
    fn slice_windows_ordered_results(g in graph_strategy(), offset in 0u64..10, limit in 1u64..10) {
        let store = MemStore::from_graph(&g).into_shared();
        let all = rows(&store, "SELECT ?s ?p ?o WHERE { ?s ?p ?o } ORDER BY ?s ?p ?o");
        let q = format!(
            "SELECT ?s ?p ?o WHERE {{ ?s ?p ?o }} ORDER BY ?s ?p ?o LIMIT {limit} OFFSET {offset}"
        );
        let window = rows(&store, &q);
        let expected: Vec<_> = all
            .into_iter()
            .skip(offset as usize)
            .take(limit as usize)
            .collect();
        prop_assert_eq!(window, expected);
    }
}
