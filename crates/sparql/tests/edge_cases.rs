//! Evaluator edge cases beyond the benchmark queries' shapes.

use sp2b_rdf::{Graph, Iri, Literal, Subject, Term};
use sp2b_sparql::{OptimizerConfig, QueryEngine, QueryResult};
use sp2b_store::{MemStore, NativeStore, TripleStore};

fn store() -> MemStore {
    let mut g = Graph::new();
    g.add(
        Subject::iri("http://x/a"),
        Iri::new("http://x/p"),
        Term::iri("http://x/b"),
    );
    g.add(
        Subject::iri("http://x/b"),
        Iri::new("http://x/p"),
        Term::iri("http://x/c"),
    );
    g.add(
        Subject::iri("http://x/a"),
        Iri::new("http://x/q"),
        Term::Literal(Literal::integer(1)),
    );
    g.add(
        Subject::iri("http://x/b"),
        Iri::new("http://x/q"),
        Term::Literal(Literal::integer(2)),
    );
    MemStore::from_graph(&g)
}

fn rows(q: &str) -> Vec<Vec<Option<Term>>> {
    match QueryEngine::new(store().into_shared()).run(q).unwrap() {
        QueryResult::Solutions { rows, .. } => rows,
        other => panic!("{other:?}"),
    }
}

#[test]
fn constant_true_filter_keeps_all() {
    assert_eq!(
        rows("SELECT ?s WHERE { ?s <http://x/p> ?o FILTER (1 < 2) }").len(),
        2
    );
}

#[test]
fn constant_false_filter_drops_all() {
    assert!(rows("SELECT ?s WHERE { ?s <http://x/p> ?o FILTER (2 < 1) }").is_empty());
}

#[test]
fn boolean_literal_filters() {
    assert_eq!(
        rows("SELECT ?s WHERE { ?s <http://x/p> ?o FILTER (true) }").len(),
        2
    );
    assert!(rows("SELECT ?s WHERE { ?s <http://x/p> ?o FILTER (false) }").is_empty());
}

#[test]
fn select_star_includes_optional_vars() {
    let r = QueryEngine::new(store().into_shared())
        .optimizer(OptimizerConfig::default())
        .run("SELECT * WHERE { ?s <http://x/p> ?o OPTIONAL { ?o <http://x/q> ?v } }")
        .unwrap();
    let QueryResult::Solutions { variables, rows } = r else {
        panic!()
    };
    assert_eq!(variables, ["s", "o", "v"]);
    assert_eq!(rows.len(), 2);
    // ?v bound only where it joins (b has q, c does not).
    let bound = rows.iter().filter(|r| r[2].is_some()).count();
    assert_eq!(bound, 1);
}

#[test]
fn union_inside_optional() {
    let r = rows(
        "SELECT ?s ?x WHERE { ?s <http://x/p> ?o \
         OPTIONAL { { ?s <http://x/q> ?x } UNION { ?o <http://x/q> ?x } } }",
    );
    // a: q(a)=1 and q(b)=2 via ?o → two optional matches; b: q(b)=2 and
    // q(c) missing → one match.
    assert_eq!(r.len(), 3);
    assert!(r.iter().all(|row| row[1].is_some()));
}

#[test]
fn property_list_sugar_evaluates() {
    let r = rows("SELECT ?o ?v WHERE { <http://x/a> <http://x/p> ?o ; <http://x/q> ?v }");
    assert_eq!(r.len(), 1);
}

#[test]
fn empty_group_yields_single_empty_solution() {
    let r = rows("SELECT ?s WHERE { }");
    assert_eq!(r.len(), 1, "the empty BGP has one (empty) solution");
    assert!(r[0][0].is_none());
}

#[test]
fn offset_beyond_results_is_empty() {
    assert!(rows("SELECT ?s WHERE { ?s <http://x/p> ?o } LIMIT 5 OFFSET 100").is_empty());
}

#[test]
fn limit_zero_is_empty() {
    assert!(rows("SELECT ?s WHERE { ?s <http://x/p> ?o } LIMIT 0").is_empty());
}

#[test]
fn filter_referencing_never_bound_variable_drops_rows() {
    // ?nope is never bound: comparison errors eliminate every row.
    assert!(rows("SELECT ?s WHERE { ?s <http://x/p> ?o FILTER (?nope = 1) }").is_empty());
    // But bound(?nope) is false, so !bound keeps rows.
    assert_eq!(
        rows("SELECT ?s WHERE { ?s <http://x/p> ?o FILTER (!bound(?nope)) }").len(),
        2
    );
}

#[test]
fn duplicate_triples_produce_duplicate_solutions() {
    let mut g = Graph::new();
    for _ in 0..3 {
        g.add(
            Subject::iri("http://x/s"),
            Iri::new("http://x/p"),
            Term::iri("http://x/o"),
        );
    }
    let engine = QueryEngine::new(MemStore::from_graph(&g).into_shared())
        .optimizer(OptimizerConfig::default());
    let r = engine
        .run("SELECT ?s WHERE { ?s <http://x/p> ?o }")
        .unwrap();
    assert_eq!(r.len(), 3, "bag semantics before DISTINCT");
    let d = engine
        .run("SELECT DISTINCT ?s WHERE { ?s <http://x/p> ?o }")
        .unwrap();
    assert_eq!(d.len(), 1);
}

#[test]
fn deeply_nested_optionals() {
    // Q7's triple-nesting shape on synthetic data.
    let q = "SELECT ?a ?b ?c ?d WHERE {
        ?a <http://x/p> ?b
        OPTIONAL {
            ?b <http://x/p> ?c
            OPTIONAL { ?c <http://x/p> ?d }
        }
    }";
    let r = rows(q);
    assert_eq!(r.len(), 2);
    // a→b→c chain exists; c has no successor.
    let full = r.iter().find(|row| row[2].is_some()).expect("chained row");
    assert!(full[3].is_none(), "no third hop exists");
}

#[test]
fn ask_with_optional() {
    let r = QueryEngine::new(store().into_shared())
        .optimizer(OptimizerConfig::default())
        .run("ASK { ?s <http://x/p> ?o OPTIONAL { ?o <http://x/q> ?v } }")
        .unwrap();
    assert_eq!(r.as_bool(), Some(true));
}

#[test]
fn stores_agree_on_variable_predicate_queries() {
    let mut g = Graph::new();
    g.add(
        Subject::iri("http://x/s"),
        Iri::new("http://x/p1"),
        Term::iri("http://x/o"),
    );
    g.add(
        Subject::iri("http://x/s"),
        Iri::new("http://x/p2"),
        Term::iri("http://x/o"),
    );
    let q = "SELECT DISTINCT ?p WHERE { <http://x/s> ?p <http://x/o> }";
    let a = QueryEngine::new(MemStore::from_graph(&g).into_shared())
        .run(q)
        .unwrap()
        .len();
    let b = QueryEngine::new(NativeStore::from_graph(&g).into_shared())
        .run(q)
        .unwrap()
        .len();
    assert_eq!(a, 2);
    assert_eq!(a, b);
}
