//! Acceptance check for the streaming count path: `QueryEngine::count`
//! must perform **no term decoding** — counting is pure id-space work
//! (ORDER BY skipped, OFFSET/LIMIT arithmetic, DISTINCT and GROUP BY over
//! raw ids).
//!
//! Uses the debug-build-only `DECODE_CALLS` counter in `sp2b_store`. This
//! file holds a single test so the process-wide counter sees no
//! interference from parallel tests (integration test files run as
//! separate processes).

#![cfg(debug_assertions)]

use sp2b_rdf::{Graph, Iri, Literal, Subject, Term};
use sp2b_sparql::QueryEngine;
use sp2b_store::{dictionary::DECODE_CALLS, NativeStore, TripleStore};
use std::sync::atomic::Ordering;

fn store() -> NativeStore {
    let mut g = Graph::new();
    for i in 0..50 {
        let s = Subject::iri(format!("http://x/doc{i}"));
        g.add(
            s.clone(),
            Iri::new("http://x/type"),
            Term::iri(format!("http://x/class{}", i % 3)),
        );
        g.add(
            s.clone(),
            Iri::new("http://x/year"),
            Term::Literal(Literal::integer(1990 + (i % 7) as i64)),
        );
        if i % 2 == 0 {
            g.add(
                s,
                Iri::new("http://x/cites"),
                Term::iri(format!("http://x/doc{}", (i + 1) % 50)),
            );
        }
    }
    NativeStore::from_graph(&g)
}

#[test]
fn count_never_decodes_terms() {
    let engine = QueryEngine::new(store().into_shared());

    // A deliberately operator-rich, filter-free workload: BGP + OPTIONAL +
    // DISTINCT + ORDER BY + LIMIT/OFFSET, plus a GROUP BY aggregate. (Value
    // FILTERs are excluded: comparing literal *values* legitimately decodes
    // during matching on any path.)
    let queries = [
        "SELECT ?d WHERE { ?d <http://x/type> ?c } ORDER BY ?d",
        "SELECT DISTINCT ?c WHERE { ?d <http://x/type> ?c } ORDER BY ?c LIMIT 2 OFFSET 1",
        "SELECT ?d ?o WHERE { ?d <http://x/year> ?y OPTIONAL { ?d <http://x/cites> ?o } } ORDER BY ?y",
        "SELECT ?c (COUNT(*) AS ?n) WHERE { ?d <http://x/type> ?c } GROUP BY ?c",
        "ASK { ?d <http://x/type> <http://x/class1> }",
    ];

    for q in queries {
        let prepared = engine.prepare(q).expect("query prepares");
        let before = DECODE_CALLS.load(Ordering::Relaxed);
        let n = engine.count(&prepared).expect("count succeeds");
        let after = DECODE_CALLS.load(Ordering::Relaxed);
        assert_eq!(
            after,
            before,
            "count path decoded {} terms for {q}",
            after - before
        );

        // Sanity: execute agrees on cardinality and *does* decode.
        let result = engine.execute(&prepared).expect("execute succeeds");
        assert_eq!(n, result.row_count() as u64, "count vs execute for {q}");
    }

    // Sanity for the counter itself: materializing decodes something.
    let prepared = engine
        .prepare("SELECT ?d WHERE { ?d <http://x/type> ?c }")
        .unwrap();
    let before = DECODE_CALLS.load(Ordering::Relaxed);
    let _ = engine.execute(&prepared).unwrap();
    assert!(
        DECODE_CALLS.load(Ordering::Relaxed) > before,
        "execute must decode"
    );
}
