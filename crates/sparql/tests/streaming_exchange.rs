//! Lifecycle tests for the detached streaming exchange, built on the
//! debug-only counters in `sp2b_sparql::par::diag`:
//!
//! * **flat memory** — the high-water mark of in-flight merge batches
//!   during a full-scan query never exceeds the bounded channel's
//!   capacity (plus the single batch the merger holds while accounting);
//! * **no thread leak** — dropping a `Solutions` stream early (after one
//!   row) or exhausting it joins every detached worker thread.
//!
//! The counters are process-wide, so the tests serialize on a mutex.

#![cfg(debug_assertions)]

use std::sync::Mutex;

use sp2b_rdf::{Graph, Iri, Literal, Subject, Term};
use sp2b_sparql::par::diag;
use sp2b_sparql::{Cancellation, Error, QueryEngine, QueryOptions};
use sp2b_store::{NativeStore, SharedStore, TripleStore};

/// Counter serialization: one exchange under observation at a time.
static SERIAL: Mutex<()> = Mutex::new(());

const TRIPLES: i64 = 12_000;

fn big_store() -> SharedStore {
    let mut g = Graph::new();
    for i in 0..TRIPLES {
        g.add(
            Subject::iri(format!("http://x/s{i:05}")),
            Iri::new("http://x/p"),
            Term::Literal(Literal::integer(i)),
        );
    }
    NativeStore::from_graph(&g).into_shared()
}

fn engine(parallelism: usize) -> QueryEngine {
    QueryEngine::with_options(big_store(), QueryOptions::new().parallelism(parallelism))
}

const FULL_SCAN: &str = "SELECT ?s ?v WHERE { ?s <http://x/p> ?v }";

#[test]
fn full_scan_stays_within_the_channel_bound() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let engine = engine(4);
    let prepared = engine.prepare(FULL_SCAN).unwrap();
    diag::reset_channel_stats();
    let mut rows = 0i64;
    for solution in engine.solutions(&prepared) {
        solution.unwrap();
        rows += 1;
    }
    assert_eq!(rows, TRIPLES);
    let (peak, bound) = diag::channel_stats();
    assert!(
        peak > 0,
        "the exchange must actually run (plan: {:?})",
        prepared.plan()
    );
    assert!(
        peak <= bound,
        "peak in-flight batches {peak} exceeded the channel bound {bound}"
    );
    assert_eq!(diag::live_workers(), 0, "exhaustion joins every worker");
}

#[test]
fn dropping_a_stream_after_one_row_joins_every_worker() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let engine = engine(4);
    let prepared = engine.prepare(FULL_SCAN).unwrap();
    {
        let mut stream = engine.solutions(&prepared);
        let first = stream.next().expect("at least one row").unwrap();
        assert!(first.get(0).is_some());
        // Dropped here, TRIPLES - 1 rows early.
    }
    assert_eq!(
        diag::live_workers(),
        0,
        "dropping Solutions must terminate and join every detached worker"
    );
}

#[test]
fn cancellation_mid_stream_stops_and_joins_workers() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let engine = engine(4);
    let prepared = engine.prepare(FULL_SCAN).unwrap();
    let cancel = Cancellation::none();
    let mut stream = engine.solutions_with(&prepared, &cancel);
    assert!(stream.next().unwrap().is_ok(), "stream starts fine");
    cancel.cancel();
    assert!(matches!(stream.next(), Some(Err(Error::Cancelled))));
    assert!(stream.next().is_none(), "error terminates the stream");
    drop(stream);
    assert_eq!(diag::live_workers(), 0, "cancellation joins every worker");
}
