//! Lifecycle tests for the detached streaming exchange, built on the
//! debug-only counters in `sp2b_sparql::par::diag`:
//!
//! * **flat memory** — the high-water mark of in-flight merge batches
//!   during a full-scan query never exceeds the bounded channel's
//!   capacity (plus the single batch the merger holds while accounting);
//! * **no thread leak** — dropping a `Solutions` stream early (after one
//!   row) or exhausting it joins every detached worker thread.
//!
//! The counters are process-wide, so the tests serialize on a mutex.

#![cfg(debug_assertions)]

use std::sync::Mutex;

use sp2b_rdf::{Graph, Iri, Literal, Subject, Term};
use sp2b_sparql::par::diag;
use sp2b_sparql::{Cancellation, Error, QueryEngine, QueryOptions};
use sp2b_store::{NativeStore, SharedStore, TripleStore};

/// Counter serialization: one exchange under observation at a time.
static SERIAL: Mutex<()> = Mutex::new(());

const TRIPLES: i64 = 12_000;

fn big_store() -> SharedStore {
    let mut g = Graph::new();
    for i in 0..TRIPLES {
        g.add(
            Subject::iri(format!("http://x/s{i:05}")),
            Iri::new("http://x/p"),
            Term::Literal(Literal::integer(i)),
        );
    }
    NativeStore::from_graph(&g).into_shared()
}

fn engine(parallelism: usize) -> QueryEngine {
    QueryEngine::with_options(big_store(), QueryOptions::new().parallelism(parallelism))
}

const FULL_SCAN: &str = "SELECT ?s ?v WHERE { ?s <http://x/p> ?v }";

#[test]
fn full_scan_stays_within_the_channel_bound() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let engine = engine(4);
    let prepared = engine.prepare(FULL_SCAN).unwrap();
    diag::reset_channel_stats();
    let mut rows = 0i64;
    for solution in engine.solutions(&prepared) {
        solution.unwrap();
        rows += 1;
    }
    assert_eq!(rows, TRIPLES);
    let (peak, bound) = diag::channel_stats();
    assert!(
        peak > 0,
        "the exchange must actually run (plan: {:?})",
        prepared.plan()
    );
    assert!(
        peak <= bound,
        "peak in-flight batches {peak} exceeded the channel bound {bound}"
    );
    assert_eq!(diag::live_workers(), 0, "exhaustion joins every worker");
}

#[test]
fn dropping_a_stream_after_one_row_joins_every_worker() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let engine = engine(4);
    let prepared = engine.prepare(FULL_SCAN).unwrap();
    {
        let mut stream = engine.solutions(&prepared);
        let first = stream.next().expect("at least one row").unwrap();
        assert!(first.get(0).is_some());
        // Dropped here, TRIPLES - 1 rows early.
    }
    assert_eq!(
        diag::live_workers(),
        0,
        "dropping Solutions must terminate and join every detached worker"
    );
}

/// Clears the morsel-stall fault injection even when the test panics.
struct StallGuard;

impl Drop for StallGuard {
    fn drop(&mut self) {
        diag::stall_morsel(usize::MAX, 0);
    }
}

/// Skew regression: an artificially slow *first* morsel must not let the
/// merger park the whole rest of the scan. Workers pause claiming more
/// than `MAX_MERGE_AHEAD` morsels past the merge front, so the parked
/// out-of-order buffer stays within that window — before the bound, this
/// scenario parked every remaining morsel's batches at once.
#[test]
fn slow_first_morsel_keeps_parked_batches_bounded() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let _guard = StallGuard;
    diag::stall_morsel(0, 150);
    let engine = engine(4);
    let prepared = engine.prepare(FULL_SCAN).unwrap();
    diag::reset_channel_stats();
    let mut rows = 0i64;
    let mut previous = -1i64;
    for solution in engine.solutions(&prepared) {
        let row = solution.unwrap();
        // Order must survive the skew: values arrive ascending.
        let Some(sp2b_rdf::Term::Literal(lit)) = row.get(1) else {
            panic!("?v must be an integer literal")
        };
        let v = lit.as_integer().unwrap();
        assert!(
            v > previous,
            "out of order after skew: {v} after {previous}"
        );
        previous = v;
        rows += 1;
    }
    assert_eq!(rows, TRIPLES);
    let parked = diag::peak_parked_batches();
    assert!(
        parked > 0,
        "the stalled first morsel must actually force parking"
    );
    // The skew bound is expressed in *morsels*; convert it to batches:
    // each morsel emits ceil(rows_per_morsel / BATCH_ROWS) messages
    // (+1 slack for uneven chunk splits). With this document every
    // morsel fits one batch, so the bound equals MAX_MERGE_AHEAD — but
    // deriving it keeps the test honest if TRIPLES or the tuning
    // constants change. Without the bound, the stalled first morsel
    // would park nearly every other morsel's batches (≈ n_morsels - 1).
    let n_morsels = 4 * sp2b_sparql::par::MORSELS_PER_WORKER; // degree × over-partitioning
    let batches_per_morsel = (TRIPLES as usize)
        .div_ceil(n_morsels)
        .div_ceil(sp2b_sparql::par::BATCH_ROWS)
        + 1;
    let bound = sp2b_sparql::par::MAX_MERGE_AHEAD * batches_per_morsel;
    assert!(
        parked <= bound,
        "parked batches {parked} exceeded the skew bound {bound} \
         ({} morsels × {batches_per_morsel} batch(es))",
        sp2b_sparql::par::MAX_MERGE_AHEAD
    );
    assert_eq!(diag::live_workers(), 0, "exhaustion joins every worker");
}

#[test]
fn cancellation_mid_stream_stops_and_joins_workers() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let engine = engine(4);
    let prepared = engine.prepare(FULL_SCAN).unwrap();
    let cancel = Cancellation::none();
    let mut stream = engine.solutions_with(&prepared, &cancel);
    assert!(stream.next().unwrap().is_ok(), "stream starts fine");
    cancel.cancel();
    assert!(matches!(stream.next(), Some(Err(Error::Cancelled))));
    assert!(stream.next().is_none(), "error terminates the stream");
    drop(stream);
    assert_eq!(diag::live_workers(), 0, "cancellation joins every worker");
}
