//! Output sinks for the streaming generator.
//!
//! The generator pushes each triple into a [`TripleSink`] as soon as it is
//! produced, which is what keeps memory consumption constant in document
//! size (requirement (3), scalability). Sinks exist for N-Triples files
//! (the normal case), in-memory collection (tests, examples, loading
//! straight into a store) and pure counting (Table III timing runs).

use std::io::{self, Write};

use sp2b_rdf::ntriples;
use sp2b_rdf::{Graph, Triple};

/// Receives generated triples one at a time.
pub trait TripleSink {
    /// Consumes one triple.
    fn triple(&mut self, t: &Triple) -> io::Result<()>;

    /// Flushes buffered output; called once after generation completes.
    fn finish(&mut self) -> io::Result<()> {
        Ok(())
    }

    /// Bytes written so far, if the sink tracks a byte count
    /// (Table VIII's "file size" column).
    fn bytes_written(&self) -> Option<u64> {
        None
    }
}

/// Serializes triples as N-Triples into any writer, counting bytes.
///
/// Wrap files in this sink directly — it buffers internally.
pub struct NtriplesSink<W: Write> {
    out: io::BufWriter<CountingWriter<W>>,
}

impl<W: Write> NtriplesSink<W> {
    /// Creates a sink over the given writer.
    pub fn new(writer: W) -> Self {
        NtriplesSink {
            out: io::BufWriter::with_capacity(
                1 << 16,
                CountingWriter {
                    inner: writer,
                    bytes: 0,
                },
            ),
        }
    }

    /// Unwraps the inner writer after flushing.
    pub fn into_inner(self) -> io::Result<W> {
        self.out
            .into_inner()
            .map(|cw| cw.inner)
            .map_err(|e| e.into_error())
    }
}

impl<W: Write> TripleSink for NtriplesSink<W> {
    fn triple(&mut self, t: &Triple) -> io::Result<()> {
        ntriples::write_triple(&mut self.out, t)
    }

    fn finish(&mut self) -> io::Result<()> {
        self.out.flush()
    }

    fn bytes_written(&self) -> Option<u64> {
        // Buffered bytes have not reached the counter yet; report the
        // flushed amount plus the buffer fill.
        Some(self.out.get_ref().bytes + self.out.buffer().len() as u64)
    }
}

/// Counts bytes flowing through to the inner writer.
struct CountingWriter<W> {
    inner: W,
    bytes: u64,
}

impl<W: Write> Write for CountingWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let n = self.inner.write(buf)?;
        self.bytes += n as u64;
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// Collects triples into an [`sp2b_rdf::Graph`] (for tests and for loading
/// generated data directly into a store without a file detour).
#[derive(Default)]
pub struct GraphSink {
    /// The accumulated graph.
    pub graph: Graph,
}

impl GraphSink {
    /// An empty collecting sink.
    pub fn new() -> Self {
        GraphSink::default()
    }
}

impl TripleSink for GraphSink {
    fn triple(&mut self, t: &Triple) -> io::Result<()> {
        self.graph.insert(t.clone());
        Ok(())
    }
}

/// Discards triples; used to time raw generation speed (Table III) and to
/// probe document characteristics without I/O.
#[derive(Default)]
pub struct NullSink;

impl TripleSink for NullSink {
    fn triple(&mut self, _t: &Triple) -> io::Result<()> {
        Ok(())
    }
}

/// Fans one generation run out to two sinks (e.g. file + stats probe).
pub struct TeeSink<'a, A: TripleSink, B: TripleSink> {
    /// First target.
    pub a: &'a mut A,
    /// Second target.
    pub b: &'a mut B,
}

impl<A: TripleSink, B: TripleSink> TripleSink for TeeSink<'_, A, B> {
    fn triple(&mut self, t: &Triple) -> io::Result<()> {
        self.a.triple(t)?;
        self.b.triple(t)
    }

    fn finish(&mut self) -> io::Result<()> {
        self.a.finish()?;
        self.b.finish()
    }

    fn bytes_written(&self) -> Option<u64> {
        self.a.bytes_written().or_else(|| self.b.bytes_written())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sp2b_rdf::{Iri, Subject, Term};

    fn t(n: u32) -> Triple {
        Triple::new(
            Subject::iri(format!("http://x/s{n}")),
            Iri::new("http://x/p"),
            Term::iri("http://x/o"),
        )
    }

    #[test]
    fn ntriples_sink_counts_bytes() {
        let mut sink = NtriplesSink::new(Vec::new());
        sink.triple(&t(1)).unwrap();
        sink.triple(&t(2)).unwrap();
        let bytes = sink.bytes_written().unwrap();
        sink.finish().unwrap();
        let buf = sink.into_inner().unwrap();
        assert_eq!(buf.len() as u64, bytes);
        assert_eq!(buf.iter().filter(|&&b| b == b'\n').count(), 2);
    }

    #[test]
    fn graph_sink_collects() {
        let mut sink = GraphSink::new();
        sink.triple(&t(1)).unwrap();
        sink.triple(&t(2)).unwrap();
        assert_eq!(sink.graph.len(), 2);
    }

    #[test]
    fn tee_feeds_both() {
        let mut a = GraphSink::new();
        let mut b = GraphSink::new();
        {
            let mut tee = TeeSink {
                a: &mut a,
                b: &mut b,
            };
            tee.triple(&t(1)).unwrap();
            tee.finish().unwrap();
        }
        assert_eq!(a.graph.len(), 1);
        assert_eq!(b.graph.len(), 1);
    }
}
