//! Update streams — the paper's Section VII extension.
//!
//! "SPARQL update … could be realized by minor extensions to our data
//! generator." Because generation is simulation-based and strictly
//! chronological, the natural update unit is a **year batch**: the triples
//! a live DBLP would gain during one year. [`UpdateStream`] materializes
//! one deterministic generation run and serves it as per-year insert
//! batches; consistency (venues before publications, persons before
//! references, citation targets already present) is inherited from the
//! generator's emission order, so applying batches in order keeps the
//! store valid at every step.

use sp2b_rdf::Triple;

use crate::generator::{Config, Generator, Limit};
use crate::sink::GraphSink;
use crate::stats::GeneratorStats;

/// One year's worth of new triples.
#[derive(Debug, Clone)]
pub struct YearBatch {
    /// The simulated year this batch extends the document to.
    pub year: i32,
    /// Insert set, in generator emission order.
    pub triples: Vec<Triple>,
}

/// A deterministic sequence of insert batches.
#[derive(Debug)]
pub struct UpdateStream {
    batches: Vec<YearBatch>,
    stats: GeneratorStats,
}

impl UpdateStream {
    /// Runs the generator under `config` and splits the output into year
    /// batches. The first batch additionally carries the schema triples
    /// (emitted before the first year).
    pub fn generate(config: Config) -> UpdateStream {
        let mut sink = GraphSink::new();
        let stats = Generator::new(config)
            .run(&mut sink)
            .expect("in-memory sink cannot fail");
        let triples = sink.graph.into_triples();

        let mut batches = Vec::with_capacity(stats.year_offsets.len());
        for (i, &(year, start)) in stats.year_offsets.iter().enumerate() {
            let end = stats
                .year_offsets
                .get(i + 1)
                .map_or(triples.len(), |&(_, o)| o as usize);
            let start = if i == 0 { 0 } else { start as usize }; // schema prefix
            if start >= end {
                continue; // silent year (no output, e.g. truncated at limit)
            }
            batches.push(YearBatch {
                year,
                triples: triples[start..end].to_vec(),
            });
        }
        UpdateStream { batches, stats }
    }

    /// The batches, oldest first.
    pub fn batches(&self) -> &[YearBatch] {
        &self.batches
    }

    /// Consumes the stream into its batches.
    pub fn into_batches(self) -> Vec<YearBatch> {
        self.batches
    }

    /// Statistics of the underlying generation run.
    pub fn stats(&self) -> &GeneratorStats {
        &self.stats
    }

    /// Total triples across all batches.
    pub fn len(&self) -> usize {
        self.batches.iter().map(|b| b.triples.len()).sum()
    }

    /// True if no batch was produced.
    pub fn is_empty(&self) -> bool {
        self.batches.is_empty()
    }
}

/// Convenience: the year batches for a triple-limited document.
pub fn year_batches(triples: u64) -> Vec<YearBatch> {
    UpdateStream::generate(Config {
        limit: Limit::Triples(triples),
        ..Config::triples(triples)
    })
    .into_batches()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::generate_graph;

    #[test]
    fn batches_reassemble_the_document() {
        let cfg = Config::triples(8_000);
        let stream = UpdateStream::generate(cfg);
        let (reference, _) = generate_graph(cfg);
        let reassembled: Vec<Triple> = stream
            .batches()
            .iter()
            .flat_map(|b| b.triples.iter().cloned())
            .collect();
        assert_eq!(reassembled, reference.into_triples());
    }

    #[test]
    fn batches_are_chronological_and_nonempty() {
        let stream = UpdateStream::generate(Config::triples(8_000));
        assert!(!stream.is_empty());
        let years: Vec<i32> = stream.batches().iter().map(|b| b.year).collect();
        let mut sorted = years.clone();
        sorted.sort_unstable();
        assert_eq!(years, sorted, "batches must be chronological");
        assert!(stream.batches().iter().all(|b| !b.triples.is_empty()));
    }

    #[test]
    fn first_batch_contains_schema() {
        let stream = UpdateStream::generate(Config::triples(2_000));
        let first = &stream.batches()[0];
        let has_schema = first
            .triples
            .iter()
            .any(|t| t.predicate.as_str() == sp2b_rdf::vocab::rdfs::SUB_CLASS_OF);
        assert!(has_schema, "schema triples belong to the first batch");
    }

    #[test]
    fn year_limited_stream_covers_every_year() {
        let stream = UpdateStream::generate(Config::up_to_year(1945));
        let first = stream.batches().first().unwrap().year;
        let last = stream.batches().last().unwrap().year;
        assert_eq!(first, crate::params::FIRST_YEAR);
        assert_eq!(last, 1945);
    }

    #[test]
    fn convenience_matches_stream() {
        let a = year_batches(3_000);
        let b = UpdateStream::generate(Config::triples(3_000)).into_batches();
        assert_eq!(a.len(), b.len());
        assert_eq!(a.last().unwrap().triples, b.last().unwrap().triples);
    }
}
