//! The distribution function families of Section III.
//!
//! The paper approximates DBLP's social-world relations with three families:
//! bell-shaped **Gaussian** curves (repeated attributes such as citations
//! per paper), **logistic** curves (limited growth of venues and
//! publications over time) and **power laws** (publications per author,
//! incoming citations). This module implements the families; the fitted
//! constants live in [`crate::params`].

use crate::rng::Rng;

/// A Gaussian (normal) probability density
/// `p(x) = 1/(σ√(2π)) · e^(−0.5·((x−µ)/σ)²)` — Section III-A.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gaussian {
    /// Peak position µ.
    pub mu: f64,
    /// Statistical spread σ (> 0).
    pub sigma: f64,
}

impl Gaussian {
    /// Creates the curve; `sigma` must be positive.
    pub const fn new(mu: f64, sigma: f64) -> Self {
        Gaussian { mu, sigma }
    }

    /// Density at `x`.
    pub fn pdf(&self, x: f64) -> f64 {
        let z = (x - self.mu) / self.sigma;
        (-0.5 * z * z).exp() / (self.sigma * (2.0 * std::f64::consts::PI).sqrt())
    }

    /// Samples a positive integer count `x ≥ min` from the discretized
    /// curve, as the generator does for repeated attributes: the paper fits
    /// the Gaussian to the conditional distribution over documents that
    /// have *at least one* occurrence, with left limit `x = 1`.
    pub fn sample_count(&self, rng: &mut Rng, min: u64, max: u64) -> u64 {
        debug_assert!(min >= 1 && max >= min);
        // Rejection-free: draw and clamp. The paper's curves have almost
        // all probability mass right of 1 (e.g. µ=16.82, σ=10.07), so
        // clamping distorts the tail negligibly while keeping sampling O(1).
        let x = rng.gaussian_with(self.mu, self.sigma).round();
        (x as i64).clamp(min as i64, max as i64) as u64
    }
}

/// A logistic ("limited growth") curve `f(x) = a / (1 + b·e^(−c·(x−x0)))`
/// — Section III-B. `a` is the upper asymptote; the x-axis is the lower
/// asymptote; the curve is S-shaped and strictly increasing for `b, c > 0`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Logistic {
    /// Upper asymptote `a`.
    pub a: f64,
    /// Shape parameter `b` (> 0).
    pub b: f64,
    /// Growth rate `c` (> 0).
    pub c: f64,
    /// Reference year `x0` (the paper's formulas subtract a fixed year).
    pub x0: f64,
}

impl Logistic {
    /// Creates the curve.
    pub const fn new(a: f64, b: f64, c: f64, x0: f64) -> Self {
        Logistic { a, b, c, x0 }
    }

    /// Evaluates the curve at year `x`.
    pub fn eval(&self, x: f64) -> f64 {
        self.a / (1.0 + self.b * (-self.c * (x - self.x0)).exp())
    }

    /// Evaluates and rounds to a non-negative count.
    pub fn count(&self, year: i32) -> u64 {
        self.eval(year as f64).round().max(0.0) as u64
    }
}

/// A shifted power law `f(x) = a·x^k + b` with `a > 0`, `k < 0`
/// — Section III-C (publications per author).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerLaw {
    /// Scale `a`.
    pub a: f64,
    /// Exponent `k` (negative: the curve decreases for x ≥ 1).
    pub k: f64,
    /// Vertical shift `b`.
    pub b: f64,
}

impl PowerLaw {
    /// Creates the curve.
    pub const fn new(a: f64, k: f64, b: f64) -> Self {
        PowerLaw { a, k, b }
    }

    /// Evaluates at `x` (expected number of authors with `x` publications).
    pub fn eval(&self, x: f64) -> f64 {
        self.a * x.powf(self.k) + self.b
    }

    /// Samples an integer `x ∈ [1, max]` with probability ∝ `x^k`
    /// (the pure power-law part; the shift `b` only matters for the
    /// *counting* form, not for sampling weights).
    pub fn sample(&self, rng: &mut Rng, max: u64) -> u64 {
        debug_assert!(max >= 1);
        // Inverse-CDF on the continuous relaxation, then round down.
        // For k < -1 the mass concentrates near 1, matching "lots of
        // authors have only few publications".
        let k1 = self.k + 1.0;
        let u = rng.f64();
        let x = if k1.abs() < 1e-9 {
            // k == -1: f(x) ∝ 1/x, CDF ∝ ln x.
            ((max as f64).ln() * u).exp()
        } else {
            let hi = (max as f64).powf(k1);
            (u * (hi - 1.0) + 1.0).powf(1.0 / k1)
        };
        (x.floor() as u64).clamp(1, max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gaussian_pdf_integrates_to_one() {
        let g = Gaussian::new(16.82, 10.07); // the paper's d_cite
        let mass: f64 = (-1000..2000).map(|i| g.pdf(i as f64 * 0.1) * 0.1).sum();
        assert!((mass - 1.0).abs() < 1e-6, "mass {mass}");
    }

    #[test]
    fn gaussian_pdf_peaks_at_mu() {
        let g = Gaussian::new(2.15, 1.18); // the paper's d_editor
        assert!(g.pdf(2.15) > g.pdf(1.0));
        assert!(g.pdf(2.15) > g.pdf(4.0));
    }

    #[test]
    fn gaussian_sampling_matches_mean() {
        let g = Gaussian::new(16.82, 10.07);
        let mut rng = Rng::new(1);
        let n = 20_000;
        let mean: f64 = (0..n)
            .map(|_| g.sample_count(&mut rng, 1, 100) as f64)
            .sum::<f64>()
            / n as f64;
        // Clamping at 1 raises the mean slightly above µ.
        assert!((16.0..18.5).contains(&mean), "mean {mean}");
    }

    #[test]
    fn logistic_is_monotone_and_bounded() {
        // The paper's f_journal.
        let f = Logistic::new(740.43, 426.28, 0.12, 1950.0);
        let mut prev = 0.0;
        for yr in 1900..2100 {
            let v = f.eval(yr as f64);
            assert!(v >= prev, "logistic must not decrease");
            assert!(v <= 740.43);
            prev = v;
        }
        // Approaches the asymptote.
        assert!(f.eval(2150.0) > 0.99 * 740.43);
    }

    #[test]
    fn logistic_count_rounds() {
        let f = Logistic::new(740.43, 426.28, 0.12, 1950.0);
        assert_eq!(f.count(1900), 0);
        assert!(f.count(2005) > 400);
    }

    #[test]
    fn power_law_eval_decreases() {
        let p = PowerLaw::new(1.5, -2.5, -5.0);
        assert!(p.eval(1.0) > p.eval(2.0));
        assert!(p.eval(2.0) > p.eval(10.0));
    }

    #[test]
    fn power_law_sampling_is_head_heavy() {
        let p = PowerLaw::new(1.0, -2.5, 0.0);
        let mut rng = Rng::new(2);
        let mut ones = 0;
        let mut big = 0;
        for _ in 0..10_000 {
            match p.sample(&mut rng, 80) {
                1 => ones += 1,
                x if x >= 10 => big += 1,
                _ => {}
            }
        }
        assert!(ones > 6_000, "power law head too light: {ones}");
        assert!(big < 500, "power law tail too heavy: {big}");
        assert!(big > 0, "tail must exist");
    }

    #[test]
    fn power_law_sample_respects_bounds() {
        let p = PowerLaw::new(1.0, -2.1, 0.0);
        let mut rng = Rng::new(3);
        for _ in 0..5_000 {
            let x = p.sample(&mut rng, 17);
            assert!((1..=17).contains(&x));
        }
    }
}
