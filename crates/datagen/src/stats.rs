//! Generator bookkeeping: everything Table VIII and Figures 2a–2c report.

use std::collections::BTreeMap;

use crate::params::DocClass;

/// Per-year record backing Figures 2b (class instances over time) and 2c
/// (publication-count power law), collected when
/// [`crate::generator::Config::detailed_stats`] is on.
#[derive(Debug, Clone, Default)]
pub struct YearRecord {
    /// The simulated year.
    pub year: i32,
    /// Instances created per document class this year.
    pub class_counts: [u64; 8],
    /// Journals (implicit class) created this year.
    pub journals: u64,
    /// Total author attributes written this year.
    pub total_authors: u64,
    /// Distinct persons appearing as authors this year.
    pub distinct_authors: u64,
    /// Persons publishing for the first time this year.
    pub new_authors: u64,
    /// Histogram: publication count x → number of authors with exactly x
    /// publications this year (Figure 2c).
    pub publications_histogram: BTreeMap<u32, u64>,
}

/// Cumulative statistics for one generation run — the Table VIII row plus
/// the distribution data behind Figures 2a–2c.
#[derive(Debug, Clone, Default)]
pub struct GeneratorStats {
    /// Total triples emitted.
    pub triples: u64,
    /// Bytes written by the sink, when known (file size column).
    pub bytes: Option<u64>,
    /// Last (possibly partially) simulated year ("data up to").
    pub end_year: i32,
    /// Total author attributes (`#Tot.Auth.`).
    pub total_authors: u64,
    /// Distinct persons used as authors (`#Dist.Auth.`).
    pub distinct_authors: u64,
    /// Journal venue resources created.
    pub journals: u64,
    /// Document instances per class, indexed by [`DocClass::index`].
    pub class_counts: [u64; 8],
    /// Outgoing citation slots drawn from `d_cite` (targeted + untargeted).
    pub citations_planned: u64,
    /// Citation bag members actually written (targeted citations; the
    /// "incoming < outgoing" property of Section III-D).
    pub citations_targeted: u64,
    /// Histogram: outgoing-citation count per citing document (Figure 2a).
    pub citation_histogram: BTreeMap<u32, u64>,
    /// `(year, triple offset)` at which each simulated year's output
    /// begins. Always collected (it is tiny) — this is what turns one
    /// generation run into an *update stream*: the triples of year `y`
    /// are the slice between consecutive offsets (Section VII sketches
    /// updates as "minor extensions to our data generator").
    pub year_offsets: Vec<(i32, u64)>,
    /// Per-year records (empty unless detailed stats were requested).
    pub years: Vec<YearRecord>,
}

impl GeneratorStats {
    /// Count for one document class.
    pub fn count(&self, class: DocClass) -> u64 {
        self.class_counts[class.index()]
    }

    /// Formats the Table VIII row labels/values in paper order.
    pub fn table_viii_rows(&self) -> Vec<(String, String)> {
        let mut rows = vec![
            (
                "file size [MB]".to_owned(),
                match self.bytes {
                    Some(b) => format!("{:.1}", b as f64 / 1_048_576.0),
                    None => "n/a".to_owned(),
                },
            ),
            ("data up to".to_owned(), self.end_year.to_string()),
            ("#Tot.Auth.".to_owned(), self.total_authors.to_string()),
            ("#Dist.Auth.".to_owned(), self.distinct_authors.to_string()),
            ("#Journals".to_owned(), self.journals.to_string()),
        ];
        for class in DocClass::ALL {
            rows.push((format!("#{}", class.label()), self.count(class).to_string()));
        }
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_viii_has_all_rows() {
        let stats = GeneratorStats {
            end_year: 1955,
            ..Default::default()
        };
        let rows = stats.table_viii_rows();
        assert_eq!(rows.len(), 5 + 8);
        assert!(rows.iter().any(|(k, v)| k == "data up to" && v == "1955"));
        assert!(rows.iter().any(|(k, _)| k == "#Article"));
    }

    #[test]
    fn class_count_indexing() {
        let mut stats = GeneratorStats::default();
        stats.class_counts[DocClass::Book.index()] = 7;
        assert_eq!(stats.count(DocClass::Book), 7);
        assert_eq!(stats.count(DocClass::Www), 0);
    }
}
