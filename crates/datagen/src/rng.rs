//! Deterministic pseudo-random number generation.
//!
//! The paper's portability/scalability requirements demand a generator that
//! is *deterministic and platform independent*: "All random functions …
//! base on a fixed seed. This makes data generation deterministic, i.e. the
//! parameter setting uniquely identifies the outcome" (Section IV). We
//! therefore ship our own small PRNG instead of depending on an external
//! crate whose stream might change across versions: SplitMix64 for
//! state initialization and a `xoshiro256**`-style core for the stream.
//! Output is bit-identical on every platform and Rust version.

/// Deterministic PRNG: `xoshiro256**` seeded via SplitMix64.
///
/// Not cryptographically secure (neither was the paper's generator); chosen
/// for speed, quality and a trivially portable implementation.
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
}

/// SplitMix64 step, used to expand the user seed into the xoshiro state.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Rng {
    /// The fixed default seed used by the benchmark (generation is
    /// reproducible by default, as the paper requires).
    pub const DEFAULT_SEED: u64 = 0x5_B2BE_4C11;

    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng { s }
    }

    /// Next raw 64-bit value (`xoshiro256**` scrambler).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)`. `n` must be nonzero.
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Multiply-shift bounded sampling (Lemire); bias is < 2^-64 per
        // draw, far below anything the distributions can observe.
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform integer in the inclusive range `[lo, hi]`.
    #[inline]
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        lo + self.below(hi - lo + 1)
    }

    /// Bernoulli draw with probability `p`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Standard normal variate (Box–Muller; fully deterministic).
    pub fn gaussian(&mut self) -> f64 {
        // Draw u in (0,1] to avoid ln(0).
        let mut u = self.f64();
        if u <= f64::MIN_POSITIVE {
            u = f64::MIN_POSITIVE;
        }
        let v = self.f64();
        (-2.0 * u.ln()).sqrt() * (std::f64::consts::TAU * v).cos()
    }

    /// Normal variate with the given mean and standard deviation.
    #[inline]
    pub fn gaussian_with(&mut self, mu: f64, sigma: f64) -> f64 {
        mu + sigma * self.gaussian()
    }

    /// Picks a uniformly random element of a non-empty slice.
    #[inline]
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.below(items.len() as u64) as usize]
    }

    /// Fisher–Yates shuffle (deterministic given the stream position).
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }

    /// Weighted index sampling over non-negative weights summing to > 0.
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        debug_assert!(total > 0.0, "weights must have positive mass");
        let mut x = self.f64() * total;
        for (i, w) in weights.iter().enumerate() {
            x -= w;
            if x < 0.0 {
                return i;
            }
        }
        weights.len() - 1
    }
}

impl Default for Rng {
    fn default() -> Self {
        Rng::new(Self::DEFAULT_SEED)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng::new(7);
        for _ in 0..10_000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_respects_bound() {
        let mut r = Rng::new(7);
        for n in [1u64, 2, 3, 10, 1000] {
            for _ in 0..200 {
                assert!(r.below(n) < n);
            }
        }
    }

    #[test]
    fn range_inclusive_hits_endpoints() {
        let mut r = Rng::new(3);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..1000 {
            match r.range_inclusive(0, 3) {
                0 => seen_lo = true,
                3 => seen_hi = true,
                _ => {}
            }
        }
        assert!(seen_lo && seen_hi);
    }

    #[test]
    fn gaussian_moments_are_sane() {
        let mut r = Rng::new(11);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| r.gaussian()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn weighted_index_prefers_heavy_weights() {
        let mut r = Rng::new(5);
        let weights = [1.0, 0.0, 9.0];
        let mut counts = [0usize; 3];
        for _ in 0..10_000 {
            counts[r.weighted_index(&weights)] += 1;
        }
        assert_eq!(counts[1], 0);
        assert!(counts[2] > counts[0] * 5);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Rng::new(9);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn uniformity_rough_chi_square() {
        let mut r = Rng::new(1234);
        let mut buckets = [0u32; 16];
        for _ in 0..160_000 {
            buckets[r.below(16) as usize] += 1;
        }
        for b in buckets {
            // Expected 10_000 per bucket; allow 5% slack.
            assert!((9_500..10_500).contains(&b), "bucket {b}");
        }
    }
}
