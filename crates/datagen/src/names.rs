//! Word lists fed to the generator.
//!
//! Section IV: "we … provide lists of first and last names, publishers,
//! and random words to our data generator". The released benchmark ships
//! such lists as text files; we embed equivalents so the crate is
//! self-contained and deterministic. The name pools are large enough that
//! first×last combinations exceed any realistic author population; on
//! exhaustion the generator suffixes a counter so author names stay unique
//! (names act as primary keys — the Q5a/Q5b equivalence depends on it).
//!
//! None of the lists can produce "John Q. Public" (Q12c) or "Paul Erdoes"
//! (the fixed special author) — asserted by tests.

/// Given names.
pub const FIRST_NAMES: &[&str] = &[
    "Adam", "Adriana", "Agnes", "Ahmed", "Aiko", "Alan", "Albert", "Alejandro",
    "Alexander", "Alice", "Alina", "Amar", "Amelie", "Ana", "Anders", "Andrea",
    "Andrei", "Angela", "Anil", "Anita", "Anke", "Anna", "Anton", "Antonio",
    "Arjun", "Astrid", "Aurelio", "Axel", "Barbara", "Bela", "Benjamin",
    "Bernd", "Bettina", "Bianca", "Bjorn", "Boris", "Brigitte", "Bruno",
    "Camille", "Carlos", "Carmen", "Carol", "Catherine", "Cecilia", "Chandra",
    "Charles", "Chen", "Ching", "Christian", "Christine", "Claire", "Clara",
    "Claudia", "Colin", "Cornelia", "Cyril", "Dagmar", "Daniel", "Daniela",
    "David", "Dennis", "Diana", "Diego", "Dieter", "Dimitri", "Dolores",
    "Dominik", "Dorothea", "Edgar", "Eduardo", "Edward", "Elena", "Elisabeth",
    "Emil", "Emma", "Enrique", "Eric", "Erika", "Ernst", "Esther", "Eugene",
    "Eva", "Fabian", "Fatima", "Felix", "Fernando", "Florian", "Frank",
    "Frederik", "Gabriel", "Gabriele", "Georg", "George", "Gerhard", "Gisela",
    "Giovanni", "Giulia", "Gregor", "Gudrun", "Guido", "Gunter", "Gustav",
    "Hana", "Hannes", "Hans", "Harald", "Harold", "Heike", "Heinrich",
    "Helena", "Helga", "Henning", "Henry", "Herbert", "Hermann", "Hiroshi",
    "Holger", "Hugo", "Ida", "Igor", "Ilona", "Ines", "Ingrid", "Irene",
    "Isabel", "Ivan", "Jacob", "James", "Jan", "Jana", "Janos", "Javier",
    "Jean", "Jennifer", "Jens", "Jessica", "Jiri", "Joachim", "Joan", "Joerg",
    "Johan", "Johanna", "Jonas", "Jorge", "Josef", "Juan", "Judith", "Julia",
    "Julian", "Juliane", "Jun", "Jutta", "Kai", "Karin", "Karl", "Katarina",
    "Katharina", "Kenji", "Kerstin", "Kevin", "Klaus", "Konrad", "Kurt",
    "Lars", "Laura", "Lea", "Leila", "Lena", "Leon", "Leonard", "Linda",
    "Lisa", "Lorenzo", "Louis", "Luca", "Lucia", "Ludwig", "Luis", "Lukas",
    "Magdalena", "Manfred", "Manuel", "Marco", "Margarete", "Maria", "Marianne",
    "Mario", "Marion", "Marko", "Markus", "Marta", "Martin", "Martina",
    "Matthias", "Maximilian", "Mei", "Melanie", "Michael", "Michaela",
    "Miguel", "Mikhail", "Milan", "Ming", "Miriam", "Mohammed", "Monica",
    "Nadia", "Nadine", "Natalia", "Nico", "Nicolas", "Nikolai", "Nina",
    "Norbert", "Olaf", "Oliver", "Olga", "Oscar", "Otto", "Pablo", "Paolo",
    "Patricia", "Patrick", "Paul", "Paula", "Pedro", "Peter", "Petra",
    "Philipp", "Pierre", "Priya", "Rafael", "Raimund", "Rainer", "Ralf",
    "Ramona", "Raquel", "Ravi", "Rebecca", "Regina", "Reinhard", "Renate",
    "Ricardo", "Richard", "Rita", "Robert", "Roberta", "Roland", "Rolf",
    "Roman", "Rosa", "Rudolf", "Ruth", "Sabine", "Samuel", "Sandra", "Sara",
    "Sebastian", "Sergei", "Silke", "Simon", "Simone", "Sofia", "Stefan",
    "Stefanie", "Stephan", "Susanne", "Sven", "Tanja", "Tatiana", "Theodor",
    "Thomas", "Thorsten", "Tobias", "Tomas", "Torsten", "Ulrich", "Ulrike",
    "Ursula", "Uwe", "Valentina", "Vera", "Verena", "Victor", "Viktor",
    "Vincent", "Viola", "Vladimir", "Walter", "Wei", "Werner", "Wilhelm",
    "Wolfgang", "Xavier", "Xiang", "Yasmin", "Yoshiko", "Yuri", "Yvonne",
    "Zoltan",
];

/// Family names.
pub const LAST_NAMES: &[&str] = &[
    "Abel", "Ackermann", "Adler", "Ahrens", "Albrecht", "Altmann", "Andersen",
    "Arnold", "Bach", "Bader", "Baier", "Barth", "Bauer", "Baumann", "Baumgart",
    "Beck", "Becker", "Behrens", "Bender", "Berg", "Berger", "Bergmann",
    "Bernhardt", "Bertram", "Binder", "Bischoff", "Blank", "Blum", "Bode",
    "Boehm", "Borchert", "Born", "Brand", "Brandt", "Braun", "Bremer",
    "Brenner", "Breuer", "Brinkmann", "Bruckner", "Brunner", "Buchholz",
    "Burger", "Busch", "Carstens", "Christiansen", "Clemens", "Conrad",
    "Cramer", "Dahl", "Daume", "Decker", "Dietrich", "Dietz", "Doering",
    "Dorn", "Drews", "Ebert", "Eckert", "Eggert", "Ehlers", "Eichler", "Engel",
    "Engelhardt", "Erdmann", "Ernst", "Esser", "Falk", "Faust", "Fiedler",
    "Fink", "Fischer", "Fleischer", "Frank", "Franke", "Freitag", "Frey",
    "Fried", "Friedrich", "Fries", "Fritz", "Fuchs", "Gabriel", "Geiger",
    "Geisler", "Gerber", "Gerlach", "Giese", "Glaser", "Goebel", "Goetz",
    "Graf", "Grimm", "Gross", "Gruber", "Gruen", "Haas", "Haase", "Hagen",
    "Hahn", "Hamann", "Hansen", "Hartmann", "Hartung", "Hauser", "Heck",
    "Heider", "Heil", "Hein", "Heine", "Heinrich", "Heinz", "Heller",
    "Helm", "Henke", "Hennig", "Henning", "Hense", "Herbst", "Hermann",
    "Herrmann", "Hertz", "Herzog", "Hess", "Hesse", "Heuer", "Hildebrandt",
    "Hiller", "Hinz", "Hirsch", "Hoffmann", "Hofmann", "Holm", "Holz",
    "Hoppe", "Horn", "Huber", "Hummel", "Jaeger", "Jahn", "Jakob", "Janke",
    "Jansen", "Janssen", "John", "Jordan", "Jung", "Junge", "Kaiser", "Kant",
    "Karsten", "Kaufmann", "Keller", "Kern", "Kessler", "Kiefer", "Kirchner",
    "Klein", "Kluge", "Knapp", "Knoll", "Koch", "Koehler", "Koenig", "Kohl",
    "Kolb", "Konrad", "Kopp", "Kraft", "Kramer", "Kraus", "Krause", "Krebs",
    "Kremer", "Kroeger", "Krueger", "Kuehn", "Kuhn", "Kunz", "Kurz", "Lang",
    "Lange", "Langer", "Lehmann", "Leitner", "Lenz", "Lindemann", "Lindner",
    "Link", "Loewe", "Lorenz", "Ludwig", "Lutz", "Maier", "Mann", "Marquardt",
    "Martens", "Marx", "Mayer", "Meier", "Mende", "Menzel", "Merkel", "Mertens",
    "Metz", "Meyer", "Michel", "Moeller", "Mohr", "Morgenstern", "Moser",
    "Mueller", "Naumann", "Neubauer", "Neumann", "Nickel", "Niemann",
    "Noack", "Nolte", "Obermeier", "Oswald", "Ott", "Otto", "Pape", "Paulsen",
    "Peters", "Petersen", "Pfeiffer", "Philipp", "Pieper", "Pohl", "Prinz",
    "Probst", "Raabe", "Rader", "Rahn", "Rau", "Rausch", "Reich", "Reichert",
    "Reimann", "Reinhardt", "Reiter", "Renner", "Reuter", "Richter", "Riedel",
    "Riemer", "Ritter", "Roeder", "Rose", "Rothe", "Rudolph", "Ruf", "Runge",
    "Sauer", "Schaefer", "Scheffler", "Schenk", "Scherer", "Schiller",
    "Schilling", "Schindler", "Schlegel", "Schmid", "Schmidt", "Schmitt",
    "Schneider", "Scholz", "Schramm", "Schreiber", "Schroeder", "Schubert",
    "Schulte", "Schultz", "Schulz", "Schumacher", "Schuster", "Schwab",
    "Schwarz", "Seidel", "Seifert", "Siebert", "Simon", "Sommer", "Sonntag",
    "Spengler", "Sprenger", "Stahl", "Stark", "Steffen", "Stein", "Steiner",
    "Stern", "Stock", "Stolz", "Strauss", "Struck", "Thiel", "Thiele",
    "Thomas", "Timm", "Ulrich", "Unger", "Vogel", "Vogt", "Voigt", "Volk",
    "Wagner", "Walter", "Weber", "Wegener", "Weidner", "Weigel", "Weiss",
    "Wendt", "Wenzel", "Werner", "Westphal", "Wiegand", "Wilke", "Winkler",
    "Winter", "Wirth", "Witt", "Witte", "Wolf", "Wolff", "Wulf", "Zander",
    "Ziegler", "Zimmer", "Zimmermann",
];

/// Publisher names (for `dc:publisher` / `school`).
pub const PUBLISHERS: &[&str] = &[
    "ACM Press", "Academic Press", "Addison-Wesley", "Akademie Verlag",
    "Amsterdam University Press", "Birkhauser", "Blackwell", "Brill",
    "Cambridge University Press", "Chapman and Hall", "Columbia University",
    "Cornell University", "CRC Press", "De Gruyter", "Dover Publications",
    "Duke University Press", "Elsevier", "ETH Zurich", "Freiburg University",
    "Gordon and Breach", "Harvard University", "IEEE Computer Society",
    "Imperial College Press", "IOS Press", "Kluwer", "Leipzig University",
    "MIT Press", "Morgan Kaufmann", "North-Holland", "Noyes Publications",
    "Oldenbourg Verlag", "Open University Press", "Oxford University Press",
    "Pearson Education", "Pergamon Press", "Plenum Press", "Prentice Hall",
    "Princeton University", "Routledge", "Sage Publications",
    "Saarland University", "Springer", "Stanford University", "Teubner",
    "Thomson", "TU Berlin", "TU Muenchen", "University of Chicago Press",
    "University of Karlsruhe", "University of Toronto Press", "Vieweg",
    "Wiley", "World Scientific", "Yale University",
];

/// Vocabulary for titles, abstracts and other free-text values.
pub const WORDS: &[&str] = &[
    "abstraction", "access", "adaptive", "aggregation", "algebra", "algorithm",
    "allocation", "analysis", "annotation", "application", "approach",
    "approximation", "architecture", "array", "assembly", "assertion",
    "assignment", "asynchronous", "atomic", "automata", "automated",
    "auxiliary", "availability", "balanced", "bandwidth", "batch", "behavior",
    "benchmark", "binary", "binding", "bound", "boolean", "bottleneck",
    "boundary", "branch", "broadcast", "buffer", "cache", "calculus",
    "canonical", "capability", "cardinality", "cascade", "category", "channel",
    "checkpoint", "circuit", "class", "classification", "cluster", "coding",
    "cohesion", "collection", "combinatorial", "communication", "compaction",
    "comparison", "compilation", "complexity", "component", "composition",
    "compression", "computation", "concept", "concurrency", "condition",
    "configuration", "conjunction", "connectivity", "consensus", "consistency",
    "constraint", "construction", "context", "continuous", "contract",
    "control", "convergence", "correctness", "correlation", "coupling",
    "coverage", "criterion", "cryptography", "cursor", "cycle", "database",
    "dataflow", "deadlock", "decision", "declarative", "decomposition",
    "deduction", "dependency", "deployment", "derivation", "design",
    "detection", "deterministic", "diagram", "dictionary", "dimension",
    "directory", "discovery", "discrete", "disjunction", "dispatch",
    "distributed", "distribution", "document", "domain", "duality", "dynamic",
    "efficiency", "element", "embedding", "encapsulation", "encoding",
    "encryption", "engine", "entity", "enumeration", "environment",
    "equivalence", "estimation", "evaluation", "event", "evolution",
    "exception", "execution", "experiment", "expression", "extension",
    "extraction", "factorization", "failure", "fairness", "feature",
    "federation", "feedback", "filter", "fixpoint", "formalism", "formula",
    "fragment", "framework", "frequency", "function", "functional", "fusion",
    "garbage", "gateway", "generation", "generic", "geometry", "grammar",
    "granularity", "graph", "greedy", "grid", "guarantee", "hashing",
    "heuristic", "hierarchy", "histogram", "history", "homomorphism",
    "hybrid", "hypergraph", "identity", "implementation", "incremental",
    "independence", "index", "induction", "inference", "information",
    "inheritance", "injection", "instance", "instruction", "integration",
    "integrity", "interaction", "interface", "interleaving", "interpolation",
    "interpretation", "intersection", "invariant", "inversion", "isolation",
    "iteration", "join", "kernel", "knowledge", "label", "lambda", "language",
    "latency", "lattice", "layer", "learning", "lemma", "lexical", "library",
    "lifetime", "linear", "linkage", "locality", "lock", "logic", "lookup",
    "machine", "maintenance", "management", "mapping", "matching", "matrix",
    "measurement", "mechanism", "mediator", "membership", "memory", "merge",
    "metadata", "method", "metric", "migration", "minimization", "mining",
    "mobility", "modality", "model", "modular", "monitoring", "monotone",
    "multiplexing", "mutation", "navigation", "negotiation", "network",
    "neural", "normalization", "notation", "notification", "numerical",
    "object", "observation", "ontology", "operator", "optimization", "oracle",
    "ordering", "orthogonal", "overhead", "overlay", "paradigm", "parallel",
    "parameter", "parsing", "partition", "pattern", "performance",
    "permutation", "persistence", "perspective", "pipeline", "placement",
    "planning", "pointer", "polymorphism", "polynomial", "precision",
    "predicate", "prediction", "prefetching", "preprocessing", "primitive",
    "priority", "privacy", "probabilistic", "procedure", "process",
    "profiling", "projection", "proof", "propagation", "property", "protocol",
    "prototype", "proximity", "pruning", "quality", "quantification", "query",
    "queue", "random", "ranking", "reachability", "reasoning", "recognition",
    "reconfiguration", "recovery", "recursion", "reduction", "redundancy",
    "refinement", "reflection", "region", "register", "regression",
    "regularity", "relation", "relaxation", "reliability", "replication",
    "repository", "representation", "requirement", "resolution", "resource",
    "retrieval", "reuse", "rewriting", "robustness", "routing", "runtime",
    "sampling", "satisfiability", "scalability", "schedule", "schema",
    "scope", "search", "security", "segment", "selection", "semantics",
    "sequence", "serialization", "service", "session", "signature",
    "similarity", "simulation", "specification", "spectrum", "stability",
    "standard", "statistics", "storage", "stream", "structure", "subsumption",
    "summary", "symmetry", "synchronization", "synthesis", "system", "table",
    "taxonomy", "technique", "template", "temporal", "term", "termination",
    "testing", "theorem", "theory", "threshold", "throughput", "topology",
    "trace", "tracking", "tradeoff", "traffic", "transaction", "transducer",
    "transformation", "transition", "translation", "traversal", "tree",
    "trigger", "tuple", "type", "unification", "uniform", "union",
    "uniqueness", "update", "validation", "variable", "variance",
    "vector", "verification", "version", "view", "virtual", "visualization",
    "vocabulary", "workflow", "workload", "wrapper",
];

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn assert_unique(list: &[&str], what: &str) {
        let set: HashSet<_> = list.iter().collect();
        assert_eq!(set.len(), list.len(), "{what} contains duplicates");
    }

    #[test]
    fn lists_are_non_trivial_and_unique() {
        assert!(FIRST_NAMES.len() >= 200, "{}", FIRST_NAMES.len());
        assert!(LAST_NAMES.len() >= 250, "{}", LAST_NAMES.len());
        assert!(PUBLISHERS.len() >= 50);
        assert!(WORDS.len() >= 350, "{}", WORDS.len());
        assert_unique(FIRST_NAMES, "FIRST_NAMES");
        assert_unique(LAST_NAMES, "LAST_NAMES");
        assert_unique(PUBLISHERS, "PUBLISHERS");
        assert_unique(WORDS, "WORDS");
    }

    #[test]
    fn reserved_names_cannot_be_generated() {
        // Q12c relies on "John Q. Public" never existing; the Erdős entry
        // point must stay unique to the fixed URI.
        assert!(!LAST_NAMES.contains(&"Public"));
        assert!(!LAST_NAMES.contains(&"Erdoes"));
        assert!(!LAST_NAMES.contains(&"Erdos"));
    }

    #[test]
    fn name_space_is_ample() {
        // 25M-triple documents hold ~2.1M distinct authors (Table VIII);
        // first×last must comfortably exceed that before suffixing kicks in.
        let combos = FIRST_NAMES.len() * LAST_NAMES.len();
        assert!(combos > 60_000, "only {combos} combinations");
    }
}
