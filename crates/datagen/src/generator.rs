//! The SP²Bench data generator (Section IV, Figure 4).
//!
//! Simulates DBLP year by year from [`params::FIRST_YEAR`]: per year it
//! derives document-class counts from the logistic growth curves, builds
//! the author roster (distinct/new author ratios, power-law publication
//! targets), creates venues before the publications that reference them,
//! assigns attributes according to the Table IX probability matrix,
//! wires up the citation system, and streams every triple to a
//! [`TripleSink`].
//!
//! Guarantees, mirroring the paper:
//! * **deterministic** — a `(seed, limit)` pair uniquely identifies the
//!   output, bit for bit, on every platform;
//! * **incremental** — smaller documents are prefixes of larger ones
//!   (same seed), so a 10k document is contained in the 1M document;
//! * **consistent** — any referenced venue, person, bag or citation target
//!   is emitted before the reference, so truncation at a triple limit
//!   never dangles;
//! * **constant memory** in output size, up to the author pool and the
//!   compact document registry needed for citations and re-selection.

use std::collections::HashMap;
use std::io;
use std::path::Path;

use sp2b_rdf::vocab::{bench, dc, dcterms, foaf, person, rdf, rdfs, swrc};
use sp2b_rdf::{Graph, Iri, Literal, Subject, Term, Triple};

use crate::authors::{AuthorPool, PersonId, YearRoster, ERDOES};
use crate::names;
use crate::params::{self, Attribute, DocClass};
use crate::rng::Rng;
use crate::sink::{GraphSink, NtriplesSink, TripleSink};
use crate::stats::{GeneratorStats, YearRecord};

/// When to stop generating.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Limit {
    /// Stop after exactly this many triples ("triple count limit").
    Triples(u64),
    /// Generate all years up to and including this one ("year limit").
    Year(i32),
}

/// Generator configuration. The paper's two parameters (triple count or
/// target year) plus the seed and a stats switch.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// PRNG seed; the default reproduces the reference documents.
    pub seed: u64,
    /// Output size limit.
    pub limit: Limit,
    /// Collect per-year records and histograms (Figures 2a–2c). Off by
    /// default: it costs memory proportional to the author roster.
    pub detailed_stats: bool,
}

impl Config {
    /// A triple-limited configuration with the default seed.
    pub fn triples(n: u64) -> Self {
        Config {
            seed: Rng::DEFAULT_SEED,
            limit: Limit::Triples(n),
            detailed_stats: false,
        }
    }

    /// A year-limited configuration with the default seed.
    pub fn up_to_year(year: i32) -> Self {
        Config {
            seed: Rng::DEFAULT_SEED,
            limit: Limit::Year(year),
            detailed_stats: false,
        }
    }

    /// Enables detailed per-year statistics.
    pub fn with_detailed_stats(mut self) -> Self {
        self.detailed_stats = true;
        self
    }

    /// Overrides the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Internal control flow: generation stops on the triple limit or an I/O
/// error; the year limit terminates the year loop normally.
enum Stop {
    Limit,
    Io(io::Error),
}

type GenResult = Result<(), Stop>;

impl From<io::Error> for Stop {
    fn from(e: io::Error) -> Self {
        Stop::Io(e)
    }
}

/// Packed registry entry: document class in the high bits, per-class
/// sequence number in the low bits.
#[derive(Debug, Clone, Copy)]
struct DocRef(u64);

impl DocRef {
    fn new(class: DocClass, seq: u64) -> Self {
        DocRef(((class.index() as u64) << 56) | seq)
    }

    fn class(self) -> DocClass {
        DocClass::ALL[(self.0 >> 56) as usize]
    }

    fn seq(self) -> u64 {
        self.0 & ((1 << 56) - 1)
    }

    fn uri(self) -> String {
        document_uri(self.class(), self.seq())
    }
}

/// The instance-URI scheme. Kept in one place so citations can reconstruct
/// URIs from compact registry entries.
fn document_uri(class: DocClass, seq: u64) -> String {
    let (path, name) = match class {
        DocClass::Article => ("articles", "Article"),
        DocClass::Inproceedings => ("inprocs", "Inproceeding"),
        DocClass::Proceedings => ("procs", "Proceeding"),
        DocClass::Book => ("books", "Book"),
        DocClass::Incollection => ("incolls", "Incollection"),
        DocClass::PhdThesis => ("phds", "Phdthesis"),
        DocClass::MastersThesis => ("masters", "Mastersthesis"),
        DocClass::Www => ("wwws", "Www"),
    };
    format!("http://localhost/publications/{path}/{name}{seq}")
}

/// URI of journal `i` of `year`.
fn journal_uri(i: u64, year: i32) -> String {
    format!("http://localhost/publications/journals/Journal{i}/{year}")
}

/// The `bench:` class IRI of a document class.
fn class_iri(class: DocClass) -> &'static str {
    match class {
        DocClass::Article => bench::ARTICLE,
        DocClass::Inproceedings => bench::INPROCEEDINGS,
        DocClass::Proceedings => bench::PROCEEDINGS,
        DocClass::Book => bench::BOOK,
        DocClass::Incollection => bench::INCOLLECTION,
        DocClass::PhdThesis => bench::PHD_THESIS,
        DocClass::MastersThesis => bench::MASTERS_THESIS,
        DocClass::Www => bench::WWW,
    }
}

/// The streaming generator. Create with [`Generator::new`], drive with
/// [`Generator::run`], or use the [`generate_graph`] /
/// [`generate_to_writer`] / [`generate_to_path`] conveniences.
pub struct Generator {
    cfg: Config,
    rng: Rng,
    pool: AuthorPool,
    stats: GeneratorStats,
    /// All cite-able documents generated so far (compact form).
    registry: Vec<DocRef>,
    /// Pólya urn over `registry` indices: one entry per received citation,
    /// so preferential attachment yields the incoming-citation power law.
    citation_urn: Vec<u32>,
    /// Per-class instance counters (1-based sequence numbers).
    class_seq: [u64; 8],
    /// Global counter for reference-bag blank nodes.
    bag_seq: u64,
    /// Venues of the current year.
    year_journals: Vec<(u64, String)>, // (journal number, title)
    year_procs: Vec<(u64, String)>, // (proceedings seq, conference title)
    year_books: Vec<u64>,           // book seqs
    /// Erdős activity counters for the current year.
    erdoes_pubs_left: u64,
    erdoes_edits_left: u64,
    /// Detailed per-year collection (when enabled).
    year_author_counts: HashMap<PersonId, u32>,
    year_record: YearRecord,
}

impl Generator {
    /// Creates a generator for the given configuration.
    pub fn new(cfg: Config) -> Self {
        Generator {
            cfg,
            rng: Rng::new(cfg.seed),
            pool: AuthorPool::new(),
            stats: GeneratorStats::default(),
            registry: Vec::new(),
            citation_urn: Vec::new(),
            class_seq: [0; 8],
            bag_seq: 0,
            year_journals: Vec::new(),
            year_procs: Vec::new(),
            year_books: Vec::new(),
            erdoes_pubs_left: 0,
            erdoes_edits_left: 0,
            year_author_counts: HashMap::new(),
            year_record: YearRecord::default(),
        }
    }

    /// Runs the simulation, pushing every triple into `sink`. Returns the
    /// run's statistics (Table VIII data).
    pub fn run<S: TripleSink>(mut self, sink: &mut S) -> io::Result<GeneratorStats> {
        let result = self.generate(sink);
        match result {
            Ok(()) | Err(Stop::Limit) => {
                sink.finish()?;
                self.stats.bytes = sink.bytes_written();
                self.stats.distinct_authors = self.pool.distinct_authors();
                Ok(self.stats)
            }
            Err(Stop::Io(e)) => Err(e),
        }
    }

    // -- driver ------------------------------------------------------------

    fn generate<S: TripleSink>(&mut self, sink: &mut S) -> GenResult {
        self.emit_schema(sink)?;
        let mut year = params::FIRST_YEAR;
        loop {
            if let Limit::Year(last) = self.cfg.limit {
                if year > last {
                    return Ok(());
                }
            }
            self.generate_year(sink, year)?;
            year += 1;
            // Safety net: a triple limit is always reached long before
            // this; a runaway year limit is a caller bug.
            if year > 2500 {
                return Ok(());
            }
        }
    }

    /// The RDF schema layer: every document class is a subclass of
    /// `foaf:Document` (queried by Q6/Q7's `?class rdfs:subClassOf
    /// foaf:Document` patterns).
    fn emit_schema<S: TripleSink>(&mut self, sink: &mut S) -> GenResult {
        let mut classes: Vec<&str> = vec![bench::JOURNAL];
        classes.extend(DocClass::ALL.iter().map(|&c| class_iri(c)));
        for class in classes {
            self.emit(
                sink,
                Triple::new(
                    Subject::iri(class),
                    Iri::new(rdfs::SUB_CLASS_OF),
                    Term::iri(foaf::DOCUMENT),
                ),
            )?;
        }
        Ok(())
    }

    fn generate_year<S: TripleSink>(&mut self, sink: &mut S, year: i32) -> GenResult {
        self.stats.end_year = year;
        self.stats.year_offsets.push((year, self.stats.triples));
        self.year_journals.clear();
        self.year_procs.clear();
        self.year_books.clear();
        self.year_author_counts.clear();
        if self.cfg.detailed_stats {
            self.year_record = YearRecord {
                year,
                ..Default::default()
            };
        }

        // Class counts for this year (Section III-B).
        let mut n_article = params::F_ARTICLE.count(year);
        let mut n_inproc = params::F_INPROC.count(year);
        let n_incoll = params::F_INCOLL.count(year);
        let n_book = params::F_BOOK.count(year);
        // The unsteady classes appear only from the 1980s on (Table VIII).
        // The draws still happen unconditionally so the random stream —
        // and with it every other class — is independent of the gate.
        let draw_phd = self.rng.below(params::F_PHD_MAX + 1);
        let draw_masters = self.rng.below(params::F_MASTERS_MAX + 1);
        let draw_www = self.rng.below(params::F_WWW_MAX + 1);
        let unsteady_active = year >= params::RANDOM_CLASSES_FIRST_YEAR;
        let n_phd = if unsteady_active { draw_phd } else { 0 };
        let n_masters = if unsteady_active { draw_masters } else { 0 };
        let n_www = if unsteady_active { draw_www } else { 0 };
        let mut n_journal = params::F_JOURNAL.count(year);
        let mut n_proc = params::F_PROC.count(year);
        // Referential consistency: articles need a journal, inproceedings
        // need a conference.
        if n_article > 0 {
            n_journal = n_journal.max(1);
        }
        if n_inproc > 0 {
            n_proc = n_proc.max(1);
        }
        // Early years: suppress isolated venues (no publications at all).
        if n_article == 0 && n_journal > 0 && year < 1940 {
            n_journal = 0;
        }
        // Articles/inproceedings are "closely coupled" to their venues —
        // with zero venues the publications cannot exist either.
        if n_journal == 0 {
            n_article = 0;
        }
        if n_proc == 0 {
            n_inproc = 0;
        }

        // Erdős' scripted activity (Section IV).
        let erdoes_active = (params::ERDOES_FIRST_YEAR..=params::ERDOES_LAST_YEAR).contains(&year);
        self.erdoes_pubs_left = if erdoes_active {
            params::ERDOES_PUBLICATIONS_PER_YEAR
        } else {
            0
        };
        self.erdoes_edits_left = if erdoes_active {
            params::ERDOES_EDITORSHIPS_PER_YEAR
        } else {
            0
        };

        // Author roster sized from the expected author-attribute count.
        let publication_counts = [
            (DocClass::Article, n_article),
            (DocClass::Inproceedings, n_inproc),
            (DocClass::Book, n_book),
            (DocClass::Incollection, n_incoll),
            (DocClass::PhdThesis, n_phd),
            (DocClass::MastersThesis, n_masters),
            (DocClass::Www, n_www),
        ];
        let docs_with_authors: f64 = publication_counts
            .iter()
            .map(|&(c, n)| n as f64 * params::attribute_probability(c, Attribute::Author))
            .sum();
        let expected_slots = docs_with_authors * params::d_auth(year).mu;
        let mut roster = if expected_slots >= 1.0 {
            Some(YearRoster::build(
                &mut self.pool,
                &mut self.rng,
                year,
                expected_slots,
            ))
        } else {
            None
        };
        if self.cfg.detailed_stats {
            self.year_record.new_authors = roster.as_ref().map_or(0, |r| r.new_members as u64);
        }

        // Venues first (consistency), then publications.
        for i in 1..=n_journal {
            self.emit_journal(sink, i, year)?;
        }
        for _ in 0..n_proc {
            self.emit_document(sink, DocClass::Proceedings, year, &mut roster)?;
        }
        for _ in 0..n_book {
            self.emit_document(sink, DocClass::Book, year, &mut roster)?;
        }
        for _ in 0..n_article {
            self.emit_document(sink, DocClass::Article, year, &mut roster)?;
        }
        for _ in 0..n_inproc {
            self.emit_document(sink, DocClass::Inproceedings, year, &mut roster)?;
        }
        for _ in 0..n_incoll {
            self.emit_document(sink, DocClass::Incollection, year, &mut roster)?;
        }
        for _ in 0..n_phd {
            self.emit_document(sink, DocClass::PhdThesis, year, &mut roster)?;
        }
        for _ in 0..n_masters {
            self.emit_document(sink, DocClass::MastersThesis, year, &mut roster)?;
        }
        for _ in 0..n_www {
            self.emit_document(sink, DocClass::Www, year, &mut roster)?;
        }

        if self.cfg.detailed_stats {
            let mut record = std::mem::take(&mut self.year_record);
            record.distinct_authors = self.year_author_counts.len() as u64;
            for &count in self.year_author_counts.values() {
                *record.publications_histogram.entry(count).or_insert(0) += 1;
            }
            self.stats.years.push(record);
        }
        Ok(())
    }

    // -- emission ----------------------------------------------------------

    fn emit<S: TripleSink>(&mut self, sink: &mut S, t: Triple) -> GenResult {
        sink.triple(&t)?;
        self.stats.triples += 1;
        if let Limit::Triples(max) = self.cfg.limit {
            if self.stats.triples >= max {
                return Err(Stop::Limit);
            }
        }
        Ok(())
    }

    fn emit_journal<S: TripleSink>(&mut self, sink: &mut S, number: u64, year: i32) -> GenResult {
        let uri = journal_uri(number, year);
        let title = format!("Journal {number} ({year})");
        self.stats.journals += 1;
        if self.cfg.detailed_stats {
            self.year_record.journals += 1;
        }
        // Record before emitting: a partial journal at the triple limit is
        // still a counted journal.
        self.year_journals.push((number, title.clone()));
        let s = Subject::iri(uri);
        self.emit(
            sink,
            Triple::new(s.clone(), Iri::new(rdf::TYPE), Term::iri(bench::JOURNAL)),
        )?;
        self.emit(
            sink,
            Triple::new(
                s.clone(),
                Iri::new(dc::TITLE),
                Term::Literal(Literal::string(title)),
            ),
        )?;
        self.emit(
            sink,
            Triple::new(
                s,
                Iri::new(dcterms::ISSUED),
                Term::Literal(Literal::integer(year as i64)),
            ),
        )?;
        Ok(())
    }

    /// Ensures a person's introduction triples exist before any reference.
    fn ensure_person<S: TripleSink>(&mut self, sink: &mut S, id: PersonId) -> GenResult {
        if self.pool.person(id).written {
            return Ok(());
        }
        self.pool.person_mut(id).written = true;
        let (subject, name) = self.person_subject_and_name(id);
        self.emit(
            sink,
            Triple::new(
                subject.clone(),
                Iri::new(rdf::TYPE),
                Term::iri(foaf::PERSON),
            ),
        )?;
        self.emit(
            sink,
            Triple::new(
                subject,
                Iri::new(foaf::NAME),
                Term::Literal(Literal::string(name)),
            ),
        )?;
        Ok(())
    }

    fn person_subject_and_name(&self, id: PersonId) -> (Subject, String) {
        let p = self.pool.person(id);
        if id == ERDOES {
            (Subject::iri(person::PAUL_ERDOES), p.name.clone())
        } else {
            (Subject::blank(p.label.clone()), p.name.clone())
        }
    }

    /// Emits one complete document of `class` for `year`.
    fn emit_document<S: TripleSink>(
        &mut self,
        sink: &mut S,
        class: DocClass,
        year: i32,
        roster: &mut Option<YearRoster>,
    ) -> GenResult {
        self.class_seq[class.index()] += 1;
        let seq = self.class_seq[class.index()];
        self.stats.class_counts[class.index()] += 1;
        if self.cfg.detailed_stats {
            self.year_record.class_counts[class.index()] += 1;
        }
        let uri = document_uri(class, seq);
        let subject = Subject::iri(uri);

        // Venue bookkeeping for later documents of this year.
        let conference: Option<(u64, String)> = match class {
            DocClass::Proceedings => {
                let title = format!("Conference {} ({year})", self.year_procs.len() as u64 + 1);
                self.year_procs.push((seq, title.clone()));
                Some((seq, title))
            }
            DocClass::Book => {
                self.year_books.push(seq);
                None
            }
            _ => None,
        };

        self.emit(
            sink,
            Triple::new(
                subject.clone(),
                Iri::new(rdf::TYPE),
                Term::iri(class_iri(class)),
            ),
        )?;

        // Pre-draw per-document venue assignment so booktitle and crossref
        // agree (an inproceedings' booktitle is its conference).
        let assigned_proc: Option<(u64, String)> =
            if class == DocClass::Inproceedings && !self.year_procs.is_empty() {
                let pick = self.rng.below(self.year_procs.len() as u64) as usize;
                Some(self.year_procs[pick].clone())
            } else {
                None
            };

        for attr in Attribute::ALL {
            let p = params::attribute_probability(class, attr);
            if p <= 0.0 || !self.rng.chance(p) {
                continue;
            }
            self.emit_attribute(
                sink,
                &subject,
                class,
                attr,
                year,
                roster,
                &conference,
                &assigned_proc,
            )?;
        }

        // The optional abstract enrichment (Section IV).
        if matches!(class, DocClass::Article | DocClass::Inproceedings)
            && self.rng.chance(params::ABSTRACT_PROBABILITY)
        {
            let words = params::ABSTRACT_WORDS
                .sample_count(&mut self.rng, 1, 400)
                .clamp(30, 400);
            let text = self.random_words(words as usize);
            self.emit(
                sink,
                Triple::new(
                    subject.clone(),
                    Iri::new(bench::ABSTRACT),
                    Term::Literal(Literal::string(text)),
                ),
            )?;
        }

        // Register cite-able documents after full emission (no self-cites,
        // no dangling citation targets on truncation).
        if matches!(
            class,
            DocClass::Article | DocClass::Inproceedings | DocClass::Book | DocClass::Incollection
        ) {
            self.registry.push(DocRef::new(class, seq));
        }
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn emit_attribute<S: TripleSink>(
        &mut self,
        sink: &mut S,
        subject: &Subject,
        class: DocClass,
        attr: Attribute,
        year: i32,
        roster: &mut Option<YearRoster>,
        conference: &Option<(u64, String)>,
        assigned_proc: &Option<(u64, String)>,
    ) -> GenResult {
        match attr {
            Attribute::Title => {
                let title = match (class, conference) {
                    (DocClass::Proceedings, Some((_, t))) => t.clone(),
                    _ => self.title_words(),
                };
                self.emit_string(sink, subject, dc::TITLE, title)
            }
            Attribute::Year => self.emit(
                sink,
                Triple::new(
                    subject.clone(),
                    Iri::new(dcterms::ISSUED),
                    Term::Literal(Literal::integer(year as i64)),
                ),
            ),
            Attribute::Author => self.emit_authors(sink, subject, year, roster),
            Attribute::Editor => self.emit_editors(sink, subject, year),
            Attribute::Cite => self.emit_citations(sink, subject),
            Attribute::Crossref => self.emit_crossref(sink, subject, class, assigned_proc),
            Attribute::Journal => {
                if class == DocClass::Article && !self.year_journals.is_empty() {
                    let (number, _) = self.year_journals
                        [self.rng.below(self.year_journals.len() as u64) as usize];
                    self.emit(
                        sink,
                        Triple::new(
                            subject.clone(),
                            Iri::new(swrc::JOURNAL),
                            Term::iri(journal_uri(number, year)),
                        ),
                    )
                } else {
                    Ok(())
                }
            }
            Attribute::Booktitle => {
                let title = match (class, assigned_proc, conference) {
                    (DocClass::Inproceedings, Some((_, t)), _) => t.clone(),
                    (DocClass::Proceedings, _, Some((_, t))) => t.clone(),
                    _ => self.title_words(),
                };
                self.emit_string(sink, subject, bench::BOOKTITLE, title)
            }
            Attribute::Pages => {
                let from = 1 + self.rng.below(400);
                let to = from + 1 + self.rng.below(40);
                self.emit_string(sink, subject, swrc::PAGES, format!("{from}-{to}"))
            }
            Attribute::Ee => {
                let word = *self.rng.pick(names::WORDS);
                let value = format!(
                    "http://www.{word}.org/rec/{}{}",
                    class.label(),
                    self.class_seq[class.index()]
                );
                self.emit_string(sink, subject, rdfs::SEE_ALSO, value)
            }
            Attribute::Url => {
                let word = *self.rng.pick(names::WORDS);
                let value = format!(
                    "http://www.{word}.com/{}{}.html",
                    class.label().to_lowercase(),
                    self.class_seq[class.index()]
                );
                self.emit_string(sink, subject, foaf::HOMEPAGE, value)
            }
            Attribute::Isbn => {
                let a = self.rng.below(10);
                let b = self.rng.below(100_000);
                let c = self.rng.below(1_000);
                let d = self.rng.below(10);
                self.emit_string(sink, subject, swrc::ISBN, format!("{a}-{b:05}-{c:03}-{d}"))
            }
            Attribute::Month => {
                let m = self.rng.range_inclusive(1, 12) as i64;
                self.emit_int(sink, subject, swrc::MONTH, m)
            }
            Attribute::Number => {
                let n = self.rng.range_inclusive(1, 500) as i64;
                self.emit_int(sink, subject, swrc::NUMBER, n)
            }
            Attribute::Volume => {
                let v = self.rng.range_inclusive(1, 120) as i64;
                self.emit_int(sink, subject, swrc::VOLUME, v)
            }
            Attribute::Chapter => {
                let c = self.rng.range_inclusive(1, 25) as i64;
                self.emit_int(sink, subject, swrc::CHAPTER, c)
            }
            Attribute::Series => {
                let s = self.rng.range_inclusive(1, 80) as i64;
                self.emit_int(sink, subject, swrc::SERIES, s)
            }
            Attribute::Publisher | Attribute::School => {
                let p = *self.rng.pick(names::PUBLISHERS);
                self.emit_string(sink, subject, dc::PUBLISHER, p.to_owned())
            }
            Attribute::Address => {
                let w = *self.rng.pick(names::WORDS);
                self.emit_string(sink, subject, swrc::ADDRESS, w.to_owned())
            }
            Attribute::Note => {
                let n = 1 + self.rng.below(4) as usize;
                let text = self.random_words(n);
                self.emit_string(sink, subject, bench::NOTE, text)
            }
            Attribute::Cdrom => {
                let w = *self.rng.pick(names::WORDS);
                self.emit_string(
                    sink,
                    subject,
                    bench::CDROM,
                    format!("CDROM/{w}{}", self.class_seq[class.index()]),
                )
            }
        }
    }

    fn emit_string<S: TripleSink>(
        &mut self,
        sink: &mut S,
        subject: &Subject,
        predicate: &str,
        value: String,
    ) -> GenResult {
        self.emit(
            sink,
            Triple::new(
                subject.clone(),
                Iri::new(predicate),
                Term::Literal(Literal::string(value)),
            ),
        )
    }

    fn emit_int<S: TripleSink>(
        &mut self,
        sink: &mut S,
        subject: &Subject,
        predicate: &str,
        value: i64,
    ) -> GenResult {
        self.emit(
            sink,
            Triple::new(
                subject.clone(),
                Iri::new(predicate),
                Term::Literal(Literal::integer(value)),
            ),
        )
    }

    fn emit_authors<S: TripleSink>(
        &mut self,
        sink: &mut S,
        subject: &Subject,
        year: i32,
        roster: &mut Option<YearRoster>,
    ) -> GenResult {
        let Some(roster) = roster.as_mut() else {
            return Ok(());
        };
        let k = params::d_auth(year).sample_count(&mut self.rng, 1, params::MAX_AUTHORS_PER_DOC)
            as usize;
        let mut authors = roster.take_authors(&mut self.rng, k);
        // Erdős joins the first documents of each of his active years as
        // an additional coauthor (giving Q8 its coauthor network).
        if self.erdoes_pubs_left > 0 {
            self.erdoes_pubs_left -= 1;
            authors.push(ERDOES);
        }
        for id in authors {
            self.ensure_person(sink, id)?;
            let (s, _) = self.person_subject_and_name(id);
            // Book-keep before emitting: `emit` signals the triple limit
            // *after* writing the triple, so a truncated document must
            // still count this creator attribute.
            self.pool.record_publication(id, year);
            self.stats.total_authors += 1;
            if self.cfg.detailed_stats {
                self.year_record.total_authors += 1;
                *self.year_author_counts.entry(id).or_insert(0) += 1;
            }
            self.emit(
                sink,
                Triple::new(subject.clone(), Iri::new(dc::CREATOR), s.to_term()),
            )?;
        }
        Ok(())
    }

    fn emit_editors<S: TripleSink>(
        &mut self,
        sink: &mut S,
        subject: &Subject,
        year: i32,
    ) -> GenResult {
        let k =
            params::D_EDITOR.sample_count(&mut self.rng, 1, params::MAX_EDITORS_PER_DOC) as usize;
        let mut editors = self.pool.select_editors(&mut self.rng, k, year);
        if self.erdoes_edits_left > 0 {
            self.erdoes_edits_left -= 1;
            editors.push(ERDOES);
        }
        for id in editors {
            self.ensure_person(sink, id)?;
            let (s, _) = self.person_subject_and_name(id);
            self.emit(
                sink,
                Triple::new(subject.clone(), Iri::new(swrc::EDITOR), s.to_term()),
            )?;
        }
        Ok(())
    }

    fn emit_citations<S: TripleSink>(&mut self, sink: &mut S, subject: &Subject) -> GenResult {
        let planned = params::D_CITE.sample_count(&mut self.rng, 1, params::MAX_OUTGOING_CITATIONS);
        self.stats.citations_planned += planned;
        *self
            .stats
            .citation_histogram
            .entry(planned as u32)
            .or_insert(0) += 1;

        self.bag_seq += 1;
        let bag = Subject::blank(format!("references{}", self.bag_seq));
        self.emit(
            sink,
            Triple::new(
                subject.clone(),
                Iri::new(dcterms::REFERENCES),
                bag.to_term(),
            ),
        )?;
        self.emit(
            sink,
            Triple::new(bag.clone(), Iri::new(rdf::TYPE), Term::iri(rdf::BAG)),
        )?;

        let mut member = 0usize;
        for _ in 0..planned {
            // DBLP's citation system is incomplete: a fraction of the
            // planned citations stays untargeted (Section III-D).
            if self.registry.is_empty() || self.rng.chance(params::UNTARGETED_CITATION_PROBABILITY)
            {
                continue;
            }
            // Preferential attachment: mostly re-cite already-cited
            // documents (power-law in-degree), sometimes a uniform pick.
            let target_idx = if !self.citation_urn.is_empty() && self.rng.chance(0.7) {
                *self.rng.pick(&self.citation_urn) as usize
            } else {
                self.rng.below(self.registry.len() as u64) as usize
            };
            self.citation_urn.push(target_idx as u32);
            let target = self.registry[target_idx];
            member += 1;
            // Count before emitting (see emit_authors on limit semantics).
            self.stats.citations_targeted += 1;
            self.emit(
                sink,
                Triple::new(
                    bag.clone(),
                    Iri::new(rdf::member(member)),
                    Term::iri(target.uri()),
                ),
            )?;
        }
        Ok(())
    }

    fn emit_crossref<S: TripleSink>(
        &mut self,
        sink: &mut S,
        subject: &Subject,
        class: DocClass,
        assigned_proc: &Option<(u64, String)>,
    ) -> GenResult {
        let target = match class {
            DocClass::Inproceedings => assigned_proc
                .as_ref()
                .map(|(seq, _)| document_uri(DocClass::Proceedings, *seq)),
            DocClass::Incollection if !self.year_books.is_empty() => {
                let seq = self.year_books[self.rng.below(self.year_books.len() as u64) as usize];
                Some(document_uri(DocClass::Book, seq))
            }
            // Other classes have no natural container in our scheme; their
            // Table IX crossref probabilities are ≤ 0.0016.
            _ => None,
        };
        if let Some(uri) = target {
            self.emit(
                sink,
                Triple::new(subject.clone(), Iri::new(dcterms::PART_OF), Term::iri(uri)),
            )?;
        }
        Ok(())
    }

    // -- text synthesis ----------------------------------------------------

    fn title_words(&mut self) -> String {
        let n = 2 + self.rng.below(6) as usize;
        self.random_words(n)
    }

    fn random_words(&mut self, n: usize) -> String {
        let mut s = String::with_capacity(n * 8);
        for i in 0..n {
            if i > 0 {
                s.push(' ');
            }
            let word = *self.rng.pick(names::WORDS);
            s.push_str(word);
        }
        s
    }
}

// ---------------------------------------------------------------------------
// Conveniences
// ---------------------------------------------------------------------------

/// Generates into memory; for tests, examples and direct store loading.
pub fn generate_graph(cfg: Config) -> (Graph, GeneratorStats) {
    let mut sink = GraphSink::new();
    let stats = Generator::new(cfg)
        .run(&mut sink)
        .expect("in-memory sink cannot fail");
    (sink.graph, stats)
}

/// Generates N-Triples into any writer.
pub fn generate_to_writer<W: io::Write>(cfg: Config, writer: W) -> io::Result<GeneratorStats> {
    let mut sink = NtriplesSink::new(writer);
    Generator::new(cfg).run(&mut sink)
}

/// Generates an N-Triples file at `path`.
pub fn generate_to_path(cfg: Config, path: &Path) -> io::Result<GeneratorStats> {
    let file = std::fs::File::create(path)?;
    generate_to_writer(cfg, file)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sp2b_rdf::vocab::xsd;
    use std::collections::HashSet;

    #[test]
    fn triple_limit_is_exact() {
        for limit in [100, 1_000, 10_000] {
            let (g, stats) = generate_graph(Config::triples(limit));
            assert_eq!(g.len() as u64, limit);
            assert_eq!(stats.triples, limit);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let (a, _) = generate_graph(Config::triples(5_000));
        let (b, _) = generate_graph(Config::triples(5_000));
        assert_eq!(a, b);
    }

    #[test]
    fn generation_is_incremental() {
        // Smaller documents are prefixes of larger ones (same seed).
        let (small, _) = generate_graph(Config::triples(2_000));
        let (large, _) = generate_graph(Config::triples(6_000));
        assert_eq!(small.as_slice(), &large.as_slice()[..2_000]);
    }

    #[test]
    fn different_seeds_differ() {
        let (a, _) = generate_graph(Config::triples(2_000));
        let (b, _) = generate_graph(Config::triples(2_000).with_seed(99));
        assert_ne!(a, b);
    }

    #[test]
    fn journal_1_1940_exists_in_10k() {
        // Q1's target: the 1940 journal must exist in every benchmark
        // document (the paper's smallest scale is 10k).
        let (g, _) = generate_graph(Config::triples(10_000));
        let found = g.iter().any(|t| {
            t.predicate.as_str() == dc::TITLE
                && matches!(&t.object, Term::Literal(l) if l.lexical == "Journal 1 (1940)")
        });
        assert!(found, "Journal 1 (1940) missing");
    }

    #[test]
    fn no_article_has_isbn() {
        // Table IX: P(isbn | Article) = 0 — Q3c returns the empty set.
        let (g, _) = generate_graph(Config::triples(20_000));
        let articles: HashSet<String> = g
            .instances_of(bench::ARTICLE)
            .map(|s| s.to_term().to_string())
            .collect();
        for t in g.with_predicate(swrc::ISBN) {
            assert!(
                !articles.contains(&t.subject.to_term().to_string()),
                "article with isbn: {t}"
            );
        }
    }

    #[test]
    fn erdoes_is_active() {
        let (g, _) = generate_graph(Config::triples(30_000));
        let erdoes = Term::iri(person::PAUL_ERDOES);
        let as_author = g
            .with_predicate(dc::CREATOR)
            .filter(|t| t.object == erdoes)
            .count();
        assert!(as_author > 0, "Erdős must author publications");
        // Typed and named exactly once.
        let named = g
            .with_predicate(foaf::NAME)
            .filter(|t| t.subject.to_term() == erdoes)
            .count();
        assert_eq!(named, 1);
    }

    #[test]
    fn persons_are_blank_nodes_with_unique_names() {
        let (g, _) = generate_graph(Config::triples(30_000));
        let mut names = HashSet::new();
        for t in g.with_predicate(foaf::NAME) {
            let name = &t.object.as_literal().unwrap().lexical;
            assert!(names.insert(name.clone()), "duplicate author name {name}");
            if name != "Paul Erdoes" {
                assert!(t.subject.to_term().is_blank(), "person not a blank node");
            }
        }
        assert!(
            !names.contains("John Q. Public"),
            "Q12c witness must not exist"
        );
    }

    #[test]
    fn reference_bags_are_typed_and_consistent() {
        let (g, stats) = generate_graph(Config::triples(150_000));
        let bags: HashSet<Term> = g
            .with_predicate(dcterms::REFERENCES)
            .map(|t| t.object.clone())
            .collect();
        assert!(!bags.is_empty(), "no citation bags in 150k triples");
        // Every bag is typed rdf:Bag.
        let typed: HashSet<Term> = g
            .iter()
            .filter(|t| {
                t.predicate.as_str() == rdf::TYPE
                    && matches!(&t.object, Term::Iri(i) if i.as_str() == rdf::BAG)
            })
            .map(|t| t.subject.to_term())
            .collect();
        for bag in &bags {
            assert!(typed.contains(bag), "untyped bag {bag}");
        }
        // Bag members reference existing documents.
        let docs: HashSet<String> = g
            .iter()
            .filter(|t| t.predicate.as_str() == rdf::TYPE)
            .map(|t| t.subject.to_term().to_string())
            .collect();
        let mut members = 0;
        for t in g.iter() {
            if rdf::member_index(t.predicate.as_str()).is_some() {
                members += 1;
                assert!(
                    docs.contains(&t.object.to_string()),
                    "dangling citation target {}",
                    t.object
                );
            }
        }
        assert_eq!(members as u64, stats.citations_targeted);
        assert!(stats.citations_targeted < stats.citations_planned);
    }

    #[test]
    fn crossrefs_point_to_existing_venues() {
        let (g, _) = generate_graph(Config::triples(50_000));
        let docs: HashSet<String> = g
            .iter()
            .filter(|t| t.predicate.as_str() == rdf::TYPE)
            .map(|t| t.subject.to_term().to_string())
            .collect();
        let mut seen = 0;
        for t in g.with_predicate(dcterms::PART_OF) {
            seen += 1;
            assert!(
                docs.contains(&t.object.to_string()),
                "dangling partOf {}",
                t.object
            );
        }
        assert!(seen > 0, "no crossrefs generated");
    }

    #[test]
    fn string_literals_are_xsd_string_typed() {
        let (g, _) = generate_graph(Config::triples(5_000));
        for t in g.with_predicate(dc::TITLE) {
            let lit = t.object.as_literal().expect("title is a literal");
            assert_eq!(lit.datatype.as_ref().unwrap().as_str(), xsd::STRING);
        }
        for t in g.with_predicate(dcterms::ISSUED) {
            let lit = t.object.as_literal().expect("issued is a literal");
            assert_eq!(lit.datatype.as_ref().unwrap().as_str(), xsd::INTEGER);
        }
    }

    #[test]
    fn year_limit_mode_stops_at_year() {
        let (g, stats) = generate_graph(Config::up_to_year(1945));
        assert_eq!(stats.end_year, 1945);
        for t in g.with_predicate(dcterms::ISSUED) {
            let year = t.object.as_literal().unwrap().as_integer().unwrap();
            assert!(year <= 1945, "document issued after the year limit: {year}");
        }
    }

    #[test]
    fn detailed_stats_collect_year_records() {
        let cfg = Config::up_to_year(1950).with_detailed_stats();
        let (_, stats) = generate_graph(cfg);
        assert_eq!(stats.years.len(), (1950 - params::FIRST_YEAR + 1) as usize);
        let last = stats.years.last().unwrap();
        assert_eq!(last.year, 1950);
        assert!(last.total_authors > 0);
        assert!(!last.publications_histogram.is_empty());
    }

    #[test]
    fn table_viii_shape_10k() {
        // Order-of-magnitude comparison against the paper's Table VIII row
        // for 10k triples (end year 1955, ~1.5k authors, ~916 articles,
        // ~169 inproceedings, 25 journals). Constants differ in detail
        // (name lists, value synthesis), so we check coarse bands.
        let (_, stats) = generate_graph(Config::triples(10_000));
        assert!(
            (1948..=1962).contains(&stats.end_year),
            "end year {}",
            stats.end_year
        );
        assert!(stats.count(DocClass::Article) > stats.count(DocClass::Proceedings));
        assert!(stats.journals > 0);
        assert!(stats.total_authors > stats.distinct_authors);
    }

    #[test]
    fn articles_dominate_books() {
        let (_, stats) = generate_graph(Config::triples(100_000));
        assert!(stats.count(DocClass::Article) > 20 * stats.count(DocClass::Book).max(1));
    }

    #[test]
    fn ntriples_output_reparses_identically() {
        let cfg = Config::triples(3_000);
        let mut buf = Vec::new();
        let stats = generate_to_writer(cfg, &mut buf).unwrap();
        assert_eq!(stats.bytes, Some(buf.len() as u64));
        let parsed = sp2b_rdf::ntriples::Parser::new(&buf[..])
            .collect::<Result<Vec<_>, _>>()
            .unwrap();
        let (graph, _) = generate_graph(cfg);
        assert_eq!(parsed, graph.into_triples());
    }
}
