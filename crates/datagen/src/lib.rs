//! # sp2b-datagen — the SP²Bench data generator
//!
//! A from-scratch Rust implementation of the paper's DBLP-like RDF data
//! generator (Sections III and IV): deterministic, platform independent,
//! streaming (constant memory in output size), and faithful to the
//! published distribution fits — Gaussian repeated-attribute counts,
//! logistic growth of venues and publications, power-law author
//! productivity and citation in-degrees, the Table IX attribute
//! probability matrix, blank-node persons, `rdf:Bag` reference lists and
//! the scripted Paul Erdős entry point.
//!
//! ## Quick start
//!
//! ```
//! use sp2b_datagen::{generate_graph, Config};
//!
//! let (graph, stats) = generate_graph(Config::triples(10_000));
//! assert_eq!(graph.len(), 10_000);
//! assert!(stats.total_authors > 0);
//! ```

pub mod authors;
pub mod dist;
pub mod generator;
pub mod names;
pub mod params;
pub mod rng;
pub mod sink;
pub mod stats;
pub mod updates;

pub use generator::{
    generate_graph, generate_to_path, generate_to_writer, Config, Generator, Limit,
};
pub use params::{Attribute, DocClass};
pub use rng::Rng;
pub use sink::{GraphSink, NtriplesSink, NullSink, TripleSink};
pub use stats::{GeneratorStats, YearRecord};
pub use updates::{year_batches, UpdateStream, YearBatch};
