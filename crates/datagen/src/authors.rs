//! The author population model (Section III-C, Figure 4).
//!
//! The generator is simulation-based: persons are created once, accumulate
//! publications over the years, and are preferentially re-selected in
//! later years ("rich get richer"), which reproduces the publications-per-
//! author power law of Figure 2c. Each simulated year builds a
//! [`YearRoster`] — the set of persons publishing that year, sized by the
//! paper's `f_dauth`/`f_new` ratio curves, with per-person publication
//! targets drawn from the `f_awp` power law — and papers take their author
//! lists from the roster's shuffled slot deck.

use std::collections::HashSet;

use crate::dist::PowerLaw;
use crate::params;
use crate::rng::Rng;

/// Index of a person in the pool.
pub type PersonId = u32;

/// A member of the simulated author population.
#[derive(Debug, Clone)]
pub struct Person {
    /// Unique full name ("names are primary keys" — Q5a/Q5b equivalence).
    pub name: String,
    /// Blank-node label derived from the name (`Given_Last`), or the empty
    /// string for Paul Erdős who has a fixed URI.
    pub label: String,
    /// Cumulative publication count.
    pub publications: u32,
    /// Last year this person authored something.
    pub last_active: i32,
    /// Whether the `rdf:type foaf:Person` / `foaf:name` triples have been
    /// emitted (persons are introduced on first use).
    pub written: bool,
}

/// Paul Erdős' position in every pool.
pub const ERDOES: PersonId = 0;

/// Years of inactivity after which an author "retires" and is no longer
/// selected (the paper assigns life times to authors; exact policy
/// unpublished — 30 years keeps the pool realistic without starving it).
const RETIREMENT_YEARS: i32 = 30;

/// The evolving author population.
pub struct AuthorPool {
    persons: Vec<Person>,
    /// Pólya urn: one entry per publication of each person (plus one at
    /// creation), so drawing from the urn selects authors with probability
    /// proportional to `publications + 1`.
    urn: Vec<PersonId>,
    used_names: HashSet<String>,
}

impl AuthorPool {
    /// Creates a pool containing only Paul Erdős (excluded from the urn —
    /// his activity is scripted, not sampled).
    pub fn new() -> Self {
        let mut used_names = HashSet::new();
        used_names.insert("Paul Erdoes".to_owned());
        AuthorPool {
            persons: vec![Person {
                name: "Paul Erdoes".to_owned(),
                label: String::new(),
                publications: 0,
                last_active: params::ERDOES_FIRST_YEAR,
                written: false,
            }],
            urn: Vec::new(),
            used_names,
        }
    }

    /// Number of persons ever created (including Erdős).
    pub fn len(&self) -> usize {
        self.persons.len()
    }

    /// True if only Erdős exists.
    pub fn is_empty(&self) -> bool {
        self.persons.len() <= 1
    }

    /// Immutable person access.
    pub fn person(&self, id: PersonId) -> &Person {
        &self.persons[id as usize]
    }

    /// Mutable person access.
    pub fn person_mut(&mut self, id: PersonId) -> &mut Person {
        &mut self.persons[id as usize]
    }

    /// Distinct persons with at least one publication (Table VIII's
    /// `#Dist.Auth.`), counting Erdős if he published.
    pub fn distinct_authors(&self) -> u64 {
        self.persons.iter().filter(|p| p.publications > 0).count() as u64
    }

    /// Mints a new person with a unique name.
    pub fn create(&mut self, rng: &mut Rng) -> PersonId {
        let name = loop {
            let first = *rng.pick(crate::names::FIRST_NAMES);
            let last = *rng.pick(crate::names::LAST_NAMES);
            let candidate = format!("{first} {last}");
            if self.used_names.insert(candidate.clone()) {
                break candidate;
            }
            // Name space exhausted around this combination: suffix a
            // counter deterministically derived from pool size.
            let numbered = format!("{first} {last} {:04}", self.persons.len());
            if self.used_names.insert(numbered.clone()) {
                break numbered;
            }
        };
        let label = name.replace(' ', "_");
        let id = self.persons.len() as PersonId;
        self.persons.push(Person {
            name,
            label,
            publications: 0,
            last_active: 0,
            written: false,
        });
        self.urn.push(id);
        id
    }

    /// Records one publication for `id` in `year` (updates the urn so
    /// future selection prefers productive authors).
    pub fn record_publication(&mut self, id: PersonId, year: i32) {
        let p = &mut self.persons[id as usize];
        p.publications += 1;
        p.last_active = year;
        if id != ERDOES {
            self.urn.push(id);
        }
    }

    /// Samples up to `n` *distinct*, non-retired, previously created
    /// persons, weighted by productivity. May return fewer when the pool
    /// is small.
    pub fn select_existing(&mut self, rng: &mut Rng, n: usize, year: i32) -> Vec<PersonId> {
        let mut out = Vec::with_capacity(n);
        if self.urn.is_empty() {
            return out;
        }
        let mut chosen: HashSet<PersonId> = HashSet::with_capacity(n);
        let max_attempts = n.saturating_mul(8) + 32;
        for _ in 0..max_attempts {
            if out.len() >= n {
                break;
            }
            let id = *rng.pick(&self.urn);
            if chosen.contains(&id) {
                continue;
            }
            let p = &self.persons[id as usize];
            if p.publications > 0 && year - p.last_active > RETIREMENT_YEARS {
                continue; // retired
            }
            chosen.insert(id);
            out.push(id);
        }
        out
    }

    /// Selects `n` editors: experienced persons ("editors often have
    /// published before"), falling back to newly created persons when the
    /// pool cannot provide enough.
    pub fn select_editors(&mut self, rng: &mut Rng, n: usize, year: i32) -> Vec<PersonId> {
        let mut editors = self.select_existing(rng, n, year);
        while editors.len() < n {
            editors.push(self.create(rng));
        }
        editors
    }
}

impl Default for AuthorPool {
    fn default() -> Self {
        AuthorPool::new()
    }
}

/// The set of persons publishing in one simulated year, with a slot deck
/// realizing the per-author publication-count power law.
pub struct YearRoster {
    /// Roster members (distinct persons).
    pub members: Vec<PersonId>,
    /// Number of members that are new this year.
    pub new_members: usize,
    deck: Vec<PersonId>,
}

impl YearRoster {
    /// Builds the roster for `year`.
    ///
    /// * `expected_slots` — predicted total author attributes
    ///   (documents-with-authors × mean authors per document);
    /// * the distinct and new counts follow `f_dauth` / `f_new`;
    /// * per-member publication targets follow the year's `f_awp`
    ///   power-law exponent.
    pub fn build(pool: &mut AuthorPool, rng: &mut Rng, year: i32, expected_slots: f64) -> Self {
        let distinct = (expected_slots * params::distinct_author_ratio(year)).round() as usize;
        let distinct = distinct.max(1);
        let new = ((distinct as f64) * params::new_author_ratio(year)).round() as usize;
        let new = new.clamp(1, distinct);

        let mut members = pool.select_existing(rng, distinct - new, year);
        let existing = members.len();
        for _ in 0..(distinct - existing) {
            members.push(pool.create(rng));
        }
        let new_members = members.len() - existing;

        // Publication targets: power law with the year's exponent. The cap
        // of 80 mirrors Figure 2c's x-axis (the leading author reaches ~80
        // publications in 2005).
        let law = PowerLaw::new(1.0, -params::awp_exponent(year), 0.0);
        let mut deck = Vec::with_capacity(expected_slots as usize + members.len());
        for &m in &members {
            let target = law.sample(rng, 80);
            for _ in 0..target {
                deck.push(m);
            }
        }
        // Top up so the deck can cover the expected slots.
        while (deck.len() as f64) < expected_slots {
            let m = members[rng.below(members.len() as u64) as usize];
            deck.push(m);
        }
        rng.shuffle(&mut deck);
        YearRoster {
            members,
            new_members,
            deck,
        }
    }

    /// Takes `k` distinct authors for one document. Falls back to uniform
    /// roster draws if the deck runs dry; always returns at least one
    /// author (unless the roster itself is empty).
    pub fn take_authors(&mut self, rng: &mut Rng, k: usize) -> Vec<PersonId> {
        let mut out: Vec<PersonId> = Vec::with_capacity(k);
        let mut skipped: Vec<PersonId> = Vec::new();
        while out.len() < k {
            match self.deck.pop() {
                Some(a) if out.contains(&a) => skipped.push(a),
                Some(a) => out.push(a),
                None => break,
            }
        }
        // Duplicates set aside for this document go back for later ones.
        self.deck.append(&mut skipped);
        if out.len() < k && !self.members.is_empty() {
            let mut attempts = 0;
            while out.len() < k && attempts < 8 * k {
                let m = self.members[rng.below(self.members.len() as u64) as usize];
                if !out.contains(&m) {
                    out.push(m);
                }
                attempts += 1;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_starts_with_erdoes_only() {
        let pool = AuthorPool::new();
        assert_eq!(pool.len(), 1);
        assert!(pool.is_empty());
        assert_eq!(pool.person(ERDOES).name, "Paul Erdoes");
    }

    #[test]
    fn created_names_are_unique() {
        let mut pool = AuthorPool::new();
        let mut rng = Rng::new(1);
        let mut names = HashSet::new();
        for _ in 0..5_000 {
            let id = pool.create(&mut rng);
            assert!(names.insert(pool.person(id).name.clone()), "duplicate name");
        }
    }

    #[test]
    fn labels_have_no_spaces() {
        let mut pool = AuthorPool::new();
        let mut rng = Rng::new(2);
        let id = pool.create(&mut rng);
        assert!(!pool.person(id).label.contains(' '));
    }

    #[test]
    fn selection_prefers_prolific_authors() {
        let mut pool = AuthorPool::new();
        let mut rng = Rng::new(3);
        let star = pool.create(&mut rng);
        let others: Vec<_> = (0..50).map(|_| pool.create(&mut rng)).collect();
        for _ in 0..200 {
            pool.record_publication(star, 1990);
        }
        for &o in &others {
            pool.record_publication(o, 1990);
        }
        let mut star_hits = 0;
        for _ in 0..200 {
            let sel = pool.select_existing(&mut rng, 5, 1991);
            if sel.contains(&star) {
                star_hits += 1;
            }
        }
        assert!(star_hits > 150, "star selected only {star_hits}/200 times");
    }

    #[test]
    fn retired_authors_are_skipped() {
        let mut pool = AuthorPool::new();
        let mut rng = Rng::new(4);
        let old = pool.create(&mut rng);
        pool.record_publication(old, 1940);
        let fresh = pool.create(&mut rng);
        pool.record_publication(fresh, 2000);
        for _ in 0..50 {
            let sel = pool.select_existing(&mut rng, 1, 2001);
            assert!(!sel.contains(&old), "retired author selected");
        }
    }

    #[test]
    fn roster_respects_distinct_and_new_counts() {
        let mut pool = AuthorPool::new();
        let mut rng = Rng::new(5);
        // Seed the pool with some history.
        for _ in 0..200 {
            let id = pool.create(&mut rng);
            pool.record_publication(id, 1970);
        }
        let roster = YearRoster::build(&mut pool, &mut rng, 1971, 300.0);
        let distinct: HashSet<_> = roster.members.iter().collect();
        assert_eq!(distinct.len(), roster.members.len(), "members not distinct");
        assert!(roster.new_members >= 1);
        assert!(roster.new_members <= roster.members.len());
    }

    #[test]
    fn take_authors_returns_distinct() {
        let mut pool = AuthorPool::new();
        let mut rng = Rng::new(6);
        for _ in 0..50 {
            pool.create(&mut rng);
        }
        let mut roster = YearRoster::build(&mut pool, &mut rng, 1980, 100.0);
        for _ in 0..40 {
            let authors = roster.take_authors(&mut rng, 4);
            let set: HashSet<_> = authors.iter().collect();
            assert_eq!(set.len(), authors.len(), "duplicate author in one doc");
            assert!(!authors.is_empty());
        }
    }

    #[test]
    fn editor_selection_always_delivers() {
        let mut pool = AuthorPool::new();
        let mut rng = Rng::new(7);
        let editors = pool.select_editors(&mut rng, 3, 1960);
        assert_eq!(editors.len(), 3);
    }
}
