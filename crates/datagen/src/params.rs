//! Every fitted constant of the paper's DBLP study (Sections III-A to
//! III-D, Table IX), in one place.
//!
//! Where the arXiv rendering is ambiguous (missing `1+` in two logistic
//! denominators, `1749.00` vs `1+749.00`) we restore the logistic form —
//! the literal readings are unbounded exponentials or negative counts that
//! contradict both the "limited growth" narrative and Table VIII; see
//! DESIGN.md §4.

use crate::dist::{Gaussian, Logistic, PowerLaw};

/// The eight explicit DBLP document classes (the DTD's child entities).
/// `Journal` is *not* among them: journals are implicitly defined by the
/// `journal` attribute of articles (Section III-B) but materialize as
/// `bench:Journal` venue resources in the RDF scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DocClass {
    /// `<article>` — journal articles.
    Article,
    /// `<inproceedings>` — conference papers.
    Inproceedings,
    /// `<proceedings>` — conference proceedings (the paper calls instances
    /// of this class "conferences"; all other classes are "publications").
    Proceedings,
    /// `<book>`.
    Book,
    /// `<incollection>`.
    Incollection,
    /// `<phdthesis>`.
    PhdThesis,
    /// `<mastersthesis>`.
    MastersThesis,
    /// `<www>`.
    Www,
}

impl DocClass {
    /// All classes, in Table IX column order.
    pub const ALL: [DocClass; 8] = [
        DocClass::Article,
        DocClass::Inproceedings,
        DocClass::Proceedings,
        DocClass::Book,
        DocClass::Incollection,
        DocClass::PhdThesis,
        DocClass::MastersThesis,
        DocClass::Www,
    ];

    /// Column index into the Table IX rows.
    pub fn index(self) -> usize {
        self as usize
    }

    /// Human-readable name (Table VIII row labels).
    pub fn label(self) -> &'static str {
        match self {
            DocClass::Article => "Article",
            DocClass::Inproceedings => "Inproceedings",
            DocClass::Proceedings => "Proceedings",
            DocClass::Book => "Book",
            DocClass::Incollection => "Incollection",
            DocClass::PhdThesis => "PhDThesis",
            DocClass::MastersThesis => "MastersThesis",
            DocClass::Www => "WWW",
        }
    }
}

/// The 22 DBLP attributes (the DTD's `%field;` entity), in Table IX order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Attribute {
    /// `address`.
    Address,
    /// `author` (repeated; → `dc:creator`).
    Author,
    /// `booktitle`.
    Booktitle,
    /// `cdrom`.
    Cdrom,
    /// `chapter`.
    Chapter,
    /// `cite` (repeated; → `dcterms:references` bag).
    Cite,
    /// `crossref` (→ `dcterms:partOf`).
    Crossref,
    /// `editor` (repeated; → `swrc:editor`).
    Editor,
    /// `ee` (→ `rdfs:seeAlso`).
    Ee,
    /// `isbn`.
    Isbn,
    /// `journal` (→ `swrc:journal`).
    Journal,
    /// `month`.
    Month,
    /// `note`.
    Note,
    /// `number`.
    Number,
    /// `pages`.
    Pages,
    /// `publisher`.
    Publisher,
    /// `school` (→ `dc:publisher`, like `publisher`).
    School,
    /// `series`.
    Series,
    /// `title`.
    Title,
    /// `url` (→ `foaf:homepage`).
    Url,
    /// `volume`.
    Volume,
    /// `year` (→ `dcterms:issued`).
    Year,
}

impl Attribute {
    /// All attributes in Table IX row order.
    pub const ALL: [Attribute; 22] = [
        Attribute::Address,
        Attribute::Author,
        Attribute::Booktitle,
        Attribute::Cdrom,
        Attribute::Chapter,
        Attribute::Cite,
        Attribute::Crossref,
        Attribute::Editor,
        Attribute::Ee,
        Attribute::Isbn,
        Attribute::Journal,
        Attribute::Month,
        Attribute::Note,
        Attribute::Number,
        Attribute::Pages,
        Attribute::Publisher,
        Attribute::School,
        Attribute::Series,
        Attribute::Title,
        Attribute::Url,
        Attribute::Volume,
        Attribute::Year,
    ];

    /// Row index into [`ATTRIBUTE_PROBABILITY`].
    pub fn index(self) -> usize {
        self as usize
    }
}

/// Table IX — probability that an attribute describes a document of a
/// class. Rows follow [`Attribute::ALL`], columns follow [`DocClass::ALL`]
/// (Article, Inproc., Proc., Book, Incoll., PhDTh., MastTh., WWW).
#[rustfmt::skip]
pub const ATTRIBUTE_PROBABILITY: [[f64; 8]; 22] = [
    /* address   */ [0.0000, 0.0000, 0.0004, 0.0000, 0.0000, 0.0000, 0.0000, 0.0000],
    /* author    */ [0.9895, 0.9970, 0.0001, 0.8937, 0.8459, 1.0000, 1.0000, 0.9973],
    /* booktitle */ [0.0006, 1.0000, 0.9579, 0.0183, 1.0000, 0.0000, 0.0000, 0.0001],
    /* cdrom     */ [0.0112, 0.0162, 0.0000, 0.0032, 0.0138, 0.0000, 0.0000, 0.0000],
    /* chapter   */ [0.0000, 0.0000, 0.0000, 0.0000, 0.0005, 0.0000, 0.0000, 0.0000],
    /* cite      */ [0.0048, 0.0104, 0.0001, 0.0079, 0.0047, 0.0000, 0.0000, 0.0000],
    /* crossref  */ [0.0006, 0.8003, 0.0016, 0.0000, 0.6951, 0.0000, 0.0000, 0.0000],
    /* editor    */ [0.0000, 0.0000, 0.7992, 0.1040, 0.0000, 0.0000, 0.0000, 0.0004],
    /* ee        */ [0.6781, 0.6519, 0.0019, 0.0079, 0.3610, 0.1444, 0.0000, 0.0000],
    /* isbn      */ [0.0000, 0.0000, 0.8592, 0.9294, 0.0073, 0.0222, 0.0000, 0.0000],
    /* journal   */ [0.9994, 0.0000, 0.0004, 0.0000, 0.0000, 0.0000, 0.0000, 0.0000],
    /* month     */ [0.0065, 0.0000, 0.0001, 0.0008, 0.0000, 0.0333, 0.0000, 0.0000],
    /* note      */ [0.0297, 0.0000, 0.0002, 0.0000, 0.0000, 0.0000, 0.0000, 0.0273],
    /* number    */ [0.9224, 0.0001, 0.0009, 0.0000, 0.0000, 0.0333, 0.0000, 0.0000],
    /* pages     */ [0.9261, 0.9489, 0.0000, 0.0000, 0.6849, 0.0000, 0.0000, 0.0000],
    /* publisher */ [0.0006, 0.0000, 0.9737, 0.9992, 0.0237, 0.0444, 0.0000, 0.0000],
    /* school    */ [0.0000, 0.0000, 0.0000, 0.0000, 0.0000, 1.0000, 1.0000, 0.0000],
    /* series    */ [0.0000, 0.0000, 0.5791, 0.5365, 0.0000, 0.0222, 0.0000, 0.0000],
    /* title     */ [1.0000, 1.0000, 1.0000, 1.0000, 1.0000, 1.0000, 1.0000, 1.0000],
    /* url       */ [0.9986, 1.0000, 0.9860, 0.2373, 0.9992, 0.0222, 0.3750, 0.9624],
    /* volume    */ [0.9982, 0.0000, 0.5670, 0.5024, 0.0000, 0.0111, 0.0000, 0.0000],
    /* year      */ [1.0000, 1.0000, 1.0000, 1.0000, 1.0000, 1.0000, 1.0000, 0.0011],
];

/// Probability that `attr` describes a document of `class` (Table IX).
pub fn attribute_probability(class: DocClass, attr: Attribute) -> f64 {
    ATTRIBUTE_PROBABILITY[attr.index()][class.index()]
}

// ---------------------------------------------------------------------------
// Section III-A: repeated attributes
// ---------------------------------------------------------------------------

/// `d_cite = Gauss(µ=16.82, σ=10.07)` — number of outgoing citations for
/// documents having at least one.
pub const D_CITE: Gaussian = Gaussian::new(16.82, 10.07);

/// `d_editor = Gauss(µ=2.15, σ=1.18)` — editors per venue having editors.
pub const D_EDITOR: Gaussian = Gaussian::new(2.15, 1.18);

/// `µ_auth(yr) = 2.05/(1+17.59·e^(−0.11(yr−1975))) + 1.05`.
pub const MU_AUTH_CURVE: Logistic = Logistic::new(2.05, 17.59, 0.11, 1975.0);
/// Additive offset of `µ_auth`.
pub const MU_AUTH_OFFSET: f64 = 1.05;

/// `σ_auth(yr) = 1.00/(1+6.46·e^(−0.10(yr−1975))) + 0.50`.
pub const SIGMA_AUTH_CURVE: Logistic = Logistic::new(1.00, 6.46, 0.10, 1975.0);
/// Additive offset of `σ_auth`.
pub const SIGMA_AUTH_OFFSET: f64 = 0.50;

/// `d_auth(·, yr)`: the year-dependent Gaussian for authors per paper.
pub fn d_auth(year: i32) -> Gaussian {
    Gaussian::new(
        MU_AUTH_CURVE.eval(year as f64) + MU_AUTH_OFFSET,
        SIGMA_AUTH_CURVE.eval(year as f64) + SIGMA_AUTH_OFFSET,
    )
}

// ---------------------------------------------------------------------------
// Section III-B: document class counts per year
// ---------------------------------------------------------------------------

/// `f_journal(yr) = 740.43/(1+426.28·e^(−0.12(yr−1950)))`.
pub const F_JOURNAL: Logistic = Logistic::new(740.43, 426.28, 0.12, 1950.0);
/// `f_article(yr) = 58519.12/(1+876.80·e^(−0.12(yr−1950)))`.
pub const F_ARTICLE: Logistic = Logistic::new(58519.12, 876.80, 0.12, 1950.0);
/// `f_proc(yr) = 5502.31/(1+1250.26·e^(−0.14(yr−1965)))`.
pub const F_PROC: Logistic = Logistic::new(5502.31, 1250.26, 0.14, 1965.0);
/// `f_inproc(yr) = 337132.34/(1+1901.05·e^(−0.15(yr−1965)))`.
pub const F_INPROC: Logistic = Logistic::new(337132.34, 1901.05, 0.15, 1965.0);
/// `f_incoll(yr) = 3577.31/(1+196.49·e^(−0.09(yr−1980)))` (`1+` restored).
pub const F_INCOLL: Logistic = Logistic::new(3577.31, 196.49, 0.09, 1980.0);
/// `f_book(yr) = 52.97/(1+40739.38·e^(−0.32(yr−1950)))` (`1+` restored).
pub const F_BOOK: Logistic = Logistic::new(52.97, 40739.38, 0.32, 1950.0);

/// `f_phd(yr) = random[0..20]` — upper bound of the uniform draw.
pub const F_PHD_MAX: u64 = 20;
/// `f_masters(yr) = random[0..10]`.
pub const F_MASTERS_MAX: u64 = 10;
/// `f_www(yr) = random[0..10]`.
pub const F_WWW_MAX: u64 = 10;

/// First year the "unsteady" random classes (PhD/Masters/WWW) appear.
/// The paper models them as uniform draws but its Table VIII shows none
/// of them before the 1980s ("like in the original DBLP database, in the
/// early years instances of several document classes are missing"):
/// 0 at 250k triples (data up to 1979), present at 1M (1989).
pub const RANDOM_CLASSES_FIRST_YEAR: i32 = 1980;

// ---------------------------------------------------------------------------
// Section III-C: authors and editors
// ---------------------------------------------------------------------------

/// Ratio curve of `f_dauth`: distinct authors as a fraction of total author
/// attributes, `(−0.67/(1+169.41·e^(−0.07(yr−1936))) + 0.84)`.
pub const DAUTH_RATIO_CURVE: Logistic = Logistic::new(-0.67, 169.41, 0.07, 1936.0);
/// Additive offset of the distinct-author ratio.
pub const DAUTH_RATIO_OFFSET: f64 = 0.84;

/// Fraction of distinct authors among all author attributes in `year`.
pub fn distinct_author_ratio(year: i32) -> f64 {
    (DAUTH_RATIO_CURVE.eval(year as f64) + DAUTH_RATIO_OFFSET).clamp(0.05, 1.0)
}

/// Ratio curve of `f_new`: new authors as a fraction of distinct authors,
/// `(−0.29/(1+749.00·e^(−0.14(yr−1937))) + 0.628)`.
pub const NEW_RATIO_CURVE: Logistic = Logistic::new(-0.29, 749.00, 0.14, 1937.0);
/// Additive offset of the new-author ratio.
pub const NEW_RATIO_OFFSET: f64 = 0.628;

/// Fraction of first-time authors among distinct authors in `year`.
pub fn new_author_ratio(year: i32) -> f64 {
    (NEW_RATIO_CURVE.eval(year as f64) + NEW_RATIO_OFFSET).clamp(0.05, 1.0)
}

/// Exponent curve of the publications-per-author power law:
/// `f'_awp(yr) = −0.60/(1+216223·e^(−0.20(yr−1936))) + 3.08`.
pub const AWP_EXPONENT_CURVE: Logistic = Logistic::new(-0.60, 216_223.0, 0.20, 1936.0);
/// Additive offset of the exponent curve.
pub const AWP_EXPONENT_OFFSET: f64 = 3.08;

/// The power-law exponent for year `yr` (≈ 3.08 early, ≈ 2.48 in 2005 —
/// flatter curves mean more prolific top authors, as in Figure 2c).
pub fn awp_exponent(year: i32) -> f64 {
    AWP_EXPONENT_CURVE.eval(year as f64) + AWP_EXPONENT_OFFSET
}

/// `f_awp(x, yr) = 1.50·f_publ(yr)·x^(−f'_awp(yr)) − 5`: expected number of
/// authors with exactly `x` publications, given the year's publication
/// count `publ`.
pub fn f_awp(x: f64, year: i32, publ: f64) -> f64 {
    PowerLaw::new(1.50 * publ, -awp_exponent(year), -5.0).eval(x)
}

/// Expected total coauthors for an author with `x` publications: `2.12·x`.
pub const COAUTH_PER_PUBLICATION: f64 = 2.12;

/// Expected distinct coauthors for an author with `x` publications:
/// `x^0.81`.
pub fn expected_distinct_coauthors(x: f64) -> f64 {
    x.powf(0.81)
}

// ---------------------------------------------------------------------------
// Section III-D / IV: citations, Erdős, abstracts
// ---------------------------------------------------------------------------

/// Exponent of the incoming-citation power law. The paper observes the
/// power law but omits the fitted function; 2.1 follows Lotka-style
/// citation studies (documented substitution, DESIGN.md §4).
pub const INCOMING_CITATION_EXPONENT: f64 = 2.1;

/// Probability that an outgoing citation stays untargeted (DBLP's "empty
/// cite tags"), chosen so incoming < outgoing as Section III-D observes.
pub const UNTARGETED_CITATION_PROBABILITY: f64 = 0.5;

/// Largest outgoing-citation count the generator materializes.
pub const MAX_OUTGOING_CITATIONS: u64 = 100;

/// Paul Erdős publishes from this year …
pub const ERDOES_FIRST_YEAR: i32 = 1940;
/// … through this year (inclusive).
pub const ERDOES_LAST_YEAR: i32 = 1996;
/// Publications per year attributed to Paul Erdős.
pub const ERDOES_PUBLICATIONS_PER_YEAR: u64 = 10;
/// Editor activities per year attributed to Paul Erdős.
pub const ERDOES_EDITORSHIPS_PER_YEAR: u64 = 2;

/// Fraction of articles/inproceedings that carry a `bench:abstract`.
pub const ABSTRACT_PROBABILITY: f64 = 0.01;
/// Word-count distribution of abstracts: Gaussian(µ=150, σ=30).
pub const ABSTRACT_WORDS: Gaussian = Gaussian::new(150.0, 30.0);

/// First simulated year. DBLP's earliest meaningful data and the ratio
/// curves' reference years sit in the mid-1930s; Table VIII's smallest
/// document reaches 1955.
pub const FIRST_YEAR: i32 = 1936;

/// Authors-per-paper hard cap (protects against Gaussian tail draws).
pub const MAX_AUTHORS_PER_DOC: u64 = 40;
/// Editors-per-venue hard cap.
pub const MAX_EDITORS_PER_DOC: u64 = 12;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_ix_selected_cells_match_table_i() {
        // Table I is the published excerpt of Table IX; spot-check it.
        assert_eq!(
            attribute_probability(DocClass::Article, Attribute::Author),
            0.9895
        );
        assert_eq!(
            attribute_probability(DocClass::Article, Attribute::Pages),
            0.9261
        );
        assert_eq!(
            attribute_probability(DocClass::Article, Attribute::Cite),
            0.0048
        );
        assert_eq!(
            attribute_probability(DocClass::Proceedings, Attribute::Editor),
            0.7992
        );
        assert_eq!(
            attribute_probability(DocClass::Book, Attribute::Isbn),
            0.9294
        );
        assert_eq!(
            attribute_probability(DocClass::Www, Attribute::Author),
            0.9973
        );
        assert_eq!(
            attribute_probability(DocClass::Article, Attribute::Journal),
            0.9994
        );
        assert_eq!(
            attribute_probability(DocClass::Article, Attribute::Month),
            0.0065
        );
        assert_eq!(
            attribute_probability(DocClass::Article, Attribute::Isbn),
            0.0000
        );
    }

    #[test]
    fn every_class_always_has_a_title() {
        for c in DocClass::ALL {
            assert_eq!(attribute_probability(c, Attribute::Title), 1.0);
        }
    }

    #[test]
    fn probabilities_are_valid() {
        for row in ATTRIBUTE_PROBABILITY {
            for p in row {
                assert!((0.0..=1.0).contains(&p));
            }
        }
    }

    #[test]
    fn authors_per_paper_grows_over_time() {
        let early = d_auth(1950);
        let late = d_auth(2005);
        assert!(late.mu > early.mu, "average coauthor count must increase");
        // Limited growth: the asymptote is 2.05 + 1.05 = 3.10.
        assert!(d_auth(2100).mu < 3.11);
    }

    #[test]
    fn distinct_ratio_decreases_toward_017() {
        assert!(distinct_author_ratio(1940) > 0.80);
        let late = distinct_author_ratio(2100);
        assert!((0.15..0.20).contains(&late), "late ratio {late}");
        assert!(distinct_author_ratio(1960) > distinct_author_ratio(2000));
    }

    #[test]
    fn new_ratio_stays_positive_fraction() {
        for yr in 1936..2100 {
            let r = new_author_ratio(yr);
            assert!((0.0..=1.0).contains(&r), "year {yr}: {r}");
        }
        // Late years: roughly a third of distinct authors are new.
        let r2005 = new_author_ratio(2005);
        assert!((0.3..0.45).contains(&r2005), "2005 ratio {r2005}");
    }

    #[test]
    fn awp_exponent_flattens_over_time() {
        assert!(awp_exponent(1950) > awp_exponent(2005));
        assert!((2.4..2.6).contains(&awp_exponent(2005)));
    }

    #[test]
    fn document_counts_match_paper_narrative() {
        // "always about 50-60 times more inproceedings than proceedings".
        for yr in [1985, 1995, 2005] {
            let ratio = F_INPROC.eval(yr as f64) / F_PROC.eval(yr as f64);
            assert!((40.0..70.0).contains(&ratio), "year {yr}: ratio {ratio}");
        }
        // Articles and inproceedings dominate.
        assert!(F_ARTICLE.count(2005) > 10 * F_BOOK.count(2005));
        assert!(F_INPROC.count(2005) > 10 * F_INCOLL.count(2005));
    }

    #[test]
    fn restored_logistics_are_bounded() {
        // The OCR-corrected curves must respect their asymptotes.
        assert!(F_INCOLL.eval(2200.0) <= 3577.31);
        assert!(F_BOOK.eval(2200.0) <= 52.97);
        // And be sensible at 2005: ≈165 incollections, ≈53 books.
        let inc = F_INCOLL.count(2005);
        assert!((100..260).contains(&inc), "incoll 2005: {inc}");
        let book = F_BOOK.count(2005);
        assert!((40..60).contains(&book), "book 2005: {book}");
    }

    #[test]
    fn f_awp_decreases_in_x() {
        let publ = 10_000.0;
        assert!(f_awp(1.0, 1995, publ) > f_awp(5.0, 1995, publ));
        assert!(f_awp(5.0, 1995, publ) > f_awp(50.0, 1995, publ));
    }
}
