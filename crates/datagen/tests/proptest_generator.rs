//! Property tests for the generator's contract: determinism,
//! incrementality, exact triple limits, and structural invariants — for
//! arbitrary seeds and limits, not just the defaults.

use proptest::prelude::*;

use sp2b_datagen::{generate_graph, Config};
use sp2b_rdf::vocab::{dc, foaf, rdf};
use sp2b_rdf::Term;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn triple_limit_is_exact_for_any_limit(limit in 50u64..4_000, seed in any::<u64>()) {
        let (g, stats) = generate_graph(Config::triples(limit).with_seed(seed));
        prop_assert_eq!(g.len() as u64, limit);
        prop_assert_eq!(stats.triples, limit);
    }

    #[test]
    fn same_seed_same_output(limit in 100u64..2_000, seed in any::<u64>()) {
        let (a, _) = generate_graph(Config::triples(limit).with_seed(seed));
        let (b, _) = generate_graph(Config::triples(limit).with_seed(seed));
        prop_assert_eq!(a, b);
    }

    #[test]
    fn smaller_documents_are_prefixes(seed in any::<u64>(), small in 100u64..1_000, extra in 1u64..2_000) {
        let large_limit = small + extra;
        let (small_doc, _) = generate_graph(Config::triples(small).with_seed(seed));
        let (large_doc, _) = generate_graph(Config::triples(large_limit).with_seed(seed));
        prop_assert_eq!(small_doc.as_slice(), &large_doc.as_slice()[..small as usize]);
    }

    #[test]
    fn persons_are_introduced_before_use(seed in any::<u64>()) {
        // Referential consistency under truncation: every dc:creator /
        // swrc:editor object must already be typed foaf:Person earlier in
        // the stream.
        let (g, _) = generate_graph(Config::triples(3_000).with_seed(seed));
        let mut persons: std::collections::HashSet<String> = std::collections::HashSet::new();
        for t in g.iter() {
            if t.predicate.as_str() == rdf::TYPE {
                if let Term::Iri(class) = &t.object {
                    if class.as_str() == foaf::PERSON {
                        persons.insert(t.subject.to_term().to_string());
                    }
                }
            }
            if t.predicate.as_str() == dc::CREATOR {
                prop_assert!(
                    persons.contains(&t.object.to_string()),
                    "creator {} referenced before introduction",
                    t.object
                );
            }
        }
    }

    #[test]
    fn author_names_unique_per_document(seed in any::<u64>()) {
        let (g, _) = generate_graph(Config::triples(5_000).with_seed(seed));
        let mut names = std::collections::HashSet::new();
        for t in g.with_predicate(foaf::NAME) {
            let lex = &t.object.as_literal().expect("names are literals").lexical;
            prop_assert!(names.insert(lex.clone()), "duplicate author name {lex}");
        }
    }

    #[test]
    fn stats_counts_match_document_content(seed in any::<u64>(), limit in 1_000u64..6_000) {
        let (g, stats) = generate_graph(Config::triples(limit).with_seed(seed));
        let articles = g.instances_of(sp2b_rdf::vocab::bench::ARTICLE).count() as u64;
        // The stats counter may exceed the typed instances by at most one
        // (a document truncated before its rdf:type triple cannot exist —
        // type is emitted first — so these must match exactly).
        prop_assert_eq!(stats.count(sp2b_datagen::DocClass::Article), articles);
        let creators = g.with_predicate(dc::CREATOR).count() as u64;
        prop_assert_eq!(stats.total_authors, creators);
    }
}
