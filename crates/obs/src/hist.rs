//! Log-bucketed latency histograms.
//!
//! [`LatencyHistogram`] is the single-writer form the multi-user driver
//! records into (it lived in `core::multiuser` before this crate
//! existed; `core` re-exports it from here). [`AtomicHistogram`] is the
//! shared-writer sibling for process-global series — identical bucket
//! math, relaxed-atomic recording, and a lossless snapshot back into the
//! plain form for quantile readout.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::time::Duration;

/// Histogram resolution: buckets per factor-of-ten of latency. Eight per
/// decade puts neighbouring bucket edges ~33 % apart — coarse enough to
/// stay tiny, fine enough for meaningful p95/p99.
const BUCKETS_PER_DECADE: usize = 8;
/// Bucketed range: 1 µs (index 0) to 1000 s; anything above clamps into
/// the last bucket (exact min/max are tracked separately).
const DECADES: usize = 9;
pub(crate) const NUM_BUCKETS: usize = BUCKETS_PER_DECADE * DECADES;

/// A fixed-size, log-bucketed latency histogram (1 µs … 1000 s range,
/// ~33 % bucket width). Recording is O(1) and allocation-free after
/// construction; quantiles resolve to the upper edge of the covering
/// bucket, clamped to the exact observed min/max.
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    buckets: Vec<u64>,
    count: u64,
    sum: Duration,
    min: Option<Duration>,
    max: Duration,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: vec![0; NUM_BUCKETS],
            count: 0,
            sum: Duration::ZERO,
            min: None,
            max: Duration::ZERO,
        }
    }

    fn bucket_index(latency: Duration) -> usize {
        let micros = latency.as_secs_f64() * 1e6;
        if micros < 1.0 {
            return 0;
        }
        let index = (micros.log10() * BUCKETS_PER_DECADE as f64).floor() as usize;
        index.min(NUM_BUCKETS - 1)
    }

    /// Upper latency edge of bucket `index`.
    pub(crate) fn bucket_edge(index: usize) -> Duration {
        let micros = 10f64.powf((index + 1) as f64 / BUCKETS_PER_DECADE as f64);
        Duration::from_secs_f64(micros / 1e6)
    }

    /// Records one observation.
    pub fn record(&mut self, latency: Duration) {
        self.buckets[Self::bucket_index(latency)] += 1;
        self.count += 1;
        self.sum += latency;
        self.min = Some(self.min.map_or(latency, |m| m.min(latency)));
        self.max = self.max.max(latency);
    }

    /// Folds another histogram into this one (the aggregate row).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = match (self.min, other.min) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations.
    pub fn sum(&self) -> Duration {
        self.sum
    }

    /// Mean latency (zero when empty).
    pub fn mean(&self) -> Duration {
        if self.count == 0 {
            Duration::ZERO
        } else {
            self.sum / self.count as u32
        }
    }

    /// Exact fastest observation.
    pub fn min(&self) -> Duration {
        self.min.unwrap_or(Duration::ZERO)
    }

    /// Exact slowest observation.
    pub fn max(&self) -> Duration {
        self.max
    }

    /// The `q`-quantile (`0.0 ..= 1.0`), resolved to bucket precision and
    /// clamped to the exact observed range. Zero when empty.
    pub fn quantile(&self, q: f64) -> Duration {
        if self.count == 0 {
            return Duration::ZERO;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                // The last bucket collects every overflow observation;
                // its edge under-reports, so answer with the exact max.
                let edge = if i == NUM_BUCKETS - 1 {
                    self.max
                } else {
                    Self::bucket_edge(i)
                };
                return edge.clamp(self.min(), self.max);
            }
        }
        self.max
    }

    /// Cumulative bucket counts with their upper edges, for exposition
    /// formats that want explicit `le` boundaries.
    pub(crate) fn cumulative_buckets(&self) -> impl Iterator<Item = (Duration, u64)> + '_ {
        let mut running = 0u64;
        self.buckets.iter().enumerate().map(move |(i, n)| {
            running += n;
            (Self::bucket_edge(i), running)
        })
    }
}

/// The shared-writer sibling of [`LatencyHistogram`]: identical bucket
/// math over relaxed atomics, so many threads can record concurrently
/// through a shared reference (the server's per-request series). Reads
/// go through [`AtomicHistogram::snapshot`], which rebuilds a plain
/// histogram for quantile math.
///
/// The sum is kept in whole microseconds (the bucket floor is 1 µs, so
/// nothing meaningful is lost) and min/max as microsecond extremes.
#[derive(Debug)]
pub struct AtomicHistogram {
    buckets: [AtomicU64; NUM_BUCKETS],
    count: AtomicU64,
    sum_micros: AtomicU64,
    min_micros: AtomicU64,
    max_micros: AtomicU64,
}

impl Default for AtomicHistogram {
    fn default() -> Self {
        AtomicHistogram::new()
    }
}

impl AtomicHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        AtomicHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_micros: AtomicU64::new(0),
            min_micros: AtomicU64::new(u64::MAX),
            max_micros: AtomicU64::new(0),
        }
    }

    /// Records one observation. Lock-free; all orderings relaxed — the
    /// series is statistical, not a synchronization edge.
    pub fn record(&self, latency: Duration) {
        let micros = latency.as_micros().min(u128::from(u64::MAX)) as u64;
        self.buckets[LatencyHistogram::bucket_index(latency)].fetch_add(1, Relaxed);
        self.count.fetch_add(1, Relaxed);
        self.sum_micros.fetch_add(micros, Relaxed);
        self.min_micros.fetch_min(micros, Relaxed);
        self.max_micros.fetch_max(micros, Relaxed);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.count.load(Relaxed)
    }

    /// A point-in-time copy as a plain [`LatencyHistogram`] (quantiles,
    /// merge, exposition). Concurrent recording may tear between fields
    /// by a few observations; each field is individually consistent.
    pub fn snapshot(&self) -> LatencyHistogram {
        let count = self.count.load(Relaxed);
        let min = self.min_micros.load(Relaxed);
        LatencyHistogram {
            buckets: self.buckets.iter().map(|b| b.load(Relaxed)).collect(),
            count,
            sum: Duration::from_micros(self.sum_micros.load(Relaxed)),
            min: (min != u64::MAX).then(|| Duration::from_micros(min)),
            max: Duration::from_micros(self.max_micros.load(Relaxed)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_bracket_observations() {
        let mut h = LatencyHistogram::new();
        for ms in [1u64, 2, 3, 4, 5, 6, 7, 8, 9, 100] {
            h.record(Duration::from_millis(ms));
        }
        assert_eq!(h.count(), 10);
        assert_eq!(h.max(), Duration::from_millis(100));
        assert_eq!(h.min(), Duration::from_millis(1));
        let p50 = h.quantile(0.5);
        assert!(
            p50 >= Duration::from_millis(4) && p50 <= Duration::from_millis(8),
            "p50 {p50:?}"
        );
        assert_eq!(h.quantile(1.0), Duration::from_millis(100));
        // Bucket precision: the p99 lands in the top observation's bucket.
        assert!(h.quantile(0.99) > Duration::from_millis(50));
    }

    #[test]
    fn histogram_merge_accumulates() {
        let mut a = LatencyHistogram::new();
        a.record(Duration::from_millis(1));
        let mut b = LatencyHistogram::new();
        b.record(Duration::from_millis(10));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), Duration::from_millis(1));
        assert_eq!(a.max(), Duration::from_millis(10));
    }

    #[test]
    fn extreme_latencies_clamp_into_range() {
        let mut h = LatencyHistogram::new();
        h.record(Duration::ZERO);
        h.record(Duration::from_secs(10_000)); // beyond the last bucket
        assert_eq!(h.count(), 2);
        assert_eq!(h.quantile(1.0), Duration::from_secs(10_000));
    }

    #[test]
    fn atomic_histogram_snapshot_matches_plain_recording() {
        let atomic = AtomicHistogram::new();
        let mut plain = LatencyHistogram::new();
        for ms in [1u64, 3, 7, 20, 450] {
            let d = Duration::from_millis(ms);
            atomic.record(d);
            plain.record(d);
        }
        let snap = atomic.snapshot();
        assert_eq!(snap.count(), plain.count());
        assert_eq!(snap.min(), plain.min());
        assert_eq!(snap.max(), plain.max());
        for q in [0.5, 0.95, 0.99] {
            assert_eq!(snap.quantile(q), plain.quantile(q), "q={q}");
        }
    }

    #[test]
    fn atomic_histogram_accepts_concurrent_writers() {
        let h = std::sync::Arc::new(AtomicHistogram::new());
        std::thread::scope(|scope| {
            for t in 0..4 {
                let h = h.clone();
                scope.spawn(move || {
                    for i in 0..1_000 {
                        h.record(Duration::from_micros(t * 1_000 + i));
                    }
                });
            }
        });
        let snap = h.snapshot();
        assert_eq!(snap.count(), 4_000);
        assert_eq!(snap.max(), Duration::from_micros(3_999));
    }

    #[test]
    fn cumulative_buckets_are_monotone_and_end_at_count() {
        let mut h = LatencyHistogram::new();
        for us in [5u64, 80, 900, 15_000] {
            h.record(Duration::from_micros(us));
        }
        let mut previous = 0;
        let mut last = 0;
        for (edge, cumulative) in h.cumulative_buckets() {
            assert!(cumulative >= previous, "cumulative dips at {edge:?}");
            previous = cumulative;
            last = cumulative;
        }
        assert_eq!(last, h.count());
    }
}
