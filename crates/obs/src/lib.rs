//! Zero-dependency observability for SP²Bench.
//!
//! SP²Bench is a *measurement* tool, yet most of the engine's runtime
//! signals historically lived in scattered islands: debug-only exchange
//! gauges, per-scan row counters, block-cache statistics, server
//! counters, and the multi-user driver's latency histogram. This crate
//! unifies them behind three small pieces:
//!
//! - [`LatencyHistogram`]: the log-bucketed single-writer histogram the
//!   multi-user driver records into (moved here from `core::multiuser`,
//!   which re-exports it), plus [`AtomicHistogram`], its lock-free
//!   shared-writer sibling with identical bucket math.
//! - [`MetricsRegistry`]: a process-global, `std`-only registry of
//!   atomic counters, gauges, histograms and callback-backed series,
//!   rendered on demand as Prometheus text exposition
//!   ([`MetricsRegistry::render_prometheus`]) or JSON
//!   ([`MetricsRegistry::render_json`]). Recording is a relaxed atomic
//!   op; nothing allocates on the hot path.
//! - [`QueryTrace`]: a per-query span record — timed phases
//!   (parse → plan → execute) plus per-operator estimated/actual rows
//!   and wall time — shared by `sp2b query --trace` and the server's
//!   slow-query log.
//! - [`WorkloadRecorder`]: the coordinated-omission-safe recorder behind
//!   the open-loop workload driver — latency measured from *intended*
//!   send time, queue delay and service time as separate histograms, and
//!   a [`WindowedSeries`] throughput/p99 time series.
//!
//! Everything here is dependency-free so every other crate in the
//! workspace (store, sparql, server, core, CLI) can depend on it without
//! cycles.

mod hist;
mod recorder;
mod registry;
mod trace;

pub use hist::{AtomicHistogram, LatencyHistogram};
pub use recorder::{TemplateSnapshot, WindowSnapshot, WindowedSeries, WorkloadRecorder};
pub use registry::{global, histogram_json, Counter, Gauge, Histogram, MetricsRegistry};
pub use trace::{OpSpan, QueryTrace};
