//! The coordinated-omission-safe workload recorder.
//!
//! A closed-loop driver measures latency from the moment it *actually*
//! sent a request — so when the system under test stalls, the driver
//! stalls with it and simply sends fewer requests, and the stall never
//! shows up in the percentiles (coordinated omission). The open-loop
//! workload model fixes the schedule first: every request carries the
//! *intended* send time its arrival process assigned, and
//! [`WorkloadRecorder`] measures latency from that intended time, so
//! queueing delay is part of the number a user would actually observe.
//!
//! Three surfaces per run, all shared-writer safe:
//!
//! - total **latency** (intended send → completion), **queue delay**
//!   (intended send → actual send) and **service time** (actual send →
//!   completion) as separate [`AtomicHistogram`]s — queue delay is
//!   exactly the component coordinated omission hides;
//! - a per-template histogram + outcome tally ([`TemplateSnapshot`]),
//!   because a mixed workload's aggregate percentiles say nothing about
//!   which template is slow;
//! - a [`WindowedSeries`] throughput/p99 time series, so bursts are
//!   visible rather than averaged away over the whole run.
//!
//! Observations whose *intended* time falls inside the warmup period
//! are counted ([`WorkloadRecorder::warmup_excluded`]) but recorded
//! nowhere else.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Mutex;
use std::time::Duration;

use crate::hist::{AtomicHistogram, LatencyHistogram};

/// Hard cap on time-series cells (with the driver's 1 s windows: ~2.8 h
/// of run); later observations clamp into the last window rather than
/// growing without bound.
const MAX_WINDOWS: usize = 10_000;

/// A fixed-width time-bucketed latency series: each window holds its own
/// [`LatencyHistogram`], so the snapshot reports per-window throughput
/// *and* percentiles. Recording takes a mutex — cheap next to executing
/// a query, and windows stay exact under concurrent writers.
pub struct WindowedSeries {
    width: Duration,
    cells: Mutex<Vec<LatencyHistogram>>,
}

impl WindowedSeries {
    /// An empty series of `width`-wide windows.
    pub fn new(width: Duration) -> Self {
        assert!(width > Duration::ZERO, "window width must be positive");
        WindowedSeries {
            width,
            cells: Mutex::new(Vec::new()),
        }
    }

    /// The window width.
    pub fn width(&self) -> Duration {
        self.width
    }

    /// Records one completion at `offset` from the run start.
    pub fn record(&self, offset: Duration, latency: Duration) {
        let index =
            ((offset.as_nanos() / self.width.as_nanos().max(1)) as usize).min(MAX_WINDOWS - 1);
        let mut cells = self.cells.lock().unwrap_or_else(|e| e.into_inner());
        if cells.len() <= index {
            cells.resize_with(index + 1, LatencyHistogram::new);
        }
        cells[index].record(latency);
    }

    /// Point-in-time copy of every window, in time order. Empty windows
    /// between active ones are included (zero completions), so gaps —
    /// the quiet phase of a burst schedule — stay visible.
    pub fn snapshot(&self) -> Vec<WindowSnapshot> {
        let cells = self.cells.lock().unwrap_or_else(|e| e.into_inner());
        cells
            .iter()
            .enumerate()
            .map(|(i, h)| WindowSnapshot {
                start: self.width * i as u32,
                completed: h.count(),
                p50: h.quantile(0.50),
                p99: h.quantile(0.99),
                max: h.max(),
            })
            .collect()
    }
}

/// One window of a [`WindowedSeries`] snapshot.
#[derive(Debug, Clone)]
pub struct WindowSnapshot {
    /// Window start, as an offset from the run start.
    pub start: Duration,
    /// Completions inside the window.
    pub completed: u64,
    /// Median latency of those completions.
    pub p50: Duration,
    /// 99th-percentile latency of those completions.
    pub p99: Duration,
    /// Slowest completion in the window.
    pub max: Duration,
}

struct TemplateCell {
    label: String,
    latency: AtomicHistogram,
    completed: AtomicU64,
    timeouts: AtomicU64,
    errors: AtomicU64,
}

/// Per-template outcome tally from a [`WorkloadRecorder`] snapshot.
#[derive(Debug, Clone)]
pub struct TemplateSnapshot {
    /// The template's display label (Q1…Q12c, A1…A5, or caller-chosen).
    pub label: String,
    /// Completions recorded (excludes warmup).
    pub completed: u64,
    /// Per-query timeouts recorded (excludes warmup).
    pub timeouts: u64,
    /// Errors recorded (excludes warmup).
    pub errors: u64,
    /// Latency from intended send time, completions only.
    pub latency: LatencyHistogram,
}

/// The shared recorder behind the open-loop workload driver: every
/// worker thread records outcomes against the intended-send timestamps
/// the schedule thread stamped. See the module docs for what it tracks
/// and why latency is measured from *intended* send time.
pub struct WorkloadRecorder {
    warmup: Duration,
    latency: AtomicHistogram,
    queue_delay: AtomicHistogram,
    service: AtomicHistogram,
    windows: WindowedSeries,
    warmup_excluded: AtomicU64,
    templates: Vec<TemplateCell>,
}

impl WorkloadRecorder {
    /// A recorder for the template `labels` (slot indices follow their
    /// order). Observations intended before `warmup` has elapsed are
    /// excluded; completions land in `window`-wide time-series buckets.
    pub fn new(labels: &[String], warmup: Duration, window: Duration) -> Self {
        WorkloadRecorder {
            warmup,
            latency: AtomicHistogram::new(),
            queue_delay: AtomicHistogram::new(),
            service: AtomicHistogram::new(),
            windows: WindowedSeries::new(window),
            warmup_excluded: AtomicU64::new(0),
            templates: labels
                .iter()
                .map(|l| TemplateCell {
                    label: l.clone(),
                    latency: AtomicHistogram::new(),
                    completed: AtomicU64::new(0),
                    timeouts: AtomicU64::new(0),
                    errors: AtomicU64::new(0),
                })
                .collect(),
        }
    }

    /// True (and tallied) when an observation intended at
    /// `intended_offset` falls inside the warmup period and must not be
    /// recorded.
    fn excluded(&self, intended_offset: Duration) -> bool {
        if intended_offset < self.warmup {
            self.warmup_excluded.fetch_add(1, Relaxed);
            true
        } else {
            false
        }
    }

    /// Records one completion: `latency` from *intended* send,
    /// `queue_delay` (intended → actual send) and `service` (actual
    /// send → done) separately, windowed at `completed_offset` from the
    /// run start. Returns `false` when the observation fell inside
    /// warmup and was excluded.
    pub fn record_completed(
        &self,
        slot: usize,
        intended_offset: Duration,
        completed_offset: Duration,
        latency: Duration,
        queue_delay: Duration,
        service: Duration,
    ) -> bool {
        if self.excluded(intended_offset) {
            return false;
        }
        self.latency.record(latency);
        self.queue_delay.record(queue_delay);
        self.service.record(service);
        self.windows.record(completed_offset, latency);
        let cell = &self.templates[slot];
        cell.latency.record(latency);
        cell.completed.fetch_add(1, Relaxed);
        true
    }

    /// Records one per-query timeout. Returns `false` when excluded as
    /// warmup.
    pub fn record_timeout(&self, slot: usize, intended_offset: Duration) -> bool {
        if self.excluded(intended_offset) {
            return false;
        }
        self.templates[slot].timeouts.fetch_add(1, Relaxed);
        true
    }

    /// Records one error. Returns `false` when excluded as warmup.
    pub fn record_error(&self, slot: usize, intended_offset: Duration) -> bool {
        if self.excluded(intended_offset) {
            return false;
        }
        self.templates[slot].errors.fetch_add(1, Relaxed);
        true
    }

    /// Observations excluded because they were intended during warmup.
    pub fn warmup_excluded(&self) -> u64 {
        self.warmup_excluded.load(Relaxed)
    }

    /// The configured warmup period.
    pub fn warmup(&self) -> Duration {
        self.warmup
    }

    /// Latency from intended send time (completions only).
    pub fn latency(&self) -> LatencyHistogram {
        self.latency.snapshot()
    }

    /// Intended send → actual send delay.
    pub fn queue_delay(&self) -> LatencyHistogram {
        self.queue_delay.snapshot()
    }

    /// Actual send → completion time.
    pub fn service(&self) -> LatencyHistogram {
        self.service.snapshot()
    }

    /// Per-template tallies, in slot order.
    pub fn templates(&self) -> Vec<TemplateSnapshot> {
        self.templates
            .iter()
            .map(|c| TemplateSnapshot {
                label: c.label.clone(),
                completed: c.completed.load(Relaxed),
                timeouts: c.timeouts.load(Relaxed),
                errors: c.errors.load(Relaxed),
                latency: c.latency.snapshot(),
            })
            .collect()
    }

    /// The throughput/p99 time series.
    pub fn windows(&self) -> Vec<WindowSnapshot> {
        self.windows.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labels(names: &[&str]) -> Vec<String> {
        names.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn latency_queue_delay_and_service_are_separate_histograms() {
        let r = WorkloadRecorder::new(&labels(&["q1"]), Duration::ZERO, Duration::from_secs(1));
        // 100 ms of queueing before 10 ms of service: the latency a user
        // sees is 110 ms, and the split is preserved.
        assert!(r.record_completed(
            0,
            Duration::from_millis(50),
            Duration::from_millis(160),
            Duration::from_millis(110),
            Duration::from_millis(100),
            Duration::from_millis(10),
        ));
        assert_eq!(r.latency().max(), Duration::from_millis(110));
        assert_eq!(r.queue_delay().max(), Duration::from_millis(100));
        assert_eq!(r.service().max(), Duration::from_millis(10));
        let t = r.templates();
        assert_eq!(t[0].completed, 1);
        assert_eq!(t[0].latency.count(), 1);
    }

    #[test]
    fn warmup_excludes_everything_but_counts() {
        let warmup = Duration::from_secs(2);
        let r = WorkloadRecorder::new(&labels(&["q1"]), warmup, Duration::from_secs(1));
        let d = Duration::from_millis(5);
        assert!(!r.record_completed(0, Duration::from_secs(1), Duration::from_secs(1), d, d, d));
        assert!(!r.record_timeout(0, Duration::from_millis(1999)));
        assert!(!r.record_error(0, Duration::ZERO));
        assert_eq!(r.warmup_excluded(), 3);
        assert_eq!(r.latency().count(), 0);
        assert_eq!(r.windows().len(), 0);
        let t = r.templates();
        assert_eq!((t[0].completed, t[0].timeouts, t[0].errors), (0, 0, 0));
        // At the warmup boundary, recording resumes.
        assert!(r.record_completed(0, warmup, warmup, d, d, d));
        assert_eq!(r.latency().count(), 1);
    }

    #[test]
    fn windows_bucket_by_completion_offset_and_keep_gaps() {
        let s = WindowedSeries::new(Duration::from_secs(1));
        s.record(Duration::from_millis(100), Duration::from_millis(3));
        s.record(Duration::from_millis(900), Duration::from_millis(5));
        // Nothing in [1 s, 2 s) — the quiet phase of a burst.
        s.record(Duration::from_millis(2500), Duration::from_millis(7));
        let snap = s.snapshot();
        assert_eq!(snap.len(), 3);
        assert_eq!(snap[0].completed, 2);
        assert_eq!(snap[1].completed, 0);
        assert_eq!(snap[2].completed, 1);
        assert_eq!(snap[2].start, Duration::from_secs(2));
        assert_eq!(snap[0].max, Duration::from_millis(5));
    }

    #[test]
    fn windows_accept_concurrent_writers() {
        let s = WindowedSeries::new(Duration::from_millis(10));
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let s = &s;
                scope.spawn(move || {
                    for i in 0..250u64 {
                        s.record(
                            Duration::from_millis(t * 25 + i / 10),
                            Duration::from_micros(100 + i),
                        );
                    }
                });
            }
        });
        let total: u64 = s.snapshot().iter().map(|w| w.completed).sum();
        assert_eq!(total, 1_000);
    }
}
