//! Per-query execution traces.
//!
//! A [`QueryTrace`] records what one query spent its time on: the
//! coarse phases (parse → plan → execute) and, per scan operator, the
//! planner's estimated cardinality against the rows actually emitted
//! and the wall time spent producing them. `sp2b query --trace` prints
//! the full breakdown ([`QueryTrace::render`]); the server's slow-query
//! log embeds the one-line form ([`QueryTrace::summary`]).

use std::fmt::Write;
use std::time::Duration;

/// One scan operator's span: planner estimate vs observed reality.
#[derive(Debug, Clone)]
pub struct OpSpan {
    /// Display label (for BGP scans, the triple pattern).
    pub label: String,
    /// The planner's estimated cardinality.
    pub est_rows: u64,
    /// Rows the operator actually emitted.
    pub rows: u64,
    /// Wall time spent inside the operator.
    pub time: Duration,
}

/// A per-query span record: timed phases plus per-operator spans.
#[derive(Debug, Clone, Default)]
pub struct QueryTrace {
    phases: Vec<(&'static str, Duration)>,
    /// Per-operator spans in plan (join-order) position.
    pub operators: Vec<OpSpan>,
}

impl QueryTrace {
    /// An empty trace.
    pub fn new() -> Self {
        QueryTrace::default()
    }

    /// Appends a timed phase (`parse`, `plan`, `execute`, …).
    pub fn phase(&mut self, name: &'static str, took: Duration) {
        self.phases.push((name, took));
    }

    /// The recorded phases, in order.
    pub fn phases(&self) -> impl Iterator<Item = (&'static str, Duration)> + '_ {
        self.phases.iter().copied()
    }

    /// Sum of all phase times.
    pub fn total(&self) -> Duration {
        self.phases.iter().map(|(_, d)| *d).sum()
    }

    /// The multi-line breakdown `--trace` prints: phase timings, then
    /// per-operator estimated vs actual rows vs wall time.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "trace (phases):");
        for (name, took) in &self.phases {
            let _ = writeln!(out, "  {name:<9} {}", fmt_duration(*took));
        }
        let _ = writeln!(out, "  {:<9} {}", "total", fmt_duration(self.total()));
        if !self.operators.is_empty() {
            let _ = writeln!(out, "operators (estimated vs actual rows vs time):");
            let width = self
                .operators
                .iter()
                .map(|o| o.label.len())
                .max()
                .unwrap_or(0);
            for (i, op) in self.operators.iter().enumerate() {
                let _ = writeln!(
                    out,
                    "  {:>2}. {:<width$}  est {}, rows {}, time {}",
                    i + 1,
                    op.label,
                    op.est_rows,
                    op.rows,
                    fmt_duration(op.time),
                );
            }
        }
        out
    }

    /// The one-line form the slow-query log embeds:
    /// `parse=… plan=… execute=… ops=N op_rows=R`.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        for (name, took) in &self.phases {
            let _ = write!(out, "{name}={} ", fmt_duration(*took));
        }
        let _ = write!(
            out,
            "ops={} op_rows={}",
            self.operators.len(),
            self.operators.iter().map(|o| o.rows).sum::<u64>()
        );
        out
    }
}

/// Human-scale duration: µs below 1 ms, fractional ms below 1 s, then
/// seconds.
fn fmt_duration(d: Duration) -> String {
    let micros = d.as_micros();
    if micros < 1_000 {
        format!("{micros} µs")
    } else if micros < 1_000_000 {
        format!("{:.2} ms", micros as f64 / 1_000.0)
    } else {
        format!("{:.2} s", d.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> QueryTrace {
        let mut t = QueryTrace::new();
        t.phase("parse", Duration::from_micros(120));
        t.phase("plan", Duration::from_micros(480));
        t.phase("execute", Duration::from_millis(12));
        t.operators.push(OpSpan {
            label: "?article <dc:title> ?title".to_owned(),
            est_rows: 100,
            rows: 96,
            time: Duration::from_millis(3),
        });
        t.operators.push(OpSpan {
            label: "?article <dcterms:issued> ?yr".to_owned(),
            est_rows: 100,
            rows: 250,
            time: Duration::from_millis(9),
        });
        t
    }

    #[test]
    fn render_shows_phases_and_operator_columns() {
        let text = sample().render();
        assert!(text.contains("parse"), "{text}");
        assert!(text.contains("plan"), "{text}");
        assert!(text.contains("execute"), "{text}");
        assert!(text.contains("est 100, rows 96, time 3.00 ms"), "{text}");
        assert!(text.contains("est 100, rows 250, time 9.00 ms"), "{text}");
    }

    #[test]
    fn summary_is_one_line_with_phase_times() {
        let line = sample().summary();
        assert!(!line.contains('\n'), "{line}");
        assert!(line.contains("parse=120 µs"), "{line}");
        assert!(line.contains("execute=12.00 ms"), "{line}");
        assert!(line.contains("ops=2 op_rows=346"), "{line}");
    }

    #[test]
    fn total_sums_phases() {
        assert_eq!(sample().total(), Duration::from_micros(12_600));
    }
}
