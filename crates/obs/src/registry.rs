//! The process-global metrics registry.
//!
//! Instrumented code registers a series once (by name) and receives a
//! cheap cloneable handle — [`Counter`], [`Gauge`], or [`Histogram`] —
//! whose updates are single relaxed atomic operations. Values that
//! already live elsewhere (cache statistics, queue depths, the exchange
//! gauges) register as callbacks instead and are sampled at render
//! time. Rendering walks the registry and produces either Prometheus
//! text exposition or a JSON object; neither touches the hot path.
//!
//! Registration is idempotent: asking for an existing name of the same
//! kind returns a handle to the same underlying series, so re-spawning
//! a server in one process keeps its counters monotone. Callback
//! registrations *replace* a previous callback of the same name — the
//! latest owner of the name wins, which is what a re-spawned server
//! wants for gauges like queue depth.
//!
//! A metric name may also fan out into labeled series
//! ([`MetricsRegistry::histogram_labeled`]): the workload driver keeps
//! one latency histogram per query template under a single metric name,
//! and the Prometheus renderer groups them under one `# HELP`/`# TYPE`
//! preamble exactly like the server's own request histogram.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::hist::{AtomicHistogram, LatencyHistogram};

/// A monotonically increasing counter. Cloning shares the series.
#[derive(Clone, Debug)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Relaxed)
    }
}

/// An instantaneous value that can move both ways. Cloning shares the
/// series.
#[derive(Clone, Debug)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Sets the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Relaxed);
    }

    /// Adds `n` (may be negative).
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Relaxed)
    }
}

/// A registered latency histogram. Cloning shares the series.
#[derive(Clone, Debug)]
pub struct Histogram(Arc<AtomicHistogram>);

impl Histogram {
    /// Records one observation.
    pub fn record(&self, latency: Duration) {
        self.0.record(latency);
    }

    /// Observations so far.
    pub fn count(&self) -> u64 {
        self.0.count()
    }

    /// Point-in-time copy for quantile readout.
    pub fn snapshot(&self) -> crate::LatencyHistogram {
        self.0.snapshot()
    }
}

enum Source {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicI64>),
    Histogram(Arc<AtomicHistogram>),
    CounterFn(Box<dyn Fn() -> u64 + Send + Sync>),
    GaugeFn(Box<dyn Fn() -> i64 + Send + Sync>),
}

struct Entry {
    name: &'static str,
    /// `Some((key, value))` for one labeled series of the metric `name`;
    /// `None` for the plain unlabeled series.
    label: Option<(String, String)>,
    help: &'static str,
    source: Source,
}

impl Entry {
    /// `{key="value"}` (Prometheus) for labeled series, empty otherwise.
    fn prometheus_labels(&self) -> String {
        match &self.label {
            Some((k, v)) => format!("{{{}=\"{}\"}}", k, v),
            None => String::new(),
        }
    }

    /// The labels of a `_bucket` line, which must also carry `le`.
    fn bucket_labels(&self, le: impl std::fmt::Display) -> String {
        match &self.label {
            Some((k, v)) => format!("{{{}=\"{}\",le=\"{}\"}}", k, v, le),
            None => format!("{{le=\"{}\"}}", le),
        }
    }

    /// The JSON object key: `name` or `name{key=value}` (no inner
    /// quotes, so consumers can match it without unescaping).
    fn json_key(&self) -> String {
        match &self.label {
            Some((k, v)) => format!("{}{{{}={}}}", self.name, k, v),
            None => self.name.to_string(),
        }
    }
}

/// Keeps user-supplied label values inert in both exposition formats:
/// anything that could terminate the quoted Prometheus label value or
/// the JSON string is replaced with `_`.
fn sanitize_label(value: &str) -> String {
    value
        .chars()
        .map(|c| match c {
            '"' | '\\' | '\n' | '{' | '}' => '_',
            c => c,
        })
        .collect()
}

/// A named collection of metric series. Most code uses the process
/// [`global`] registry; tests can build private ones.
#[derive(Default)]
pub struct MetricsRegistry {
    entries: Mutex<Vec<Entry>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub const fn new() -> Self {
        MetricsRegistry {
            entries: Mutex::new(Vec::new()),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Vec<Entry>> {
        self.entries.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Registers (or retrieves) the counter `name`.
    pub fn counter(&self, name: &'static str, help: &'static str) -> Counter {
        let mut entries = self.lock();
        if let Some(e) = entries.iter().find(|e| e.name == name && e.label.is_none()) {
            if let Source::Counter(cell) = &e.source {
                return Counter(cell.clone());
            }
        }
        let cell = Arc::new(AtomicU64::new(0));
        Self::put(
            &mut entries,
            name,
            None,
            help,
            Source::Counter(cell.clone()),
        );
        Counter(cell)
    }

    /// Registers (or retrieves) the gauge `name`.
    pub fn gauge(&self, name: &'static str, help: &'static str) -> Gauge {
        let mut entries = self.lock();
        if let Some(e) = entries.iter().find(|e| e.name == name && e.label.is_none()) {
            if let Source::Gauge(cell) = &e.source {
                return Gauge(cell.clone());
            }
        }
        let cell = Arc::new(AtomicI64::new(0));
        Self::put(&mut entries, name, None, help, Source::Gauge(cell.clone()));
        Gauge(cell)
    }

    /// Registers (or retrieves) the histogram `name`.
    pub fn histogram(&self, name: &'static str, help: &'static str) -> Histogram {
        let mut entries = self.lock();
        if let Some(e) = entries.iter().find(|e| e.name == name && e.label.is_none()) {
            if let Source::Histogram(cell) = &e.source {
                return Histogram(cell.clone());
            }
        }
        let cell = Arc::new(AtomicHistogram::new());
        Self::put(
            &mut entries,
            name,
            None,
            help,
            Source::Histogram(cell.clone()),
        );
        Histogram(cell)
    }

    /// Registers (or retrieves) one labeled series of the histogram
    /// `name` — e.g. `histogram_labeled("sp2b_multiuser_latency_seconds",
    /// …, "template", "Q1")`. All series of a name share one
    /// `# HELP`/`# TYPE` preamble in the Prometheus rendering;
    /// registration is idempotent per `(name, key, value)`.
    pub fn histogram_labeled(
        &self,
        name: &'static str,
        help: &'static str,
        label_key: &'static str,
        label_value: &str,
    ) -> Histogram {
        let label = Some((label_key.to_string(), sanitize_label(label_value)));
        let mut entries = self.lock();
        if let Some(e) = entries.iter().find(|e| e.name == name && e.label == label) {
            if let Source::Histogram(cell) = &e.source {
                return Histogram(cell.clone());
            }
        }
        let cell = Arc::new(AtomicHistogram::new());
        Self::put(
            &mut entries,
            name,
            label,
            help,
            Source::Histogram(cell.clone()),
        );
        Histogram(cell)
    }

    /// Registers the counter `name` as a callback sampled at render time
    /// (for monotone values that already live elsewhere, like cache hit
    /// totals). Replaces any previous registration of the name.
    pub fn counter_fn(
        &self,
        name: &'static str,
        help: &'static str,
        f: impl Fn() -> u64 + Send + Sync + 'static,
    ) {
        Self::put(
            &mut self.lock(),
            name,
            None,
            help,
            Source::CounterFn(Box::new(f)),
        );
    }

    /// Registers the gauge `name` as a callback sampled at render time.
    /// Replaces any previous registration of the name.
    pub fn gauge_fn(
        &self,
        name: &'static str,
        help: &'static str,
        f: impl Fn() -> i64 + Send + Sync + 'static,
    ) {
        Self::put(
            &mut self.lock(),
            name,
            None,
            help,
            Source::GaugeFn(Box::new(f)),
        );
    }

    fn put(
        entries: &mut Vec<Entry>,
        name: &'static str,
        label: Option<(String, String)>,
        help: &'static str,
        source: Source,
    ) {
        let entry = Entry {
            name,
            label,
            help,
            source,
        };
        match entries
            .iter_mut()
            .find(|e| e.name == name && e.label == entry.label)
        {
            Some(existing) => *existing = entry,
            None => entries.push(entry),
        }
    }

    /// Renders every series in Prometheus text exposition format
    /// (`# HELP` / `# TYPE` preamble per metric name; histograms as
    /// cumulative `_bucket{le="…"}` plus `_sum`/`_count`, in seconds).
    /// Labeled series of one name render grouped under one preamble.
    pub fn render_prometheus(&self) -> String {
        use std::fmt::Write;
        let mut out = String::with_capacity(4096);
        let entries = self.lock();
        let mut rendered = vec![false; entries.len()];
        for i in 0..entries.len() {
            if rendered[i] {
                continue;
            }
            let kind = match entries[i].source {
                Source::Counter(_) | Source::CounterFn(_) => "counter",
                Source::Gauge(_) | Source::GaugeFn(_) => "gauge",
                Source::Histogram(_) => "histogram",
            };
            let _ = writeln!(out, "# HELP {} {}", entries[i].name, entries[i].help);
            let _ = writeln!(out, "# TYPE {} {}", entries[i].name, kind);
            for (j, e) in entries.iter().enumerate().skip(i) {
                if rendered[j] || e.name != entries[i].name {
                    continue;
                }
                rendered[j] = true;
                let labels = e.prometheus_labels();
                match &e.source {
                    Source::Counter(c) => {
                        let _ = writeln!(out, "{}{} {}", e.name, labels, c.load(Relaxed));
                    }
                    Source::CounterFn(f) => {
                        let _ = writeln!(out, "{}{} {}", e.name, labels, f());
                    }
                    Source::Gauge(g) => {
                        let _ = writeln!(out, "{}{} {}", e.name, labels, g.load(Relaxed));
                    }
                    Source::GaugeFn(f) => {
                        let _ = writeln!(out, "{}{} {}", e.name, labels, f());
                    }
                    Source::Histogram(h) => {
                        let snap = h.snapshot();
                        for (edge, cumulative) in snap.cumulative_buckets() {
                            let _ = writeln!(
                                out,
                                "{}_bucket{} {}",
                                e.name,
                                e.bucket_labels(finite(edge.as_secs_f64())),
                                cumulative
                            );
                        }
                        let _ = writeln!(
                            out,
                            "{}_bucket{} {}",
                            e.name,
                            e.bucket_labels("+Inf"),
                            snap.count()
                        );
                        let _ = writeln!(
                            out,
                            "{}_sum{} {}",
                            e.name,
                            labels,
                            finite(snap.sum().as_secs_f64())
                        );
                        let _ = writeln!(out, "{}_count{} {}", e.name, labels, snap.count());
                    }
                }
            }
        }
        out
    }

    /// Renders every series as one JSON object: scalar series as
    /// numbers, histograms as the [`histogram_json`] summary object.
    /// Labeled series render under the key `name{key=value}`.
    pub fn render_json(&self) -> String {
        use std::fmt::Write;
        let mut out = String::with_capacity(1024);
        out.push('{');
        for (i, e) in self.lock().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":", e.json_key());
            match &e.source {
                Source::Counter(c) => {
                    let _ = write!(out, "{}", c.load(Relaxed));
                }
                Source::CounterFn(f) => {
                    let _ = write!(out, "{}", f());
                }
                Source::Gauge(g) => {
                    let _ = write!(out, "{}", g.load(Relaxed));
                }
                Source::GaugeFn(f) => {
                    let _ = write!(out, "{}", f());
                }
                Source::Histogram(h) => {
                    out.push_str(&histogram_json(&h.snapshot()));
                }
            }
        }
        out.push('}');
        out
    }
}

/// Renders one histogram as the JSON summary object used everywhere a
/// histogram appears in machine-readable output (the server's `/stats`,
/// the workload driver's `--report json:FILE`): `{count, sum_seconds,
/// mean_seconds, p50_seconds, p95_seconds, p99_seconds, max_seconds}`.
pub fn histogram_json(snap: &LatencyHistogram) -> String {
    format!(
        "{{\"count\":{},\"sum_seconds\":{},\"mean_seconds\":{},\
         \"p50_seconds\":{},\"p95_seconds\":{},\"p99_seconds\":{},\
         \"max_seconds\":{}}}",
        snap.count(),
        finite(snap.sum().as_secs_f64()),
        finite(snap.mean().as_secs_f64()),
        finite(snap.quantile(0.50).as_secs_f64()),
        finite(snap.quantile(0.95).as_secs_f64()),
        finite(snap.quantile(0.99).as_secs_f64()),
        finite(snap.max().as_secs_f64()),
    )
}

/// Guards against `inf`/`NaN` leaking into exposition output (neither
/// is valid JSON; Prometheus would accept them but never wants them
/// from us).
fn finite(v: f64) -> f64 {
    if v.is_finite() {
        v
    } else {
        0.0
    }
}

static GLOBAL: MetricsRegistry = MetricsRegistry::new();

/// The process-global registry every subsystem registers into and the
/// server's `/metrics` + `/stats` endpoints render from.
pub fn global() -> &'static MetricsRegistry {
    &GLOBAL
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_idempotent_and_shares_the_series() {
        let r = MetricsRegistry::new();
        let a = r.counter("t_requests_total", "requests");
        let b = r.counter("t_requests_total", "requests");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        assert_eq!(b.get(), 3);
        let g1 = r.gauge("t_depth", "queue depth");
        let g2 = r.gauge("t_depth", "queue depth");
        g1.set(7);
        assert_eq!(g2.get(), 7);
    }

    #[test]
    fn prometheus_rendering_has_preambles_and_histogram_series() {
        let r = MetricsRegistry::new();
        let c = r.counter("t_total", "a counter");
        c.add(5);
        let g = r.gauge("t_gauge", "a gauge");
        g.set(-3);
        let h = r.histogram("t_seconds", "a histogram");
        h.record(Duration::from_millis(5));
        h.record(Duration::from_millis(50));
        r.counter_fn("t_fn_total", "a sampled counter", || 11);
        r.gauge_fn("t_fn_gauge", "a sampled gauge", || 13);

        let text = r.render_prometheus();
        assert!(text.contains("# HELP t_total a counter"), "{text}");
        assert!(text.contains("# TYPE t_total counter"), "{text}");
        assert!(text.contains("\nt_total 5\n"), "{text}");
        assert!(text.contains("\nt_gauge -3\n"), "{text}");
        assert!(text.contains("# TYPE t_seconds histogram"), "{text}");
        assert!(text.contains("t_seconds_bucket{le=\"+Inf\"} 2"), "{text}");
        assert!(text.contains("t_seconds_count 2"), "{text}");
        assert!(text.contains("\nt_fn_total 11\n"), "{text}");
        assert!(text.contains("\nt_fn_gauge 13\n"), "{text}");
        // Every non-comment line is `name[{labels}] value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let mut parts = line.split_whitespace();
            assert!(parts.next().is_some_and(|n| n.starts_with("t_")), "{line}");
            let value = parts.next().expect("value column");
            assert!(value.parse::<f64>().is_ok(), "unparsable value: {line}");
            assert_eq!(parts.next(), None, "trailing columns: {line}");
        }
    }

    #[test]
    fn histogram_buckets_are_cumulative_in_exposition() {
        let r = MetricsRegistry::new();
        let h = r.histogram("t_lat_seconds", "latency");
        for us in [2u64, 20, 200, 2_000, 20_000] {
            h.record(Duration::from_micros(us));
        }
        let text = r.render_prometheus();
        let mut previous = 0u64;
        let mut buckets = 0;
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("t_lat_seconds_bucket{le=") {
                let value: u64 = rest.split_whitespace().nth(1).unwrap().parse().unwrap();
                assert!(value >= previous, "{line}");
                previous = value;
                buckets += 1;
            }
        }
        assert!(
            buckets > 10,
            "expected the full bucket ladder, got {buckets}"
        );
        assert_eq!(previous, 5, "+Inf bucket must equal the count");
    }

    #[test]
    fn json_rendering_is_balanced_and_carries_quantiles() {
        let r = MetricsRegistry::new();
        r.counter("t_a_total", "a").add(1);
        let h = r.histogram("t_b_seconds", "b");
        h.record(Duration::from_millis(3));
        let json = r.render_json();
        assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
        assert!(json.contains("\"t_a_total\":1"), "{json}");
        assert!(json.contains("\"count\":1"), "{json}");
        assert!(json.contains("\"p99_seconds\":"), "{json}");
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "{json}"
        );
    }

    #[test]
    fn callback_registration_replaces_the_previous_owner() {
        let r = MetricsRegistry::new();
        r.gauge_fn("t_replace", "first", || 1);
        r.gauge_fn("t_replace", "second", || 2);
        let text = r.render_prometheus();
        assert!(text.contains("\nt_replace 2\n"), "{text}");
        let value_lines = text.lines().filter(|l| l.starts_with("t_replace ")).count();
        assert_eq!(value_lines, 1, "{text}");
    }

    #[test]
    fn labeled_histograms_share_one_preamble_and_are_idempotent() {
        let r = MetricsRegistry::new();
        let q1 = r.histogram_labeled("t_mix_seconds", "per-template latency", "template", "Q1");
        let q8 = r.histogram_labeled("t_mix_seconds", "per-template latency", "template", "Q8");
        let q1_again =
            r.histogram_labeled("t_mix_seconds", "per-template latency", "template", "Q1");
        q1.record(Duration::from_millis(2));
        q1_again.record(Duration::from_millis(4));
        q8.record(Duration::from_millis(8));
        assert_eq!(q1.count(), 2, "same (name, label) shares the series");

        let text = r.render_prometheus();
        assert_eq!(text.matches("# HELP t_mix_seconds ").count(), 1, "{text}");
        assert_eq!(text.matches("# TYPE t_mix_seconds ").count(), 1, "{text}");
        assert!(
            text.contains("t_mix_seconds_bucket{template=\"Q1\",le=\"+Inf\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("t_mix_seconds_bucket{template=\"Q8\",le=\"+Inf\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("t_mix_seconds_count{template=\"Q1\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("t_mix_seconds_sum{template=\"Q8\"}"),
            "{text}"
        );
    }

    #[test]
    fn labeled_series_render_in_json_under_bracketed_keys() {
        let r = MetricsRegistry::new();
        let h = r.histogram_labeled("t_mix_seconds", "per-template latency", "template", "Q5a");
        h.record(Duration::from_millis(3));
        let json = r.render_json();
        assert!(json.contains("\"t_mix_seconds{template=Q5a}\":{"), "{json}");
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "{json}"
        );
    }

    #[test]
    fn label_values_are_sanitized() {
        let r = MetricsRegistry::new();
        r.histogram_labeled("t_mix_seconds", "h", "template", "a\"b\\c{d}");
        let text = r.render_prometheus();
        assert!(text.contains("{template=\"a_b_c_d_\"}"), "{text}");
    }

    #[test]
    fn histogram_json_matches_the_registry_rendering() {
        let r = MetricsRegistry::new();
        let h = r.histogram("t_one_seconds", "h");
        h.record(Duration::from_millis(7));
        let standalone = histogram_json(&h.snapshot());
        assert!(r.render_json().contains(&standalone));
        assert!(standalone.contains("\"count\":1"), "{standalone}");
    }
}
