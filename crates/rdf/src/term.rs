//! RDF terms: IRIs, blank nodes and literals.
//!
//! Positions are typed the way the RDF abstract syntax restricts them:
//! subjects are IRIs or blank nodes ([`Subject`]), predicates are IRIs
//! ([`Iri`]) and objects are any [`Term`]. The benchmark only needs plain,
//! `xsd:string`- and `xsd:integer`-typed literals, but [`Literal`] carries
//! an arbitrary datatype IRI and an optional language tag so the model is
//! complete.

use std::cmp::Ordering;
use std::fmt;

use crate::vocab::xsd;

/// An IRI (the paper calls these URIs), stored in full resolved form.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Iri(pub String);

impl Iri {
    /// Creates an IRI from anything string-like.
    pub fn new(iri: impl Into<String>) -> Self {
        Iri(iri.into())
    }

    /// The full IRI string.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for Iri {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{}>", self.0)
    }
}

impl From<&str> for Iri {
    fn from(s: &str) -> Self {
        Iri(s.to_owned())
    }
}

impl From<String> for Iri {
    fn from(s: String) -> Self {
        Iri(s)
    }
}

/// A blank node, identified by its local label (without the `_:` prefix).
///
/// The generator mints labels like `Givenname_Lastname` for persons and
/// `references17` for citation bags, exactly as Section IV describes.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlankNode(pub String);

impl BlankNode {
    /// Creates a blank node with the given label.
    pub fn new(label: impl Into<String>) -> Self {
        BlankNode(label.into())
    }

    /// The label (without the `_:` prefix).
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for BlankNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "_:{}", self.0)
    }
}

/// An RDF literal: a lexical form plus either a datatype IRI or a language
/// tag (or neither, for plain literals).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Literal {
    /// The lexical form (unescaped).
    pub lexical: String,
    /// Datatype IRI, if the literal is typed.
    pub datatype: Option<Iri>,
    /// Language tag, if the literal is language-tagged (mutually exclusive
    /// with `datatype` in RDF 1.0, which the benchmark follows).
    pub language: Option<String>,
}

impl Literal {
    /// A plain (untyped, untagged) literal.
    pub fn plain(lexical: impl Into<String>) -> Self {
        Literal {
            lexical: lexical.into(),
            datatype: None,
            language: None,
        }
    }

    /// An `xsd:string`-typed literal — the form the generator emits for
    /// all textual attribute values.
    pub fn string(lexical: impl Into<String>) -> Self {
        Literal {
            lexical: lexical.into(),
            datatype: Some(Iri::new(xsd::STRING)),
            language: None,
        }
    }

    /// An `xsd:integer`-typed literal — used for years, months, volumes…
    pub fn integer(value: i64) -> Self {
        Literal {
            lexical: value.to_string(),
            datatype: Some(Iri::new(xsd::INTEGER)),
            language: None,
        }
    }

    /// A literal with an explicit datatype IRI.
    pub fn typed(lexical: impl Into<String>, datatype: Iri) -> Self {
        Literal {
            lexical: lexical.into(),
            datatype: Some(datatype),
            language: None,
        }
    }

    /// True if the datatype is `xsd:integer` and the lexical form parses.
    pub fn as_integer(&self) -> Option<i64> {
        match &self.datatype {
            Some(dt) if dt.as_str() == xsd::INTEGER => self.lexical.parse().ok(),
            _ => None,
        }
    }

    /// True if this is a plain or `xsd:string` literal.
    pub fn is_stringish(&self) -> bool {
        match &self.datatype {
            None => self.language.is_none(),
            Some(dt) => dt.as_str() == xsd::STRING,
        }
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "\"{}\"", self.lexical)?;
        if let Some(lang) = &self.language {
            write!(f, "@{lang}")?;
        } else if let Some(dt) = &self.datatype {
            write!(f, "^^{dt}")?;
        }
        Ok(())
    }
}

/// Any RDF term: the object position of a triple.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Term {
    /// An IRI.
    Iri(Iri),
    /// A blank node.
    Blank(BlankNode),
    /// A literal.
    Literal(Literal),
}

impl Term {
    /// Convenience constructor for an IRI term.
    pub fn iri(iri: impl Into<String>) -> Self {
        Term::Iri(Iri::new(iri))
    }

    /// Convenience constructor for a blank-node term.
    pub fn blank(label: impl Into<String>) -> Self {
        Term::Blank(BlankNode::new(label))
    }

    /// The IRI if this term is one.
    pub fn as_iri(&self) -> Option<&Iri> {
        match self {
            Term::Iri(i) => Some(i),
            _ => None,
        }
    }

    /// The literal if this term is one.
    pub fn as_literal(&self) -> Option<&Literal> {
        match self {
            Term::Literal(l) => Some(l),
            _ => None,
        }
    }

    /// True for blank nodes.
    pub fn is_blank(&self) -> bool {
        matches!(self, Term::Blank(_))
    }

    /// Rank used for cross-kind ordering (SPARQL `ORDER BY` total order:
    /// blank nodes < IRIs < literals).
    fn kind_rank(&self) -> u8 {
        match self {
            Term::Blank(_) => 0,
            Term::Iri(_) => 1,
            Term::Literal(_) => 2,
        }
    }
}

impl PartialOrd for Term {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Total order over terms, following the SPARQL `ORDER BY` convention:
/// blank nodes sort before IRIs, which sort before literals; within a kind
/// the comparison is lexical. Numeric-aware literal comparison (needed for
/// `FILTER (?yr2 < ?yr)`) lives in the SPARQL expression layer; this `Ord`
/// exists so results can be sorted deterministically.
impl Ord for Term {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (Term::Blank(a), Term::Blank(b)) => a.cmp(b),
            (Term::Iri(a), Term::Iri(b)) => a.cmp(b),
            (Term::Literal(a), Term::Literal(b)) => {
                // Numeric literals compare by value so ORDER BY ?yr is
                // chronological rather than lexicographic.
                if let (Some(x), Some(y)) = (a.as_integer(), b.as_integer()) {
                    return x.cmp(&y);
                }
                (&a.lexical, &a.datatype, &a.language).cmp(&(&b.lexical, &b.datatype, &b.language))
            }
            _ => self.kind_rank().cmp(&other.kind_rank()),
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Iri(i) => i.fmt(f),
            Term::Blank(b) => b.fmt(f),
            Term::Literal(l) => l.fmt(f),
        }
    }
}

impl From<Iri> for Term {
    fn from(i: Iri) -> Self {
        Term::Iri(i)
    }
}

impl From<BlankNode> for Term {
    fn from(b: BlankNode) -> Self {
        Term::Blank(b)
    }
}

impl From<Literal> for Term {
    fn from(l: Literal) -> Self {
        Term::Literal(l)
    }
}

/// The subject position of a triple: an IRI or a blank node.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Subject {
    /// An IRI subject.
    Iri(Iri),
    /// A blank-node subject.
    Blank(BlankNode),
}

impl Subject {
    /// Convenience constructor for an IRI subject.
    pub fn iri(iri: impl Into<String>) -> Self {
        Subject::Iri(Iri::new(iri))
    }

    /// Convenience constructor for a blank-node subject.
    pub fn blank(label: impl Into<String>) -> Self {
        Subject::Blank(BlankNode::new(label))
    }

    /// Widens to a [`Term`].
    pub fn to_term(&self) -> Term {
        match self {
            Subject::Iri(i) => Term::Iri(i.clone()),
            Subject::Blank(b) => Term::Blank(b.clone()),
        }
    }
}

impl fmt::Display for Subject {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Subject::Iri(i) => i.fmt(f),
            Subject::Blank(b) => b.fmt(f),
        }
    }
}

impl From<Iri> for Subject {
    fn from(i: Iri) -> Self {
        Subject::Iri(i)
    }
}

impl From<BlankNode> for Subject {
    fn from(b: BlankNode) -> Self {
        Subject::Blank(b)
    }
}

impl TryFrom<Term> for Subject {
    type Error = Term;

    fn try_from(t: Term) -> Result<Self, Term> {
        match t {
            Term::Iri(i) => Ok(Subject::Iri(i)),
            Term::Blank(b) => Ok(Subject::Blank(b)),
            other @ Term::Literal(_) => Err(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_constructors() {
        let s = Literal::string("Journal 1 (1940)");
        assert_eq!(s.datatype.as_ref().unwrap().as_str(), xsd::STRING);
        assert!(s.is_stringish());
        assert_eq!(s.as_integer(), None);

        let i = Literal::integer(1940);
        assert_eq!(i.as_integer(), Some(1940));
        assert!(!i.is_stringish());

        let p = Literal::plain("hello");
        assert!(p.is_stringish());
    }

    #[test]
    fn term_display_forms() {
        assert_eq!(Term::iri("http://a/b").to_string(), "<http://a/b>");
        assert_eq!(Term::blank("John_Due").to_string(), "_:John_Due");
        assert_eq!(
            Term::Literal(Literal::integer(7)).to_string(),
            "\"7\"^^<http://www.w3.org/2001/XMLSchema#integer>"
        );
        assert_eq!(Term::Literal(Literal::plain("x")).to_string(), "\"x\"");
        let mut lang = Literal::plain("chat");
        lang.language = Some("fr".into());
        assert_eq!(Term::Literal(lang).to_string(), "\"chat\"@fr");
    }

    #[test]
    fn term_ordering_ranks_kinds() {
        let b = Term::blank("a");
        let i = Term::iri("http://a");
        let l = Term::Literal(Literal::plain("a"));
        assert!(b < i);
        assert!(i < l);
    }

    #[test]
    fn integer_literals_order_numerically() {
        let two = Term::Literal(Literal::integer(2));
        let ten = Term::Literal(Literal::integer(10));
        assert!(
            two < ten,
            "2 must sort before 10 despite lexicographic order"
        );
    }

    #[test]
    fn subject_round_trips_through_term() {
        let s = Subject::blank("p1");
        let t = s.to_term();
        assert_eq!(Subject::try_from(t).unwrap(), s);
        let lit = Term::Literal(Literal::plain("no"));
        assert!(Subject::try_from(lit).is_err());
    }
}
