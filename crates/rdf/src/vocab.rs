//! Vocabularies of the SP²Bench DBLP scenario.
//!
//! The generator borrows FOAF for persons, SWRC and DC/DCTERMS for
//! scientific resources, and introduces a `bench` namespace for the
//! DBLP-specific document classes (Section IV, "The DBLP RDF Scheme").
//! Namespace IRIs match the released SP²Bench distribution so generated
//! documents and queries are interchangeable with the original tooling.

/// `rdf:` — the RDF base vocabulary.
pub mod rdf {
    /// Namespace IRI.
    pub const NS: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#";
    /// `rdf:type`.
    pub const TYPE: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";
    /// `rdf:Bag` — container class used for reference lists.
    pub const BAG: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#Bag";

    /// `rdf:_n` membership property for container element `n` (1-based).
    pub fn member(n: usize) -> String {
        format!("{NS}_{n}")
    }

    /// Parses a container-membership property IRI back to its index.
    pub fn member_index(iri: &str) -> Option<usize> {
        iri.strip_prefix(NS)?.strip_prefix('_')?.parse().ok()
    }
}

/// `rdfs:` — RDF Schema.
pub mod rdfs {
    /// Namespace IRI.
    pub const NS: &str = "http://www.w3.org/2000/01/rdf-schema#";
    /// `rdfs:subClassOf`.
    pub const SUB_CLASS_OF: &str = "http://www.w3.org/2000/01/rdf-schema#subClassOf";
    /// `rdfs:seeAlso` — the mapping target of DBLP's `ee` attribute.
    pub const SEE_ALSO: &str = "http://www.w3.org/2000/01/rdf-schema#seeAlso";
}

/// `xsd:` — XML Schema datatypes.
pub mod xsd {
    /// Namespace IRI.
    pub const NS: &str = "http://www.w3.org/2001/XMLSchema#";
    /// `xsd:string`.
    pub const STRING: &str = "http://www.w3.org/2001/XMLSchema#string";
    /// `xsd:integer`.
    pub const INTEGER: &str = "http://www.w3.org/2001/XMLSchema#integer";
}

/// `foaf:` — Friend of a Friend, used for persons and documents.
pub mod foaf {
    /// Namespace IRI.
    pub const NS: &str = "http://xmlns.com/foaf/0.1/";
    /// `foaf:Person` — authors and editors are blank nodes of this class.
    pub const PERSON: &str = "http://xmlns.com/foaf/0.1/Person";
    /// `foaf:Document` — superclass of all benchmark document classes.
    pub const DOCUMENT: &str = "http://xmlns.com/foaf/0.1/Document";
    /// `foaf:name`.
    pub const NAME: &str = "http://xmlns.com/foaf/0.1/name";
    /// `foaf:homepage` — the mapping target of DBLP's `url` attribute.
    pub const HOMEPAGE: &str = "http://xmlns.com/foaf/0.1/homepage";
}

/// `swrc:` — Semantic Web for Research Communities ontology.
pub mod swrc {
    /// Namespace IRI.
    pub const NS: &str = "http://swrc.ontoware.org/ontology#";
    /// `swrc:address`.
    pub const ADDRESS: &str = "http://swrc.ontoware.org/ontology#address";
    /// `swrc:chapter`.
    pub const CHAPTER: &str = "http://swrc.ontoware.org/ontology#chapter";
    /// `swrc:editor`.
    pub const EDITOR: &str = "http://swrc.ontoware.org/ontology#editor";
    /// `swrc:isbn`.
    pub const ISBN: &str = "http://swrc.ontoware.org/ontology#isbn";
    /// `swrc:journal`.
    pub const JOURNAL: &str = "http://swrc.ontoware.org/ontology#journal";
    /// `swrc:month`.
    pub const MONTH: &str = "http://swrc.ontoware.org/ontology#month";
    /// `swrc:number`.
    pub const NUMBER: &str = "http://swrc.ontoware.org/ontology#number";
    /// `swrc:pages`.
    pub const PAGES: &str = "http://swrc.ontoware.org/ontology#pages";
    /// `swrc:series`.
    pub const SERIES: &str = "http://swrc.ontoware.org/ontology#series";
    /// `swrc:volume`.
    pub const VOLUME: &str = "http://swrc.ontoware.org/ontology#volume";
}

/// `dc:` — Dublin Core elements.
pub mod dc {
    /// Namespace IRI.
    pub const NS: &str = "http://purl.org/dc/elements/1.1/";
    /// `dc:creator` — the mapping target of DBLP's `author` attribute.
    pub const CREATOR: &str = "http://purl.org/dc/elements/1.1/creator";
    /// `dc:publisher` — target of both `publisher` and `school`.
    pub const PUBLISHER: &str = "http://purl.org/dc/elements/1.1/publisher";
    /// `dc:title`.
    pub const TITLE: &str = "http://purl.org/dc/elements/1.1/title";
}

/// `dcterms:` — Dublin Core terms.
pub mod dcterms {
    /// Namespace IRI.
    pub const NS: &str = "http://purl.org/dc/terms/";
    /// `dcterms:issued` — the mapping target of DBLP's `year` attribute.
    pub const ISSUED: &str = "http://purl.org/dc/terms/issued";
    /// `dcterms:partOf` — the mapping target of DBLP's `crossref`.
    pub const PART_OF: &str = "http://purl.org/dc/terms/partOf";
    /// `dcterms:references` — links a document to its `rdf:Bag` of citations.
    pub const REFERENCES: &str = "http://purl.org/dc/terms/references";
}

/// `bench:` — the SP²Bench-specific vocabulary.
pub mod bench {
    /// Namespace IRI.
    pub const NS: &str = "http://localhost/vocabulary/bench/";
    /// `bench:Journal`.
    pub const JOURNAL: &str = "http://localhost/vocabulary/bench/Journal";
    /// `bench:Article`.
    pub const ARTICLE: &str = "http://localhost/vocabulary/bench/Article";
    /// `bench:Inproceedings`.
    pub const INPROCEEDINGS: &str = "http://localhost/vocabulary/bench/Inproceedings";
    /// `bench:Proceedings`.
    pub const PROCEEDINGS: &str = "http://localhost/vocabulary/bench/Proceedings";
    /// `bench:Book`.
    pub const BOOK: &str = "http://localhost/vocabulary/bench/Book";
    /// `bench:Incollection`.
    pub const INCOLLECTION: &str = "http://localhost/vocabulary/bench/Incollection";
    /// `bench:PhDThesis`.
    pub const PHD_THESIS: &str = "http://localhost/vocabulary/bench/PhDThesis";
    /// `bench:MastersThesis`.
    pub const MASTERS_THESIS: &str = "http://localhost/vocabulary/bench/MastersThesis";
    /// `bench:Www`.
    pub const WWW: &str = "http://localhost/vocabulary/bench/Www";
    /// `bench:booktitle`.
    pub const BOOKTITLE: &str = "http://localhost/vocabulary/bench/booktitle";
    /// `bench:cdrom`.
    pub const CDROM: &str = "http://localhost/vocabulary/bench/cdrom";
    /// `bench:note`.
    pub const NOTE: &str = "http://localhost/vocabulary/bench/note";
    /// `bench:abstract` — the property the generator adds to ~1% of
    /// articles/inproceedings with comparably large string values.
    pub const ABSTRACT: &str = "http://localhost/vocabulary/bench/abstract";
}

/// `person:` — instance namespace for fixed persons.
pub mod person {
    /// Namespace IRI.
    pub const NS: &str = "http://localhost/persons/";
    /// The fixed URI of Paul Erdős, the benchmark's entry-point author.
    pub const PAUL_ERDOES: &str = "http://localhost/persons/Paul_Erdoes";
    /// A person guaranteed to be absent (Q12c asks for it).
    pub const JOHN_Q_PUBLIC: &str = "http://localhost/persons/John_Q_Public";
}

/// The prefix table used by the query parser and serializers.
///
/// Order is stable; each entry is `(prefix, namespace IRI)`.
pub const PREFIXES: &[(&str, &str)] = &[
    ("rdf", rdf::NS),
    ("rdfs", rdfs::NS),
    ("xsd", xsd::NS),
    ("foaf", foaf::NS),
    ("swrc", swrc::NS),
    ("dc", dc::NS),
    ("dcterms", dcterms::NS),
    ("bench", bench::NS),
    ("person", person::NS),
];

/// Expands a `prefix:local` pair against [`PREFIXES`].
pub fn expand(prefix: &str, local: &str) -> Option<String> {
    PREFIXES
        .iter()
        .find(|(p, _)| *p == prefix)
        .map(|(_, ns)| format!("{ns}{local}"))
}

/// Compacts a full IRI to `prefix:local` form when a prefix matches.
/// Used by report/debug output only; the engine works on full IRIs.
pub fn compact(iri: &str) -> Option<String> {
    // Longest-namespace match so dcterms: wins over dc: where applicable.
    PREFIXES
        .iter()
        .filter(|(_, ns)| iri.starts_with(ns))
        .max_by_key(|(_, ns)| ns.len())
        .map(|(p, ns)| format!("{p}:{}", &iri[ns.len()..]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expand_known_prefixes() {
        assert_eq!(expand("bench", "Article").as_deref(), Some(bench::ARTICLE));
        assert_eq!(expand("dc", "creator").as_deref(), Some(dc::CREATOR));
        assert_eq!(expand("nope", "x"), None);
    }

    #[test]
    fn compact_prefers_longest_namespace() {
        // dcterms:references must not compact to a dc: prefix.
        assert_eq!(
            compact(dcterms::REFERENCES).as_deref(),
            Some("dcterms:references")
        );
        assert_eq!(compact(dc::CREATOR).as_deref(), Some("dc:creator"));
        assert_eq!(compact("http://unknown/x"), None);
    }

    #[test]
    fn bag_membership_roundtrip() {
        let m = rdf::member(17);
        assert_eq!(rdf::member_index(&m), Some(17));
        assert_eq!(rdf::member_index(rdf::TYPE), None);
    }

    #[test]
    fn prefixes_are_unique() {
        for (i, (p, _)) in PREFIXES.iter().enumerate() {
            for (q, _) in &PREFIXES[i + 1..] {
                assert_ne!(p, q);
            }
        }
    }
}
