//! A minimal in-memory RDF graph: an ordered multiset of triples.
//!
//! [`Graph`] is the hand-off type between the parser and the stores. The
//! stores build their own indexed representations; `Graph` deliberately
//! stays a thin `Vec` wrapper with convenience accessors used by tests and
//! examples.

use std::slice;

use crate::term::{Iri, Subject, Term};
use crate::triple::Triple;

/// An in-memory collection of triples, in insertion order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Graph {
    triples: Vec<Triple>,
}

impl Graph {
    /// An empty graph.
    pub fn new() -> Self {
        Graph::default()
    }

    /// An empty graph with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Graph {
            triples: Vec::with_capacity(cap),
        }
    }

    /// Appends a triple.
    pub fn insert(&mut self, triple: Triple) {
        self.triples.push(triple);
    }

    /// Appends a triple built from its components.
    pub fn add(&mut self, s: impl Into<Subject>, p: impl Into<Iri>, o: impl Into<Term>) {
        self.triples.push(Triple::new(s, p, o));
    }

    /// Number of triples (counting duplicates).
    pub fn len(&self) -> usize {
        self.triples.len()
    }

    /// True if the graph holds no triples.
    pub fn is_empty(&self) -> bool {
        self.triples.is_empty()
    }

    /// Iterates over the triples in insertion order.
    pub fn iter(&self) -> slice::Iter<'_, Triple> {
        self.triples.iter()
    }

    /// Borrow the triples as a slice.
    pub fn as_slice(&self) -> &[Triple] {
        &self.triples
    }

    /// Consumes the graph, returning its triples.
    pub fn into_triples(self) -> Vec<Triple> {
        self.triples
    }

    /// All triples with the given predicate (linear scan; test helper).
    pub fn with_predicate<'a>(
        &'a self,
        predicate: &'a str,
    ) -> impl Iterator<Item = &'a Triple> + 'a {
        self.triples
            .iter()
            .filter(move |t| t.predicate.as_str() == predicate)
    }

    /// All distinct subjects that have `rdf:type == class` (linear scan).
    pub fn instances_of<'a>(&'a self, class: &'a str) -> impl Iterator<Item = &'a Subject> + 'a {
        self.triples.iter().filter_map(move |t| {
            if t.predicate.as_str() == crate::vocab::rdf::TYPE
                && matches!(&t.object, Term::Iri(i) if i.as_str() == class)
            {
                Some(&t.subject)
            } else {
                None
            }
        })
    }
}

impl FromIterator<Triple> for Graph {
    fn from_iter<I: IntoIterator<Item = Triple>>(iter: I) -> Self {
        Graph {
            triples: iter.into_iter().collect(),
        }
    }
}

impl IntoIterator for Graph {
    type Item = Triple;
    type IntoIter = std::vec::IntoIter<Triple>;

    fn into_iter(self) -> Self::IntoIter {
        self.triples.into_iter()
    }
}

impl<'a> IntoIterator for &'a Graph {
    type Item = &'a Triple;
    type IntoIter = slice::Iter<'a, Triple>;

    fn into_iter(self) -> Self::IntoIter {
        self.triples.iter()
    }
}

impl Extend<Triple> for Graph {
    fn extend<I: IntoIterator<Item = Triple>>(&mut self, iter: I) {
        self.triples.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Literal;
    use crate::vocab::{bench, dc, rdf};

    fn sample() -> Graph {
        let mut g = Graph::new();
        g.add(
            Subject::iri("http://x/article1"),
            Iri::new(rdf::TYPE),
            Term::iri(bench::ARTICLE),
        );
        g.add(
            Subject::iri("http://x/article1"),
            Iri::new(dc::TITLE),
            Term::Literal(Literal::string("t")),
        );
        g
    }

    #[test]
    fn insert_iterate_len() {
        let g = sample();
        assert_eq!(g.len(), 2);
        assert_eq!(g.iter().count(), 2);
        assert!(!g.is_empty());
    }

    #[test]
    fn instances_of_filters_by_class() {
        let g = sample();
        let arts: Vec<_> = g.instances_of(bench::ARTICLE).collect();
        assert_eq!(arts.len(), 1);
        assert_eq!(g.instances_of(bench::JOURNAL).count(), 0);
    }

    #[test]
    fn with_predicate_scans() {
        let g = sample();
        assert_eq!(g.with_predicate(dc::TITLE).count(), 1);
        assert_eq!(g.with_predicate(dc::CREATOR).count(), 0);
    }

    #[test]
    fn collects_from_iterator() {
        let g = sample();
        let g2: Graph = g.iter().cloned().collect();
        assert_eq!(g, g2);
    }
}
