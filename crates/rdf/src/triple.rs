//! RDF triples.

use std::fmt;

use crate::term::{Iri, Subject, Term};

/// A single RDF statement `(subject, predicate, object)`.
///
/// Visualized as an edge from the subject node to the object node under the
/// predicate label (Section IV, "The RDF Data Model").
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Triple {
    /// Subject: IRI or blank node.
    pub subject: Subject,
    /// Predicate: always an IRI.
    pub predicate: Iri,
    /// Object: any term.
    pub object: Term,
}

impl Triple {
    /// Creates a triple from its three components.
    pub fn new(
        subject: impl Into<Subject>,
        predicate: impl Into<Iri>,
        object: impl Into<Term>,
    ) -> Self {
        Triple {
            subject: subject.into(),
            predicate: predicate.into(),
            object: object.into(),
        }
    }

    /// The three positions widened to [`Term`]s, in (s, p, o) order.
    pub fn to_terms(&self) -> [Term; 3] {
        [
            self.subject.to_term(),
            Term::Iri(self.predicate.clone()),
            self.object.clone(),
        ]
    }
}

impl fmt::Display for Triple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {} .", self.subject, self.predicate, self.object)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Literal;
    use crate::vocab::{bench, dc, rdf};

    #[test]
    fn display_is_ntriples_shaped() {
        let t = Triple::new(
            Subject::iri("http://localhost/publications/journals/Journal1/1940"),
            Iri::new(rdf::TYPE),
            Term::iri(bench::JOURNAL),
        );
        let s = t.to_string();
        assert!(s.starts_with('<') && s.ends_with(" ."), "{s}");
    }

    #[test]
    fn blank_subject_and_literal_object() {
        let t = Triple::new(
            Subject::blank("Paul_Erdoes"),
            Iri::new(dc::TITLE),
            Term::Literal(Literal::string("On graphs")),
        );
        assert!(t.subject.to_term().is_blank());
        assert!(t.object.as_literal().is_some());
    }
}
