//! # sp2b-rdf — RDF data model substrate
//!
//! The foundation layer of the SP²Bench reproduction: RDF terms
//! ([`Term`], [`Iri`], [`BlankNode`], [`Literal`]), triples ([`Triple`]),
//! the vocabularies used by the DBLP scenario ([`vocab`]) and a fast
//! N-Triples serializer/parser ([`ntriples`]).
//!
//! The benchmark data uses exactly the RDF constructs the paper calls out:
//! URIs, blank nodes (persons, reference bags), typed literals
//! (`xsd:string`, `xsd:integer`) and `rdf:Bag` containers. This crate keeps
//! the model small and allocation-conscious; higher layers (the stores)
//! dictionary-encode terms into integer ids and only fall back to these
//! owned representations at the edges (parsing, result rendering).

pub mod graph;
pub mod ntriples;
pub mod term;
pub mod triple;
pub mod vocab;

pub use graph::Graph;
pub use term::{BlankNode, Iri, Literal, Subject, Term};
pub use triple::Triple;
