//! N-Triples serialization and parsing.
//!
//! The generator streams N-Triples through [`write_triple`] (one syscall-
//! buffered line per triple, constant memory), and the stores bulk-load
//! through [`Parser`], a hand-rolled byte-level parser that avoids
//! per-token allocations where possible. Both ends implement the subset of
//! N-Triples the benchmark data uses — IRIs, blank nodes, plain/typed/
//! language-tagged literals, `.` terminators, `#` comments — plus the
//! standard string escapes, so foreign N-Triples documents load too.

use std::fmt;
use std::io::{self, BufRead, Write};

use crate::term::{BlankNode, Iri, Literal, Subject, Term};
use crate::triple::Triple;

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

/// Writes a string literal's lexical form with N-Triples escaping.
fn write_escaped(out: &mut impl Write, s: &str) -> io::Result<()> {
    // Fast path: write unbroken runs of safe characters in one call.
    let bytes = s.as_bytes();
    let mut start = 0;
    for (i, &b) in bytes.iter().enumerate() {
        let esc: Option<&[u8]> = match b {
            b'"' => Some(b"\\\""),
            b'\\' => Some(b"\\\\"),
            b'\n' => Some(b"\\n"),
            b'\r' => Some(b"\\r"),
            b'\t' => Some(b"\\t"),
            _ => None,
        };
        if let Some(esc) = esc {
            out.write_all(&bytes[start..i])?;
            out.write_all(esc)?;
            start = i + 1;
        }
    }
    out.write_all(&bytes[start..])
}

/// Writes one term in N-Triples syntax (no trailing space).
pub fn write_term(out: &mut impl Write, term: &Term) -> io::Result<()> {
    match term {
        Term::Iri(i) => {
            out.write_all(b"<")?;
            out.write_all(i.as_str().as_bytes())?;
            out.write_all(b">")
        }
        Term::Blank(b) => {
            out.write_all(b"_:")?;
            out.write_all(b.as_str().as_bytes())
        }
        Term::Literal(l) => {
            out.write_all(b"\"")?;
            write_escaped(out, &l.lexical)?;
            out.write_all(b"\"")?;
            if let Some(lang) = &l.language {
                out.write_all(b"@")?;
                out.write_all(lang.as_bytes())
            } else if let Some(dt) = &l.datatype {
                out.write_all(b"^^<")?;
                out.write_all(dt.as_str().as_bytes())?;
                out.write_all(b">")
            } else {
                Ok(())
            }
        }
    }
}

/// Writes one triple as a complete N-Triples line (including `" .\n"`).
pub fn write_triple(out: &mut impl Write, triple: &Triple) -> io::Result<()> {
    match &triple.subject {
        Subject::Iri(i) => {
            out.write_all(b"<")?;
            out.write_all(i.as_str().as_bytes())?;
            out.write_all(b"> ")?;
        }
        Subject::Blank(b) => {
            out.write_all(b"_:")?;
            out.write_all(b.as_str().as_bytes())?;
            out.write_all(b" ")?;
        }
    }
    out.write_all(b"<")?;
    out.write_all(triple.predicate.as_str().as_bytes())?;
    out.write_all(b"> ")?;
    write_term(out, &triple.object)?;
    out.write_all(b" .\n")
}

/// Serializes a whole iterator of triples.
pub fn write_document<'a>(
    out: &mut impl Write,
    triples: impl IntoIterator<Item = &'a Triple>,
) -> io::Result<usize> {
    let mut n = 0;
    for t in triples {
        write_triple(out, t)?;
        n += 1;
    }
    Ok(n)
}

/// Renders one triple to a `String` (test/diagnostic helper).
pub fn triple_to_string(triple: &Triple) -> String {
    let mut buf = Vec::with_capacity(128);
    write_triple(&mut buf, triple).expect("writing to Vec cannot fail");
    String::from_utf8(buf).expect("N-Triples output is UTF-8")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

/// A parse error with 1-based line number context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number of the offending line.
    pub line: u64,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "N-Triples parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Errors produced while reading an N-Triples document.
#[derive(Debug)]
pub enum Error {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Syntax error.
    Parse(ParseError),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Io(e) => write!(f, "I/O error: {e}"),
            Error::Parse(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for Error {}

impl From<io::Error> for Error {
    fn from(e: io::Error) -> Self {
        Error::Io(e)
    }
}

impl From<ParseError> for Error {
    fn from(e: ParseError) -> Self {
        Error::Parse(e)
    }
}

/// Byte cursor over a single line.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: u64,
}

impl<'a> Cursor<'a> {
    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            line: self.line,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ') | Some(b'\t')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        match self.bump() {
            Some(x) if x == b => Ok(()),
            other => Err(self.err(format!(
                "expected {:?}, found {:?}",
                b as char,
                other.map(|c| c as char)
            ))),
        }
    }

    /// Parses `<IRI>`.
    fn iri(&mut self) -> Result<Iri, ParseError> {
        self.expect(b'<')?;
        let start = self.pos;
        loop {
            match self.bump() {
                Some(b'>') => {
                    let s = &self.bytes[start..self.pos - 1];
                    let s =
                        std::str::from_utf8(s).map_err(|_| self.err("IRI is not valid UTF-8"))?;
                    return Ok(Iri::new(s));
                }
                Some(_) => {}
                None => return Err(self.err("unterminated IRI")),
            }
        }
    }

    /// Parses `_:label`.
    fn blank(&mut self) -> Result<BlankNode, ParseError> {
        self.expect(b'_')?;
        self.expect(b':')?;
        let start = self.pos;
        while matches!(self.peek(), Some(b) if !b.is_ascii_whitespace()) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.err("empty blank node label"));
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("blank node label is not valid UTF-8"))?;
        Ok(BlankNode::new(s))
    }

    /// Parses a quoted literal with optional `@lang` / `^^<dt>` suffix.
    fn literal(&mut self) -> Result<Literal, ParseError> {
        self.expect(b'"')?;
        let mut lexical = String::new();
        loop {
            match self.bump() {
                Some(b'"') => break,
                Some(b'\\') => match self.bump() {
                    Some(b'"') => lexical.push('"'),
                    Some(b'\\') => lexical.push('\\'),
                    Some(b'n') => lexical.push('\n'),
                    Some(b'r') => lexical.push('\r'),
                    Some(b't') => lexical.push('\t'),
                    Some(b'u') => lexical.push(self.unicode_escape(4)?),
                    Some(b'U') => lexical.push(self.unicode_escape(8)?),
                    other => {
                        return Err(
                            self.err(format!("invalid escape \\{:?}", other.map(|c| c as char)))
                        )
                    }
                },
                Some(b) if b < 0x80 => lexical.push(b as char),
                Some(b) => {
                    // Re-assemble a multi-byte UTF-8 sequence.
                    let len = utf8_len(b).ok_or_else(|| self.err("invalid UTF-8 in literal"))?;
                    let start = self.pos - 1;
                    for _ in 1..len {
                        self.bump()
                            .ok_or_else(|| self.err("truncated UTF-8 in literal"))?;
                    }
                    let s = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8 in literal"))?;
                    lexical.push_str(s);
                }
                None => return Err(self.err("unterminated literal")),
            }
        }
        match self.peek() {
            Some(b'@') => {
                self.pos += 1;
                let start = self.pos;
                while matches!(self.peek(), Some(b) if b.is_ascii_alphanumeric() || b == b'-') {
                    self.pos += 1;
                }
                if self.pos == start {
                    return Err(self.err("empty language tag"));
                }
                let lang = std::str::from_utf8(&self.bytes[start..self.pos])
                    .expect("ASCII checked")
                    .to_owned();
                Ok(Literal {
                    lexical,
                    datatype: None,
                    language: Some(lang),
                })
            }
            Some(b'^') => {
                self.pos += 1;
                self.expect(b'^')?;
                let dt = self.iri()?;
                Ok(Literal {
                    lexical,
                    datatype: Some(dt),
                    language: None,
                })
            }
            _ => Ok(Literal {
                lexical,
                datatype: None,
                language: None,
            }),
        }
    }

    fn unicode_escape(&mut self, digits: usize) -> Result<char, ParseError> {
        let mut v: u32 = 0;
        for _ in 0..digits {
            let b = self
                .bump()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = (b as char)
                .to_digit(16)
                .ok_or_else(|| self.err("non-hex digit in \\u escape"))?;
            v = v * 16 + d;
        }
        char::from_u32(v).ok_or_else(|| self.err("invalid code point in \\u escape"))
    }

    fn term(&mut self) -> Result<Term, ParseError> {
        match self.peek() {
            Some(b'<') => Ok(Term::Iri(self.iri()?)),
            Some(b'_') => Ok(Term::Blank(self.blank()?)),
            Some(b'"') => Ok(Term::Literal(self.literal()?)),
            other => Err(self.err(format!(
                "expected term, found {:?}",
                other.map(|c| c as char)
            ))),
        }
    }
}

fn utf8_len(first: u8) -> Option<usize> {
    match first {
        0xC0..=0xDF => Some(2),
        0xE0..=0xEF => Some(3),
        0xF0..=0xF7 => Some(4),
        _ => None,
    }
}

/// Parses one N-Triples line. Returns `Ok(None)` for blank/comment lines.
pub fn parse_line(line: &str, line_no: u64) -> Result<Option<Triple>, ParseError> {
    let mut c = Cursor {
        bytes: line.as_bytes(),
        pos: 0,
        line: line_no,
    };
    c.skip_ws();
    match c.peek() {
        None | Some(b'#') => return Ok(None),
        _ => {}
    }
    let subject = match c.peek() {
        Some(b'<') => Subject::Iri(c.iri()?),
        Some(b'_') => Subject::Blank(c.blank()?),
        other => {
            return Err(c.err(format!(
                "expected subject, found {:?}",
                other.map(|x| x as char)
            )))
        }
    };
    c.skip_ws();
    let predicate = c.iri()?;
    c.skip_ws();
    let object = c.term()?;
    c.skip_ws();
    c.expect(b'.')?;
    c.skip_ws();
    if c.peek().is_some() {
        return Err(c.err("trailing content after '.'"));
    }
    Ok(Some(Triple {
        subject,
        predicate,
        object,
    }))
}

/// Streaming N-Triples parser over any [`BufRead`].
///
/// Reuses a single line buffer (see the perf-book guidance on
/// `BufRead::read_line` vs `lines()`), so parsing allocates only for the
/// term strings themselves.
pub struct Parser<R> {
    input: R,
    buf: String,
    line_no: u64,
}

impl<R: BufRead> Parser<R> {
    /// Wraps a buffered reader.
    pub fn new(input: R) -> Self {
        Parser {
            input,
            buf: String::with_capacity(256),
            line_no: 0,
        }
    }

    /// Reads the next triple, skipping comments and blank lines.
    /// Returns `Ok(None)` at end of input.
    pub fn next_triple(&mut self) -> Result<Option<Triple>, Error> {
        loop {
            self.buf.clear();
            let n = self.input.read_line(&mut self.buf)?;
            if n == 0 {
                return Ok(None);
            }
            self.line_no += 1;
            let line = self.buf.trim_end_matches(['\n', '\r']);
            if let Some(t) = parse_line(line, self.line_no)? {
                return Ok(Some(t));
            }
        }
    }
}

impl<R: BufRead> Iterator for Parser<R> {
    type Item = Result<Triple, Error>;

    fn next(&mut self) -> Option<Self::Item> {
        self.next_triple().transpose()
    }
}

/// Parses a complete document from a string (test/example helper).
pub fn parse_document(doc: &str) -> Result<Vec<Triple>, Error> {
    Parser::new(doc.as_bytes()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vocab::xsd;

    fn roundtrip(t: &Triple) -> Triple {
        let s = triple_to_string(t);
        parse_line(s.trim_end(), 1).unwrap().unwrap()
    }

    #[test]
    fn roundtrip_iri_triple() {
        let t = Triple::new(
            Subject::iri("http://a/s"),
            Iri::new("http://a/p"),
            Term::iri("http://a/o"),
        );
        assert_eq!(roundtrip(&t), t);
    }

    #[test]
    fn roundtrip_blank_and_typed_literal() {
        let t = Triple::new(
            Subject::blank("Paul_Erdoes"),
            Iri::new("http://a/p"),
            Term::Literal(Literal::integer(1940)),
        );
        let back = roundtrip(&t);
        assert_eq!(back, t);
        assert_eq!(back.object.as_literal().unwrap().as_integer(), Some(1940));
    }

    #[test]
    fn roundtrip_escapes() {
        let nasty = "line1\nline2\t\"quoted\" back\\slash\r";
        let t = Triple::new(
            Subject::iri("http://a/s"),
            Iri::new("http://a/p"),
            Term::Literal(Literal::string(nasty)),
        );
        let back = roundtrip(&t);
        assert_eq!(back.object.as_literal().unwrap().lexical, nasty);
    }

    #[test]
    fn roundtrip_unicode() {
        let t = Triple::new(
            Subject::iri("http://a/s"),
            Iri::new("http://a/p"),
            Term::Literal(Literal::plain("Erdős Pál — 数学")),
        );
        assert_eq!(roundtrip(&t), t);
    }

    #[test]
    fn parses_unicode_escapes() {
        let line = r#"<http://a/s> <http://a/p> "é\U0001F600" ."#;
        let t = parse_line(line, 1).unwrap().unwrap();
        assert_eq!(t.object.as_literal().unwrap().lexical, "é😀");
    }

    #[test]
    fn skips_comments_and_blanks() {
        let doc = "# header\n\n<http://a/s> <http://a/p> <http://a/o> .\n# done\n";
        let triples = parse_document(doc).unwrap();
        assert_eq!(triples.len(), 1);
    }

    #[test]
    fn language_tagged_literal() {
        let line = r#"<http://a/s> <http://a/p> "chat"@fr-BE ."#;
        let t = parse_line(line, 1).unwrap().unwrap();
        let lit = t.object.as_literal().unwrap();
        assert_eq!(lit.language.as_deref(), Some("fr-BE"));
    }

    #[test]
    fn typed_literal_datatype_preserved() {
        let line = format!(r#"<http://a/s> <http://a/p> "42"^^<{}> ."#, xsd::INTEGER);
        let t = parse_line(&line, 1).unwrap().unwrap();
        assert_eq!(t.object.as_literal().unwrap().as_integer(), Some(42));
    }

    #[test]
    fn error_reports_line_number() {
        let err = parse_line("<oops", 7).unwrap_err();
        assert_eq!(err.line, 7);
        assert!(err.to_string().contains("line 7"));
    }

    #[test]
    fn rejects_trailing_garbage() {
        let line = "<http://a/s> <http://a/p> <http://a/o> . extra";
        assert!(parse_line(line, 1).is_err());
    }

    #[test]
    fn rejects_literal_subject() {
        let line = r#""lit" <http://a/p> <http://a/o> ."#;
        assert!(parse_line(line, 1).is_err());
    }

    #[test]
    fn parser_iterator_collects() {
        let mut doc = String::new();
        for i in 0..10 {
            doc.push_str(&format!("<http://a/s{i}> <http://a/p> \"v{i}\" .\n"));
        }
        let triples: Vec<_> = Parser::new(doc.as_bytes())
            .collect::<Result<_, _>>()
            .unwrap();
        assert_eq!(triples.len(), 10);
    }
}
