//! Property tests: N-Triples serialization and parsing are inverse.

use proptest::prelude::*;

use sp2b_rdf::ntriples::{parse_line, triple_to_string};
use sp2b_rdf::{Iri, Literal, Subject, Term, Triple};

fn iri_strategy() -> impl Strategy<Value = Iri> {
    // IRIs without whitespace, '<', '>', '"' (the lexical constraints the
    // serializer assumes).
    "[a-z]{1,8}"
        .prop_flat_map(|scheme| {
            ("[a-zA-Z0-9._/~#-]{1,30}").prop_map(move |path| {
                Iri::new(format!("{scheme}://{path}"))
            })
        })
}

fn blank_strategy() -> impl Strategy<Value = String> {
    "[A-Za-z0-9_]{1,16}".prop_map(|s| s)
}

fn literal_strategy() -> impl Strategy<Value = Literal> {
    let lexical = ".{0,40}"; // arbitrary unicode, escapes exercised
    prop_oneof![
        lexical.prop_map(Literal::plain),
        lexical.prop_map(Literal::string),
        any::<i64>().prop_map(Literal::integer),
        (lexical, "[a-z]{1,4}(-[a-z0-9]{1,4})?").prop_map(|(l, lang)| {
            let mut lit = Literal::plain(l);
            lit.language = Some(lang);
            lit
        }),
        (lexical, iri_strategy()).prop_map(|(l, dt)| Literal::typed(l, dt)),
    ]
}

fn term_strategy() -> impl Strategy<Value = Term> {
    prop_oneof![
        iri_strategy().prop_map(Term::Iri),
        blank_strategy().prop_map(Term::blank),
        literal_strategy().prop_map(Term::Literal),
    ]
}

fn subject_strategy() -> impl Strategy<Value = Subject> {
    prop_oneof![
        iri_strategy().prop_map(Subject::Iri),
        blank_strategy().prop_map(Subject::blank),
    ]
}

fn triple_strategy() -> impl Strategy<Value = Triple> {
    (subject_strategy(), iri_strategy(), term_strategy())
        .prop_map(|(s, p, o)| Triple { subject: s, predicate: p, object: o })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn serialize_parse_roundtrip(t in triple_strategy()) {
        let line = triple_to_string(&t);
        let parsed = parse_line(line.trim_end(), 1)
            .expect("serialized triple must parse")
            .expect("line is not blank");
        prop_assert_eq!(parsed, t);
    }

    #[test]
    fn serialized_form_is_single_line(t in triple_strategy()) {
        let line = triple_to_string(&t);
        // Embedded newlines must be escaped: exactly one trailing '\n'.
        prop_assert_eq!(line.matches('\n').count(), 1);
        prop_assert!(line.ends_with(" .\n"));
    }

    #[test]
    fn document_roundtrip(triples in prop::collection::vec(triple_strategy(), 0..40)) {
        let mut doc = Vec::new();
        sp2b_rdf::ntriples::write_document(&mut doc, triples.iter()).expect("vec write");
        let parsed: Vec<Triple> = sp2b_rdf::ntriples::Parser::new(&doc[..])
            .collect::<Result<_, _>>()
            .expect("document parses");
        prop_assert_eq!(parsed, triples);
    }

    #[test]
    fn term_ordering_is_total(a in term_strategy(), b in term_strategy(), c in term_strategy()) {
        // Antisymmetry + transitivity spot checks for the ORDER BY order.
        use std::cmp::Ordering;
        if a.cmp(&b) == Ordering::Less {
            prop_assert_ne!(b.cmp(&a), Ordering::Less);
        }
        if a.cmp(&b) != Ordering::Greater && b.cmp(&c) != Ordering::Greater {
            prop_assert_ne!(a.cmp(&c), Ordering::Greater);
        }
    }
}
