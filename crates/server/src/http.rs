//! Minimal, std-only HTTP/1.1 plumbing for the SPARQL endpoint: request
//! reading with hard size limits, percent/form decoding, `Accept`
//! negotiation, and response writing (fixed `Content-Length` or chunked
//! transfer coding).
//!
//! This is deliberately not a general HTTP implementation — it covers
//! exactly what the SPARQL Protocol needs (`GET`/`POST`, a handful of
//! headers, keep-alive) with strict error taxonomy so the server can map
//! malformed input to the right 4xx status instead of guessing.

use std::io::{self, BufRead, Write};

use sp2b_sparql::results::Format;

/// Cap on the request head (request line + headers). Oversized heads are
/// rejected with `431`.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// Cap on a request body. Larger bodies are rejected with `413`.
pub const MAX_BODY_BYTES: usize = 1024 * 1024;

/// The HTTP versions the server speaks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Version {
    /// HTTP/1.0 — no chunked coding, close by default.
    Http10,
    /// HTTP/1.1 — keep-alive by default, chunked responses allowed.
    Http11,
}

/// A parsed request.
#[derive(Debug)]
pub struct Request {
    /// Upper-cased method (`GET`, `POST`, …).
    pub method: String,
    /// The raw request target (path plus optional `?query`).
    pub target: String,
    /// Protocol version.
    pub version: Version,
    /// Headers with lower-cased names, in arrival order.
    pub headers: Vec<(String, String)>,
    /// The request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

impl Request {
    /// First header value by (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == &name.to_ascii_lowercase())
            .map(|(_, v)| v.as_str())
    }

    /// The target's path component.
    pub fn path(&self) -> &str {
        self.target.split('?').next().unwrap_or(&self.target)
    }

    /// The target's raw query string, if any.
    pub fn query_string(&self) -> Option<&str> {
        self.target.split_once('?').map(|(_, q)| q)
    }

    /// Whether the client wants the connection kept open afterwards
    /// (HTTP/1.1 default yes, HTTP/1.0 default no, `Connection` header
    /// overrides either way).
    pub fn keep_alive(&self) -> bool {
        match self.header("connection").map(str::to_ascii_lowercase) {
            Some(c) if c.contains("close") => false,
            Some(c) if c.contains("keep-alive") => true,
            _ => self.version == Version::Http11,
        }
    }
}

/// Why a request could not be read. Each variant maps to exactly one
/// response status (or to silence, for a cleanly closed idle connection).
#[derive(Debug)]
pub enum ReadError {
    /// EOF before the first byte of a request — the keep-alive peer hung
    /// up; not an error.
    Closed,
    /// Transport failure mid-request (including read timeouts).
    Io(io::Error),
    /// Malformed request line or header (→ `400`).
    Bad(&'static str),
    /// Request head exceeded [`MAX_HEAD_BYTES`] (→ `431`).
    HeadTooLarge,
    /// Declared body exceeds [`MAX_BODY_BYTES`] (→ `413`).
    BodyTooLarge,
    /// `POST` without a `Content-Length` (→ `411`).
    LengthRequired,
    /// Unparseable `Content-Length` (→ `400`).
    BadLength,
}

impl From<io::Error> for ReadError {
    fn from(e: io::Error) -> Self {
        ReadError::Io(e)
    }
}

/// Reads one full request (head + body) off `reader`.
pub fn read_request(reader: &mut impl BufRead) -> Result<Request, ReadError> {
    let mut head_bytes = 0usize;
    let mut line = Vec::new();
    // Request line (tolerating stray CRLFs before it, per RFC 9112).
    let request_line = loop {
        line.clear();
        let n = reader.read_until(b'\n', &mut line)?;
        if n == 0 {
            return Err(if head_bytes == 0 {
                ReadError::Closed
            } else {
                ReadError::Bad("truncated request head")
            });
        }
        head_bytes += n;
        if head_bytes > MAX_HEAD_BYTES {
            return Err(ReadError::HeadTooLarge);
        }
        let text = trim_line(&line)?;
        if !text.is_empty() {
            break text.to_owned();
        }
    };
    let mut parts = request_line.split(' ').filter(|p| !p.is_empty());
    let (Some(method), Some(target), Some(version), None) =
        (parts.next(), parts.next(), parts.next(), parts.next())
    else {
        return Err(ReadError::Bad("malformed request line"));
    };
    let version = match version {
        "HTTP/1.1" => Version::Http11,
        "HTTP/1.0" => Version::Http10,
        _ => return Err(ReadError::Bad("unsupported HTTP version")),
    };
    if target.is_empty() || !target.starts_with('/') {
        return Err(ReadError::Bad("malformed request target"));
    }
    let method = method.to_ascii_uppercase();
    let target = target.to_owned();

    // Headers, until the empty line.
    let mut headers = Vec::new();
    loop {
        line.clear();
        let n = reader.read_until(b'\n', &mut line)?;
        if n == 0 {
            return Err(ReadError::Bad("truncated request head"));
        }
        head_bytes += n;
        if head_bytes > MAX_HEAD_BYTES {
            return Err(ReadError::HeadTooLarge);
        }
        let text = trim_line(&line)?;
        if text.is_empty() {
            break;
        }
        let Some((name, value)) = text.split_once(':') else {
            return Err(ReadError::Bad("malformed header line"));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_owned()));
    }

    let mut request = Request {
        method,
        target,
        version,
        headers,
        body: Vec::new(),
    };

    // Body: Content-Length only (chunked *request* bodies are out of
    // scope for the protocol subset; SPARQL clients send sized bodies).
    if request
        .header("transfer-encoding")
        .is_some_and(|t| !t.eq_ignore_ascii_case("identity"))
    {
        return Err(ReadError::Bad("chunked request bodies are not supported"));
    }
    let length = match request.header("content-length") {
        Some(v) => match v.trim().parse::<usize>() {
            Ok(n) => Some(n),
            Err(_) => return Err(ReadError::BadLength),
        },
        None => None,
    };
    match (request.method.as_str(), length) {
        ("POST", None) => return Err(ReadError::LengthRequired),
        (_, None) | (_, Some(0)) => {}
        (_, Some(n)) if n > MAX_BODY_BYTES => return Err(ReadError::BodyTooLarge),
        (_, Some(n)) => {
            let mut body = vec![0u8; n];
            reader.read_exact(&mut body)?;
            request.body = body;
        }
    }
    Ok(request)
}

/// Strips the trailing (CR)LF and rejects non-UTF-8 head lines.
fn trim_line(line: &[u8]) -> Result<&str, ReadError> {
    let line = line.strip_suffix(b"\n").unwrap_or(line);
    let line = line.strip_suffix(b"\r").unwrap_or(line);
    std::str::from_utf8(line).map_err(|_| ReadError::Bad("non-UTF-8 request head"))
}

/// Percent-decodes a URL component (`+` means space, as in form
/// encoding). Errors on truncated or non-hex escapes and non-UTF-8
/// results.
pub fn percent_decode(s: &str) -> Result<String, &'static str> {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' => {
                let (Some(&h), Some(&l)) = (bytes.get(i + 1), bytes.get(i + 2)) else {
                    return Err("truncated percent escape");
                };
                let (Some(h), Some(l)) = ((h as char).to_digit(16), (l as char).to_digit(16))
                else {
                    return Err("invalid percent escape");
                };
                out.push((h * 16 + l) as u8);
                i += 3;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8(out).map_err(|_| "percent-decoded bytes are not UTF-8")
}

/// Finds `key` in a url-encoded pair list (query string or form body)
/// and percent-decodes its value. `Some(Err(_))` means the key was
/// present but undecodable.
pub fn form_value(encoded: &str, key: &str) -> Option<Result<String, &'static str>> {
    for pair in encoded.split('&') {
        let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
        match percent_decode(k) {
            Ok(decoded) if decoded == key => return Some(percent_decode(v)),
            _ => continue,
        }
    }
    None
}

/// Content negotiation over the `Accept` header: picks the supported
/// result format with the highest quality value. At equal quality an
/// explicitly named media type beats a wildcard match (RFC 9110's
/// specificity rule); wildcards only expand to the formats within their
/// range (`text/*` never yields JSON) and never resurrect a format the
/// client explicitly refused with `;q=0`; among wildcard expansions
/// ties break toward JSON, the SPARQL default. A missing or empty
/// header means JSON; `None` means the client accepts none of the
/// formats we can produce → `406`.
pub fn negotiate_format(accept: Option<&str>) -> Option<Format> {
    let Some(accept) = accept else {
        return Some(Format::Json);
    };
    if accept.trim().is_empty() {
        return Some(Format::Json);
    }
    // First pass: parse entries, collecting explicit `;q=0` exclusions.
    let mut entries: Vec<(String, f64)> = Vec::new();
    let mut excluded: Vec<Format> = Vec::new();
    for entry in accept.split(',') {
        let mut parts = entry.split(';');
        let media = parts.next().unwrap_or("").trim().to_ascii_lowercase();
        if media.is_empty() {
            continue;
        }
        let mut q = 1.0f64;
        for param in parts {
            if let Some((name, value)) = param.split_once('=') {
                if name.trim().eq_ignore_ascii_case("q") {
                    q = value.trim().parse().unwrap_or(0.0);
                }
            }
        }
        if q <= 0.0 {
            if let Some(format) = Format::from_media_type(&media) {
                excluded.push(format);
            }
            continue;
        }
        entries.push((media, q));
    }
    // Second pass: rank candidates by (q, explicitly named?, default
    // order), with wildcard expansions scoped to their range and
    // filtered by the exclusions.
    let mut best: Option<(f64, bool, u8, Format)> = None;
    for (media, q) in entries {
        let (explicit, candidates): (bool, &[Format]) = match media.as_str() {
            "*/*" => (false, &[Format::Json, Format::Csv, Format::Tsv]),
            "application/*" => (false, &[Format::Json]),
            "text/*" => (false, &[Format::Csv, Format::Tsv]),
            _ => match Format::from_media_type(&media) {
                Some(Format::Json) => (true, &[Format::Json]),
                Some(Format::Csv) => (true, &[Format::Csv]),
                Some(Format::Tsv) => (true, &[Format::Tsv]),
                None => continue,
            },
        };
        for (rank, &format) in candidates.iter().enumerate() {
            if !explicit && excluded.contains(&format) {
                continue;
            }
            let pref = (candidates.len() - rank) as u8;
            let better = match best {
                None => true,
                Some((bq, bx, bp, _)) => (q, explicit, pref) > (bq, bx, bp),
            };
            if better {
                best = Some((q, explicit, pref, format));
            }
        }
    }
    best.map(|(_, _, _, f)| f)
}

/// The reason phrase for the statuses the server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        406 => "Not Acceptable",
        408 => "Request Timeout",
        411 => "Length Required",
        413 => "Content Too Large",
        415 => "Unsupported Media Type",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "",
    }
}

/// Writes a complete fixed-length response. `extra_headers` lines must
/// be pre-formatted (`Name: value`).
pub fn write_response(
    out: &mut impl Write,
    status: u16,
    content_type: &str,
    body: &[u8],
    keep_alive: bool,
    extra_headers: &[&str],
) -> io::Result<()> {
    write!(out, "HTTP/1.1 {status} {}\r\n", reason(status))?;
    write!(out, "Content-Type: {content_type}\r\n")?;
    write!(out, "Content-Length: {}\r\n", body.len())?;
    write!(
        out,
        "Connection: {}\r\n",
        if keep_alive { "keep-alive" } else { "close" }
    )?;
    for h in extra_headers {
        write!(out, "{h}\r\n")?;
    }
    out.write_all(b"\r\n")?;
    out.write_all(body)?;
    out.flush()
}

/// A `Write` adapter emitting HTTP/1.1 chunked transfer coding, with an
/// internal buffer so each chunk amortizes syscall and framing costs.
pub struct ChunkedWriter<W: Write> {
    inner: W,
    buf: Vec<u8>,
    chunk: usize,
}

impl<W: Write> ChunkedWriter<W> {
    /// Wraps `inner`, emitting chunks of about `chunk` bytes.
    pub fn new(inner: W, chunk: usize) -> Self {
        ChunkedWriter {
            inner,
            buf: Vec::with_capacity(chunk),
            chunk: chunk.max(1),
        }
    }

    fn flush_chunk(&mut self) -> io::Result<()> {
        if self.buf.is_empty() {
            return Ok(());
        }
        write!(self.inner, "{:x}\r\n", self.buf.len())?;
        self.inner.write_all(&self.buf)?;
        self.inner.write_all(b"\r\n")?;
        self.buf.clear();
        Ok(())
    }

    /// Flushes the remainder and writes the terminating zero chunk.
    pub fn finish(mut self) -> io::Result<W> {
        self.flush_chunk()?;
        self.inner.write_all(b"0\r\n\r\n")?;
        self.inner.flush()?;
        Ok(self.inner)
    }
}

impl<W: Write> Write for ChunkedWriter<W> {
    fn write(&mut self, data: &[u8]) -> io::Result<usize> {
        self.buf.extend_from_slice(data);
        if self.buf.len() >= self.chunk {
            self.flush_chunk()?;
        }
        Ok(data.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        self.flush_chunk()?;
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn parse(raw: &str) -> Result<Request, ReadError> {
        read_request(&mut Cursor::new(raw.as_bytes().to_vec()))
    }

    #[test]
    fn parses_get_with_query_string() {
        let r = parse("GET /sparql?query=SELECT%20*&x=1 HTTP/1.1\r\nHost: h\r\n\r\n").unwrap();
        assert_eq!(r.method, "GET");
        assert_eq!(r.path(), "/sparql");
        assert_eq!(r.query_string(), Some("query=SELECT%20*&x=1"));
        assert_eq!(r.header("host"), Some("h"));
        assert!(r.keep_alive(), "HTTP/1.1 defaults to keep-alive");
    }

    #[test]
    fn parses_post_body_by_content_length() {
        let r = parse(
            "POST /sparql HTTP/1.1\r\nContent-Type: application/sparql-query\r\nContent-Length: 5\r\n\r\nASK{}extra",
        )
        .unwrap();
        assert_eq!(r.body, b"ASK{}");
    }

    #[test]
    fn malformed_request_lines_are_rejected() {
        assert!(matches!(parse("GARBAGE\r\n\r\n"), Err(ReadError::Bad(_))));
        assert!(matches!(
            parse("GET /x HTTP/2\r\n\r\n"),
            Err(ReadError::Bad(_))
        ));
        assert!(matches!(
            parse("GET two words HTTP/1.1 extra\r\n\r\n"),
            Err(ReadError::Bad(_))
        ));
        assert!(matches!(
            parse("GET nopath HTTP/1.1\r\n\r\n"),
            Err(ReadError::Bad(_))
        ));
        assert!(matches!(
            parse("GET /x HTTP/1.1\r\nno-colon-here\r\n\r\n"),
            Err(ReadError::Bad(_))
        ));
    }

    #[test]
    fn eof_before_any_byte_is_closed_not_an_error() {
        assert!(matches!(parse(""), Err(ReadError::Closed)));
        assert!(matches!(
            parse("GET /x HTTP/1.1\r\n"),
            Err(ReadError::Bad(_))
        ));
    }

    #[test]
    fn oversized_heads_are_rejected() {
        let huge = format!(
            "GET /x HTTP/1.1\r\nBig: {}\r\n\r\n",
            "v".repeat(MAX_HEAD_BYTES)
        );
        assert!(matches!(parse(&huge), Err(ReadError::HeadTooLarge)));
    }

    #[test]
    fn content_length_errors_are_distinguished() {
        assert!(matches!(
            parse("POST /sparql HTTP/1.1\r\n\r\n"),
            Err(ReadError::LengthRequired)
        ));
        assert!(matches!(
            parse("POST /sparql HTTP/1.1\r\nContent-Length: NaN\r\n\r\n"),
            Err(ReadError::BadLength)
        ));
        assert!(matches!(
            parse("POST /sparql HTTP/1.1\r\nContent-Length: 99999999\r\n\r\n"),
            Err(ReadError::BodyTooLarge)
        ));
    }

    #[test]
    fn keep_alive_rules() {
        let r = parse("GET /x HTTP/1.0\r\n\r\n").unwrap();
        assert!(!r.keep_alive(), "HTTP/1.0 defaults to close");
        let r = parse("GET /x HTTP/1.0\r\nConnection: keep-alive\r\n\r\n").unwrap();
        assert!(r.keep_alive());
        let r = parse("GET /x HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        assert!(!r.keep_alive());
    }

    #[test]
    fn percent_decoding() {
        assert_eq!(
            percent_decode("SELECT%20%3Fs+WHERE%7B%7D").unwrap(),
            "SELECT ?s WHERE{}"
        );
        assert_eq!(percent_decode("a%2Bb").unwrap(), "a+b");
        assert!(percent_decode("bad%2").is_err());
        assert!(percent_decode("bad%zz").is_err());
        assert!(percent_decode("%ff%fe").is_err(), "invalid UTF-8");
    }

    #[test]
    fn form_values() {
        let body = "default-graph-uri=&query=ASK%20%7B%7D&format=json";
        assert_eq!(form_value(body, "query").unwrap().unwrap(), "ASK {}");
        assert_eq!(form_value(body, "format").unwrap().unwrap(), "json");
        assert!(form_value(body, "missing").is_none());
        assert!(form_value("query=%2", "query").unwrap().is_err());
    }

    #[test]
    fn accept_negotiation() {
        assert_eq!(negotiate_format(None), Some(Format::Json));
        assert_eq!(negotiate_format(Some("*/*")), Some(Format::Json));
        assert_eq!(negotiate_format(Some("text/csv")), Some(Format::Csv));
        assert_eq!(
            negotiate_format(Some("text/tab-separated-values;q=0.9, text/csv;q=0.1")),
            Some(Format::Tsv)
        );
        assert_eq!(
            negotiate_format(Some("application/sparql-results+json;q=0.5, text/csv")),
            Some(Format::Csv)
        );
        // q=0 removes a format from consideration — even when a later
        // wildcard would otherwise re-admit it.
        assert_eq!(
            negotiate_format(Some("text/csv;q=0, */*")),
            Some(Format::Json)
        );
        assert_eq!(
            negotiate_format(Some("application/sparql-results+json;q=0, */*")),
            Some(Format::Csv)
        );
        assert_eq!(
            negotiate_format(Some(
                "application/sparql-results+json;q=0, text/csv;q=0, text/tab-separated-values;q=0, */*"
            )),
            None
        );
        // Wildcards expand only within their range: text/* must never
        // produce an application/* response.
        assert_eq!(negotiate_format(Some("text/*")), Some(Format::Csv));
        assert_eq!(negotiate_format(Some("application/*")), Some(Format::Json));
        assert_eq!(
            negotiate_format(Some("text/*;q=0.9, application/*;q=0.1")),
            Some(Format::Csv)
        );
        // At equal quality an explicitly named type beats a wildcard
        // (RFC 9110 specificity) — the common `X, */*` header shape.
        assert_eq!(negotiate_format(Some("text/csv, */*")), Some(Format::Csv));
        assert_eq!(
            negotiate_format(Some("*/*, text/tab-separated-values")),
            Some(Format::Tsv)
        );
        assert_eq!(negotiate_format(Some("application/xml")), None);
    }

    #[test]
    fn chunked_writer_frames_and_terminates() {
        let mut w = ChunkedWriter::new(Vec::new(), 4);
        w.write_all(b"ab").unwrap();
        w.write_all(b"cdef").unwrap(); // crosses the chunk size → flush
        let out = w.finish().unwrap();
        let text = String::from_utf8(out).unwrap();
        assert_eq!(text, "6\r\nabcdef\r\n0\r\n\r\n");
    }

    #[test]
    fn fixed_length_response_has_framing_headers() {
        let mut out = Vec::new();
        write_response(&mut out, 400, "text/plain", b"nope", true, &[]).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 400 Bad Request\r\n"), "{text}");
        assert!(text.contains("Content-Length: 4\r\n"), "{text}");
        assert!(text.contains("Connection: keep-alive\r\n"), "{text}");
        assert!(text.ends_with("\r\n\r\nnope"), "{text}");
    }
}
