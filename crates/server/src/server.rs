//! The endpoint server: a `TcpListener` accept loop feeding a fixed
//! worker thread pool, every worker holding a cloned [`QueryEngine`]
//! over the one shared store.
//!
//! Lifecycle: [`spawn`] binds, starts the accept thread and the workers,
//! and returns a [`ServerHandle`]. The accept thread pushes connections
//! into a requeue-capable [`ConnQueue`] the workers pull from — bounded
//! by [`ServerConfig::max_queue`]: when every worker is busy and the
//! backlog is full, new connections are **shed** with
//! `503 Service Unavailable` + `Retry-After` instead of queueing
//! unboundedly, so overload degrades into fast explicit rejections
//! rather than creeping latency for everyone. Each
//! worker runs a keep-alive loop per connection — and hands an *idle*
//! connection back to the queue whenever other connections are waiting,
//! so more clients than workers round-robin instead of starving —
//! parsing requests with the strict reader in [`crate::http`] and
//! answering them via the streaming result writers in
//! [`sp2b_sparql::results`]. [`ServerHandle::shutdown`] (also
//! run on drop) flips the shutdown flag, wakes the listener with a
//! loopback connection, lets in-flight requests finish, and joins every
//! thread — the graceful-drain contract the CI smoke job asserts.
//!
//! Response strategy: bodies buffer up to a spill threshold; results
//! that fit are sent with `Content-Length` (and query timeouts can still
//! become a clean `408`), larger results switch mid-flight to chunked
//! transfer coding and stream straight off the [`Solutions`] iterator —
//! SELECT results never materialize server-side. A client that
//! disconnects mid-stream surfaces as a write error, which cancels the
//! query and (via `Solutions` drop) joins any exchange workers it had
//! fanned out.

use std::collections::VecDeque;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use sp2b_sparql::results::{write_solutions, WriteError};
use sp2b_sparql::{Error as SparqlError, QueryEngine, Solutions};

use crate::http::{
    form_value, negotiate_format, read_request, write_response, ChunkedWriter, ReadError, Request,
    Version,
};

/// How often an idle keep-alive connection re-checks the shutdown flag.
const IDLE_TICK: Duration = Duration::from_millis(250);

/// Read deadline once a request has started arriving.
const REQUEST_READ_TIMEOUT: Duration = Duration::from_secs(10);

/// Per-syscall write deadline. A client that stops *reading* mid-response
/// stalls the worker in `write` via TCP backpressure; this bounds the
/// stall (the write errors, the query is cancelled, the connection is
/// dropped) so a handful of zombie readers cannot wedge the pool — or
/// make the join-everything shutdown hang forever.
const WRITE_TIMEOUT: Duration = Duration::from_secs(30);

/// Bodies up to this many bytes are sent with `Content-Length`; larger
/// ones spill into chunked streaming.
const SPILL_THRESHOLD: usize = 64 * 1024;

/// Target chunk size of streamed bodies.
const CHUNK_BYTES: usize = 16 * 1024;

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address (port 0 for an ephemeral port — see
    /// [`ServerHandle::addr`] for the resolved one).
    pub addr: SocketAddr,
    /// Worker threads (each holding its own engine clone). Connections
    /// beyond this many queue at the accept channel.
    pub workers: usize,
    /// Per-request query timeout (`None`: no timeout). Applied on top of
    /// whatever timeout the engine already carries.
    pub timeout: Option<Duration>,
    /// Load-shedding bound on the accept queue: when no worker is idle
    /// and this many connections already wait for one, a newly accepted
    /// connection is answered `503 Service Unavailable` with
    /// `Retry-After` and closed instead of queueing unboundedly (the
    /// shed count lands in [`StatsSnapshot::shed`]). Keep-alive
    /// connections a worker hands back for fairness are never shed —
    /// shedding applies to *new* arrivals only.
    pub max_queue: usize,
}

impl Default for ServerConfig {
    /// Loopback on an ephemeral port, 4 workers, 30 s query timeout, a
    /// 1024-connection accept queue.
    fn default() -> Self {
        ServerConfig {
            addr: SocketAddr::from(([127, 0, 0, 1], 0)),
            workers: 4,
            timeout: Some(Duration::from_secs(30)),
            max_queue: 1024,
        }
    }
}

/// Monotonic counters the workers update; snapshot with
/// [`ServerHandle::stats`].
#[derive(Debug, Default)]
struct Stats {
    connections: AtomicU64,
    requests: AtomicU64,
    ok: AtomicU64,
    client_errors: AtomicU64,
    timeouts: AtomicU64,
    server_errors: AtomicU64,
    aborted: AtomicU64,
    rows: AtomicU64,
    shed: AtomicU64,
}

/// A point-in-time copy of the server counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Accepted connections.
    pub connections: u64,
    /// Requests parsed far enough to be routed.
    pub requests: u64,
    /// `200` responses completed.
    pub ok: u64,
    /// `4xx` responses (excluding timeouts).
    pub client_errors: u64,
    /// `408` responses plus queries cancelled mid-stream by the timeout.
    pub timeouts: u64,
    /// `5xx` responses.
    pub server_errors: u64,
    /// Connections lost mid-response (client hung up; query cancelled).
    pub aborted: u64,
    /// Result rows delivered over the wire.
    pub rows: u64,
    /// Connections shed with `503` because the accept queue was full
    /// (see [`ServerConfig::max_queue`]). Shed connections are not
    /// counted in `connections`/`requests`.
    pub shed: u64,
}

impl std::fmt::Display for StatsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} connection(s), {} request(s): {} ok ({} rows), {} client error(s), \
             {} timeout(s), {} server error(s), {} aborted, {} shed",
            self.connections,
            self.requests,
            self.ok,
            self.rows,
            self.client_errors,
            self.timeouts,
            self.server_errors,
            self.aborted,
            self.shed,
        )
    }
}

impl Stats {
    fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            connections: self.connections.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed),
            ok: self.ok.load(Ordering::Relaxed),
            client_errors: self.client_errors.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            server_errors: self.server_errors.load(Ordering::Relaxed),
            aborted: self.aborted.load(Ordering::Relaxed),
            rows: self.rows.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
        }
    }
}

/// A running server. Dropping the handle shuts the server down
/// gracefully (prefer calling [`ServerHandle::shutdown`] to also get
/// the final counters).
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    stats: Arc<Stats>,
}

impl ServerHandle {
    /// The resolved listen address (the actual port when the config
    /// asked for port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The query endpoint URL.
    pub fn endpoint_url(&self) -> String {
        format!("http://{}/sparql", self.addr)
    }

    /// Current counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    /// Graceful shutdown: stop accepting, let in-flight requests finish,
    /// join every thread, return the final counters.
    pub fn shutdown(mut self) -> StatsSnapshot {
        self.shutdown_inner();
        self.stats.snapshot()
    }

    fn shutdown_inner(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Wake the blocking accept() with a loopback connection.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// One live connection: the socket plus its buffered reader (which may
/// hold a pipelined next request), so a connection can move between
/// workers without losing framing state.
struct Conn {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Conn {
    fn new(stream: TcpStream) -> io::Result<Conn> {
        let _ = stream.set_nodelay(true);
        let _ = stream.set_write_timeout(Some(WRITE_TIMEOUT));
        let reader = BufReader::with_capacity(8 * 1024, stream.try_clone()?);
        Ok(Conn { stream, reader })
    }
}

/// The connection queue between the accept thread and the workers: a
/// deque (so requeued keep-alive connections line up behind newly
/// accepted ones) plus a closed flag for shutdown. Unlike a plain
/// channel this supports **requeueing**, which is what keeps more
/// clients than workers from starving: a worker whose connection has
/// gone idle while others wait puts it back and picks up the next one,
/// round-robining the pool across all live connections. It also tracks
/// how many workers are *blocked waiting* for a connection, which is
/// what makes [`ConnQueue::try_push`]'s load-shedding decision exact: a
/// connection is shed only when nobody could serve it promptly.
#[derive(Default)]
struct QueueState {
    conns: VecDeque<Conn>,
    closed: bool,
    /// Workers currently blocked in [`ConnQueue::pop`].
    waiting: usize,
}

#[derive(Default)]
struct ConnQueue {
    state: Mutex<QueueState>,
    ready: Condvar,
}

impl ConnQueue {
    /// Unconditional enqueue — the worker *requeue* path (a live
    /// keep-alive client must never be shed once accepted).
    fn push(&self, conn: Conn) {
        if let Ok(mut state) = self.state.lock() {
            state.conns.push_back(conn);
            self.ready.notify_one();
        }
    }

    /// Bounded enqueue — the accept path: refuses (returning the
    /// connection for a `503`) when no worker is waiting and `max_depth`
    /// connections are already queued.
    fn try_push(&self, conn: Conn, max_depth: usize) -> Result<(), Conn> {
        let Ok(mut state) = self.state.lock() else {
            return Err(conn);
        };
        if state.waiting == 0 && state.conns.len() >= max_depth {
            return Err(conn);
        }
        state.conns.push_back(conn);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks for the next connection; `None` once the queue is closed
    /// *and* drained (workers exit then).
    fn pop(&self) -> Option<Conn> {
        let mut state = self.state.lock().ok()?;
        loop {
            if let Some(conn) = state.conns.pop_front() {
                return Some(conn);
            }
            if state.closed {
                return None;
            }
            state.waiting += 1;
            match self.ready.wait(state) {
                Ok(mut s) => {
                    s.waiting -= 1;
                    state = s;
                }
                Err(_) => return None,
            }
        }
    }

    /// True when another connection is waiting for a worker.
    fn has_pending(&self) -> bool {
        self.state
            .lock()
            .map(|s| !s.conns.is_empty())
            .unwrap_or(false)
    }

    fn close(&self) {
        if let Ok(mut state) = self.state.lock() {
            state.closed = true;
            self.ready.notify_all();
        }
    }
}

/// Binds and starts the server: an accept thread plus
/// [`ServerConfig::workers`] worker threads, each owning a clone of
/// `engine` (an `Arc` bump over the one shared store).
pub fn spawn(engine: QueryEngine, cfg: &ServerConfig) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(cfg.addr)?;
    let addr = listener.local_addr()?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let stats = Arc::new(Stats::default());
    let engine = match cfg.timeout {
        Some(t) => engine.timeout(t),
        None => engine,
    };
    let queue = Arc::new(ConnQueue::default());
    let mut workers = Vec::with_capacity(cfg.workers.max(1));
    for i in 0..cfg.workers.max(1) {
        let worker = Worker {
            engine: engine.clone(),
            shutdown: Arc::clone(&shutdown),
            stats: Arc::clone(&stats),
            queue: Arc::clone(&queue),
        };
        workers.push(
            std::thread::Builder::new()
                .name(format!("sp2b-http-{i}"))
                .spawn(move || worker.run())?,
        );
    }
    let accept = {
        let shutdown = Arc::clone(&shutdown);
        let stats = Arc::clone(&stats);
        let queue = Arc::clone(&queue);
        let max_queue = cfg.max_queue;
        std::thread::Builder::new()
            .name("sp2b-http-accept".into())
            .spawn(move || {
                for stream in listener.incoming() {
                    if shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let Ok(conn) = Conn::new(stream) else {
                        continue;
                    };
                    match queue.try_push(conn, max_queue) {
                        Ok(()) => {
                            stats.connections.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(conn) => {
                            // Load shedding: every worker is busy and the
                            // backlog is full.
                            stats.shed.fetch_add(1, Ordering::Relaxed);
                            shed_connection(conn);
                        }
                    }
                }
                // Closing the queue lets idle workers drain and exit.
                queue.close();
            })?
    };
    Ok(ServerHandle {
        addr,
        shutdown,
        accept: Some(accept),
        workers,
        stats,
    })
}

/// How long a shed connection may linger while its request bytes drain
/// (see [`shed_connection`]); also the byte cap's time bound on the
/// accept loop per shed.
const SHED_LINGER: Duration = Duration::from_millis(250);

/// Sheds one connection with `503` + `Retry-After`, then **lingers**:
/// the response goes out first, `shutdown(Write)` sends the FIN so the
/// client sees a complete response, and the client's (never-read)
/// request bytes are drained until EOF — closing a socket with unread
/// data in its receive buffer would send an RST that can destroy the
/// queued 503 before the client reads it. The drain is bounded in both
/// time ([`SHED_LINGER`]) and bytes, so a shed storm stalls the accept
/// loop by at most the linger per connection — at which point the
/// kernel's SYN backlog sheds for us.
fn shed_connection(conn: Conn) {
    let _ = write_response(
        &mut (&mut &conn.stream),
        503,
        "text/plain; charset=utf-8",
        b"server overloaded; please retry\n",
        false,
        &["Retry-After: 1"],
    );
    let _ = conn.stream.shutdown(std::net::Shutdown::Write);
    let _ = conn.stream.set_read_timeout(Some(SHED_LINGER));
    let mut reader = conn.reader;
    let mut discard = [0u8; 4096];
    let mut drained = 0usize;
    while let Ok(n) = std::io::Read::read(&mut reader, &mut discard) {
        if n == 0 {
            break; // client closed after reading the 503: clean FIN
        }
        drained += n;
        if drained >= 64 * 1024 {
            break;
        }
    }
}

/// Per-thread server state: an owned engine clone plus the shared flags.
struct Worker {
    engine: QueryEngine,
    shutdown: Arc<AtomicBool>,
    stats: Arc<Stats>,
    queue: Arc<ConnQueue>,
}

impl Worker {
    fn run(&self) {
        while let Some(conn) = self.queue.pop() {
            if let Some(idle) = self.serve_connection(conn) {
                // The connection went idle while others were waiting:
                // rotate it to the back of the queue and serve the next.
                self.queue.push(idle);
            }
        }
    }

    fn stopping(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// One connection's keep-alive loop: wait (in shutdown-checkable
    /// ticks) for the next request, serve it, repeat until the peer
    /// closes, an error breaks framing, or the server drains. Returns
    /// `Some(conn)` to hand an idle connection back to the queue when
    /// other connections are waiting for a worker (fairness under more
    /// clients than workers).
    fn serve_connection(&self, mut conn: Conn) -> Option<Conn> {
        loop {
            // Idle wait at the request boundary.
            let _ = conn.stream.set_read_timeout(Some(IDLE_TICK));
            match conn.reader.fill_buf() {
                Ok([]) => return None, // peer closed cleanly
                Ok(_) => {}
                Err(e) if would_block(&e) => {
                    if self.stopping() {
                        return None;
                    }
                    if self.queue.has_pending() {
                        return Some(conn); // yield the worker
                    }
                    continue;
                }
                Err(_) => return None,
            }
            // Bytes have arrived: finish reading this request even while
            // draining (the response still goes out), but bound the read.
            let _ = conn.stream.set_read_timeout(Some(REQUEST_READ_TIMEOUT));
            match read_request(&mut conn.reader) {
                Ok(request) => {
                    let keep = self.handle(&conn.stream, &request);
                    if !keep || self.stopping() {
                        return None;
                    }
                    // Served and still healthy: if nothing is pipelined
                    // and others wait, rotate; otherwise keep serving.
                    if conn.reader.buffer().is_empty() && self.queue.has_pending() {
                        return Some(conn);
                    }
                }
                Err(ReadError::Closed) | Err(ReadError::Io(_)) => return None,
                Err(e) => {
                    // Framing is broken (or suspect): answer and close.
                    let (status, message) = match e {
                        ReadError::Bad(m) => (400, m),
                        ReadError::HeadTooLarge => (431, "request head too large"),
                        ReadError::BodyTooLarge => (413, "request body too large"),
                        ReadError::LengthRequired => (411, "Content-Length required"),
                        ReadError::BadLength => (400, "invalid Content-Length"),
                        ReadError::Closed | ReadError::Io(_) => unreachable!(),
                    };
                    self.stats.requests.fetch_add(1, Ordering::Relaxed);
                    let _ = self.error(&conn.stream, status, message, false);
                    return None;
                }
            }
        }
    }

    /// Routes one request. Returns whether to keep the connection.
    fn handle(&self, stream: &TcpStream, request: &Request) -> bool {
        self.stats.requests.fetch_add(1, Ordering::Relaxed);
        let keep = request.keep_alive();
        match (request.method.as_str(), request.path()) {
            ("GET", "/") | ("HEAD", "/") => {
                let body = "sp2b SPARQL endpoint\n\nPOST /sparql (application/sparql-query or \
                            form) or GET /sparql?query=...\nResult formats (Accept): \
                            application/sparql-results+json, text/csv, \
                            text/tab-separated-values\n";
                self.stats.ok.fetch_add(1, Ordering::Relaxed);
                write_response(
                    &mut (&mut &*stream),
                    200,
                    "text/plain; charset=utf-8",
                    if request.method == "HEAD" {
                        b""
                    } else {
                        body.as_bytes()
                    },
                    keep,
                    &[],
                )
                .is_ok()
                    && keep
            }
            ("GET", "/sparql") => match self.query_from_get(request) {
                Ok(text) => self.run_query(stream, request, &text, keep),
                Err(message) => self.error(stream, 400, message, keep),
            },
            ("POST", "/sparql") => match self.query_from_post(request) {
                Ok(text) => self.run_query(stream, request, &text, keep),
                Err((status, message)) => self.error(stream, status, message, keep),
            },
            (_, "/sparql") | (_, "/") => {
                self.error(stream, 405, "method not allowed; use GET or POST", keep)
            }
            _ => self.error(stream, 404, "unknown path; the endpoint is /sparql", keep),
        }
    }

    fn query_from_get(&self, request: &Request) -> Result<String, &'static str> {
        let qs = request
            .query_string()
            .ok_or("missing query parameter: GET /sparql?query=...")?;
        match form_value(qs, "query") {
            Some(Ok(text)) => Ok(text),
            Some(Err(e)) => Err(e),
            None => Err("missing query parameter: GET /sparql?query=..."),
        }
    }

    fn query_from_post(&self, request: &Request) -> Result<String, (u16, &'static str)> {
        let content_type = request
            .header("content-type")
            .map(|ct| {
                ct.split(';')
                    .next()
                    .unwrap_or(ct)
                    .trim()
                    .to_ascii_lowercase()
            })
            .unwrap_or_default();
        match content_type.as_str() {
            "application/sparql-query" => String::from_utf8(request.body.clone())
                .map_err(|_| (400, "query body is not UTF-8")),
            "application/x-www-form-urlencoded" => {
                let body = std::str::from_utf8(&request.body)
                    .map_err(|_| (400, "form body is not UTF-8"))?;
                match form_value(body, "query") {
                    Some(Ok(text)) => Ok(text),
                    Some(Err(e)) => Err((400, e)),
                    None => Err((400, "missing query form field")),
                }
            }
            _ => Err((
                415,
                "unsupported Content-Type; use application/sparql-query or \
                 application/x-www-form-urlencoded",
            )),
        }
    }

    /// Prepares and streams one query. Returns whether to keep the
    /// connection open.
    fn run_query(&self, stream: &TcpStream, request: &Request, text: &str, keep: bool) -> bool {
        let Some(format) = negotiate_format(request.header("accept")) else {
            return self.error(
                stream,
                406,
                "no supported result format in Accept; supported: \
                 application/sparql-results+json, text/csv, text/tab-separated-values",
                keep,
            );
        };
        let prepared = match self.engine.prepare(text) {
            Ok(p) => p,
            // Parse errors, unbound variables and unsupported constructs
            // are all the client's query, not our failure: 400.
            Err(e) => return self.error_string(stream, 400, &e.to_string(), keep),
        };
        let ask = prepared.is_ask();
        let cancel = self.engine.cancellation();
        let mut solutions: Solutions<'_> = self.engine.solutions_with(&prepared, &cancel);
        let content_type = if ask {
            format.ask_content_type()
        } else {
            format.content_type()
        };
        let mut body = StreamBody::new(stream, content_type, keep, request.version);
        match write_solutions(&mut body, format, &mut solutions, ask) {
            Ok(rows) => match body.finish() {
                Ok(keep_after) => {
                    self.stats.ok.fetch_add(1, Ordering::Relaxed);
                    self.stats.rows.fetch_add(rows, Ordering::Relaxed);
                    keep_after
                }
                Err(_) => {
                    self.stats.aborted.fetch_add(1, Ordering::Relaxed);
                    false
                }
            },
            Err(WriteError::Query(e)) => {
                let status = match e {
                    SparqlError::Cancelled => 408,
                    _ => 500,
                };
                if body.is_buffering() {
                    // Headers not sent yet: a clean error response.
                    self.error_string(stream, status, &describe(&e), keep)
                } else {
                    // Mid-stream: the status line is gone; truncate the
                    // chunked body (no terminating chunk) and close, so
                    // the client sees a broken transfer, not a clean end.
                    match status {
                        408 => self.stats.timeouts.fetch_add(1, Ordering::Relaxed),
                        _ => self.stats.server_errors.fetch_add(1, Ordering::Relaxed),
                    };
                    false
                }
            }
            Err(WriteError::Io(_)) => {
                // The client hung up mid-stream: cancel the query so the
                // evaluator (and any exchange workers, via the Solutions
                // drop below) stop immediately instead of computing rows
                // nobody will read.
                cancel.cancel();
                self.stats.aborted.fetch_add(1, Ordering::Relaxed);
                false
            }
        }
    }

    fn error(&self, stream: &TcpStream, status: u16, message: &str, keep: bool) -> bool {
        self.error_string(stream, status, message, keep)
    }

    fn error_string(&self, stream: &TcpStream, status: u16, message: &str, keep: bool) -> bool {
        match status {
            408 => &self.stats.timeouts,
            400..=499 => &self.stats.client_errors,
            _ => &self.stats.server_errors,
        }
        .fetch_add(1, Ordering::Relaxed);
        let body = format!("{message}\n");
        write_response(
            &mut (&mut &*stream),
            status,
            "text/plain; charset=utf-8",
            body.as_bytes(),
            keep,
            &[],
        )
        .is_ok()
            && keep
    }
}

/// Human phrasing of mid-query errors on the wire.
fn describe(e: &SparqlError) -> String {
    match e {
        SparqlError::Cancelled => "query timed out".to_owned(),
        other => other.to_string(),
    }
}

fn would_block(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// The response body sink: buffers up to [`SPILL_THRESHOLD`] bytes so
/// small results (and errors surfacing before the first flush) get a
/// fixed `Content-Length` response, then spills into chunked streaming
/// (HTTP/1.1) or a close-delimited raw stream (HTTP/1.0).
struct StreamBody<'a> {
    stream: &'a TcpStream,
    content_type: &'a str,
    keep: bool,
    version: Version,
    state: BodyState<'a>,
}

enum BodyState<'a> {
    Buffering(Vec<u8>),
    Chunked(ChunkedWriter<&'a TcpStream>),
    Raw(&'a TcpStream),
}

impl<'a> StreamBody<'a> {
    fn new(stream: &'a TcpStream, content_type: &'a str, keep: bool, version: Version) -> Self {
        StreamBody {
            stream,
            content_type,
            keep,
            version,
            state: BodyState::Buffering(Vec::with_capacity(4 * 1024)),
        }
    }

    /// True while the status line has not been sent (errors can still
    /// become clean responses).
    fn is_buffering(&self) -> bool {
        matches!(self.state, BodyState::Buffering(_))
    }

    /// Sends the response head and the buffered prefix, switching to the
    /// streaming state.
    fn spill(&mut self) -> io::Result<()> {
        let BodyState::Buffering(buf) =
            std::mem::replace(&mut self.state, BodyState::Raw(self.stream))
        else {
            return Ok(());
        };
        let mut out = self.stream;
        match self.version {
            Version::Http11 => {
                write!(
                    out,
                    "HTTP/1.1 200 OK\r\nContent-Type: {}\r\nTransfer-Encoding: chunked\r\n\
                     Connection: {}\r\n\r\n",
                    self.content_type,
                    if self.keep { "keep-alive" } else { "close" }
                )?;
                let mut chunked = ChunkedWriter::new(self.stream, CHUNK_BYTES);
                chunked.write_all(&buf)?;
                self.state = BodyState::Chunked(chunked);
            }
            Version::Http10 => {
                // No chunked coding in 1.0: stream raw, delimit by close.
                self.keep = false;
                write!(
                    out,
                    "HTTP/1.0 200 OK\r\nContent-Type: {}\r\nConnection: close\r\n\r\n",
                    self.content_type
                )?;
                out.write_all(&buf)?;
                self.state = BodyState::Raw(self.stream);
            }
        }
        Ok(())
    }

    /// Completes the response; returns whether the connection stays
    /// usable.
    fn finish(self) -> io::Result<bool> {
        match self.state {
            BodyState::Buffering(buf) => {
                write_response(
                    &mut (&mut &*self.stream),
                    200,
                    self.content_type,
                    &buf,
                    self.keep,
                    &[],
                )?;
                Ok(self.keep)
            }
            BodyState::Chunked(chunked) => {
                chunked.finish()?;
                Ok(self.keep)
            }
            BodyState::Raw(mut stream) => {
                stream.flush()?;
                Ok(false)
            }
        }
    }
}

impl Write for StreamBody<'_> {
    fn write(&mut self, data: &[u8]) -> io::Result<usize> {
        if let BodyState::Buffering(buf) = &mut self.state {
            buf.extend_from_slice(data);
            if buf.len() > SPILL_THRESHOLD {
                self.spill()?;
            }
            return Ok(data.len());
        }
        match &mut self.state {
            BodyState::Chunked(chunked) => chunked.write(data),
            BodyState::Raw(stream) => stream.write(data),
            BodyState::Buffering(_) => unreachable!(),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match &mut self.state {
            BodyState::Buffering(_) => Ok(()),
            BodyState::Chunked(chunked) => chunked.flush(),
            BodyState::Raw(stream) => stream.flush(),
        }
    }
}
