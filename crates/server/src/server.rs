//! The endpoint server: a `TcpListener` accept loop feeding a fixed
//! worker thread pool, every worker holding a cloned [`QueryEngine`]
//! over the one shared store.
//!
//! Lifecycle: [`spawn`] binds, starts the accept thread and the workers,
//! and returns a [`ServerHandle`]. The accept thread pushes connections
//! into a requeue-capable [`ConnQueue`] the workers pull from — bounded
//! by [`ServerConfig::max_queue`]: when every worker is busy and the
//! backlog is full, new connections are **shed** with
//! `503 Service Unavailable` + `Retry-After` instead of queueing
//! unboundedly, so overload degrades into fast explicit rejections
//! rather than creeping latency for everyone. Each
//! worker runs a keep-alive loop per connection — and hands an *idle*
//! connection back to the queue whenever other connections are waiting,
//! so more clients than workers round-robin instead of starving —
//! parsing requests with the strict reader in [`crate::http`] and
//! answering them via the streaming result writers in
//! [`sp2b_sparql::results`]. [`ServerHandle::shutdown`] (also
//! run on drop) flips the shutdown flag, wakes the listener with a
//! loopback connection, lets in-flight requests finish, and joins every
//! thread — the graceful-drain contract the CI smoke job asserts.
//!
//! Response strategy: bodies buffer up to a spill threshold; results
//! that fit are sent with `Content-Length` (and query timeouts can still
//! become a clean `408`), larger results switch mid-flight to chunked
//! transfer coding and stream straight off the [`Solutions`] iterator —
//! SELECT results never materialize server-side. A client that
//! disconnects mid-stream surfaces as a write error, which cancels the
//! query and (via `Solutions` drop) joins any exchange workers it had
//! fanned out.
//!
//! Observability: [`spawn`] registers the server's counters, queue
//! gauges and the engine's store/cache/exchange sources with the
//! process-global metrics registry ([`sp2b_obs::global`]), and two extra
//! routes surface them live — `GET /metrics` (Prometheus text
//! exposition) and `GET /stats` (JSON). Configure
//! [`ServerConfig::slow_log`] to additionally log one parseable line per
//! query whose handling time meets a threshold, with a per-operator
//! rows/time breakdown read back from the query's [`ScanCounters`].

use std::collections::VecDeque;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use sp2b_obs::{Counter, Histogram, QueryTrace};
use sp2b_sparql::results::{write_solutions, WriteError};
use sp2b_sparql::{Error as SparqlError, QueryEngine, ScanCounters, Solutions};

use crate::http::{
    form_value, negotiate_format, read_request, write_response, ChunkedWriter, ReadError, Request,
    Version,
};

/// How often an idle keep-alive connection re-checks the shutdown flag.
const IDLE_TICK: Duration = Duration::from_millis(250);

/// Read deadline once a request has started arriving.
const REQUEST_READ_TIMEOUT: Duration = Duration::from_secs(10);

/// Per-syscall write deadline. A client that stops *reading* mid-response
/// stalls the worker in `write` via TCP backpressure; this bounds the
/// stall (the write errors, the query is cancelled, the connection is
/// dropped) so a handful of zombie readers cannot wedge the pool — or
/// make the join-everything shutdown hang forever.
const WRITE_TIMEOUT: Duration = Duration::from_secs(30);

/// Bodies up to this many bytes are sent with `Content-Length`; larger
/// ones spill into chunked streaming.
const SPILL_THRESHOLD: usize = 64 * 1024;

/// Target chunk size of streamed bodies.
const CHUNK_BYTES: usize = 16 * 1024;

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address (port 0 for an ephemeral port — see
    /// [`ServerHandle::addr`] for the resolved one).
    pub addr: SocketAddr,
    /// Worker threads (each holding its own engine clone). Connections
    /// beyond this many queue at the accept channel.
    pub workers: usize,
    /// Per-request query timeout (`None`: no timeout). Applied on top of
    /// whatever timeout the engine already carries.
    pub timeout: Option<Duration>,
    /// Load-shedding bound on the accept queue: when no worker is idle
    /// and this many connections already wait for one, a newly accepted
    /// connection is answered `503 Service Unavailable` with
    /// `Retry-After` and closed instead of queueing unboundedly (the
    /// shed count lands in [`StatsSnapshot::shed`]). Keep-alive
    /// connections a worker hands back for fairness are never shed —
    /// shedding applies to *new* arrivals only.
    pub max_queue: usize,
    /// Slow-query logging (`None`: off). When set, every query whose
    /// end-to-end handling time meets the threshold emits one line to
    /// the sink, and per-operator scan counters are attached to each
    /// query so the line carries an operator breakdown.
    pub slow_log: Option<SlowLog>,
}

impl Default for ServerConfig {
    /// Loopback on an ephemeral port, 4 workers, 30 s query timeout, a
    /// 1024-connection accept queue, no slow-query log.
    fn default() -> Self {
        ServerConfig {
            addr: SocketAddr::from(([127, 0, 0, 1], 0)),
            workers: 4,
            timeout: Some(Duration::from_secs(30)),
            max_queue: 1024,
            slow_log: None,
        }
    }
}

/// Slow-query logging policy: a threshold plus a shared line sink. The
/// sink is behind a mutex so worker threads never interleave bytes —
/// every slow query is exactly one `slow-query: …` line (the CI smoke
/// job greps for the prefix).
#[derive(Clone)]
pub struct SlowLog {
    threshold: Duration,
    sink: Arc<Mutex<Box<dyn Write + Send>>>,
}

impl SlowLog {
    /// Log queries at or above `threshold` to stderr (the `sp2b serve
    /// --slow-ms` sink).
    pub fn stderr(threshold: Duration) -> SlowLog {
        SlowLog {
            threshold,
            sink: Arc::new(Mutex::new(Box::new(io::stderr()))),
        }
    }

    /// Log into an in-memory buffer the caller can inspect — the test
    /// sink (count lines, assert content).
    pub fn to_buffer(threshold: Duration) -> (SlowLog, Arc<Mutex<Vec<u8>>>) {
        let buffer = Arc::new(Mutex::new(Vec::new()));
        let log = SlowLog {
            threshold,
            sink: Arc::new(Mutex::new(Box::new(SharedBuffer(Arc::clone(&buffer))))),
        };
        (log, buffer)
    }

    fn note(&self, line: &str) {
        if let Ok(mut sink) = self.sink.lock() {
            let _ = writeln!(sink, "{line}");
            let _ = sink.flush();
        }
    }
}

impl std::fmt::Debug for SlowLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SlowLog")
            .field("threshold", &self.threshold)
            .finish_non_exhaustive()
    }
}

/// [`Write`] adapter over the shared buffer [`SlowLog::to_buffer`] hands
/// back.
struct SharedBuffer(Arc<Mutex<Vec<u8>>>);

impl Write for SharedBuffer {
    fn write(&mut self, data: &[u8]) -> io::Result<usize> {
        if let Ok(mut buf) = self.0.lock() {
            buf.extend_from_slice(data);
        }
        Ok(data.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// Monotonic counters the workers update; snapshot with
/// [`ServerHandle::stats`].
#[derive(Debug, Default)]
struct Stats {
    connections: AtomicU64,
    requests: AtomicU64,
    ok: AtomicU64,
    client_errors: AtomicU64,
    timeouts: AtomicU64,
    server_errors: AtomicU64,
    aborted: AtomicU64,
    write_timeouts: AtomicU64,
    rows: AtomicU64,
    shed: AtomicU64,
}

/// A point-in-time copy of the server counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Accepted connections.
    pub connections: u64,
    /// Requests parsed far enough to be routed.
    pub requests: u64,
    /// `200` responses completed.
    pub ok: u64,
    /// `4xx` responses (excluding timeouts).
    pub client_errors: u64,
    /// `408` responses plus queries cancelled mid-stream by the timeout.
    pub timeouts: u64,
    /// `5xx` responses.
    pub server_errors: u64,
    /// Connections lost mid-response (client hung up; query cancelled).
    pub aborted: u64,
    /// Responses killed by the per-write deadline — the client held the
    /// connection open but stopped *reading*, so a `write` stalled past
    /// [`WRITE_TIMEOUT`]. Distinct from `aborted` (an outright
    /// disconnect): a rising `write_timeouts` means slow or stalled
    /// consumers, not flaky ones.
    pub write_timeouts: u64,
    /// Result rows delivered over the wire.
    pub rows: u64,
    /// Connections shed with `503` because the accept queue was full
    /// (see [`ServerConfig::max_queue`]). Shed connections are not
    /// counted in `connections`/`requests`.
    pub shed: u64,
}

impl std::fmt::Display for StatsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} connection(s), {} request(s): {} ok ({} rows), {} client error(s), \
             {} timeout(s), {} server error(s), {} aborted, {} write-timeout(s), {} shed",
            self.connections,
            self.requests,
            self.ok,
            self.rows,
            self.client_errors,
            self.timeouts,
            self.server_errors,
            self.aborted,
            self.write_timeouts,
            self.shed,
        )
    }
}

impl Stats {
    fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            connections: self.connections.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed),
            ok: self.ok.load(Ordering::Relaxed),
            client_errors: self.client_errors.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            server_errors: self.server_errors.load(Ordering::Relaxed),
            aborted: self.aborted.load(Ordering::Relaxed),
            write_timeouts: self.write_timeouts.load(Ordering::Relaxed),
            rows: self.rows.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
        }
    }
}

/// A running server. Dropping the handle shuts the server down
/// gracefully (prefer calling [`ServerHandle::shutdown`] to also get
/// the final counters).
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    stats: Arc<Stats>,
}

impl ServerHandle {
    /// The resolved listen address (the actual port when the config
    /// asked for port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The query endpoint URL.
    pub fn endpoint_url(&self) -> String {
        format!("http://{}/sparql", self.addr)
    }

    /// Current counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    /// Graceful shutdown: stop accepting, let in-flight requests finish,
    /// join every thread, return the final counters.
    pub fn shutdown(mut self) -> StatsSnapshot {
        self.shutdown_inner();
        self.stats.snapshot()
    }

    fn shutdown_inner(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Wake the blocking accept() with a loopback connection.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// One live connection: the socket plus its buffered reader (which may
/// hold a pipelined next request), so a connection can move between
/// workers without losing framing state.
struct Conn {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Conn {
    fn new(stream: TcpStream) -> io::Result<Conn> {
        let _ = stream.set_nodelay(true);
        let _ = stream.set_write_timeout(Some(WRITE_TIMEOUT));
        let reader = BufReader::with_capacity(8 * 1024, stream.try_clone()?);
        Ok(Conn { stream, reader })
    }
}

/// The connection queue between the accept thread and the workers: a
/// deque (so requeued keep-alive connections line up behind newly
/// accepted ones) plus a closed flag for shutdown. Unlike a plain
/// channel this supports **requeueing**, which is what keeps more
/// clients than workers from starving: a worker whose connection has
/// gone idle while others wait puts it back and picks up the next one,
/// round-robining the pool across all live connections. It also tracks
/// how many workers are *blocked waiting* for a connection, which is
/// what makes [`ConnQueue::try_push`]'s load-shedding decision exact: a
/// connection is shed only when nobody could serve it promptly.
#[derive(Default)]
struct QueueState {
    conns: VecDeque<Conn>,
    closed: bool,
    /// Workers currently blocked in [`ConnQueue::pop`].
    waiting: usize,
}

#[derive(Default)]
struct ConnQueue {
    state: Mutex<QueueState>,
    ready: Condvar,
}

impl ConnQueue {
    /// Unconditional enqueue — the worker *requeue* path (a live
    /// keep-alive client must never be shed once accepted).
    fn push(&self, conn: Conn) {
        if let Ok(mut state) = self.state.lock() {
            state.conns.push_back(conn);
            self.ready.notify_one();
        }
    }

    /// Bounded enqueue — the accept path: refuses (returning the
    /// connection for a `503`) when no worker is waiting and `max_depth`
    /// connections are already queued.
    fn try_push(&self, conn: Conn, max_depth: usize) -> Result<(), Conn> {
        let Ok(mut state) = self.state.lock() else {
            return Err(conn);
        };
        if state.waiting == 0 && state.conns.len() >= max_depth {
            return Err(conn);
        }
        state.conns.push_back(conn);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks for the next connection; `None` once the queue is closed
    /// *and* drained (workers exit then).
    fn pop(&self) -> Option<Conn> {
        let mut state = self.state.lock().ok()?;
        loop {
            if let Some(conn) = state.conns.pop_front() {
                return Some(conn);
            }
            if state.closed {
                return None;
            }
            state.waiting += 1;
            match self.ready.wait(state) {
                Ok(mut s) => {
                    s.waiting -= 1;
                    state = s;
                }
                Err(_) => return None,
            }
        }
    }

    /// Connections currently queued for a worker (the `sp2b_queue_depth`
    /// gauge).
    fn depth(&self) -> usize {
        self.state.lock().map(|s| s.conns.len()).unwrap_or(0)
    }

    /// Workers currently blocked waiting for a connection (the
    /// `sp2b_workers_waiting` gauge).
    fn waiting(&self) -> usize {
        self.state.lock().map(|s| s.waiting).unwrap_or(0)
    }

    /// True when another connection is waiting for a worker.
    fn has_pending(&self) -> bool {
        self.state
            .lock()
            .map(|s| !s.conns.is_empty())
            .unwrap_or(false)
    }

    fn close(&self) {
        if let Ok(mut state) = self.state.lock() {
            state.closed = true;
            self.ready.notify_all();
        }
    }
}

/// Binds and starts the server: an accept thread plus
/// [`ServerConfig::workers`] worker threads, each owning a clone of
/// `engine` (an `Arc` bump over the one shared store).
pub fn spawn(engine: QueryEngine, cfg: &ServerConfig) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(cfg.addr)?;
    let addr = listener.local_addr()?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let stats = Arc::new(Stats::default());
    let engine = match cfg.timeout {
        Some(t) => engine.timeout(t),
        None => engine,
    };
    let queue = Arc::new(ConnQueue::default());
    let (latency, slow) = register_metrics(&stats, &queue, &engine);
    let mut workers = Vec::with_capacity(cfg.workers.max(1));
    for i in 0..cfg.workers.max(1) {
        let worker = Worker {
            engine: engine.clone(),
            shutdown: Arc::clone(&shutdown),
            stats: Arc::clone(&stats),
            queue: Arc::clone(&queue),
            latency: latency.clone(),
            slow: slow.clone(),
            slow_log: cfg.slow_log.clone(),
        };
        workers.push(
            std::thread::Builder::new()
                .name(format!("sp2b-http-{i}"))
                .spawn(move || worker.run())?,
        );
    }
    let accept = {
        let shutdown = Arc::clone(&shutdown);
        let stats = Arc::clone(&stats);
        let queue = Arc::clone(&queue);
        let max_queue = cfg.max_queue;
        std::thread::Builder::new()
            .name("sp2b-http-accept".into())
            .spawn(move || {
                for stream in listener.incoming() {
                    if shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let Ok(conn) = Conn::new(stream) else {
                        continue;
                    };
                    match queue.try_push(conn, max_queue) {
                        Ok(()) => {
                            stats.connections.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(conn) => {
                            // Load shedding: every worker is busy and the
                            // backlog is full.
                            stats.shed.fetch_add(1, Ordering::Relaxed);
                            shed_connection(conn);
                        }
                    }
                }
                // Closing the queue lets idle workers drain and exit.
                queue.close();
            })?
    };
    Ok(ServerHandle {
        addr,
        shutdown,
        accept: Some(accept),
        workers,
        stats,
    })
}

/// Registers the server's metric sources with the process-global
/// registry and returns the two series the workers record into directly
/// (the request-latency histogram and the slow-query counter).
///
/// The counters are *callbacks* reading the same [`Stats`] the request
/// paths already increment — `/metrics` scrapes and
/// [`ServerHandle::stats`] can never disagree — and re-registering on
/// every spawn hands the series to the newest server. Queue gauges hold
/// only a [`Weak`] so a dead server reads as zero instead of keeping its
/// queue alive; cache and store sources read through an engine clone
/// (an `Arc` bump over the shared store).
fn register_metrics(
    stats: &Arc<Stats>,
    queue: &Arc<ConnQueue>,
    engine: &QueryEngine,
) -> (Histogram, Counter) {
    let reg = sp2b_obs::global();
    macro_rules! stat_counter {
        ($name:literal, $help:literal, $field:ident) => {{
            let s = Arc::clone(stats);
            reg.counter_fn($name, $help, move || s.$field.load(Ordering::Relaxed));
        }};
    }
    stat_counter!(
        "sp2b_connections_total",
        "Connections accepted by the SPARQL endpoint",
        connections
    );
    stat_counter!(
        "sp2b_requests_total",
        "Requests parsed far enough to be routed",
        requests
    );
    stat_counter!("sp2b_responses_ok_total", "200 responses completed", ok);
    stat_counter!(
        "sp2b_client_errors_total",
        "4xx responses (excluding timeouts)",
        client_errors
    );
    stat_counter!(
        "sp2b_timeouts_total",
        "408 responses plus queries cancelled mid-stream by the timeout",
        timeouts
    );
    stat_counter!("sp2b_server_errors_total", "5xx responses", server_errors);
    stat_counter!(
        "sp2b_aborted_total",
        "Connections lost mid-response (client hung up; query cancelled)",
        aborted
    );
    stat_counter!(
        "sp2b_write_timeouts_total",
        "Responses killed by the per-write deadline (client stopped reading)",
        write_timeouts
    );
    stat_counter!(
        "sp2b_rows_total",
        "Result rows delivered over the wire",
        rows
    );
    stat_counter!(
        "sp2b_shed_total",
        "Connections shed with 503 because the accept queue was full",
        shed
    );
    let q = Arc::downgrade(queue);
    reg.gauge_fn(
        "sp2b_queue_depth",
        "Connections queued for a worker",
        move || q.upgrade().map_or(0, |q| q.depth() as i64),
    );
    let q = Arc::downgrade(queue);
    reg.gauge_fn(
        "sp2b_workers_waiting",
        "Worker threads blocked waiting for a connection",
        move || q.upgrade().map_or(0, |q| q.waiting() as i64),
    );
    let e = engine.clone();
    reg.counter_fn(
        "sp2b_cache_hits_total",
        "Block lookups served from the store's block cache",
        move || e.cache_stats().map_or(0, |c| c.hits),
    );
    let e = engine.clone();
    reg.counter_fn(
        "sp2b_cache_misses_total",
        "Block lookups that read and decoded from disk",
        move || e.cache_stats().map_or(0, |c| c.misses),
    );
    let e = engine.clone();
    reg.counter_fn(
        "sp2b_cache_evictions_total",
        "Blocks evicted to stay within the cache byte budget",
        move || e.cache_stats().map_or(0, |c| c.evictions),
    );
    let e = engine.clone();
    reg.gauge_fn(
        "sp2b_cache_resident_bytes",
        "Bytes currently charged against the cache budget",
        move || e.cache_stats().map_or(0, |c| c.resident_bytes as i64),
    );
    let e = engine.clone();
    reg.gauge_fn(
        "sp2b_cache_resident_blocks",
        "Decoded blocks currently resident in the cache",
        move || e.cache_stats().map_or(0, |c| c.resident_blocks as i64),
    );
    let e = engine.clone();
    reg.gauge_fn(
        "sp2b_cache_peak_resident_bytes",
        "High-water mark of cache residency since open",
        move || e.cache_stats().map_or(0, |c| c.peak_resident_bytes as i64),
    );
    let e = engine.clone();
    reg.gauge_fn(
        "sp2b_cache_budget_bytes",
        "The configured cache byte budget",
        move || e.cache_stats().map_or(0, |c| c.budget_bytes as i64),
    );
    let e = engine.clone();
    reg.gauge_fn(
        "sp2b_store_triples",
        "Triples in the served store",
        move || e.store().len() as i64,
    );
    let e = engine.clone();
    reg.gauge_fn(
        "sp2b_store_predicates",
        "Distinct predicates in the served store's statistics (0 when none)",
        move || e.store().stats().map_or(0, |s| s.predicates.len() as i64),
    );
    let e = engine.clone();
    reg.gauge_fn(
        "sp2b_store_characteristic_sets",
        "Characteristic sets in the served store's statistics (0 when none)",
        move || {
            e.store()
                .stats()
                .map_or(0, |s| s.characteristic_sets.len() as i64)
        },
    );
    sp2b_sparql::par::diag::register_metrics();
    let latency = reg.histogram(
        "sp2b_request_seconds",
        "End-to-end request handling time (routing through response)",
    );
    let slow = reg.counter(
        "sp2b_slow_queries_total",
        "Queries at or above the configured slow-log threshold",
    );
    (latency, slow)
}

/// How long a shed connection may linger while its request bytes drain
/// (see [`shed_connection`]); also the byte cap's time bound on the
/// accept loop per shed.
const SHED_LINGER: Duration = Duration::from_millis(250);

/// Sheds one connection with `503` + `Retry-After`, then **lingers**:
/// the response goes out first, `shutdown(Write)` sends the FIN so the
/// client sees a complete response, and the client's (never-read)
/// request bytes are drained until EOF — closing a socket with unread
/// data in its receive buffer would send an RST that can destroy the
/// queued 503 before the client reads it. The drain is bounded in both
/// time ([`SHED_LINGER`]) and bytes, so a shed storm stalls the accept
/// loop by at most the linger per connection — at which point the
/// kernel's SYN backlog sheds for us.
fn shed_connection(conn: Conn) {
    let _ = write_response(
        &mut (&mut &conn.stream),
        503,
        "text/plain; charset=utf-8",
        b"server overloaded; please retry\n",
        false,
        &["Retry-After: 1"],
    );
    let _ = conn.stream.shutdown(std::net::Shutdown::Write);
    let _ = conn.stream.set_read_timeout(Some(SHED_LINGER));
    let mut reader = conn.reader;
    let mut discard = [0u8; 4096];
    let mut drained = 0usize;
    while let Ok(n) = std::io::Read::read(&mut reader, &mut discard) {
        if n == 0 {
            break; // client closed after reading the 503: clean FIN
        }
        drained += n;
        if drained >= 64 * 1024 {
            break;
        }
    }
}

/// Per-thread server state: an owned engine clone plus the shared flags.
struct Worker {
    engine: QueryEngine,
    shutdown: Arc<AtomicBool>,
    stats: Arc<Stats>,
    queue: Arc<ConnQueue>,
    /// The `sp2b_request_seconds` series — every routed request records.
    latency: Histogram,
    /// The `sp2b_slow_queries_total` series.
    slow: Counter,
    slow_log: Option<SlowLog>,
}

impl Worker {
    fn run(&self) {
        while let Some(conn) = self.queue.pop() {
            if let Some(idle) = self.serve_connection(conn) {
                // The connection went idle while others were waiting:
                // rotate it to the back of the queue and serve the next.
                self.queue.push(idle);
            }
        }
    }

    fn stopping(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// One connection's keep-alive loop: wait (in shutdown-checkable
    /// ticks) for the next request, serve it, repeat until the peer
    /// closes, an error breaks framing, or the server drains. Returns
    /// `Some(conn)` to hand an idle connection back to the queue when
    /// other connections are waiting for a worker (fairness under more
    /// clients than workers).
    fn serve_connection(&self, mut conn: Conn) -> Option<Conn> {
        loop {
            // Idle wait at the request boundary.
            let _ = conn.stream.set_read_timeout(Some(IDLE_TICK));
            match conn.reader.fill_buf() {
                Ok([]) => return None, // peer closed cleanly
                Ok(_) => {}
                Err(e) if would_block(&e) => {
                    if self.stopping() {
                        return None;
                    }
                    if self.queue.has_pending() {
                        return Some(conn); // yield the worker
                    }
                    continue;
                }
                Err(_) => return None,
            }
            // Bytes have arrived: finish reading this request even while
            // draining (the response still goes out), but bound the read.
            let _ = conn.stream.set_read_timeout(Some(REQUEST_READ_TIMEOUT));
            match read_request(&mut conn.reader) {
                Ok(request) => {
                    let keep = self.handle(&conn.stream, &request);
                    if !keep || self.stopping() {
                        return None;
                    }
                    // Served and still healthy: if nothing is pipelined
                    // and others wait, rotate; otherwise keep serving.
                    if conn.reader.buffer().is_empty() && self.queue.has_pending() {
                        return Some(conn);
                    }
                }
                Err(ReadError::Closed) | Err(ReadError::Io(_)) => return None,
                Err(e) => {
                    // Framing is broken (or suspect): answer and close.
                    let (status, message) = match e {
                        ReadError::Bad(m) => (400, m),
                        ReadError::HeadTooLarge => (431, "request head too large"),
                        ReadError::BodyTooLarge => (413, "request body too large"),
                        ReadError::LengthRequired => (411, "Content-Length required"),
                        ReadError::BadLength => (400, "invalid Content-Length"),
                        ReadError::Closed | ReadError::Io(_) => unreachable!(),
                    };
                    self.stats.requests.fetch_add(1, Ordering::Relaxed);
                    let _ = self.error(&conn.stream, status, message, false);
                    return None;
                }
            }
        }
    }

    /// Routes one request, recording its end-to-end handling time into
    /// the request-latency histogram. Returns whether to keep the
    /// connection.
    fn handle(&self, stream: &TcpStream, request: &Request) -> bool {
        self.stats.requests.fetch_add(1, Ordering::Relaxed);
        let started = Instant::now();
        let keep = self.route(stream, request);
        self.latency.record(started.elapsed());
        keep
    }

    fn route(&self, stream: &TcpStream, request: &Request) -> bool {
        let keep = request.keep_alive();
        match (request.method.as_str(), request.path()) {
            ("GET", "/") | ("HEAD", "/") => {
                let body = "sp2b SPARQL endpoint\n\nPOST /sparql (application/sparql-query or \
                            form) or GET /sparql?query=...\nResult formats (Accept): \
                            application/sparql-results+json, text/csv, \
                            text/tab-separated-values\nTelemetry: GET /metrics (Prometheus \
                            text), GET /stats (JSON)\n";
                self.stats.ok.fetch_add(1, Ordering::Relaxed);
                write_response(
                    &mut (&mut &*stream),
                    200,
                    "text/plain; charset=utf-8",
                    if request.method == "HEAD" {
                        b""
                    } else {
                        body.as_bytes()
                    },
                    keep,
                    &[],
                )
                .is_ok()
                    && keep
            }
            ("GET", "/metrics") | ("HEAD", "/metrics") => {
                let body = sp2b_obs::global().render_prometheus();
                self.stats.ok.fetch_add(1, Ordering::Relaxed);
                write_response(
                    &mut (&mut &*stream),
                    200,
                    // The Prometheus text exposition format version.
                    "text/plain; version=0.0.4; charset=utf-8",
                    if request.method == "HEAD" {
                        b""
                    } else {
                        body.as_bytes()
                    },
                    keep,
                    &[],
                )
                .is_ok()
                    && keep
            }
            ("GET", "/stats") | ("HEAD", "/stats") => {
                let body = self.stats_json();
                self.stats.ok.fetch_add(1, Ordering::Relaxed);
                write_response(
                    &mut (&mut &*stream),
                    200,
                    "application/json",
                    if request.method == "HEAD" {
                        b""
                    } else {
                        body.as_bytes()
                    },
                    keep,
                    &[],
                )
                .is_ok()
                    && keep
            }
            (_, "/metrics") | (_, "/stats") => {
                self.error(stream, 405, "method not allowed; use GET", keep)
            }
            ("GET", "/sparql") => match self.query_from_get(request) {
                Ok(text) => self.run_query(stream, request, &text, keep),
                Err(message) => self.error(stream, 400, message, keep),
            },
            ("POST", "/sparql") => match self.query_from_post(request) {
                Ok(text) => self.run_query(stream, request, &text, keep),
                Err((status, message)) => self.error(stream, status, message, keep),
            },
            (_, "/sparql") | (_, "/") => {
                self.error(stream, 405, "method not allowed; use GET or POST", keep)
            }
            _ => self.error(stream, 404, "unknown path; the endpoint is /sparql", keep),
        }
    }

    fn query_from_get(&self, request: &Request) -> Result<String, &'static str> {
        let qs = request
            .query_string()
            .ok_or("missing query parameter: GET /sparql?query=...")?;
        match form_value(qs, "query") {
            Some(Ok(text)) => Ok(text),
            Some(Err(e)) => Err(e),
            None => Err("missing query parameter: GET /sparql?query=..."),
        }
    }

    fn query_from_post(&self, request: &Request) -> Result<String, (u16, &'static str)> {
        let content_type = request
            .header("content-type")
            .map(|ct| {
                ct.split(';')
                    .next()
                    .unwrap_or(ct)
                    .trim()
                    .to_ascii_lowercase()
            })
            .unwrap_or_default();
        match content_type.as_str() {
            "application/sparql-query" => String::from_utf8(request.body.clone())
                .map_err(|_| (400, "query body is not UTF-8")),
            "application/x-www-form-urlencoded" => {
                let body = std::str::from_utf8(&request.body)
                    .map_err(|_| (400, "form body is not UTF-8"))?;
                match form_value(body, "query") {
                    Some(Ok(text)) => Ok(text),
                    Some(Err(e)) => Err((400, e)),
                    None => Err((400, "missing query form field")),
                }
            }
            _ => Err((
                415,
                "unsupported Content-Type; use application/sparql-query or \
                 application/x-www-form-urlencoded",
            )),
        }
    }

    /// Prepares and streams one query. Returns whether to keep the
    /// connection open.
    fn run_query(&self, stream: &TcpStream, request: &Request, text: &str, keep: bool) -> bool {
        let Some(format) = negotiate_format(request.header("accept")) else {
            return self.error(
                stream,
                406,
                "no supported result format in Accept; supported: \
                 application/sparql-results+json, text/csv, text/tab-separated-values",
                keep,
            );
        };
        let started = Instant::now();
        // Scan counters are attached per query only when the slow log is
        // on — they buy the per-operator breakdown at the cost of two
        // clock reads per scanned row.
        let counters = self
            .slow_log
            .as_ref()
            .map(|_| Arc::new(ScanCounters::default()));
        let traced;
        let engine = match &counters {
            Some(c) => {
                traced = self.engine.clone().scan_counters(Arc::clone(c));
                &traced
            }
            None => &self.engine,
        };
        let prepared = match engine.prepare(text) {
            Ok(p) => p,
            // Parse errors, unbound variables and unsupported constructs
            // are all the client's query, not our failure: 400.
            Err(e) => return self.error_string(stream, 400, &e.to_string(), keep),
        };
        let prepare_time = started.elapsed();
        let ask = prepared.is_ask();
        let cancel = engine.cancellation();
        let mut solutions: Solutions<'_> = engine.solutions_with(&prepared, &cancel);
        let content_type = if ask {
            format.ask_content_type()
        } else {
            format.content_type()
        };
        let mut body = StreamBody::new(stream, content_type, keep, request.version);
        let mut rows_sent = 0u64;
        let keep_after = match write_solutions(&mut body, format, &mut solutions, ask) {
            Ok(rows) => match body.finish() {
                Ok(keep_after) => {
                    self.stats.ok.fetch_add(1, Ordering::Relaxed);
                    self.stats.rows.fetch_add(rows, Ordering::Relaxed);
                    rows_sent = rows;
                    keep_after
                }
                Err(e) => {
                    self.note_disconnect(&e);
                    false
                }
            },
            Err(WriteError::Query(e)) => {
                let status = match e {
                    SparqlError::Cancelled => 408,
                    _ => 500,
                };
                if body.is_buffering() {
                    // Headers not sent yet: a clean error response.
                    self.error_string(stream, status, &describe(&e), keep)
                } else {
                    // Mid-stream: the status line is gone; truncate the
                    // chunked body (no terminating chunk) and close, so
                    // the client sees a broken transfer, not a clean end.
                    match status {
                        408 => self.stats.timeouts.fetch_add(1, Ordering::Relaxed),
                        _ => self.stats.server_errors.fetch_add(1, Ordering::Relaxed),
                    };
                    false
                }
            }
            Err(WriteError::Io(e)) => {
                // The client hung up (or stopped reading) mid-stream:
                // cancel the query so the evaluator (and any exchange
                // workers, via the Solutions drop below) stop immediately
                // instead of computing rows nobody will read.
                cancel.cancel();
                self.note_disconnect(&e);
                false
            }
        };
        // Joins any exchange workers, so the scan counters are complete.
        drop(solutions);
        if let Some(log) = &self.slow_log {
            let total = started.elapsed();
            if total >= log.threshold {
                self.slow.inc();
                let mut trace = QueryTrace::new();
                trace.phase("prepare", prepare_time);
                trace.phase("execute", total - prepare_time);
                if let Some(c) = &counters {
                    trace.operators = sp2b_sparql::operator_spans(&prepared, engine.store(), c);
                }
                log.note(&format!(
                    "slow-query: total={:.1} ms {} rows={rows_sent} query={:?}",
                    total.as_secs_f64() * 1e3,
                    trace.summary(),
                    truncated(text, 200),
                ));
            }
        }
        keep_after
    }

    /// Books a mid-response connection loss under the counter that
    /// explains it: a stalled `write` hitting the per-syscall deadline
    /// (`write_timeouts` — the client stopped reading) vs an outright
    /// disconnect (`aborted`).
    fn note_disconnect(&self, e: &io::Error) {
        if would_block(e) {
            self.stats.write_timeouts.fetch_add(1, Ordering::Relaxed);
        } else {
            self.stats.aborted.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// The `/stats` body: this server's counters plus every registered
    /// metric series, as one JSON object.
    fn stats_json(&self) -> String {
        let s = self.stats.snapshot();
        format!(
            "{{\"server\":{{\"connections\":{},\"requests\":{},\"ok\":{},\"client_errors\":{},\
             \"timeouts\":{},\"server_errors\":{},\"aborted\":{},\"write_timeouts\":{},\
             \"rows\":{},\"shed\":{}}},\"metrics\":{}}}",
            s.connections,
            s.requests,
            s.ok,
            s.client_errors,
            s.timeouts,
            s.server_errors,
            s.aborted,
            s.write_timeouts,
            s.rows,
            s.shed,
            sp2b_obs::global().render_json(),
        )
    }

    fn error(&self, stream: &TcpStream, status: u16, message: &str, keep: bool) -> bool {
        self.error_string(stream, status, message, keep)
    }

    fn error_string(&self, stream: &TcpStream, status: u16, message: &str, keep: bool) -> bool {
        match status {
            408 => &self.stats.timeouts,
            400..=499 => &self.stats.client_errors,
            _ => &self.stats.server_errors,
        }
        .fetch_add(1, Ordering::Relaxed);
        let body = format!("{message}\n");
        write_response(
            &mut (&mut &*stream),
            status,
            "text/plain; charset=utf-8",
            body.as_bytes(),
            keep,
            &[],
        )
        .is_ok()
            && keep
    }
}

/// The slow-log rendering of a query text: newlines collapsed so the
/// line stays a line, capped at `max` characters.
fn truncated(text: &str, max: usize) -> String {
    let flat: String = text
        .chars()
        .map(|c| if c == '\n' || c == '\r' { ' ' } else { c })
        .collect();
    if flat.chars().count() <= max {
        return flat;
    }
    let mut out: String = flat.chars().take(max).collect();
    out.push('…');
    out
}

/// Human phrasing of mid-query errors on the wire.
fn describe(e: &SparqlError) -> String {
    match e {
        SparqlError::Cancelled => "query timed out".to_owned(),
        other => other.to_string(),
    }
}

fn would_block(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// The response body sink: buffers up to [`SPILL_THRESHOLD`] bytes so
/// small results (and errors surfacing before the first flush) get a
/// fixed `Content-Length` response, then spills into chunked streaming
/// (HTTP/1.1) or a close-delimited raw stream (HTTP/1.0).
struct StreamBody<'a> {
    stream: &'a TcpStream,
    content_type: &'a str,
    keep: bool,
    version: Version,
    state: BodyState<'a>,
}

enum BodyState<'a> {
    Buffering(Vec<u8>),
    Chunked(ChunkedWriter<&'a TcpStream>),
    Raw(&'a TcpStream),
}

impl<'a> StreamBody<'a> {
    fn new(stream: &'a TcpStream, content_type: &'a str, keep: bool, version: Version) -> Self {
        StreamBody {
            stream,
            content_type,
            keep,
            version,
            state: BodyState::Buffering(Vec::with_capacity(4 * 1024)),
        }
    }

    /// True while the status line has not been sent (errors can still
    /// become clean responses).
    fn is_buffering(&self) -> bool {
        matches!(self.state, BodyState::Buffering(_))
    }

    /// Sends the response head and the buffered prefix, switching to the
    /// streaming state.
    fn spill(&mut self) -> io::Result<()> {
        let BodyState::Buffering(buf) =
            std::mem::replace(&mut self.state, BodyState::Raw(self.stream))
        else {
            return Ok(());
        };
        let mut out = self.stream;
        match self.version {
            Version::Http11 => {
                write!(
                    out,
                    "HTTP/1.1 200 OK\r\nContent-Type: {}\r\nTransfer-Encoding: chunked\r\n\
                     Connection: {}\r\n\r\n",
                    self.content_type,
                    if self.keep { "keep-alive" } else { "close" }
                )?;
                let mut chunked = ChunkedWriter::new(self.stream, CHUNK_BYTES);
                chunked.write_all(&buf)?;
                self.state = BodyState::Chunked(chunked);
            }
            Version::Http10 => {
                // No chunked coding in 1.0: stream raw, delimit by close.
                self.keep = false;
                write!(
                    out,
                    "HTTP/1.0 200 OK\r\nContent-Type: {}\r\nConnection: close\r\n\r\n",
                    self.content_type
                )?;
                out.write_all(&buf)?;
                self.state = BodyState::Raw(self.stream);
            }
        }
        Ok(())
    }

    /// Completes the response; returns whether the connection stays
    /// usable.
    fn finish(self) -> io::Result<bool> {
        match self.state {
            BodyState::Buffering(buf) => {
                write_response(
                    &mut (&mut &*self.stream),
                    200,
                    self.content_type,
                    &buf,
                    self.keep,
                    &[],
                )?;
                Ok(self.keep)
            }
            BodyState::Chunked(chunked) => {
                chunked.finish()?;
                Ok(self.keep)
            }
            BodyState::Raw(mut stream) => {
                stream.flush()?;
                Ok(false)
            }
        }
    }
}

impl Write for StreamBody<'_> {
    fn write(&mut self, data: &[u8]) -> io::Result<usize> {
        if let BodyState::Buffering(buf) = &mut self.state {
            buf.extend_from_slice(data);
            if buf.len() > SPILL_THRESHOLD {
                self.spill()?;
            }
            return Ok(data.len());
        }
        match &mut self.state {
            BodyState::Chunked(chunked) => chunked.write(data),
            BodyState::Raw(stream) => stream.write(data),
            BodyState::Buffering(_) => unreachable!(),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match &mut self.state {
            BodyState::Buffering(_) => Ok(()),
            BodyState::Chunked(chunked) => chunked.flush(),
            BodyState::Raw(stream) => stream.flush(),
        }
    }
}
