//! # sp2b-server — the SPARQL Protocol endpoint
//!
//! SP²Bench frames its workload as what a SPARQL engine *behind an
//! endpoint* must sustain; this crate is that endpoint: a hand-rolled,
//! **std-only** HTTP/1.1 server (the workspace is deliberately
//! dependency-free) exposing one shared store over the SPARQL Protocol.
//!
//! * `GET /sparql?query=…` and `POST /sparql` (both
//!   `application/sparql-query` and url-encoded form bodies);
//! * result formats via `Accept` negotiation —
//!   `application/sparql-results+json` (default), `text/csv`,
//!   `text/tab-separated-values` (ASK in the latter two is a bare
//!   `true`/`false` line, labelled `text/boolean`);
//! * **streaming** responses: rows serialize straight off the
//!   [`sp2b_sparql::Solutions`] iterator (small results get
//!   `Content-Length`, larger ones switch to chunked transfer coding),
//!   so SELECT results never materialize server-side;
//! * per-request timeout through the engine's
//!   [`sp2b_sparql::Cancellation`] (`408` when it fires before the first
//!   spill), `400` for bad requests/queries, `406` for unsupported
//!   `Accept`, `500` for engine failures;
//! * keep-alive connection reuse, and **graceful shutdown** that drains
//!   in-flight requests and joins every thread;
//! * a fixed worker pool, each worker owning a cloned
//!   [`sp2b_sparql::QueryEngine`] over the same `Arc`'d store;
//! * live telemetry: `GET /metrics` (Prometheus text exposition) and
//!   `GET /stats` (JSON) serve the process metrics registry
//!   ([`sp2b_obs`]), and [`ServerConfig::slow_log`] ([`SlowLog`]) logs
//!   one line per query slower than a threshold, with per-operator
//!   rows/time read back from the query's scan counters.
//!
//! ```no_run
//! use sp2b_sparql::QueryEngine;
//! use sp2b_store::{MemStore, TripleStore};
//! use sp2b_server::{spawn, ServerConfig};
//!
//! let store = MemStore::from_graph(&sp2b_rdf::Graph::new()).into_shared();
//! let handle = spawn(QueryEngine::new(store), &ServerConfig::default()).unwrap();
//! println!("serving on {}", handle.endpoint_url());
//! // … drive traffic …
//! let stats = handle.shutdown();
//! println!("served {stats}");
//! ```

pub mod http;
pub mod server;

pub use server::{spawn, ServerConfig, ServerHandle, SlowLog, StatsSnapshot};
