//! Open-loop workload acceptance over real sockets: the client harness
//! from `sp2b-core` drives a live server on an ephemeral port with a
//! weighted mix and an open arrival process, and the per-template
//! latency series land in the process-global metrics registry under
//! `sp2b_multiuser_latency_seconds{template=…}` — the same renderers
//! that serve the server's own `/metrics` and `/stats`.
//!
//! This binary runs in its own process, so its registry assertions
//! cannot race the `observability.rs` suite.

use std::time::Duration;

use sp2b_core::multiuser::{MultiuserConfig, StopCondition};
use sp2b_core::{run_endpoint_workload_open, Arrival, Endpoint, WeightedMix};
use sp2b_datagen::{generate_graph, Config};
use sp2b_server::{spawn, ServerConfig};
use sp2b_sparql::{QueryEngine, QueryOptions};
use sp2b_store::{NativeStore, TripleStore};

#[test]
fn open_loop_endpoint_run_registers_per_template_series() {
    let (graph, _) = generate_graph(Config::triples(3_000));
    let engine = QueryEngine::with_options(
        NativeStore::from_graph(&graph).into_shared(),
        QueryOptions::new().parallelism(1),
    );
    let handle = spawn(engine, &ServerConfig::default()).expect("bind ephemeral port");
    let endpoint = Endpoint::parse(&format!("http://{}/sparql", handle.addr())).unwrap();

    let mix = WeightedMix::parse("q1:3,q11:1").unwrap();
    let mut cfg = MultiuserConfig::new(2, StopCondition::Rounds(4));
    cfg.mix = mix.items;
    cfg.weights = mix.weights;
    cfg.arrival = Arrival::Constant { rate: 200.0 };
    cfg.seed = 7;
    cfg.timeout = Duration::from_secs(30);
    let report = run_endpoint_workload_open(&endpoint, &cfg, |_| {});

    // The schedule issued exactly Rounds × clients × mix entries, and
    // every request is accounted for exactly once.
    assert_eq!(report.issued, 4 * 2 * 2);
    assert_eq!(
        report.completed + report.timeouts + report.errors + report.warmup_excluded,
        report.issued
    );
    assert_eq!(report.errors, 0, "inconsistent: {:?}", report.inconsistent);
    assert!(report.completed > 0);

    // The per-template histograms went through the global registry and
    // render through the same Prometheus/JSON paths as the server's own
    // request series: one shared preamble, one labeled series per
    // template.
    let prom = sp2b_obs::global().render_prometheus();
    assert!(
        prom.contains("# TYPE sp2b_multiuser_latency_seconds histogram"),
        "{prom}"
    );
    for label in ["Q1", "Q11"] {
        assert!(
            prom.contains(&format!(
                "sp2b_multiuser_latency_seconds_bucket{{template=\"{label}\",le=\""
            )),
            "missing {label} buckets in:\n{prom}"
        );
        assert!(
            prom.contains(&format!(
                "sp2b_multiuser_latency_seconds_count{{template=\"{label}\"}}"
            )),
            "{prom}"
        );
    }
    let json = sp2b_obs::global().render_json();
    for label in ["Q1", "Q11"] {
        assert!(
            json.contains(&format!(
                "\"sp2b_multiuser_latency_seconds{{template={label}}}\""
            )),
            "missing {label} series in:\n{json}"
        );
    }

    // Registry counts cover at least this run's completions (the series
    // are process-global and cumulative).
    let count_of = |label: &str| -> u64 {
        let needle = format!("sp2b_multiuser_latency_seconds_count{{template=\"{label}\"}} ");
        prom.lines()
            .find_map(|l| l.strip_prefix(needle.as_str()))
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or(0)
    };
    let registered: u64 = count_of("Q1") + count_of("Q11");
    assert!(
        registered >= report.completed,
        "registry holds {registered} < {} completions",
        report.completed
    );

    let stats = handle.shutdown();
    assert!(stats.requests > 0);
}
