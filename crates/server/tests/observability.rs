//! Telemetry-surface tests against a live server on an ephemeral port:
//! `/metrics` is valid Prometheus text exposition whose counters are
//! monotone across scrapes, `/stats` is one balanced JSON object that
//! agrees with [`ServerHandle::stats`], unknown paths still 404, and a
//! tiny slow-log threshold emits exactly one `slow-query:` line per
//! query.
//!
//! The metrics registry is process-global and [`spawn`] re-registers
//! the callback series on every call, so every test here serializes on
//! one mutex — two servers alive at once would race over who owns the
//! gauges.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::{Mutex, MutexGuard};
use std::time::Duration;

use sp2b_rdf::{Graph, Iri, Literal, Subject, Term};
use sp2b_server::{spawn, ServerConfig, ServerHandle, SlowLog};
use sp2b_sparql::{QueryEngine, QueryOptions};
use sp2b_store::{NativeStore, TripleStore};

static SERIAL: Mutex<()> = Mutex::new(());

fn serialize() -> MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

fn engine(rows: i64) -> QueryEngine {
    let mut g = Graph::new();
    for i in 0..rows {
        g.add(
            Subject::iri(format!("http://x/s{i:04}")),
            Iri::new("http://x/p"),
            Term::Literal(Literal::integer(i)),
        );
    }
    QueryEngine::with_options(
        NativeStore::from_graph(&g).into_shared(),
        QueryOptions::new().parallelism(1),
    )
}

fn server(cfg: &ServerConfig) -> ServerHandle {
    spawn(engine(10), cfg).expect("bind ephemeral port")
}

/// One `Connection: close` request; returns the full response text.
fn get(handle: &ServerHandle, path: &str) -> String {
    let mut stream = TcpStream::connect(handle.addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream
        .write_all(format!("GET {path} HTTP/1.1\r\nConnection: close\r\n\r\n").as_bytes())
        .unwrap();
    let mut out = String::new();
    stream.read_to_string(&mut out).unwrap();
    out
}

fn status_of(response: &str) -> u16 {
    response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("no status line in {response:?}"))
}

fn body_of(response: &str) -> &str {
    response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b)
        .unwrap_or("")
}

/// Runs one query (10 rows) through the endpoint.
fn run_query(handle: &ServerHandle) {
    let q = "SELECT%20%3Fs%20WHERE%20%7B%20%3Fs%20%3Chttp%3A%2F%2Fx%2Fp%3E%20%3Fo%20%7D";
    let resp = get(handle, &format!("/sparql?query={q}"));
    assert_eq!(status_of(&resp), 200, "{resp}");
}

/// The value column of the series `name` in a `/metrics` scrape.
fn series(text: &str, name: &str) -> f64 {
    text.lines()
        .find(|l| l.split_whitespace().next() == Some(name))
        .and_then(|l| l.split_whitespace().nth(1))
        .unwrap_or_else(|| panic!("series {name} not in scrape:\n{text}"))
        .parse()
        .unwrap_or_else(|_| panic!("unparsable value for {name}"))
}

#[test]
fn metrics_is_valid_exposition_with_the_advertised_series() {
    let _guard = serialize();
    let handle = server(&ServerConfig::default());
    run_query(&handle);
    let resp = get(&handle, "/metrics");
    assert_eq!(status_of(&resp), 200, "{resp}");
    assert!(
        resp.contains("Content-Type: text/plain; version=0.0.4; charset=utf-8"),
        "{resp}"
    );
    let text = body_of(&resp);

    // Every series the issue promises: requests, queue depth, the
    // latency histogram, the cache counters, the exchange gauges.
    for name in [
        "sp2b_requests_total",
        "sp2b_responses_ok_total",
        "sp2b_rows_total",
        "sp2b_queue_depth",
        "sp2b_workers_waiting",
        "sp2b_request_seconds_count",
        "sp2b_request_seconds_sum",
        "sp2b_cache_hits_total",
        "sp2b_cache_misses_total",
        "sp2b_exchange_live_workers",
        "sp2b_store_triples",
        "sp2b_slow_queries_total",
    ] {
        series(text, name);
    }
    assert!(
        text.contains("sp2b_request_seconds_bucket{le=\"+Inf\"}"),
        "{text}"
    );

    // Exposition shape: every series has a HELP and TYPE preamble, every
    // non-comment line is exactly `name[{labels}] value`.
    let mut seen_help = std::collections::HashSet::new();
    let mut seen_type = std::collections::HashSet::new();
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("# HELP ") {
            seen_help.insert(rest.split_whitespace().next().unwrap().to_owned());
        } else if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            seen_type.insert(parts.next().unwrap().to_owned());
            let kind = parts.next().unwrap();
            assert!(["counter", "gauge", "histogram"].contains(&kind), "{line}");
        } else if !line.is_empty() {
            let mut parts = line.split_whitespace();
            let name = parts.next().unwrap();
            let base = name
                .split('{')
                .next()
                .unwrap()
                .trim_end_matches("_bucket")
                .trim_end_matches("_sum")
                .trim_end_matches("_count");
            assert!(
                seen_help.contains(base) && seen_type.contains(base),
                "series {name} has no HELP/TYPE preamble"
            );
            let value = parts.next().unwrap_or_else(|| panic!("no value: {line}"));
            assert!(value.parse::<f64>().is_ok(), "unparsable value: {line}");
            assert_eq!(parts.next(), None, "trailing columns: {line}");
        }
    }

    // The latency histogram's cumulative buckets are monotone and end at
    // the count.
    let mut previous = 0.0f64;
    for line in text.lines() {
        if line.starts_with("sp2b_request_seconds_bucket{") {
            let v: f64 = line.split_whitespace().nth(1).unwrap().parse().unwrap();
            assert!(v >= previous, "bucket not cumulative: {line}");
            previous = v;
        }
    }
    assert_eq!(previous, series(text, "sp2b_request_seconds_count"));
}

#[test]
fn metrics_counters_are_monotone_across_scrapes() {
    let _guard = serialize();
    let handle = server(&ServerConfig::default());
    run_query(&handle);
    let first = get(&handle, "/metrics");
    run_query(&handle);
    let second = get(&handle, "/metrics");
    let (first, second) = (body_of(&first), body_of(&second));
    for name in [
        "sp2b_connections_total",
        "sp2b_requests_total",
        "sp2b_responses_ok_total",
        "sp2b_rows_total",
        "sp2b_request_seconds_count",
    ] {
        let (a, b) = (series(first, name), series(second, name));
        assert!(b >= a, "{name} went backwards: {a} -> {b}");
    }
    // The second scrape definitely saw more requests: the query plus the
    // first scrape itself.
    assert!(
        series(second, "sp2b_requests_total") >= series(first, "sp2b_requests_total") + 2.0,
        "expected at least two more requests between scrapes"
    );
    assert_eq!(series(second, "sp2b_rows_total"), 20.0);
}

#[test]
fn stats_is_one_json_object_agreeing_with_the_handle() {
    let _guard = serialize();
    let handle = server(&ServerConfig::default());
    run_query(&handle);
    let resp = get(&handle, "/stats");
    assert_eq!(status_of(&resp), 200, "{resp}");
    assert!(resp.contains("Content-Type: application/json"), "{resp}");
    let body = body_of(&resp).trim();
    assert!(body.starts_with('{') && body.ends_with('}'), "{body}");
    assert_eq!(
        body.matches('{').count(),
        body.matches('}').count(),
        "{body}"
    );
    assert!(!body.contains('\n'), "one line: {body}");
    for key in [
        "\"server\":{",
        "\"metrics\":{",
        "\"sp2b_request_seconds\":{",
    ] {
        assert!(body.contains(key), "missing {key} in {body}");
    }
    // The server block round-trips the handle's own snapshot: the query
    // delivered 10 rows, and `rows` appears in both representations.
    assert_eq!(handle.stats().rows, 10);
    assert!(body.contains("\"rows\":10"), "{body}");
    assert!(body.contains("\"sp2b_rows_total\":10"), "{body}");
}

#[test]
fn unknown_paths_are_still_404_and_metrics_is_get_only() {
    let _guard = serialize();
    let handle = server(&ServerConfig::default());
    let resp = get(&handle, "/metricsx");
    assert_eq!(status_of(&resp), 404, "{resp}");
    let resp = get(&handle, "/nope");
    assert_eq!(status_of(&resp), 404, "{resp}");
    let mut stream = TcpStream::connect(handle.addr()).unwrap();
    stream
        .write_all(b"POST /metrics HTTP/1.1\r\nContent-Length: 0\r\nConnection: close\r\n\r\n")
        .unwrap();
    let mut out = String::new();
    stream.read_to_string(&mut out).unwrap();
    assert_eq!(status_of(&out), 405, "{out}");
}

#[test]
fn tiny_slow_threshold_logs_exactly_one_line_per_query() {
    let _guard = serialize();
    let (slow_log, buffer) = SlowLog::to_buffer(Duration::ZERO);
    let cfg = ServerConfig {
        slow_log: Some(slow_log),
        ..ServerConfig::default()
    };
    let handle = server(&cfg);
    run_query(&handle);
    // Non-query requests never hit the slow log, however slow.
    let resp = get(&handle, "/metrics");
    assert_eq!(status_of(&resp), 200, "{resp}");

    let log = String::from_utf8(buffer.lock().unwrap().clone()).unwrap();
    let lines: Vec<&str> = log.lines().collect();
    assert_eq!(lines.len(), 1, "expected exactly one slow-log line:\n{log}");
    let line = lines[0];
    assert!(line.starts_with("slow-query: total="), "{line}");
    for field in [
        "prepare=",
        "execute=",
        "ops=",
        "op_rows=",
        "rows=10",
        "query=\"SELECT",
    ] {
        assert!(line.contains(field), "missing {field}: {line}");
    }
    // The slow counter moved with it.
    let scrape = get(&handle, "/metrics");
    assert!(series(body_of(&scrape), "sp2b_slow_queries_total") >= 1.0);
}
