//! Protocol-conformance and edge-case tests against a live server on an
//! ephemeral port: malformed request lines, oversized heads, bad and
//! missing `Content-Length`, percent-decoding of the `query` parameter,
//! `Accept` negotiation (including `406`), method/path routing,
//! keep-alive reuse, per-request timeouts (`408`), and graceful
//! shutdown with the final stats snapshot.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use sp2b_rdf::{Graph, Iri, Literal, Subject, Term};
use sp2b_server::{spawn, ServerConfig, ServerHandle};
use sp2b_sparql::{QueryEngine, QueryOptions};
use sp2b_store::{NativeStore, TripleStore};

fn engine(rows: i64) -> QueryEngine {
    let mut g = Graph::new();
    for i in 0..rows {
        g.add(
            Subject::iri(format!("http://x/s{i:04}")),
            Iri::new("http://x/p"),
            Term::Literal(Literal::integer(i)),
        );
    }
    QueryEngine::with_options(
        NativeStore::from_graph(&g).into_shared(),
        QueryOptions::new().parallelism(1),
    )
}

fn server() -> ServerHandle {
    spawn(engine(10), &ServerConfig::default()).expect("bind ephemeral port")
}

/// Sends raw bytes, reads until the server closes, returns the response
/// text. Every request here either carries `Connection: close` or is
/// malformed enough that the server closes on its own.
fn roundtrip(handle: &ServerHandle, raw: &str) -> String {
    let mut stream = TcpStream::connect(handle.addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.write_all(raw.as_bytes()).unwrap();
    let mut out = String::new();
    stream.read_to_string(&mut out).unwrap();
    out
}

fn status_of(response: &str) -> u16 {
    response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("no status line in {response:?}"))
}

fn body_of(response: &str) -> &str {
    response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b)
        .unwrap_or("")
}

#[test]
fn malformed_request_line_is_400() {
    let handle = server();
    let resp = roundtrip(&handle, "THIS IS NOT HTTP AT ALL\r\n\r\n");
    assert_eq!(status_of(&resp), 400, "{resp}");
    let resp = roundtrip(&handle, "GET /sparql HTTP/2\r\n\r\n");
    assert_eq!(status_of(&resp), 400, "{resp}");
}

#[test]
fn oversized_headers_are_431() {
    let handle = server();
    let resp = roundtrip(
        &handle,
        &format!(
            "GET /sparql HTTP/1.1\r\nBig: {}\r\nConnection: close\r\n\r\n",
            "x".repeat(64 * 1024)
        ),
    );
    assert_eq!(status_of(&resp), 431, "{resp}");
}

#[test]
fn content_length_problems_map_to_411_400_413() {
    let handle = server();
    let resp = roundtrip(
        &handle,
        "POST /sparql HTTP/1.1\r\nContent-Type: application/sparql-query\r\nConnection: close\r\n\r\n",
    );
    assert_eq!(status_of(&resp), 411, "missing Content-Length: {resp}");
    let resp = roundtrip(
        &handle,
        "POST /sparql HTTP/1.1\r\nContent-Length: banana\r\nConnection: close\r\n\r\n",
    );
    assert_eq!(status_of(&resp), 400, "bad Content-Length: {resp}");
    let resp = roundtrip(
        &handle,
        "POST /sparql HTTP/1.1\r\nContent-Length: 99999999\r\nConnection: close\r\n\r\n",
    );
    assert_eq!(status_of(&resp), 413, "huge Content-Length: {resp}");
}

#[test]
fn query_parameter_is_percent_decoded() {
    let handle = server();
    // `SELECT ?s WHERE { ?s <http://x/p> ?o }`, fully escaped, with `+`
    // for spaces in one spot.
    let q = "SELECT+%3Fs%20WHERE%20%7B%20%3Fs%20%3Chttp%3A%2F%2Fx%2Fp%3E%20%3Fo%20%7D";
    let resp = roundtrip(
        &handle,
        &format!("GET /sparql?query={q} HTTP/1.1\r\nAccept: text/csv\r\nConnection: close\r\n\r\n"),
    );
    assert_eq!(status_of(&resp), 200, "{resp}");
    // Header + 10 data rows.
    assert_eq!(body_of(&resp).lines().count(), 11, "{resp}");
    // A broken escape is a 400, not a silent mis-parse.
    let resp = roundtrip(
        &handle,
        "GET /sparql?query=ASK%2 HTTP/1.1\r\nConnection: close\r\n\r\n",
    );
    assert_eq!(status_of(&resp), 400, "{resp}");
    // Missing query parameter entirely.
    let resp = roundtrip(
        &handle,
        "GET /sparql?other=1 HTTP/1.1\r\nConnection: close\r\n\r\n",
    );
    assert_eq!(status_of(&resp), 400, "{resp}");
}

#[test]
fn unsupported_accept_is_406_and_negotiation_picks_formats() {
    let handle = server();
    let ask = "query=ASK%20%7B%20%3Fs%20%3Chttp%3A%2F%2Fx%2Fp%3E%201%20%7D";
    let resp = roundtrip(
        &handle,
        &format!(
            "GET /sparql?{ask} HTTP/1.1\r\nAccept: application/xml\r\nConnection: close\r\n\r\n"
        ),
    );
    assert_eq!(status_of(&resp), 406, "{resp}");
    // JSON by default…
    let resp = roundtrip(
        &handle,
        &format!("GET /sparql?{ask} HTTP/1.1\r\nConnection: close\r\n\r\n"),
    );
    assert_eq!(status_of(&resp), 200);
    assert!(resp.contains("application/sparql-results+json"), "{resp}");
    assert!(body_of(&resp).contains("\"boolean\":true"), "{resp}");
    // …text/boolean for an ASK under CSV accept.
    let resp = roundtrip(
        &handle,
        &format!("GET /sparql?{ask} HTTP/1.1\r\nAccept: text/csv\r\nConnection: close\r\n\r\n"),
    );
    assert_eq!(status_of(&resp), 200);
    assert!(resp.contains("text/boolean"), "{resp}");
    assert_eq!(body_of(&resp).trim(), "true", "{resp}");
}

#[test]
fn routing_and_methods() {
    let handle = server();
    let resp = roundtrip(
        &handle,
        "GET /elsewhere HTTP/1.1\r\nConnection: close\r\n\r\n",
    );
    assert_eq!(status_of(&resp), 404, "{resp}");
    let resp = roundtrip(
        &handle,
        "DELETE /sparql HTTP/1.1\r\nConnection: close\r\n\r\n",
    );
    assert_eq!(status_of(&resp), 405, "{resp}");
    let resp = roundtrip(
        &handle,
        "POST /sparql HTTP/1.1\r\nContent-Type: text/plain\r\nContent-Length: 5\r\nConnection: close\r\n\r\nASK{}",
    );
    assert_eq!(status_of(&resp), 415, "{resp}");
    let resp = roundtrip(&handle, "GET / HTTP/1.1\r\nConnection: close\r\n\r\n");
    assert_eq!(status_of(&resp), 200, "{resp}");
    assert!(body_of(&resp).contains("/sparql"), "{resp}");
}

#[test]
fn post_bodies_work_in_both_encodings() {
    let handle = server();
    let query = "SELECT ?s WHERE { ?s <http://x/p> 3 }";
    let resp = roundtrip(
        &handle,
        &format!(
            "POST /sparql HTTP/1.1\r\nContent-Type: application/sparql-query\r\n\
             Content-Length: {}\r\nAccept: text/tab-separated-values\r\nConnection: close\r\n\r\n{query}",
            query.len()
        ),
    );
    assert_eq!(status_of(&resp), 200, "{resp}");
    assert_eq!(body_of(&resp).lines().count(), 2, "header + 1 row: {resp}");

    let form = "query=SELECT%20%3Fs%20WHERE%20%7B%20%3Fs%20%3Chttp%3A%2F%2Fx%2Fp%3E%203%20%7D";
    let resp = roundtrip(
        &handle,
        &format!(
            "POST /sparql HTTP/1.1\r\nContent-Type: application/x-www-form-urlencoded\r\n\
             Content-Length: {}\r\nAccept: text/csv\r\nConnection: close\r\n\r\n{form}",
            form.len()
        ),
    );
    assert_eq!(status_of(&resp), 200, "{resp}");
    assert_eq!(body_of(&resp).lines().count(), 2, "{resp}");
}

#[test]
fn keep_alive_serves_multiple_requests_on_one_connection() {
    let handle = server();
    let mut stream = TcpStream::connect(handle.addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let ask = "GET /sparql?query=ASK%7B%7D HTTP/1.1\r\nAccept: text/csv\r\n\r\n";
    let last =
        "GET /sparql?query=ASK%7B%7D HTTP/1.1\r\nAccept: text/csv\r\nConnection: close\r\n\r\n";
    stream.write_all(ask.as_bytes()).unwrap();
    stream.write_all(ask.as_bytes()).unwrap();
    stream.write_all(last.as_bytes()).unwrap();
    let mut out = String::new();
    stream.read_to_string(&mut out).unwrap();
    assert_eq!(
        out.matches("HTTP/1.1 200").count(),
        3,
        "three responses on one connection: {out}"
    );
    let stats = handle.shutdown();
    assert_eq!(stats.connections, 1, "{stats:?}");
    assert_eq!(stats.requests, 3, "{stats:?}");
}

/// Reads exactly one `Content-Length`-framed response off a keep-alive
/// connection.
fn read_one_response(stream: &mut TcpStream) -> String {
    let mut head = Vec::new();
    let mut byte = [0u8; 1];
    while !head.ends_with(b"\r\n\r\n") {
        stream.read_exact(&mut byte).unwrap();
        head.push(byte[0]);
    }
    let head_text = String::from_utf8(head).unwrap();
    let length: usize = head_text
        .lines()
        .find_map(|l| l.strip_prefix("Content-Length: "))
        .expect("framed response")
        .trim()
        .parse()
        .unwrap();
    let mut body = vec![0u8; length];
    stream.read_exact(&mut body).unwrap();
    head_text + &String::from_utf8(body).unwrap()
}

/// More live connections than workers must round-robin, not starve:
/// with 2 workers and 4 keep-alive connections, every connection gets
/// every one of its requests answered (a worker whose connection goes
/// idle while others wait hands it back to the queue).
#[test]
fn more_connections_than_workers_round_robin() {
    let cfg = ServerConfig {
        workers: 2,
        ..ServerConfig::default()
    };
    let handle = spawn(engine(10), &cfg).unwrap();
    let request = "GET /sparql?query=ASK%7B%7D HTTP/1.1\r\nAccept: text/csv\r\n\r\n";
    let mut conns: Vec<TcpStream> = (0..4)
        .map(|_| {
            let s = TcpStream::connect(handle.addr()).unwrap();
            s.set_read_timeout(Some(Duration::from_secs(20))).unwrap();
            s
        })
        .collect();
    for _round in 0..3 {
        for conn in &mut conns {
            conn.write_all(request.as_bytes()).unwrap();
            let response = read_one_response(conn);
            assert_eq!(status_of(&response), 200, "{response}");
            assert_eq!(body_of(&response).trim(), "true", "{response}");
        }
    }
    drop(conns);
    let stats = handle.shutdown();
    assert_eq!(stats.ok, 12, "4 connections × 3 rounds: {stats:?}");
    assert_eq!(stats.connections, 4, "{stats:?}");
}

/// Load shedding: with a zero-depth accept queue and the only worker
/// pinned to a live keep-alive connection, new connections must be
/// answered `503` + `Retry-After` and closed — and never counted as
/// accepted — instead of queueing unboundedly.
#[test]
fn overloaded_accept_queue_sheds_with_503_retry_after() {
    let cfg = ServerConfig {
        workers: 1,
        max_queue: 0,
        ..ServerConfig::default()
    };
    let handle = spawn(engine(10), &cfg).unwrap();
    // Pin the only worker: serve one request, then hold the connection
    // open (keep-alive) so the worker sits in its idle loop, not in the
    // queue's waiting set.
    let mut busy = TcpStream::connect(handle.addr()).unwrap();
    busy.set_read_timeout(Some(Duration::from_secs(20)))
        .unwrap();
    busy.write_all(b"GET /sparql?query=ASK%7B%7D HTTP/1.1\r\nAccept: text/csv\r\n\r\n")
        .unwrap();
    let response = read_one_response(&mut busy);
    assert_eq!(status_of(&response), 200, "{response}");
    // A realistic client writes its request immediately; the server
    // never reads it (shedding happens at accept), but the lingering
    // close must still deliver the full 503 — not an RST that destroys
    // it. Also cover a client that connects without sending anything.
    let requests: [&str; 2] = ["GET / HTTP/1.1\r\nConnection: close\r\n\r\n", ""];
    for request in requests {
        let mut shed = TcpStream::connect(handle.addr()).unwrap();
        shed.set_read_timeout(Some(Duration::from_secs(20)))
            .unwrap();
        if !request.is_empty() {
            shed.write_all(request.as_bytes()).unwrap();
        }
        let mut resp = String::new();
        shed.read_to_string(&mut resp).unwrap();
        assert_eq!(status_of(&resp), 503, "{resp}");
        assert!(resp.contains("Retry-After: 1"), "{resp}");
        assert!(
            resp.to_ascii_lowercase().contains("connection: close"),
            "{resp}"
        );
    }
    drop(busy);
    let stats = handle.shutdown();
    assert_eq!(stats.shed, 2, "{stats:?}");
    assert_eq!(
        stats.connections, 1,
        "shed connections must not count as accepted: {stats:?}"
    );
    assert_eq!(stats.ok, 1, "{stats:?}");
}

#[test]
fn query_errors_are_400_with_a_message() {
    let handle = server();
    let resp = roundtrip(
        &handle,
        "GET /sparql?query=SELECT+WHERE HTTP/1.1\r\nConnection: close\r\n\r\n",
    );
    assert_eq!(status_of(&resp), 400, "{resp}");
    assert!(!body_of(&resp).trim().is_empty(), "error body: {resp}");
}

#[test]
fn zero_timeout_maps_to_408() {
    let cfg = ServerConfig {
        timeout: Some(Duration::ZERO),
        ..ServerConfig::default()
    };
    let handle = spawn(engine(10), &cfg).unwrap();
    let resp = roundtrip(
        &handle,
        "GET /sparql?query=SELECT%20%3Fs%20WHERE%20%7B%20%3Fs%20%3Chttp%3A%2F%2Fx%2Fp%3E%20%3Fo%20%7D HTTP/1.1\r\nConnection: close\r\n\r\n",
    );
    assert_eq!(status_of(&resp), 408, "{resp}");
    let stats = handle.shutdown();
    assert_eq!(stats.timeouts, 1, "{stats:?}");
}

#[test]
fn graceful_shutdown_reports_stats_and_stops_accepting() {
    let handle = server();
    let addr = handle.addr();
    let resp = roundtrip(
        &handle,
        "GET /sparql?query=ASK%7B%7D HTTP/1.1\r\nConnection: close\r\n\r\n",
    );
    assert_eq!(status_of(&resp), 200);
    let stats = handle.shutdown();
    assert_eq!(stats.ok, 1, "{stats:?}");
    // The listener is gone: connections are refused (or reset instantly).
    let after = TcpStream::connect_timeout(&addr, Duration::from_millis(500));
    if let Ok(mut stream) = after {
        let mut buf = [0u8; 1];
        stream
            .set_read_timeout(Some(Duration::from_secs(2)))
            .unwrap();
        assert!(
            matches!(stream.read(&mut buf), Ok(0) | Err(_)),
            "a post-shutdown connection must not be served"
        );
    }
}
