//! Property tests: the native store's six permutation indexes agree with
//! the scan-based memory store on every access pattern, and its
//! cardinality estimates are exact.

use proptest::prelude::*;

use sp2b_rdf::{Graph, Iri, Literal, Subject, Term};
use sp2b_store::{IndexSelection, MemStore, NativeStore, Pattern, TripleStore};

fn graph_strategy() -> impl Strategy<Value = Graph> {
    prop::collection::vec((0u8..10, 0u8..5, 0u8..12), 0..80).prop_map(|v| {
        let mut g = Graph::new();
        for (s, p, o) in v {
            let object: Term = if o % 3 == 0 {
                Term::Literal(Literal::integer(o as i64))
            } else {
                Term::iri(format!("http://x/o{o}"))
            };
            g.add(
                Subject::iri(format!("http://x/s{s}")),
                Iri::new(format!("http://x/p{p}")),
                object,
            );
        }
        g
    })
}

/// All 8 bound/unbound combinations over a probe triple.
fn patterns_for(store: &dyn TripleStore, s: u8, p: u8, o: u8) -> Vec<Pattern> {
    let sid = store.resolve(&Term::iri(format!("http://x/s{s}")));
    let pid = store.resolve(&Term::iri(format!("http://x/p{p}")));
    let oid = store.resolve(&Term::iri(format!("http://x/o{o}")));
    let mut out = Vec::new();
    for mask in 0..8u8 {
        out.push([
            if mask & 1 != 0 { sid } else { None },
            if mask & 2 != 0 { pid } else { None },
            if mask & 4 != 0 { oid } else { None },
        ]);
    }
    out
}

fn decode_sorted(store: &dyn TripleStore, pattern: Pattern) -> Vec<String> {
    let dict = store.dictionary();
    let mut rows: Vec<String> = store
        .scan(pattern)
        .map(|t| format!("{} {} {}", dict.decode(t[0]), dict.decode(t[1]), dict.decode(t[2])))
        .collect();
    rows.sort();
    rows
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn native_agrees_with_mem_on_all_patterns(
        g in graph_strategy(),
        s in 0u8..10, p in 0u8..5, o in 0u8..12,
    ) {
        let mem = MemStore::from_graph(&g);
        let native = NativeStore::from_graph(&g);
        // Patterns are resolved per store (ids differ) but bind the same
        // terms by construction.
        let mem_patterns = patterns_for(&mem, s, p, o);
        let native_patterns = patterns_for(&native, s, p, o);
        for (mp, np) in mem_patterns.into_iter().zip(native_patterns) {
            // Skip pattern pairs where term resolution differs (a term
            // absent in the data resolves to None in both stores, so this
            // only guards the mask alignment).
            prop_assert_eq!(decode_sorted(&mem, mp), decode_sorted(&native, np));
        }
    }

    #[test]
    fn native_estimates_are_exact(
        g in graph_strategy(),
        s in 0u8..10, p in 0u8..5, o in 0u8..12,
    ) {
        let native = NativeStore::from_graph(&g);
        for pattern in patterns_for(&native, s, p, o) {
            let exact = native.scan(pattern).count() as u64;
            prop_assert_eq!(native.estimate(pattern), exact, "pattern {:?}", pattern);
        }
    }

    #[test]
    fn spo_only_store_agrees_with_full_store(
        g in graph_strategy(),
        s in 0u8..10, p in 0u8..5, o in 0u8..12,
    ) {
        let full = NativeStore::from_graph(&g);
        let spo = NativeStore::with_indexes(&g, IndexSelection::spo_only());
        let full_patterns = patterns_for(&full, s, p, o);
        let spo_patterns = patterns_for(&spo, s, p, o);
        for (fp, sp) in full_patterns.into_iter().zip(spo_patterns) {
            prop_assert_eq!(decode_sorted(&full, fp), decode_sorted(&spo, sp));
        }
    }

    #[test]
    fn mem_estimates_are_upper_bounds(
        g in graph_strategy(),
        s in 0u8..10, p in 0u8..5,
    ) {
        let mem = MemStore::from_graph(&g);
        for pattern in patterns_for(&mem, s, p, 0) {
            let exact = mem.scan(pattern).count() as u64;
            prop_assert!(mem.estimate(pattern) >= exact);
        }
    }

    #[test]
    fn dictionary_roundtrips_random_graphs(g in graph_strategy()) {
        let native = NativeStore::from_graph(&g);
        let dict = native.dictionary();
        for (id, term) in dict.iter() {
            prop_assert_eq!(dict.lookup(term), Some(id));
        }
    }
}
