//! A fast, non-cryptographic hasher for dictionary-internal maps.
//!
//! The dictionary's term→id map is the hottest hash table in the loading
//! path; SipHash (std's default) is noticeably slower for this workload.
//! This is the well-known Fx multiply-xor construction (as used by rustc),
//! implemented locally to keep the crate dependency-free. HashDoS is not a
//! concern: keys come from our own generator or trusted benchmark files.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiply-xor hasher (Fx construction).
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut last = [0u8; 8];
            last[..rem.len()].copy_from_slice(rem);
            self.add(u64::from_le_bytes(last));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add(i as u64);
    }
}

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_basics() {
        let mut m: FxHashMap<String, u32> = FxHashMap::default();
        for i in 0..1000 {
            m.insert(format!("key{i}"), i);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m.get("key500"), Some(&500));
    }

    #[test]
    fn hashes_differ_for_similar_keys() {
        fn h(s: &str) -> u64 {
            let mut hasher = FxHasher::default();
            hasher.write(s.as_bytes());
            hasher.finish()
        }
        assert_ne!(h("http://a/1"), h("http://a/2"));
        assert_ne!(h("abc"), h("acb"));
    }

    #[test]
    fn deterministic() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write(b"hello world, this is a test");
        b.write(b"hello world, this is a test");
        assert_eq!(a.finish(), b.finish());
    }
}
