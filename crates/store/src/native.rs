//! The index-backed "native" store.
//!
//! Models the paper's engines with a physical backend (Sesame-DB,
//! Virtuoso): at load time the document is dictionary-encoded and sorted
//! into up to **six permutation indexes** (SPO, SOP, PSO, POS, OSP, OPS —
//! the Hexastore scheme the paper cites as reference 13), so *every* triple
//! pattern, whatever its bound positions, resolves to one contiguous
//! binary-searched range. Loading therefore costs sort time — mirroring
//! the paper's separate loading-time metric — and pattern scans plus
//! cardinality estimates are exact and cheap, which is what enables the
//! `native-opt` configuration's cost-based join reordering.

use std::sync::OnceLock;

use sp2b_rdf::{Graph, Triple};

use crate::dictionary::{Dictionary, Id, IdTriple};
use crate::stats::StoreStats;
use crate::traits::{
    debug_assert_chunks_cover, matches, split_ranges, Pattern, ScanChunk, TripleStore,
};

/// One of the six orderings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IndexOrder {
    /// subject, predicate, object.
    Spo,
    /// subject, object, predicate.
    Sop,
    /// predicate, subject, object.
    Pso,
    /// predicate, object, subject.
    Pos,
    /// object, subject, predicate.
    Osp,
    /// object, predicate, subject.
    Ops,
}

impl IndexOrder {
    /// All six orders.
    pub const ALL: [IndexOrder; 6] = [
        IndexOrder::Spo,
        IndexOrder::Sop,
        IndexOrder::Pso,
        IndexOrder::Pos,
        IndexOrder::Osp,
        IndexOrder::Ops,
    ];

    /// The triple positions in key order: `perm[0]` is the major key.
    pub fn permutation(self) -> [usize; 3] {
        match self {
            IndexOrder::Spo => [0, 1, 2],
            IndexOrder::Sop => [0, 2, 1],
            IndexOrder::Pso => [1, 0, 2],
            IndexOrder::Pos => [1, 2, 0],
            IndexOrder::Osp => [2, 0, 1],
            IndexOrder::Ops => [2, 1, 0],
        }
    }

    fn slot(self) -> usize {
        match self {
            IndexOrder::Spo => 0,
            IndexOrder::Sop => 1,
            IndexOrder::Pso => 2,
            IndexOrder::Pos => 3,
            IndexOrder::Osp => 4,
            IndexOrder::Ops => 5,
        }
    }
}

/// Which indexes to build. The default is all six (hexastore); the
/// ablation configuration keeps only SPO, forcing residual filtering for
/// non-prefix patterns (DESIGN.md §7.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexSelection(pub [bool; 6]);

impl IndexSelection {
    /// All six permutation indexes.
    pub fn all() -> Self {
        IndexSelection([true; 6])
    }

    /// Only the SPO index (a "simple triple store").
    pub fn spo_only() -> Self {
        let mut sel = [false; 6];
        sel[IndexOrder::Spo.slot()] = true;
        IndexSelection(sel)
    }

    fn has(&self, order: IndexOrder) -> bool {
        self.0[order.slot()]
    }
}

impl Default for IndexSelection {
    fn default() -> Self {
        IndexSelection::all()
    }
}

#[inline]
pub(crate) fn key(t: &IdTriple, perm: [usize; 3]) -> (Id, Id, Id) {
    (t[perm[0]], t[perm[1]], t[perm[2]])
}

/// The contiguous slice of `index` — sorted by `perm` — whose first
/// `prefix_len` key positions equal the pattern's bound values. The
/// disk segment store ([`crate::disk`]) runs the same binary search,
/// but over its block index's first keys instead of whole triples.
pub(crate) fn prefix_range<'a>(
    index: &'a [IdTriple],
    perm: [usize; 3],
    prefix_len: usize,
    pattern: &Pattern,
) -> &'a [IdTriple] {
    if prefix_len == 0 {
        return index;
    }
    let mut lo_key = (0, 0, 0);
    let mut hi_key = (Id::MAX, Id::MAX, Id::MAX);
    let keys = [&mut lo_key.0, &mut lo_key.1, &mut lo_key.2];
    for (slot, k) in keys.into_iter().enumerate().take(prefix_len) {
        *k = pattern[perm[slot]].expect("prefix position is bound");
    }
    let keys = [&mut hi_key.0, &mut hi_key.1, &mut hi_key.2];
    for (slot, k) in keys.into_iter().enumerate().take(prefix_len) {
        *k = pattern[perm[slot]].expect("prefix position is bound");
    }
    let lo = index.partition_point(|t| key(t, perm) < lo_key);
    let hi = index.partition_point(|t| {
        let k = key(t, perm);
        (
            k.0,
            if prefix_len > 1 { k.1 } else { hi_key.1 },
            if prefix_len > 2 { k.2 } else { hi_key.2 },
        ) <= hi_key
    });
    &index[lo..hi]
}

/// Two-pointer merge of a sorted index with a sorted batch.
fn merge_sorted(index: Vec<IdTriple>, batch: &[IdTriple], perm: [usize; 3]) -> Vec<IdTriple> {
    let mut merged = Vec::with_capacity(index.len() + batch.len());
    let mut i = 0;
    let mut j = 0;
    while i < index.len() && j < batch.len() {
        if key(&index[i], perm) <= key(&batch[j], perm) {
            merged.push(index[i]);
            i += 1;
        } else {
            merged.push(batch[j]);
            j += 1;
        }
    }
    merged.extend_from_slice(&index[i..]);
    merged.extend_from_slice(&batch[j..]);
    merged
}

/// The native store: dictionary + sorted permutation indexes.
pub struct NativeStore {
    dict: Dictionary,
    indexes: [Option<Vec<IdTriple>>; 6],
    len: usize,
    stats: OnceLock<StoreStats>,
}

impl NativeStore {
    /// Builds a store with all six indexes from a graph.
    pub fn from_graph(graph: &Graph) -> Self {
        Self::with_indexes(graph, IndexSelection::all())
    }

    /// Builds a store with a chosen index subset.
    pub fn with_indexes(graph: &Graph, selection: IndexSelection) -> Self {
        let mut dict = Dictionary::new();
        let mut triples: Vec<IdTriple> = Vec::with_capacity(graph.len());
        for t in graph.iter() {
            triples.push(dict.encode_triple(t));
        }
        Self::from_encoded(dict, triples, selection)
    }

    /// Builds from already-encoded triples (bulk-load path).
    pub fn from_encoded(
        dict: Dictionary,
        triples: Vec<IdTriple>,
        selection: IndexSelection,
    ) -> Self {
        assert!(
            selection.has(IndexOrder::Spo) || selection.0.iter().any(|&b| b),
            "at least one index must be selected"
        );
        let len = triples.len();
        let mut indexes: [Option<Vec<IdTriple>>; 6] = Default::default();
        for order in IndexOrder::ALL {
            if !selection.has(order) {
                continue;
            }
            let perm = order.permutation();
            let mut v = triples.clone();
            v.sort_unstable_by_key(|t| key(t, perm));
            indexes[order.slot()] = Some(v);
        }
        NativeStore {
            dict,
            indexes,
            len,
            stats: OnceLock::new(),
        }
    }

    /// Incrementally loads triples, then (re)builds the indexes. For bulk
    /// loading prefer [`NativeStore::from_graph`].
    pub fn load_triples<'a>(
        triples: impl IntoIterator<Item = &'a Triple>,
        selection: IndexSelection,
    ) -> Self {
        let mut dict = Dictionary::new();
        let encoded: Vec<IdTriple> = triples.into_iter().map(|t| dict.encode_triple(t)).collect();
        Self::from_encoded(dict, encoded, selection)
    }

    /// Inserts a batch of triples incrementally: encodes against the
    /// dictionary and merges each selected index in one linear pass
    /// (O(existing + batch) per index, versus a full rebuild's sort).
    /// This is the storage half of the update-stream extension
    /// (Section VII: "SPARQL update … could be realized by minor
    /// extensions"); `sp2b-datagen`'s `UpdateStream` produces the batches.
    pub fn insert_batch<'a>(&mut self, triples: impl IntoIterator<Item = &'a Triple>) {
        let encoded: Vec<IdTriple> = triples
            .into_iter()
            .map(|t| self.dict.encode_triple(t))
            .collect();
        if encoded.is_empty() {
            return;
        }
        self.stats = OnceLock::new(); // summary is stale once data changes
        self.len += encoded.len();
        for order in IndexOrder::ALL {
            let Some(index) = self.indexes[order.slot()].take() else {
                continue;
            };
            let perm = order.permutation();
            let mut batch = encoded.clone();
            batch.sort_unstable_by_key(|t| key(t, perm));
            self.indexes[order.slot()] = Some(merge_sorted(index, &batch, perm));
        }
    }

    /// The best index for a pattern: the one whose key order puts all
    /// bound positions first. Returns the order plus the prefix length
    /// usable for range narrowing.
    fn best_index(&self, pattern: &Pattern) -> (IndexOrder, usize) {
        let bound = [
            pattern[0].is_some(),
            pattern[1].is_some(),
            pattern[2].is_some(),
        ];
        let mut best = (IndexOrder::Spo, 0usize);
        for order in IndexOrder::ALL {
            if self.indexes[order.slot()].is_none() {
                continue;
            }
            let perm = order.permutation();
            let mut prefix = 0;
            for &pos in &perm {
                if bound[pos] {
                    prefix += 1;
                } else {
                    break;
                }
            }
            if prefix > best.1 || self.indexes[best.0.slot()].is_none() {
                best = (order, prefix);
            }
            if prefix == 3 {
                break;
            }
        }
        best
    }

    /// The contiguous range of `order`'s index matching the bound prefix.
    fn range(&self, order: IndexOrder, prefix_len: usize, pattern: &Pattern) -> &[IdTriple] {
        let index = self.indexes[order.slot()]
            .as_ref()
            .expect("best_index only returns built indexes");
        prefix_range(index, order.permutation(), prefix_len, pattern)
    }
}

impl TripleStore for NativeStore {
    fn dictionary(&self) -> &Dictionary {
        &self.dict
    }

    fn len(&self) -> usize {
        self.len
    }

    fn scan<'a>(&'a self, pattern: Pattern) -> Box<dyn Iterator<Item = IdTriple> + 'a> {
        let (order, prefix_len) = self.best_index(&pattern);
        let range = self.range(order, prefix_len, &pattern);
        let bound_count = pattern.iter().filter(|p| p.is_some()).count();
        if prefix_len == bound_count {
            // The range is exact; no residual filtering needed.
            Box::new(range.iter().copied())
        } else {
            Box::new(range.iter().filter(move |t| matches(t, &pattern)).copied())
        }
    }

    /// Partitioned scan: the binary-searched index range is split into at
    /// most `n` contiguous sub-ranges, so their concatenation is exactly
    /// the range [`NativeStore::scan`] walks, in the same index order.
    fn scan_chunks(&self, pattern: Pattern, n: usize) -> Vec<ScanChunk<'_>> {
        let (order, prefix_len) = self.best_index(&pattern);
        let range = self.range(order, prefix_len, &pattern);
        let chunks: Vec<ScanChunk<'_>> = split_ranges(range.len(), n)
            .into_iter()
            .map(|r| ScanChunk::Triples(&range[r]))
            .collect();
        debug_assert_chunks_cover(self, pattern, &chunks);
        chunks
    }

    /// Exact estimates via index-range width — the "statistics" that let
    /// native engines answer Q3c in constant time and drive cost-based
    /// join ordering. With a partial index set (ablation) estimates fall
    /// back to the range width, an upper bound.
    fn estimate(&self, pattern: Pattern) -> u64 {
        let (order, prefix_len) = self.best_index(&pattern);
        self.range(order, prefix_len, &pattern).len() as u64
    }

    fn has_exact_estimates(&self) -> bool {
        // Exact whenever all six indexes exist (every pattern gets a full
        // prefix); conservative otherwise.
        self.indexes.iter().all(|i| i.is_some())
    }

    /// Lazily computed from any present index's triples and cached;
    /// [`NativeStore::insert_batch`] resets the cache.
    fn stats(&self) -> Option<&StoreStats> {
        Some(self.stats.get_or_init(|| {
            let triples = self
                .indexes
                .iter()
                .flatten()
                .next()
                .map(Vec::as_slice)
                .unwrap_or(&[]);
            StoreStats::from_triples(triples)
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sp2b_rdf::{Iri, Literal, Subject, Term};

    fn graph() -> Graph {
        let mut g = Graph::new();
        for i in 0..20 {
            g.add(
                Subject::iri(format!("http://x/s{}", i % 5)),
                Iri::new(format!("http://x/p{}", i % 3)),
                Term::iri(format!("http://x/o{}", i % 7)),
            );
        }
        g.add(
            Subject::iri("http://x/special"),
            Iri::new("http://x/p0"),
            Term::Literal(Literal::integer(42)),
        );
        g
    }

    fn agree_with_memstore(pattern_terms: [Option<&str>; 3]) {
        let g = graph();
        let native = NativeStore::from_graph(&g);
        let mem = crate::mem::MemStore::from_graph(&g);
        let npat: Pattern = [
            pattern_terms[0].and_then(|t| native.resolve(&Term::iri(t))),
            pattern_terms[1].and_then(|t| native.resolve(&Term::iri(t))),
            pattern_terms[2].and_then(|t| native.resolve(&Term::iri(t))),
        ];
        let mpat: Pattern = [
            pattern_terms[0].and_then(|t| mem.resolve(&Term::iri(t))),
            pattern_terms[1].and_then(|t| mem.resolve(&Term::iri(t))),
            pattern_terms[2].and_then(|t| mem.resolve(&Term::iri(t))),
        ];
        // Compare decoded term sets (ids differ across stores).
        let mut a: Vec<String> = native
            .scan(npat)
            .map(|t| {
                format!(
                    "{} {} {}",
                    native.dictionary().decode(t[0]),
                    native.dictionary().decode(t[1]),
                    native.dictionary().decode(t[2])
                )
            })
            .collect();
        let mut b: Vec<String> = mem
            .scan(mpat)
            .map(|t| {
                format!(
                    "{} {} {}",
                    mem.dictionary().decode(t[0]),
                    mem.dictionary().decode(t[1]),
                    mem.dictionary().decode(t[2])
                )
            })
            .collect();
        a.sort();
        b.sort();
        assert_eq!(a, b, "pattern {pattern_terms:?}");
    }

    #[test]
    fn all_access_patterns_agree_with_memstore() {
        agree_with_memstore([None, None, None]);
        agree_with_memstore([Some("http://x/s1"), None, None]);
        agree_with_memstore([None, Some("http://x/p1"), None]);
        agree_with_memstore([None, None, Some("http://x/o2")]);
        agree_with_memstore([Some("http://x/s1"), Some("http://x/p1"), None]);
        agree_with_memstore([Some("http://x/s1"), None, Some("http://x/o2")]);
        agree_with_memstore([None, Some("http://x/p1"), Some("http://x/o2")]);
        agree_with_memstore([
            Some("http://x/s1"),
            Some("http://x/p1"),
            Some("http://x/o1"),
        ]);
    }

    #[test]
    fn estimates_are_exact_with_all_indexes() {
        let g = graph();
        let s = NativeStore::from_graph(&g);
        assert!(s.has_exact_estimates());
        for pattern in [
            [None, None, None],
            [s.resolve(&Term::iri("http://x/s1")), None, None],
            [None, s.resolve(&Term::iri("http://x/p0")), None],
            [None, None, s.resolve(&Term::iri("http://x/o3"))],
        ] {
            let exact = s.scan(pattern).count() as u64;
            assert_eq!(s.estimate(pattern), exact, "pattern {pattern:?}");
        }
    }

    #[test]
    fn spo_only_still_answers_everything() {
        let g = graph();
        let s = NativeStore::with_indexes(&g, IndexSelection::spo_only());
        assert!(!s.has_exact_estimates());
        let p0 = s.resolve(&Term::iri("http://x/p0")).unwrap();
        let full = NativeStore::from_graph(&g);
        let p0f = full.resolve(&Term::iri("http://x/p0")).unwrap();
        assert_eq!(
            s.scan([None, Some(p0), None]).count(),
            full.scan([None, Some(p0f), None]).count()
        );
    }

    #[test]
    fn point_lookup_finds_single_triple() {
        let g = graph();
        let s = NativeStore::from_graph(&g);
        let sp = s.resolve(&Term::iri("http://x/special")).unwrap();
        let p0 = s.resolve(&Term::iri("http://x/p0")).unwrap();
        let v = s.resolve(&Term::Literal(Literal::integer(42))).unwrap();
        let hits: Vec<_> = s.scan([Some(sp), Some(p0), Some(v)]).collect();
        assert_eq!(hits.len(), 1);
        assert!(s.contains([Some(sp), None, None]));
    }

    #[test]
    fn insert_batch_matches_bulk_build() {
        let g = graph();
        let all_at_once = NativeStore::from_graph(&g);

        // Build incrementally in three uneven batches.
        let triples = g.as_slice();
        let mut incremental = NativeStore::from_graph(&Graph::new());
        incremental.insert_batch(&triples[..5]);
        incremental.insert_batch(&triples[5..6]);
        incremental.insert_batch(&triples[6..]);

        assert_eq!(incremental.len(), all_at_once.len());
        // Same triples under every access pattern (ids may differ; compare
        // decoded).
        for pattern_terms in [
            [None, None, None],
            [None, Some("http://x/p1"), None],
            [Some("http://x/s1"), None, None],
            [None, None, Some("http://x/o2")],
        ] {
            let decode = |s: &NativeStore| -> Vec<String> {
                let pat: Pattern = [
                    pattern_terms[0].and_then(|t: &str| s.resolve(&Term::iri(t))),
                    pattern_terms[1].and_then(|t: &str| s.resolve(&Term::iri(t))),
                    pattern_terms[2].and_then(|t: &str| s.resolve(&Term::iri(t))),
                ];
                let mut v: Vec<String> = s
                    .scan(pat)
                    .map(|t| {
                        format!(
                            "{} {} {}",
                            s.dictionary().decode(t[0]),
                            s.dictionary().decode(t[1]),
                            s.dictionary().decode(t[2])
                        )
                    })
                    .collect();
                v.sort();
                v
            };
            assert_eq!(decode(&incremental), decode(&all_at_once));
        }
        // Estimates stay exact after merging.
        assert!(incremental.has_exact_estimates());
        let p0 = incremental.resolve(&Term::iri("http://x/p0")).unwrap();
        assert_eq!(
            incremental.estimate([None, Some(p0), None]),
            incremental.scan([None, Some(p0), None]).count() as u64
        );
    }

    #[test]
    fn insert_batch_into_empty_and_empty_batch() {
        let mut s = NativeStore::from_graph(&Graph::new());
        s.insert_batch([]);
        assert!(s.is_empty());
        let g = graph();
        s.insert_batch(g.as_slice());
        assert_eq!(s.len(), g.len());
    }

    #[test]
    fn scan_chunks_concatenate_to_scan_order() {
        let g = graph();
        let s = NativeStore::from_graph(&g);
        let p1 = s.resolve(&Term::iri("http://x/p1"));
        let o2 = s.resolve(&Term::iri("http://x/o2"));
        for pattern in [
            [None, None, None],
            [None, p1, None],
            [None, p1, o2], // full prefix on a POS-style index
            [s.resolve(&Term::iri("http://x/s1")), None, o2],
        ] {
            let sequential: Vec<IdTriple> = s.scan(pattern).collect();
            for n in [1, 2, 3, 7, 64] {
                let chunks = s.scan_chunks(pattern, n);
                assert!(chunks.len() <= n.max(1), "at most n chunks");
                let chunked: Vec<IdTriple> =
                    chunks.into_iter().flat_map(|c| c.iter(pattern)).collect();
                assert_eq!(chunked, sequential, "pattern {pattern:?} n {n}");
            }
        }
    }

    #[test]
    fn scan_chunks_of_empty_range_are_empty() {
        let g = graph();
        let s = NativeStore::from_graph(&g);
        // An id that exists only as an object never matches as predicate:
        // the range is empty, so there is nothing to partition.
        let o1 = s.resolve(&Term::iri("http://x/o1"));
        assert!(s.scan_chunks([None, o1, None], 4).is_empty());
    }

    #[test]
    fn empty_store_behaves() {
        let s = NativeStore::from_graph(&Graph::new());
        assert!(s.is_empty());
        assert_eq!(s.scan([None, None, None]).count(), 0);
        assert_eq!(s.estimate([None, None, None]), 0);
    }

    #[test]
    fn best_index_prefers_longest_prefix() {
        let g = graph();
        let s = NativeStore::from_graph(&g);
        // object-only pattern must pick an O-major index.
        let o = s.resolve(&Term::iri("http://x/o1"));
        let (order, prefix) = s.best_index(&[None, None, o]);
        assert!(matches!(order, IndexOrder::Osp | IndexOrder::Ops));
        assert_eq!(prefix, 1);
        // subject+object pattern must pick SOP or OSP with prefix 2.
        let su = s.resolve(&Term::iri("http://x/s1"));
        let (order, prefix) = s.best_index(&[su, None, o]);
        assert!(matches!(order, IndexOrder::Sop | IndexOrder::Osp));
        assert_eq!(prefix, 2);
    }
}
