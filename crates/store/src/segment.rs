//! The on-disk segment format behind [`crate::disk`].
//!
//! A saved store is a directory of immutable files:
//!
//! ```text
//! root.sp2b       the segment root: magic, version, partition key,
//!                 counts, and per-section checksums (written last via
//!                 tmp + rename, so it doubles as the atomic root
//!                 pointer a future hot-swap flips)
//! dict.bin        the shared dictionary: every term serialized in id
//!                 order, so re-interning sequentially reproduces the
//!                 exact ids of the original load
//! stats.bin       one serialized [`StoreStats`] summary per shard
//!                 (length-prefixed, in shard order), so a reopened
//!                 store plans with full statistics without touching
//!                 any triple run
//! shard-NNNN.seg  one file per shard: three sorted id-triple runs
//!                 (SPO, then PSO, then OSP) of 12 bytes per triple
//! ```
//!
//! All integers are little-endian. Every section carries an FNV-1a-64
//! checksum recorded in the root; the root itself ends with a checksum
//! over its own preceding bytes. Opening therefore costs O(root +
//! dictionary): triple runs are validated by size at open and by
//! checksum on first (lazy) read.

use std::fs::{self, File};
use std::io::{self, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::Path;

use sp2b_rdf::{Iri, Literal, Term};

use crate::dictionary::{Dictionary, IdTriple};
use crate::native::IndexOrder;
use crate::shard::ShardBy;
use crate::stats::StoreStats;

/// Magic prefix of the segment root.
pub const MAGIC: [u8; 8] = *b"SP2BSEG1";

/// Format version written into the root. Version 2 added the per-shard
/// statistics section (`stats.bin`) and its root fields.
pub const VERSION: u32 = 2;

/// The segment root file name.
pub const ROOT_FILE: &str = "root.sp2b";

/// The serialized dictionary file name.
pub const DICT_FILE: &str = "dict.bin";

/// The serialized per-shard statistics file name.
pub const STATS_FILE: &str = "stats.bin";

/// Bytes per serialized triple (three little-endian `u32` ids).
pub const TRIPLE_BYTES: u64 = 12;

/// The sorted runs each shard file holds, in file order. Three of the
/// six [`NativeStore`](crate::NativeStore) orderings suffice on disk:
/// every single-position pattern gets a full prefix (S via SPO, P via
/// PSO, O via OSP), and longer prefixes reuse the same runs with
/// residual filtering.
pub const RUN_ORDERS: [IndexOrder; 3] = [IndexOrder::Spo, IndexOrder::Pso, IndexOrder::Osp];

/// The shard file name for shard `i`.
pub fn shard_file_name(i: usize) -> String {
    format!("shard-{i:04}.seg")
}

/// Why a segment directory could not be written or opened. Display is a
/// single line, suitable for the CLI's one-line hard errors.
#[derive(Debug)]
pub enum SegmentError {
    /// An underlying filesystem error.
    Io(io::Error),
    /// The directory is not a saved segment store: missing files,
    /// truncation, bad magic/version, or a checksum mismatch.
    Invalid(String),
}

impl std::fmt::Display for SegmentError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SegmentError::Io(e) => write!(f, "i/o error: {e}"),
            SegmentError::Invalid(msg) => f.write_str(msg),
        }
    }
}

impl std::error::Error for SegmentError {}

impl From<io::Error> for SegmentError {
    fn from(e: io::Error) -> Self {
        SegmentError::Io(e)
    }
}

fn invalid(msg: impl Into<String>) -> SegmentError {
    SegmentError::Invalid(msg.into())
}

/// Streaming FNV-1a-64 — the per-section checksum. Self-contained so
/// incremental (per-triple) and whole-buffer hashing agree byte for
/// byte, which the crate's chunking [`crate::hash::FxHasher`] does not
/// guarantee.
#[derive(Debug, Clone)]
pub struct Checksum(u64);

impl Checksum {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// A fresh accumulator.
    pub fn new() -> Self {
        Checksum(Self::OFFSET)
    }

    /// Folds in more bytes.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    /// The digest so far.
    pub fn finish(&self) -> u64 {
        self.0
    }

    /// One-shot digest of a buffer.
    pub fn of(bytes: &[u8]) -> u64 {
        let mut c = Checksum::new();
        c.update(bytes);
        c.finish()
    }
}

impl Default for Checksum {
    fn default() -> Self {
        Checksum::new()
    }
}

/// Root-recorded facts about one shard file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardMeta {
    /// Triples in this shard (every run holds exactly this many).
    pub triples: u64,
    /// Checksum of each run's bytes, in [`RUN_ORDERS`] order.
    pub run_checksums: [u64; 3],
}

impl ShardMeta {
    /// Exact byte size of the shard file these facts describe.
    pub fn file_bytes(&self) -> u64 {
        self.triples * TRIPLE_BYTES * RUN_ORDERS.len() as u64
    }
}

/// The decoded segment root.
#[derive(Debug, Clone)]
pub struct SegmentHeader {
    /// The partition key the triples were routed by.
    pub shard_by: ShardBy,
    /// Total triples across shards.
    pub triples: u64,
    /// Distinct terms in the dictionary.
    pub terms: u64,
    /// Byte length of `dict.bin`.
    pub dict_bytes: u64,
    /// Checksum of `dict.bin`.
    pub dict_checksum: u64,
    /// Byte length of `stats.bin`.
    pub stats_bytes: u64,
    /// Checksum of `stats.bin`.
    pub stats_checksum: u64,
    /// Per-shard facts, in shard order.
    pub shards: Vec<ShardMeta>,
}

/// What a save wrote, for reporting.
#[derive(Debug, Clone)]
pub struct SegmentStats {
    /// Total triples written.
    pub triples: u64,
    /// Distinct terms written.
    pub terms: u64,
    /// Triples per shard, in shard order.
    pub shard_lens: Vec<usize>,
    /// Total bytes across all files.
    pub bytes: u64,
}

fn shard_by_code(shard_by: ShardBy) -> u32 {
    match shard_by {
        ShardBy::Subject => 0,
        ShardBy::PredicateSubject => 1,
    }
}

fn shard_by_from_code(code: u32) -> Option<ShardBy> {
    match code {
        0 => Some(ShardBy::Subject),
        1 => Some(ShardBy::PredicateSubject),
        _ => None,
    }
}

#[inline]
fn run_key(t: &IdTriple, perm: [usize; 3]) -> (u32, u32, u32) {
    (t[perm[0]], t[perm[1]], t[perm[2]])
}

/// Writes a complete segment store into `dir`: dictionary, one file of
/// three sorted runs per bucket, and — last, via tmp + rename — the
/// checksummed root. A crash before the rename leaves no valid root, so
/// a partially written directory never opens.
pub fn write_segments(
    dir: &Path,
    dict: &Dictionary,
    shard_by: ShardBy,
    mut buckets: Vec<Vec<IdTriple>>,
) -> Result<SegmentStats, SegmentError> {
    if !dir.is_dir() {
        return Err(invalid(format!(
            "'{}' is not a directory (create it first)",
            dir.display()
        )));
    }
    let dict_bytes = encode_terms(dict);
    let dict_checksum = Checksum::of(&dict_bytes);
    let mut dict_file = File::create(dir.join(DICT_FILE))?;
    dict_file.write_all(&dict_bytes)?;
    dict_file.sync_all()?;

    // The statistics section: one summary per shard, length-prefixed in
    // shard order. Collected here, at save time, so a reopened store
    // plans with full statistics for the cost of reading this file.
    let mut stats_bytes = Vec::new();
    for bucket in &buckets {
        let blob = StoreStats::from_triples(bucket).encode();
        stats_bytes.extend_from_slice(&(blob.len() as u32).to_le_bytes());
        stats_bytes.extend_from_slice(&blob);
    }
    let stats_checksum = Checksum::of(&stats_bytes);
    let mut stats_file = File::create(dir.join(STATS_FILE))?;
    stats_file.write_all(&stats_bytes)?;
    stats_file.sync_all()?;

    let mut metas = Vec::with_capacity(buckets.len());
    let mut total_bytes = dict_bytes.len() as u64 + stats_bytes.len() as u64;
    for (i, bucket) in buckets.iter_mut().enumerate() {
        let file = File::create(dir.join(shard_file_name(i)))?;
        let mut w = BufWriter::with_capacity(1 << 16, file);
        let mut run_checksums = [0u64; 3];
        for (slot, order) in RUN_ORDERS.iter().enumerate() {
            let perm = order.permutation();
            bucket.sort_unstable_by_key(|t| run_key(t, perm));
            let mut checksum = Checksum::new();
            for t in bucket.iter() {
                let mut buf = [0u8; TRIPLE_BYTES as usize];
                buf[0..4].copy_from_slice(&t[0].to_le_bytes());
                buf[4..8].copy_from_slice(&t[1].to_le_bytes());
                buf[8..12].copy_from_slice(&t[2].to_le_bytes());
                checksum.update(&buf);
                w.write_all(&buf)?;
            }
            run_checksums[slot] = checksum.finish();
        }
        w.flush()?;
        w.get_ref().sync_all()?;
        let meta = ShardMeta {
            triples: bucket.len() as u64,
            run_checksums,
        };
        total_bytes += meta.file_bytes();
        metas.push(meta);
    }

    let triples: u64 = metas.iter().map(|m| m.triples).sum();
    let mut root = Vec::with_capacity(64 + metas.len() * 32);
    root.extend_from_slice(&MAGIC);
    root.extend_from_slice(&VERSION.to_le_bytes());
    root.extend_from_slice(&shard_by_code(shard_by).to_le_bytes());
    root.extend_from_slice(&(metas.len() as u32).to_le_bytes());
    root.extend_from_slice(&0u32.to_le_bytes()); // reserved
    root.extend_from_slice(&triples.to_le_bytes());
    root.extend_from_slice(&(dict.len() as u64).to_le_bytes());
    root.extend_from_slice(&(dict_bytes.len() as u64).to_le_bytes());
    root.extend_from_slice(&dict_checksum.to_le_bytes());
    root.extend_from_slice(&(stats_bytes.len() as u64).to_le_bytes());
    root.extend_from_slice(&stats_checksum.to_le_bytes());
    for meta in &metas {
        root.extend_from_slice(&meta.triples.to_le_bytes());
        for cks in meta.run_checksums {
            root.extend_from_slice(&cks.to_le_bytes());
        }
    }
    let trailer = Checksum::of(&root);
    root.extend_from_slice(&trailer.to_le_bytes());
    total_bytes += root.len() as u64;

    // The atomic root flip: readers either see the previous root or the
    // complete new one, never a torn write.
    let tmp = dir.join(format!("{ROOT_FILE}.tmp"));
    let mut root_file = File::create(&tmp)?;
    root_file.write_all(&root)?;
    root_file.sync_all()?;
    drop(root_file);
    fs::rename(&tmp, dir.join(ROOT_FILE))?;

    Ok(SegmentStats {
        triples,
        terms: dict.len() as u64,
        shard_lens: metas.iter().map(|m| m.triples as usize).collect(),
        bytes: total_bytes,
    })
}

/// Reads and validates the segment root of `dir`. This is the whole
/// fixed cost of discovering a saved store: a few dozen bytes per shard.
pub fn read_header(dir: &Path) -> Result<SegmentHeader, SegmentError> {
    if !dir.is_dir() {
        return Err(invalid(format!(
            "segment directory '{}' does not exist",
            dir.display()
        )));
    }
    let path = dir.join(ROOT_FILE);
    let bytes = match fs::read(&path) {
        Ok(b) => b,
        Err(e) if e.kind() == io::ErrorKind::NotFound => {
            return Err(invalid(format!(
                "no segment root in '{}' (expected a directory written by `sp2b save`)",
                dir.display()
            )));
        }
        Err(e) => return Err(e.into()),
    };
    if bytes.len() < MAGIC.len() + 8 {
        return Err(invalid("segment root is truncated"));
    }
    let (body, trailer) = bytes.split_at(bytes.len() - 8);
    let recorded = u64::from_le_bytes(trailer.try_into().expect("8-byte trailer"));
    if Checksum::of(body) != recorded {
        return Err(invalid(
            "segment root checksum mismatch (truncated or corrupted save)",
        ));
    }
    let mut cur = Cursor::new(body, "segment root");
    if cur.take(MAGIC.len())? != MAGIC {
        return Err(invalid("not a segment root (bad magic)"));
    }
    let version = cur.u32()?;
    if version != VERSION {
        return Err(invalid(format!(
            "unsupported segment version {version} (this build reads version {VERSION})"
        )));
    }
    let shard_by = shard_by_from_code(cur.u32()?)
        .ok_or_else(|| invalid("segment root names an unknown partition key"))?;
    let shard_count = cur.u32()? as usize;
    cur.u32()?; // reserved
    let triples = cur.u64()?;
    let terms = cur.u64()?;
    let dict_bytes = cur.u64()?;
    let dict_checksum = cur.u64()?;
    let stats_bytes = cur.u64()?;
    let stats_checksum = cur.u64()?;
    let mut shards = Vec::with_capacity(shard_count);
    for _ in 0..shard_count {
        let shard_triples = cur.u64()?;
        let run_checksums = [cur.u64()?, cur.u64()?, cur.u64()?];
        shards.push(ShardMeta {
            triples: shard_triples,
            run_checksums,
        });
    }
    if !cur.done() {
        return Err(invalid("trailing bytes in segment root"));
    }
    let shard_sum: u64 = shards.iter().map(|m| m.triples).sum();
    if shard_sum != triples {
        return Err(invalid(
            "segment root is inconsistent: shard counts do not sum to the total",
        ));
    }
    Ok(SegmentHeader {
        shard_by,
        triples,
        terms,
        dict_bytes,
        dict_checksum,
        stats_bytes,
        stats_checksum,
        shards,
    })
}

/// Reads and verifies the per-shard statistics section, in shard order.
/// O(stats bytes) — no triple run is touched, which is what keeps
/// planning against a freshly opened store cold-path-free.
pub fn read_stats(dir: &Path, header: &SegmentHeader) -> Result<Vec<StoreStats>, SegmentError> {
    let path = dir.join(STATS_FILE);
    let bytes = match fs::read(&path) {
        Ok(b) => b,
        Err(e) if e.kind() == io::ErrorKind::NotFound => {
            return Err(invalid(format!(
                "missing statistics file '{}'",
                path.display()
            )));
        }
        Err(e) => return Err(e.into()),
    };
    if bytes.len() as u64 != header.stats_bytes {
        return Err(invalid(format!(
            "statistics section is truncated: root records {} bytes, file holds {}",
            header.stats_bytes,
            bytes.len()
        )));
    }
    if Checksum::of(&bytes) != header.stats_checksum {
        return Err(invalid(
            "statistics checksum mismatch (corrupted save; re-run `sp2b save`)",
        ));
    }
    let mut cur = Cursor::new(&bytes, "statistics section");
    let mut out = Vec::with_capacity(header.shards.len());
    for (i, meta) in header.shards.iter().enumerate() {
        let len = cur.u32()? as usize;
        let blob = cur.take(len)?;
        let (stats, rest) = StoreStats::decode(blob)
            .map_err(|e| invalid(format!("statistics of shard {i} are corrupt: {e}")))?;
        if !rest.is_empty() {
            return Err(invalid(format!(
                "statistics of shard {i} hold trailing bytes"
            )));
        }
        if stats.triples != meta.triples {
            return Err(invalid(format!(
                "statistics of shard {i} are inconsistent: root records {} triples, summary {}",
                meta.triples, stats.triples
            )));
        }
        out.push(stats);
    }
    if !cur.done() {
        return Err(invalid("trailing bytes in statistics section"));
    }
    Ok(out)
}

/// Reads, verifies and re-interns the shared dictionary. Sequential
/// re-interning reproduces the exact ids the saved store was encoded
/// with (ids are dense, first-seen ordered), so saved triple runs and
/// fresh query plans agree without any translation.
pub fn read_dictionary(dir: &Path, header: &SegmentHeader) -> Result<Dictionary, SegmentError> {
    let path = dir.join(DICT_FILE);
    let bytes = match fs::read(&path) {
        Ok(b) => b,
        Err(e) if e.kind() == io::ErrorKind::NotFound => {
            return Err(invalid(format!(
                "missing dictionary file '{}'",
                path.display()
            )));
        }
        Err(e) => return Err(e.into()),
    };
    if bytes.len() as u64 != header.dict_bytes {
        return Err(invalid(format!(
            "dictionary is truncated: root records {} bytes, file holds {}",
            header.dict_bytes,
            bytes.len()
        )));
    }
    if Checksum::of(&bytes) != header.dict_checksum {
        return Err(invalid(
            "dictionary checksum mismatch (corrupted save; re-run `sp2b save`)",
        ));
    }
    let dict = decode_terms(&bytes)?;
    if dict.len() as u64 != header.terms {
        return Err(invalid(format!(
            "dictionary is inconsistent: root records {} terms, section decodes {}",
            header.terms,
            dict.len()
        )));
    }
    Ok(dict)
}

/// Reads one sorted run out of a shard file, verifying its checksum.
/// `run` indexes [`RUN_ORDERS`]; `triples` is the shard's triple count
/// from the root.
pub fn read_run(
    path: &Path,
    run: usize,
    triples: u64,
    expect_checksum: u64,
) -> Result<Vec<IdTriple>, SegmentError> {
    let mut file = File::open(path)?;
    let run_bytes = triples * TRIPLE_BYTES;
    file.seek(SeekFrom::Start(run as u64 * run_bytes))?;
    let mut bytes = vec![0u8; run_bytes as usize];
    file.read_exact(&mut bytes).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            invalid(format!("shard file '{}' is truncated", path.display()))
        } else {
            SegmentError::Io(e)
        }
    })?;
    if Checksum::of(&bytes) != expect_checksum {
        return Err(invalid(format!(
            "run checksum mismatch in '{}' (corrupted save)",
            path.display()
        )));
    }
    let mut out = Vec::with_capacity(triples as usize);
    for chunk in bytes.chunks_exact(TRIPLE_BYTES as usize) {
        out.push([
            u32::from_le_bytes(chunk[0..4].try_into().expect("4 bytes")),
            u32::from_le_bytes(chunk[4..8].try_into().expect("4 bytes")),
            u32::from_le_bytes(chunk[8..12].try_into().expect("4 bytes")),
        ]);
    }
    Ok(out)
}

// Term tags of the dictionary serialization.
const TAG_IRI: u8 = 0;
const TAG_BLANK: u8 = 1;
const TAG_PLAIN: u8 = 2;
const TAG_TYPED: u8 = 3;
const TAG_LANG: u8 = 4;
const TAG_TYPED_LANG: u8 = 5;

fn put_str(buf: &mut Vec<u8>, s: &str) {
    buf.extend_from_slice(&(s.len() as u32).to_le_bytes());
    buf.extend_from_slice(s.as_bytes());
}

/// Serializes every term in id order: a one-byte tag followed by
/// length-prefixed UTF-8 fields.
pub fn encode_terms(dict: &Dictionary) -> Vec<u8> {
    let mut buf = Vec::new();
    for (_, term) in dict.iter() {
        match term {
            Term::Iri(iri) => {
                buf.push(TAG_IRI);
                put_str(&mut buf, iri.as_str());
            }
            Term::Blank(b) => {
                buf.push(TAG_BLANK);
                put_str(&mut buf, b.as_str());
            }
            Term::Literal(l) => match (&l.datatype, &l.language) {
                (None, None) => {
                    buf.push(TAG_PLAIN);
                    put_str(&mut buf, &l.lexical);
                }
                (Some(dt), None) => {
                    buf.push(TAG_TYPED);
                    put_str(&mut buf, &l.lexical);
                    put_str(&mut buf, dt.as_str());
                }
                (None, Some(lang)) => {
                    buf.push(TAG_LANG);
                    put_str(&mut buf, &l.lexical);
                    put_str(&mut buf, lang);
                }
                (Some(dt), Some(lang)) => {
                    buf.push(TAG_TYPED_LANG);
                    put_str(&mut buf, &l.lexical);
                    put_str(&mut buf, dt.as_str());
                    put_str(&mut buf, lang);
                }
            },
        }
    }
    buf
}

/// Deserializes a dictionary section, re-interning terms sequentially.
pub fn decode_terms(bytes: &[u8]) -> Result<Dictionary, SegmentError> {
    let mut cur = Cursor::new(bytes, "dictionary");
    let mut dict = Dictionary::new();
    let mut next = 0u64;
    while !cur.done() {
        let tag = cur.take(1)?[0];
        let term = match tag {
            TAG_IRI => Term::iri(cur.str()?),
            TAG_BLANK => Term::blank(cur.str()?),
            TAG_PLAIN => Term::Literal(Literal::plain(cur.str()?)),
            TAG_TYPED => {
                let lexical = cur.str()?;
                Term::Literal(Literal::typed(lexical, Iri::new(cur.str()?)))
            }
            TAG_LANG => {
                let lexical = cur.str()?;
                let mut l = Literal::plain(lexical);
                l.language = Some(cur.str()?);
                Term::Literal(l)
            }
            TAG_TYPED_LANG => {
                let lexical = cur.str()?;
                let datatype = Iri::new(cur.str()?);
                let mut l = Literal::typed(lexical, datatype);
                l.language = Some(cur.str()?);
                Term::Literal(l)
            }
            other => {
                return Err(invalid(format!(
                    "dictionary holds an unknown term tag {other}"
                )));
            }
        };
        let id = dict.encode(&term);
        if id as u64 != next {
            return Err(invalid("dictionary holds a duplicate term"));
        }
        next += 1;
    }
    Ok(dict)
}

/// A bounds-checked little-endian reader over a byte section.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
    what: &'static str,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8], what: &'static str) -> Self {
        Cursor {
            bytes,
            pos: 0,
            what,
        }
    }

    fn done(&self) -> bool {
        self.pos == self.bytes.len()
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SegmentError> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.bytes.len());
        match end {
            Some(end) => {
                let slice = &self.bytes[self.pos..end];
                self.pos = end;
                Ok(slice)
            }
            None => Err(invalid(format!(
                "truncated {} (needed {n} bytes at offset {})",
                self.what, self.pos
            ))),
        }
    }

    fn u32(&mut self) -> Result<u32, SegmentError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64, SegmentError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn str(&mut self) -> Result<String, SegmentError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| invalid(format!("{} holds invalid UTF-8", self.what)))
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;

    /// A self-cleaning temp directory for segment tests.
    pub(crate) struct TempDir(pub std::path::PathBuf);

    impl TempDir {
        pub(crate) fn new(tag: &str) -> TempDir {
            use std::sync::atomic::{AtomicU64, Ordering};
            static SEQ: AtomicU64 = AtomicU64::new(0);
            let path = std::env::temp_dir().join(format!(
                "sp2b-seg-{}-{}-{}",
                std::process::id(),
                tag,
                SEQ.fetch_add(1, Ordering::Relaxed)
            ));
            let _ = fs::remove_dir_all(&path);
            fs::create_dir_all(&path).expect("create temp dir");
            TempDir(path)
        }

        pub(crate) fn path(&self) -> &Path {
            &self.0
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    fn corpus() -> Vec<Term> {
        let mut lang = Literal::plain("grüße");
        lang.language = Some("de".into());
        let mut typed_lang = Literal::typed("両方", Iri::new("http://x/dt"));
        typed_lang.language = Some("ja".into());
        vec![
            Term::iri("http://example.org/article/1"),
            Term::blank("Jürgen_Müller"),
            Term::Literal(Literal::plain("plain ascii")),
            Term::Literal(Literal::plain("naïve café — 数据库 🦀")),
            Term::Literal(Literal::string("Journal 1 (1940)")),
            Term::Literal(Literal::integer(-42)),
            Term::Literal(lang),
            Term::Literal(typed_lang),
            Term::iri("http://example.org/ölpreis"),
        ]
    }

    #[test]
    fn dictionary_codec_roundtrips_including_non_ascii() {
        let mut dict = Dictionary::new();
        for t in corpus() {
            dict.encode(&t);
        }
        let bytes = encode_terms(&dict);
        let back = decode_terms(&bytes).expect("decode");
        assert_eq!(back.len(), dict.len());
        for (id, term) in dict.iter() {
            assert_eq!(back.decode(id), term, "term {id} survives the roundtrip");
            assert_eq!(back.lookup(term), Some(id), "id {id} is reproduced");
        }
    }

    #[test]
    fn decode_rejects_truncation_and_bad_tags() {
        let mut dict = Dictionary::new();
        for t in corpus() {
            dict.encode(&t);
        }
        let bytes = encode_terms(&dict);
        let err = decode_terms(&bytes[..bytes.len() - 3]).unwrap_err();
        assert!(err.to_string().contains("truncated"), "{err}");
        let mut bad = bytes.clone();
        bad[0] = 250;
        let err = decode_terms(&bad).unwrap_err();
        assert!(err.to_string().contains("unknown term tag"), "{err}");
    }

    fn demo_store() -> (Dictionary, Vec<Vec<IdTriple>>) {
        let mut dict = Dictionary::new();
        for t in corpus() {
            dict.encode(&t);
        }
        let n = dict.len() as u32;
        let mut buckets = vec![Vec::new(), Vec::new()];
        for i in 0..40u32 {
            let t = [i % n, (i * 7) % n, (i * 13) % n];
            buckets[ShardBy::Subject.shard_of(&t, 2)].push(t);
        }
        (dict, buckets)
    }

    #[test]
    fn header_and_dictionary_roundtrip() {
        let tmp = TempDir::new("roundtrip");
        let (dict, buckets) = demo_store();
        let total: usize = buckets.iter().map(Vec::len).sum();
        let stats = write_segments(tmp.path(), &dict, ShardBy::Subject, buckets).expect("write");
        assert_eq!(stats.triples as usize, total);
        assert_eq!(stats.terms as usize, dict.len());

        let header = read_header(tmp.path()).expect("header");
        assert_eq!(header.shard_by, ShardBy::Subject);
        assert_eq!(header.triples as usize, total);
        assert_eq!(header.shards.len(), 2);
        let back = read_dictionary(tmp.path(), &header).expect("dict");
        for (id, term) in dict.iter() {
            assert_eq!(back.decode(id), term);
        }
    }

    #[test]
    fn runs_are_sorted_and_checksummed() {
        let tmp = TempDir::new("runs");
        let (dict, buckets) = demo_store();
        let expected = buckets.clone();
        write_segments(tmp.path(), &dict, ShardBy::Subject, buckets).expect("write");
        let header = read_header(tmp.path()).expect("header");
        for (i, meta) in header.shards.iter().enumerate() {
            let path = tmp.path().join(shard_file_name(i));
            for (slot, order) in RUN_ORDERS.iter().enumerate() {
                let run =
                    read_run(&path, slot, meta.triples, meta.run_checksums[slot]).expect("run");
                let perm = order.permutation();
                assert!(
                    run.windows(2)
                        .all(|w| run_key(&w[0], perm) <= run_key(&w[1], perm)),
                    "shard {i} run {order:?} is sorted"
                );
                let mut expect = expected[i].clone();
                expect.sort_unstable_by_key(|t| run_key(t, perm));
                assert_eq!(run, expect, "shard {i} run {order:?} holds the bucket");
            }
        }
    }

    #[test]
    fn stats_section_roundtrips_per_shard() {
        let tmp = TempDir::new("stats");
        let (dict, buckets) = demo_store();
        let expected: Vec<StoreStats> = buckets
            .iter()
            .map(|b| StoreStats::from_triples(b))
            .collect();
        write_segments(tmp.path(), &dict, ShardBy::Subject, buckets).expect("write");
        let header = read_header(tmp.path()).expect("header");
        let stats = read_stats(tmp.path(), &header).expect("stats");
        assert_eq!(stats, expected);
    }

    #[test]
    fn corrupted_stats_section_is_rejected() {
        let tmp = TempDir::new("stats-corrupt");
        let (dict, buckets) = demo_store();
        write_segments(tmp.path(), &dict, ShardBy::Subject, buckets).expect("write");
        let header = read_header(tmp.path()).expect("header");
        let path = tmp.path().join(STATS_FILE);
        let good = fs::read(&path).unwrap();

        let mut flipped = good.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0xff;
        fs::write(&path, &flipped).unwrap();
        let err = read_stats(tmp.path(), &header).unwrap_err();
        assert!(err.to_string().contains("checksum mismatch"), "{err}");

        fs::write(&path, &good[..good.len() - 3]).unwrap();
        let err = read_stats(tmp.path(), &header).unwrap_err();
        assert!(err.to_string().contains("truncated"), "{err}");

        fs::remove_file(&path).unwrap();
        let err = read_stats(tmp.path(), &header).unwrap_err();
        assert!(err.to_string().contains("missing statistics"), "{err}");
    }

    #[test]
    fn corrupted_dictionary_reports_checksum_not_garbage() {
        let tmp = TempDir::new("dict-corrupt");
        let (dict, buckets) = demo_store();
        write_segments(tmp.path(), &dict, ShardBy::Subject, buckets).expect("write");
        // Flip one byte inside a term's UTF-8 payload: without the
        // checksum this could silently decode to a different term.
        let path = tmp.path().join(DICT_FILE);
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x20;
        fs::write(&path, &bytes).unwrap();
        let header = read_header(tmp.path()).expect("root is untouched");
        let err = read_dictionary(tmp.path(), &header).unwrap_err();
        assert!(err.to_string().contains("checksum mismatch"), "{err}");
    }

    #[test]
    fn corrupted_or_truncated_root_is_rejected() {
        let tmp = TempDir::new("root-corrupt");
        let (dict, buckets) = demo_store();
        write_segments(tmp.path(), &dict, ShardBy::Subject, buckets).expect("write");
        let path = tmp.path().join(ROOT_FILE);
        let good = fs::read(&path).unwrap();

        let mut flipped = good.clone();
        flipped[12] ^= 0xff;
        fs::write(&path, &flipped).unwrap();
        let err = read_header(tmp.path()).unwrap_err();
        assert!(err.to_string().contains("checksum mismatch"), "{err}");

        fs::write(&path, &good[..good.len() - 5]).unwrap();
        let err = read_header(tmp.path()).unwrap_err();
        assert!(err.to_string().contains("checksum mismatch"), "{err}");

        fs::write(&path, b"short").unwrap();
        let err = read_header(tmp.path()).unwrap_err();
        assert!(err.to_string().contains("truncated"), "{err}");

        let mut bad_magic = good.clone();
        bad_magic[0] = b'X';
        // Re-stamp the trailer so only the magic is wrong.
        let body_len = bad_magic.len() - 8;
        let cks = Checksum::of(&bad_magic[..body_len]);
        bad_magic[body_len..].copy_from_slice(&cks.to_le_bytes());
        fs::write(&path, &bad_magic).unwrap();
        let err = read_header(tmp.path()).unwrap_err();
        assert!(err.to_string().contains("bad magic"), "{err}");
    }

    #[test]
    fn missing_directory_and_missing_root_have_clear_errors() {
        let err = read_header(Path::new("/nonexistent/sp2b-segments")).unwrap_err();
        assert!(err.to_string().contains("does not exist"), "{err}");
        let tmp = TempDir::new("empty");
        let err = read_header(tmp.path()).unwrap_err();
        assert!(err.to_string().contains("no segment root"), "{err}");
        assert!(err.to_string().contains("sp2b save"), "{err}");
    }

    #[test]
    fn truncated_shard_run_is_rejected() {
        let tmp = TempDir::new("run-truncated");
        let (dict, buckets) = demo_store();
        write_segments(tmp.path(), &dict, ShardBy::Subject, buckets).expect("write");
        let header = read_header(tmp.path()).expect("header");
        let path = tmp.path().join(shard_file_name(0));
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() - 7]).unwrap();
        let meta = &header.shards[0];
        // The last run no longer has all its bytes.
        let err = read_run(&path, 2, meta.triples, meta.run_checksums[2]).unwrap_err();
        assert!(err.to_string().contains("truncated"), "{err}");
    }

    #[test]
    fn checksum_is_stable_incrementally() {
        let mut inc = Checksum::new();
        inc.update(b"hello ");
        inc.update(b"world");
        assert_eq!(inc.finish(), Checksum::of(b"hello world"));
        assert_ne!(Checksum::of(b"a"), Checksum::of(b"b"));
    }
}
