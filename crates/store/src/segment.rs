//! The on-disk segment format behind [`crate::disk`].
//!
//! A saved store is a directory of immutable files:
//!
//! ```text
//! root.sp2b       the segment root: magic, version, partition key,
//!                 block size, counts, and per-section checksums
//!                 (written last via tmp + rename, so it doubles as the
//!                 atomic root pointer a future hot-swap flips)
//! dict.bin        the shared dictionary: every term serialized in id
//!                 order, so re-interning sequentially reproduces the
//!                 exact ids of the original load
//! stats.bin       one serialized [`StoreStats`] summary per shard
//!                 (length-prefixed, in shard order), so a reopened
//!                 store plans with full statistics without touching
//!                 any triple run
//! shard-NNNN.seg  one file per shard: three sorted id-triple runs
//!                 (SPO, then PSO, then OSP) of 12 bytes per triple,
//!                 each run cut into fixed-size blocks, followed by the
//!                 shard's block index (per run, per block: the block's
//!                 first sort key and its own FNV-1a-64 checksum)
//! ```
//!
//! All integers are little-endian. Every section carries an FNV-1a-64
//! checksum recorded in the root; the root itself ends with a checksum
//! over its own preceding bytes. Opening costs O(root + dictionary +
//! block index): triple payloads are validated by file size at open and
//! per block, by checksum, when a block is actually read. The block
//! granularity is what lets [`crate::disk`] serve a document larger
//! than RAM — a scan touches only the blocks its key range covers, and
//! decoded blocks live in a byte-budgeted cache instead of whole runs
//! pinned for the store's lifetime.

use std::fs::{self, File};
use std::io::{self, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::Path;

use sp2b_rdf::{Iri, Literal, Term};

use crate::dictionary::{Dictionary, Id, IdTriple};
use crate::native::IndexOrder;
use crate::shard::ShardBy;
use crate::stats::StoreStats;

/// Magic prefix of the segment root.
pub const MAGIC: [u8; 8] = *b"SP2BSEG1";

/// Format version written into the root. Version 2 added the per-shard
/// statistics section (`stats.bin`) and its root fields; version 3 cut
/// the runs into checksummed fixed-size blocks with a per-run sparse
/// first-key index, replacing the per-run whole-file checksums.
pub const VERSION: u32 = 3;

/// Default triples per block: 1024 triples = 12 KiB of payload, inside
/// the 4–64 KiB sweet spot where a block is large enough to amortize a
/// read syscall and small enough that a point lookup decodes little.
pub const DEFAULT_BLOCK_TRIPLES: u32 = 1024;

/// The segment root file name.
pub const ROOT_FILE: &str = "root.sp2b";

/// The serialized dictionary file name.
pub const DICT_FILE: &str = "dict.bin";

/// The serialized per-shard statistics file name.
pub const STATS_FILE: &str = "stats.bin";

/// Bytes per serialized triple (three little-endian `u32` ids).
pub const TRIPLE_BYTES: u64 = 12;

/// The sorted runs each shard file holds, in file order. Three of the
/// six [`NativeStore`](crate::NativeStore) orderings suffice on disk:
/// every single-position pattern gets a full prefix (S via SPO, P via
/// PSO, O via OSP), and longer prefixes reuse the same runs with
/// residual filtering.
pub const RUN_ORDERS: [IndexOrder; 3] = [IndexOrder::Spo, IndexOrder::Pso, IndexOrder::Osp];

/// The shard file name for shard `i`.
pub fn shard_file_name(i: usize) -> String {
    format!("shard-{i:04}.seg")
}

/// Why a segment directory could not be written or opened. Display is a
/// single line, suitable for the CLI's one-line hard errors.
#[derive(Debug)]
pub enum SegmentError {
    /// An underlying filesystem error.
    Io(io::Error),
    /// The directory is not a saved segment store: missing files,
    /// truncation, bad magic/version, or a checksum mismatch.
    Invalid(String),
}

impl std::fmt::Display for SegmentError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SegmentError::Io(e) => write!(f, "i/o error: {e}"),
            SegmentError::Invalid(msg) => f.write_str(msg),
        }
    }
}

impl std::error::Error for SegmentError {}

impl From<io::Error> for SegmentError {
    fn from(e: io::Error) -> Self {
        SegmentError::Io(e)
    }
}

fn invalid(msg: impl Into<String>) -> SegmentError {
    SegmentError::Invalid(msg.into())
}

/// Streaming FNV-1a-64 — the per-section checksum. Self-contained so
/// incremental (per-triple) and whole-buffer hashing agree byte for
/// byte, which the crate's chunking [`crate::hash::FxHasher`] does not
/// guarantee.
#[derive(Debug, Clone)]
pub struct Checksum(u64);

impl Checksum {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// A fresh accumulator.
    pub fn new() -> Self {
        Checksum(Self::OFFSET)
    }

    /// Folds in more bytes.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    /// The digest so far.
    pub fn finish(&self) -> u64 {
        self.0
    }

    /// One-shot digest of a buffer.
    pub fn of(bytes: &[u8]) -> u64 {
        let mut c = Checksum::new();
        c.update(bytes);
        c.finish()
    }
}

impl Default for Checksum {
    fn default() -> Self {
        Checksum::new()
    }
}

/// Bytes of one block-index entry: a 12-byte first key plus an 8-byte
/// block checksum.
const INDEX_ENTRY_BYTES: usize = 20;

/// Number of blocks each of a shard's runs is cut into.
pub fn blocks_in_run(triples: u64, block_triples: u32) -> usize {
    triples.div_ceil(block_triples as u64) as usize
}

/// Byte size of one shard's block-index section: per run, per block, a
/// first key and a checksum.
pub fn index_bytes(triples: u64, block_triples: u32) -> u64 {
    (RUN_ORDERS.len() * blocks_in_run(triples, block_triples) * INDEX_ENTRY_BYTES) as u64
}

/// Root-recorded facts about one shard file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardMeta {
    /// Triples in this shard (every run holds exactly this many).
    pub triples: u64,
    /// Checksum of the shard's block-index section. The per-block
    /// payload checksums live inside that section, so this one value
    /// transitively covers the whole file.
    pub index_checksum: u64,
}

impl ShardMeta {
    /// Exact byte size of the shard file these facts describe: three
    /// run payloads plus the trailing block index.
    pub fn file_bytes(&self, block_triples: u32) -> u64 {
        self.triples * TRIPLE_BYTES * RUN_ORDERS.len() as u64
            + index_bytes(self.triples, block_triples)
    }
}

/// The index entries of one sorted run, in block order.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RunIndex {
    /// Each block's first triple, as its sort key (ids permuted into
    /// the run's major/mid/minor order) — the binary-search target that
    /// turns a key range into a block range without touching payload.
    pub first_keys: Vec<[Id; 3]>,
    /// Each block's payload checksum.
    pub checksums: Vec<u64>,
}

/// One shard's decoded block index: the sparse first-key tables and
/// per-block checksums of its three runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockIndex {
    /// Triples per run (from the root).
    pub triples: u64,
    /// Triples per full block (from the root; the last block of a run
    /// may be shorter).
    pub block_triples: u32,
    /// Per-run entries, in [`RUN_ORDERS`] order.
    pub runs: [RunIndex; 3],
}

impl BlockIndex {
    /// Number of blocks in each run.
    pub fn blocks(&self) -> usize {
        blocks_in_run(self.triples, self.block_triples)
    }

    /// Triples in block `block` (the last block may be short).
    pub fn block_len(&self, block: usize) -> usize {
        debug_assert!(block < self.blocks());
        let start = block as u64 * self.block_triples as u64;
        (self.triples - start).min(self.block_triples as u64) as usize
    }

    /// Byte offset of block `block` of run `run` within the shard file.
    pub fn block_offset(&self, run: usize, block: usize) -> u64 {
        run as u64 * self.triples * TRIPLE_BYTES
            + block as u64 * self.block_triples as u64 * TRIPLE_BYTES
    }

    /// The blocks of run `run` that may hold sort keys in `[lo, hi]`
    /// (inclusive), by binary search on the first-key table. The range
    /// is conservative at both ends — the block before the first
    /// key ≥ `lo` may still start below `lo` and reach into the range —
    /// so callers skip below-`lo` keys inside the first block and stop
    /// past `hi`; no payload is touched here.
    pub fn candidate_blocks(&self, run: usize, lo: [Id; 3], hi: [Id; 3]) -> std::ops::Range<usize> {
        let keys = &self.runs[run].first_keys;
        let start = keys.partition_point(|k| *k < lo).saturating_sub(1);
        let end = keys.partition_point(|k| *k <= hi);
        if end <= start {
            0..0
        } else {
            start..end
        }
    }
}

/// The decoded segment root.
#[derive(Debug, Clone)]
pub struct SegmentHeader {
    /// The partition key the triples were routed by.
    pub shard_by: ShardBy,
    /// Triples per full block in every shard file.
    pub block_triples: u32,
    /// Total triples across shards.
    pub triples: u64,
    /// Distinct terms in the dictionary.
    pub terms: u64,
    /// Byte length of `dict.bin`.
    pub dict_bytes: u64,
    /// Checksum of `dict.bin`.
    pub dict_checksum: u64,
    /// Byte length of `stats.bin`.
    pub stats_bytes: u64,
    /// Checksum of `stats.bin`.
    pub stats_checksum: u64,
    /// Per-shard facts, in shard order.
    pub shards: Vec<ShardMeta>,
}

/// What a save wrote, for reporting.
#[derive(Debug, Clone)]
pub struct SegmentStats {
    /// Total triples written.
    pub triples: u64,
    /// Distinct terms written.
    pub terms: u64,
    /// Triples per shard, in shard order.
    pub shard_lens: Vec<usize>,
    /// Total bytes across all files.
    pub bytes: u64,
}

fn shard_by_code(shard_by: ShardBy) -> u32 {
    match shard_by {
        ShardBy::Subject => 0,
        ShardBy::PredicateSubject => 1,
    }
}

fn shard_by_from_code(code: u32) -> Option<ShardBy> {
    match code {
        0 => Some(ShardBy::Subject),
        1 => Some(ShardBy::PredicateSubject),
        _ => None,
    }
}

/// A triple's sort key under a run permutation, as a lexicographically
/// comparable array (major, mid, minor).
#[inline]
pub fn run_key(t: &IdTriple, perm: [usize; 3]) -> [Id; 3] {
    [t[perm[0]], t[perm[1]], t[perm[2]]]
}

/// Writes a complete segment store into `dir` with the default block
/// size. See [`write_segments_with`].
pub fn write_segments(
    dir: &Path,
    dict: &Dictionary,
    shard_by: ShardBy,
    buckets: Vec<Vec<IdTriple>>,
) -> Result<SegmentStats, SegmentError> {
    write_segments_with(dir, dict, shard_by, buckets, DEFAULT_BLOCK_TRIPLES)
}

/// Writes a complete segment store into `dir`: dictionary, one file of
/// three sorted block-cut runs per bucket, and — last, via tmp + rename
/// — the checksummed root. A crash before the rename leaves no valid
/// root, so a partially written directory never opens.
///
/// The three SPO/PSO/OSP sorts of each shard fan out on scoped threads.
/// Each thread sorts its own clone of the bucket by the run's full
/// (major, mid, minor) key — a total order under which byte-identical
/// duplicates are interchangeable — so the output is byte-for-byte the
/// same as the former serial re-sorts, at the price of holding up to
/// three copies of one bucket while it is being written.
pub fn write_segments_with(
    dir: &Path,
    dict: &Dictionary,
    shard_by: ShardBy,
    buckets: Vec<Vec<IdTriple>>,
    block_triples: u32,
) -> Result<SegmentStats, SegmentError> {
    assert!(block_triples > 0, "block size must be at least one triple");
    if !dir.is_dir() {
        return Err(invalid(format!(
            "'{}' is not a directory (create it first)",
            dir.display()
        )));
    }
    let dict_bytes = encode_terms(dict);
    let dict_checksum = Checksum::of(&dict_bytes);
    let mut dict_file = File::create(dir.join(DICT_FILE))?;
    dict_file.write_all(&dict_bytes)?;
    dict_file.sync_all()?;

    // The statistics section: one summary per shard, length-prefixed in
    // shard order. Collected here, at save time, so a reopened store
    // plans with full statistics for the cost of reading this file.
    let mut stats_bytes = Vec::new();
    for bucket in &buckets {
        let blob = StoreStats::from_triples(bucket).encode();
        stats_bytes.extend_from_slice(&(blob.len() as u32).to_le_bytes());
        stats_bytes.extend_from_slice(&blob);
    }
    let stats_checksum = Checksum::of(&stats_bytes);
    let mut stats_file = File::create(dir.join(STATS_FILE))?;
    stats_file.write_all(&stats_bytes)?;
    stats_file.sync_all()?;

    let mut metas = Vec::with_capacity(buckets.len());
    let mut total_bytes = dict_bytes.len() as u64 + stats_bytes.len() as u64;
    for (i, bucket) in buckets.iter().enumerate() {
        // Satellite: the three run sorts are independent, so they fan
        // out on scoped threads (each sorting its own clone).
        let sorted: Vec<Vec<IdTriple>> = std::thread::scope(|s| {
            let handles: Vec<_> = RUN_ORDERS
                .iter()
                .map(|order| {
                    let perm = order.permutation();
                    s.spawn(move || {
                        let mut run = bucket.clone();
                        run.sort_unstable_by_key(|t| run_key(t, perm));
                        run
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("run sort thread panicked"))
                .collect()
        });

        let file = File::create(dir.join(shard_file_name(i)))?;
        let mut w = BufWriter::with_capacity(1 << 16, file);
        // Payload first (three runs, block-cut), index entries
        // accumulated on the side and appended after.
        let mut index =
            Vec::with_capacity(index_bytes(bucket.len() as u64, block_triples) as usize);
        for (slot, run) in sorted.iter().enumerate() {
            let perm = RUN_ORDERS[slot].permutation();
            for block in run.chunks(block_triples as usize) {
                let mut checksum = Checksum::new();
                for t in block {
                    let mut buf = [0u8; TRIPLE_BYTES as usize];
                    buf[0..4].copy_from_slice(&t[0].to_le_bytes());
                    buf[4..8].copy_from_slice(&t[1].to_le_bytes());
                    buf[8..12].copy_from_slice(&t[2].to_le_bytes());
                    checksum.update(&buf);
                    w.write_all(&buf)?;
                }
                for id in run_key(&block[0], perm) {
                    index.extend_from_slice(&id.to_le_bytes());
                }
                index.extend_from_slice(&checksum.finish().to_le_bytes());
            }
        }
        let index_checksum = Checksum::of(&index);
        w.write_all(&index)?;
        w.flush()?;
        w.get_ref().sync_all()?;
        let meta = ShardMeta {
            triples: bucket.len() as u64,
            index_checksum,
        };
        total_bytes += meta.file_bytes(block_triples);
        metas.push(meta);
    }

    let triples: u64 = metas.iter().map(|m| m.triples).sum();
    let mut root = Vec::with_capacity(64 + metas.len() * 32);
    root.extend_from_slice(&MAGIC);
    root.extend_from_slice(&VERSION.to_le_bytes());
    root.extend_from_slice(&shard_by_code(shard_by).to_le_bytes());
    root.extend_from_slice(&(metas.len() as u32).to_le_bytes());
    root.extend_from_slice(&block_triples.to_le_bytes());
    root.extend_from_slice(&triples.to_le_bytes());
    root.extend_from_slice(&(dict.len() as u64).to_le_bytes());
    root.extend_from_slice(&(dict_bytes.len() as u64).to_le_bytes());
    root.extend_from_slice(&dict_checksum.to_le_bytes());
    root.extend_from_slice(&(stats_bytes.len() as u64).to_le_bytes());
    root.extend_from_slice(&stats_checksum.to_le_bytes());
    for meta in &metas {
        root.extend_from_slice(&meta.triples.to_le_bytes());
        root.extend_from_slice(&meta.index_checksum.to_le_bytes());
    }
    let trailer = Checksum::of(&root);
    root.extend_from_slice(&trailer.to_le_bytes());
    total_bytes += root.len() as u64;

    // The atomic root flip: readers either see the previous root or the
    // complete new one, never a torn write.
    let tmp = dir.join(format!("{ROOT_FILE}.tmp"));
    let mut root_file = File::create(&tmp)?;
    root_file.write_all(&root)?;
    root_file.sync_all()?;
    drop(root_file);
    fs::rename(&tmp, dir.join(ROOT_FILE))?;

    Ok(SegmentStats {
        triples,
        terms: dict.len() as u64,
        shard_lens: metas.iter().map(|m| m.triples as usize).collect(),
        bytes: total_bytes,
    })
}

/// Reads and validates the segment root of `dir`. This is the whole
/// fixed cost of discovering a saved store: a few dozen bytes per shard.
pub fn read_header(dir: &Path) -> Result<SegmentHeader, SegmentError> {
    if !dir.is_dir() {
        return Err(invalid(format!(
            "segment directory '{}' does not exist",
            dir.display()
        )));
    }
    let path = dir.join(ROOT_FILE);
    let bytes = match fs::read(&path) {
        Ok(b) => b,
        Err(e) if e.kind() == io::ErrorKind::NotFound => {
            return Err(invalid(format!(
                "no segment root in '{}' (expected a directory written by `sp2b save`)",
                dir.display()
            )));
        }
        Err(e) => return Err(e.into()),
    };
    if bytes.len() < MAGIC.len() + 8 {
        return Err(invalid("segment root is truncated"));
    }
    let (body, trailer) = bytes.split_at(bytes.len() - 8);
    let recorded = u64::from_le_bytes(trailer.try_into().expect("8-byte trailer"));
    if Checksum::of(body) != recorded {
        return Err(invalid(
            "segment root checksum mismatch (truncated or corrupted save)",
        ));
    }
    let mut cur = Cursor::new(body, "segment root");
    if cur.take(MAGIC.len())? != MAGIC {
        return Err(invalid("not a segment root (bad magic)"));
    }
    let version = cur.u32()?;
    if version != VERSION {
        // A valid older root, just the wrong generation: say exactly
        // what to do about it rather than panicking or misreading.
        return Err(invalid(format!(
            "segment version {version}, expected {VERSION} — re-run `sp2b save`"
        )));
    }
    let shard_by = shard_by_from_code(cur.u32()?)
        .ok_or_else(|| invalid("segment root names an unknown partition key"))?;
    let shard_count = cur.u32()? as usize;
    let block_triples = cur.u32()?;
    if block_triples == 0 {
        return Err(invalid("segment root records a zero block size"));
    }
    let triples = cur.u64()?;
    let terms = cur.u64()?;
    let dict_bytes = cur.u64()?;
    let dict_checksum = cur.u64()?;
    let stats_bytes = cur.u64()?;
    let stats_checksum = cur.u64()?;
    let mut shards = Vec::with_capacity(shard_count);
    for _ in 0..shard_count {
        let shard_triples = cur.u64()?;
        let index_checksum = cur.u64()?;
        shards.push(ShardMeta {
            triples: shard_triples,
            index_checksum,
        });
    }
    if !cur.done() {
        return Err(invalid("trailing bytes in segment root"));
    }
    let shard_sum: u64 = shards.iter().map(|m| m.triples).sum();
    if shard_sum != triples {
        return Err(invalid(
            "segment root is inconsistent: shard counts do not sum to the total",
        ));
    }
    Ok(SegmentHeader {
        shard_by,
        block_triples,
        triples,
        terms,
        dict_bytes,
        dict_checksum,
        stats_bytes,
        stats_checksum,
        shards,
    })
}

/// Reads and verifies the per-shard statistics section, in shard order.
/// O(stats bytes) — no triple run is touched, which is what keeps
/// planning against a freshly opened store cold-path-free.
pub fn read_stats(dir: &Path, header: &SegmentHeader) -> Result<Vec<StoreStats>, SegmentError> {
    let path = dir.join(STATS_FILE);
    let bytes = match fs::read(&path) {
        Ok(b) => b,
        Err(e) if e.kind() == io::ErrorKind::NotFound => {
            return Err(invalid(format!(
                "missing statistics file '{}'",
                path.display()
            )));
        }
        Err(e) => return Err(e.into()),
    };
    if bytes.len() as u64 != header.stats_bytes {
        return Err(invalid(format!(
            "statistics section is truncated: root records {} bytes, file holds {}",
            header.stats_bytes,
            bytes.len()
        )));
    }
    if Checksum::of(&bytes) != header.stats_checksum {
        return Err(invalid(
            "statistics checksum mismatch (corrupted save; re-run `sp2b save`)",
        ));
    }
    let mut cur = Cursor::new(&bytes, "statistics section");
    let mut out = Vec::with_capacity(header.shards.len());
    for (i, meta) in header.shards.iter().enumerate() {
        let len = cur.u32()? as usize;
        let blob = cur.take(len)?;
        let (stats, rest) = StoreStats::decode(blob)
            .map_err(|e| invalid(format!("statistics of shard {i} are corrupt: {e}")))?;
        if !rest.is_empty() {
            return Err(invalid(format!(
                "statistics of shard {i} hold trailing bytes"
            )));
        }
        if stats.triples != meta.triples {
            return Err(invalid(format!(
                "statistics of shard {i} are inconsistent: root records {} triples, summary {}",
                meta.triples, stats.triples
            )));
        }
        out.push(stats);
    }
    if !cur.done() {
        return Err(invalid("trailing bytes in statistics section"));
    }
    Ok(out)
}

/// Reads, verifies and re-interns the shared dictionary. Sequential
/// re-interning reproduces the exact ids the saved store was encoded
/// with (ids are dense, first-seen ordered), so saved triple runs and
/// fresh query plans agree without any translation.
pub fn read_dictionary(dir: &Path, header: &SegmentHeader) -> Result<Dictionary, SegmentError> {
    let path = dir.join(DICT_FILE);
    let bytes = match fs::read(&path) {
        Ok(b) => b,
        Err(e) if e.kind() == io::ErrorKind::NotFound => {
            return Err(invalid(format!(
                "missing dictionary file '{}'",
                path.display()
            )));
        }
        Err(e) => return Err(e.into()),
    };
    if bytes.len() as u64 != header.dict_bytes {
        return Err(invalid(format!(
            "dictionary is truncated: root records {} bytes, file holds {}",
            header.dict_bytes,
            bytes.len()
        )));
    }
    if Checksum::of(&bytes) != header.dict_checksum {
        return Err(invalid(
            "dictionary checksum mismatch (corrupted save; re-run `sp2b save`)",
        ));
    }
    let dict = decode_terms(&bytes)?;
    if dict.len() as u64 != header.terms {
        return Err(invalid(format!(
            "dictionary is inconsistent: root records {} terms, section decodes {}",
            header.terms,
            dict.len()
        )));
    }
    Ok(dict)
}

/// Reads and verifies the block-index section at the tail of a shard
/// file. This is the only part of a shard that open-time reads — 20
/// bytes per block — and the structure every later block read is
/// checked against.
pub fn read_block_index(
    path: &Path,
    meta: &ShardMeta,
    block_triples: u32,
) -> Result<BlockIndex, SegmentError> {
    let payload = meta.triples * TRIPLE_BYTES * RUN_ORDERS.len() as u64;
    let mut file = File::open(path)?;
    file.seek(SeekFrom::Start(payload))?;
    let mut bytes = vec![0u8; index_bytes(meta.triples, block_triples) as usize];
    file.read_exact(&mut bytes).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            invalid(format!("shard file '{}' is truncated", path.display()))
        } else {
            SegmentError::Io(e)
        }
    })?;
    if Checksum::of(&bytes) != meta.index_checksum {
        return Err(invalid(format!(
            "block index checksum mismatch in '{}' (corrupted save)",
            path.display()
        )));
    }
    let blocks = blocks_in_run(meta.triples, block_triples);
    let mut cur = Cursor::new(&bytes, "block index");
    let mut runs: [RunIndex; 3] = Default::default();
    for run in &mut runs {
        run.first_keys.reserve_exact(blocks);
        run.checksums.reserve_exact(blocks);
        for _ in 0..blocks {
            run.first_keys.push([cur.u32()?, cur.u32()?, cur.u32()?]);
            run.checksums.push(cur.u64()?);
        }
    }
    debug_assert!(cur.done());
    Ok(BlockIndex {
        triples: meta.triples,
        block_triples,
        runs,
    })
}

/// Decodes a block payload (contiguous little-endian id triples).
pub fn decode_triples(bytes: &[u8]) -> Vec<IdTriple> {
    debug_assert_eq!(bytes.len() % TRIPLE_BYTES as usize, 0);
    bytes
        .chunks_exact(TRIPLE_BYTES as usize)
        .map(|chunk| {
            [
                u32::from_le_bytes(chunk[0..4].try_into().expect("4 bytes")),
                u32::from_le_bytes(chunk[4..8].try_into().expect("4 bytes")),
                u32::from_le_bytes(chunk[8..12].try_into().expect("4 bytes")),
            ]
        })
        .collect()
}

/// Reads and verifies one block of one run out of a shard file. `run`
/// indexes [`RUN_ORDERS`], `block` the run's block sequence.
pub fn read_block(
    path: &Path,
    run: usize,
    block: usize,
    index: &BlockIndex,
) -> Result<Vec<IdTriple>, SegmentError> {
    let mut file = File::open(path)?;
    file.seek(SeekFrom::Start(index.block_offset(run, block)))?;
    let mut bytes = vec![0u8; index.block_len(block) * TRIPLE_BYTES as usize];
    file.read_exact(&mut bytes).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            invalid(format!("shard file '{}' is truncated", path.display()))
        } else {
            SegmentError::Io(e)
        }
    })?;
    if Checksum::of(&bytes) != index.runs[run].checksums[block] {
        return Err(invalid(format!(
            "block checksum mismatch in '{}' (run {run}, block {block}; corrupted save)",
            path.display()
        )));
    }
    Ok(decode_triples(&bytes))
}

/// Reads one whole sorted run block by block, verifying every block
/// checksum — a convenience for tests and tools; the query path reads
/// individual blocks through the cache instead.
pub fn read_run(
    path: &Path,
    run: usize,
    index: &BlockIndex,
) -> Result<Vec<IdTriple>, SegmentError> {
    let mut out = Vec::with_capacity(index.triples as usize);
    for block in 0..index.blocks() {
        out.extend(read_block(path, run, block, index)?);
    }
    Ok(out)
}

// Term tags of the dictionary serialization.
const TAG_IRI: u8 = 0;
const TAG_BLANK: u8 = 1;
const TAG_PLAIN: u8 = 2;
const TAG_TYPED: u8 = 3;
const TAG_LANG: u8 = 4;
const TAG_TYPED_LANG: u8 = 5;

fn put_str(buf: &mut Vec<u8>, s: &str) {
    buf.extend_from_slice(&(s.len() as u32).to_le_bytes());
    buf.extend_from_slice(s.as_bytes());
}

/// Serializes every term in id order: a one-byte tag followed by
/// length-prefixed UTF-8 fields.
pub fn encode_terms(dict: &Dictionary) -> Vec<u8> {
    let mut buf = Vec::new();
    for (_, term) in dict.iter() {
        match term {
            Term::Iri(iri) => {
                buf.push(TAG_IRI);
                put_str(&mut buf, iri.as_str());
            }
            Term::Blank(b) => {
                buf.push(TAG_BLANK);
                put_str(&mut buf, b.as_str());
            }
            Term::Literal(l) => match (&l.datatype, &l.language) {
                (None, None) => {
                    buf.push(TAG_PLAIN);
                    put_str(&mut buf, &l.lexical);
                }
                (Some(dt), None) => {
                    buf.push(TAG_TYPED);
                    put_str(&mut buf, &l.lexical);
                    put_str(&mut buf, dt.as_str());
                }
                (None, Some(lang)) => {
                    buf.push(TAG_LANG);
                    put_str(&mut buf, &l.lexical);
                    put_str(&mut buf, lang);
                }
                (Some(dt), Some(lang)) => {
                    buf.push(TAG_TYPED_LANG);
                    put_str(&mut buf, &l.lexical);
                    put_str(&mut buf, dt.as_str());
                    put_str(&mut buf, lang);
                }
            },
        }
    }
    buf
}

/// Deserializes a dictionary section, re-interning terms sequentially.
pub fn decode_terms(bytes: &[u8]) -> Result<Dictionary, SegmentError> {
    let mut cur = Cursor::new(bytes, "dictionary");
    let mut dict = Dictionary::new();
    let mut next = 0u64;
    while !cur.done() {
        let tag = cur.take(1)?[0];
        let term = match tag {
            TAG_IRI => Term::iri(cur.str()?),
            TAG_BLANK => Term::blank(cur.str()?),
            TAG_PLAIN => Term::Literal(Literal::plain(cur.str()?)),
            TAG_TYPED => {
                let lexical = cur.str()?;
                Term::Literal(Literal::typed(lexical, Iri::new(cur.str()?)))
            }
            TAG_LANG => {
                let lexical = cur.str()?;
                let mut l = Literal::plain(lexical);
                l.language = Some(cur.str()?);
                Term::Literal(l)
            }
            TAG_TYPED_LANG => {
                let lexical = cur.str()?;
                let datatype = Iri::new(cur.str()?);
                let mut l = Literal::typed(lexical, datatype);
                l.language = Some(cur.str()?);
                Term::Literal(l)
            }
            other => {
                return Err(invalid(format!(
                    "dictionary holds an unknown term tag {other}"
                )));
            }
        };
        let id = dict.encode(&term);
        if id as u64 != next {
            return Err(invalid("dictionary holds a duplicate term"));
        }
        next += 1;
    }
    Ok(dict)
}

/// A bounds-checked little-endian reader over a byte section.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
    what: &'static str,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8], what: &'static str) -> Self {
        Cursor {
            bytes,
            pos: 0,
            what,
        }
    }

    fn done(&self) -> bool {
        self.pos == self.bytes.len()
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SegmentError> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.bytes.len());
        match end {
            Some(end) => {
                let slice = &self.bytes[self.pos..end];
                self.pos = end;
                Ok(slice)
            }
            None => Err(invalid(format!(
                "truncated {} (needed {n} bytes at offset {})",
                self.what, self.pos
            ))),
        }
    }

    fn u32(&mut self) -> Result<u32, SegmentError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64, SegmentError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn str(&mut self) -> Result<String, SegmentError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| invalid(format!("{} holds invalid UTF-8", self.what)))
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;

    /// A self-cleaning temp directory for segment tests.
    pub(crate) struct TempDir(pub std::path::PathBuf);

    impl TempDir {
        pub(crate) fn new(tag: &str) -> TempDir {
            use std::sync::atomic::{AtomicU64, Ordering};
            static SEQ: AtomicU64 = AtomicU64::new(0);
            let path = std::env::temp_dir().join(format!(
                "sp2b-seg-{}-{}-{}",
                std::process::id(),
                tag,
                SEQ.fetch_add(1, Ordering::Relaxed)
            ));
            let _ = fs::remove_dir_all(&path);
            fs::create_dir_all(&path).expect("create temp dir");
            TempDir(path)
        }

        pub(crate) fn path(&self) -> &Path {
            &self.0
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    fn corpus() -> Vec<Term> {
        let mut lang = Literal::plain("grüße");
        lang.language = Some("de".into());
        let mut typed_lang = Literal::typed("両方", Iri::new("http://x/dt"));
        typed_lang.language = Some("ja".into());
        vec![
            Term::iri("http://example.org/article/1"),
            Term::blank("Jürgen_Müller"),
            Term::Literal(Literal::plain("plain ascii")),
            Term::Literal(Literal::plain("naïve café — 数据库 🦀")),
            Term::Literal(Literal::string("Journal 1 (1940)")),
            Term::Literal(Literal::integer(-42)),
            Term::Literal(lang),
            Term::Literal(typed_lang),
            Term::iri("http://example.org/ölpreis"),
        ]
    }

    #[test]
    fn dictionary_codec_roundtrips_including_non_ascii() {
        let mut dict = Dictionary::new();
        for t in corpus() {
            dict.encode(&t);
        }
        let bytes = encode_terms(&dict);
        let back = decode_terms(&bytes).expect("decode");
        assert_eq!(back.len(), dict.len());
        for (id, term) in dict.iter() {
            assert_eq!(back.decode(id), term, "term {id} survives the roundtrip");
            assert_eq!(back.lookup(term), Some(id), "id {id} is reproduced");
        }
    }

    #[test]
    fn decode_rejects_truncation_and_bad_tags() {
        let mut dict = Dictionary::new();
        for t in corpus() {
            dict.encode(&t);
        }
        let bytes = encode_terms(&dict);
        let err = decode_terms(&bytes[..bytes.len() - 3]).unwrap_err();
        assert!(err.to_string().contains("truncated"), "{err}");
        let mut bad = bytes.clone();
        bad[0] = 250;
        let err = decode_terms(&bad).unwrap_err();
        assert!(err.to_string().contains("unknown term tag"), "{err}");
    }

    fn demo_store() -> (Dictionary, Vec<Vec<IdTriple>>) {
        let mut dict = Dictionary::new();
        for t in corpus() {
            dict.encode(&t);
        }
        let n = dict.len() as u32;
        let mut buckets = vec![Vec::new(), Vec::new()];
        for i in 0..40u32 {
            let t = [i % n, (i * 7) % n, (i * 13) % n];
            buckets[ShardBy::Subject.shard_of(&t, 2)].push(t);
        }
        (dict, buckets)
    }

    #[test]
    fn header_and_dictionary_roundtrip() {
        let tmp = TempDir::new("roundtrip");
        let (dict, buckets) = demo_store();
        let total: usize = buckets.iter().map(Vec::len).sum();
        let stats = write_segments(tmp.path(), &dict, ShardBy::Subject, buckets).expect("write");
        assert_eq!(stats.triples as usize, total);
        assert_eq!(stats.terms as usize, dict.len());

        let header = read_header(tmp.path()).expect("header");
        assert_eq!(header.shard_by, ShardBy::Subject);
        assert_eq!(header.triples as usize, total);
        assert_eq!(header.shards.len(), 2);
        let back = read_dictionary(tmp.path(), &header).expect("dict");
        for (id, term) in dict.iter() {
            assert_eq!(back.decode(id), term);
        }
    }

    #[test]
    fn runs_are_sorted_and_checksummed() {
        let tmp = TempDir::new("runs");
        let (dict, buckets) = demo_store();
        let expected = buckets.clone();
        // A 7-triple block size forces several blocks per run, with a
        // short tail block, out of the 40-triple demo store.
        write_segments_with(tmp.path(), &dict, ShardBy::Subject, buckets, 7).expect("write");
        let header = read_header(tmp.path()).expect("header");
        assert_eq!(header.block_triples, 7);
        for (i, meta) in header.shards.iter().enumerate() {
            let path = tmp.path().join(shard_file_name(i));
            let index = read_block_index(&path, meta, header.block_triples).expect("index");
            assert_eq!(index.blocks(), blocks_in_run(meta.triples, 7));
            for (slot, order) in RUN_ORDERS.iter().enumerate() {
                let run = read_run(&path, slot, &index).expect("run");
                let perm = order.permutation();
                assert!(
                    run.windows(2)
                        .all(|w| run_key(&w[0], perm) <= run_key(&w[1], perm)),
                    "shard {i} run {order:?} is sorted"
                );
                let mut expect = expected[i].clone();
                expect.sort_unstable_by_key(|t| run_key(t, perm));
                assert_eq!(run, expect, "shard {i} run {order:?} holds the bucket");
                // The index records each block's first key, and each
                // block reads back as the matching slice of the run.
                for block in 0..index.blocks() {
                    let start = block * index.block_triples as usize;
                    let triples = read_block(&path, slot, block, &index).expect("block");
                    assert_eq!(index.block_len(block), triples.len());
                    assert_eq!(triples, expect[start..start + triples.len()]);
                    assert_eq!(
                        index.runs[slot].first_keys[block],
                        run_key(&expect[start], perm),
                        "shard {i} run {order:?} block {block} first key"
                    );
                }
            }
        }
    }

    #[test]
    fn candidate_blocks_bracket_key_ranges() {
        let index = BlockIndex {
            triples: 9,
            block_triples: 3,
            runs: [
                RunIndex {
                    first_keys: vec![[1, 0, 0], [4, 2, 0], [4, 9, 0]],
                    checksums: vec![0; 3],
                },
                RunIndex::default(),
                RunIndex::default(),
            ],
        };
        // A key below everything, inside each block, and above everything.
        assert_eq!(
            index.candidate_blocks(0, [0, 0, 0], [0, u32::MAX, u32::MAX]),
            0..0
        );
        assert_eq!(
            index.candidate_blocks(0, [1, 0, 0], [1, u32::MAX, u32::MAX]),
            0..1
        );
        // Key 4 spans the boundary of blocks 1 and 2, and block 0 may
        // still reach into it (conservative left edge).
        assert_eq!(
            index.candidate_blocks(0, [4, 0, 0], [4, u32::MAX, u32::MAX]),
            0..3
        );
        assert_eq!(index.candidate_blocks(0, [4, 9, 0], [4, 9, u32::MAX]), 1..3);
        assert_eq!(
            index.candidate_blocks(0, [9, 0, 0], [9, u32::MAX, u32::MAX]),
            2..3
        );
        // The unbounded range covers every block.
        assert_eq!(index.candidate_blocks(0, [0, 0, 0], [u32::MAX; 3]), 0..3);
    }

    #[test]
    fn parallel_run_sorts_are_byte_identical_across_saves() {
        let (dict, buckets) = demo_store();
        let (a, b) = (TempDir::new("det-a"), TempDir::new("det-b"));
        write_segments(a.path(), &dict, ShardBy::Subject, buckets.clone()).expect("write a");
        write_segments(b.path(), &dict, ShardBy::Subject, buckets).expect("write b");
        for i in 0..2 {
            let fa = fs::read(a.path().join(shard_file_name(i))).unwrap();
            let fb = fs::read(b.path().join(shard_file_name(i))).unwrap();
            assert_eq!(fa, fb, "shard {i} files are byte-identical");
        }
        assert_eq!(
            fs::read(a.path().join(ROOT_FILE)).unwrap(),
            fs::read(b.path().join(ROOT_FILE)).unwrap()
        );
    }

    #[test]
    fn corrupted_block_payload_is_caught_by_its_block_checksum() {
        let tmp = TempDir::new("block-corrupt");
        let (dict, buckets) = demo_store();
        write_segments_with(tmp.path(), &dict, ShardBy::Subject, buckets, 7).expect("write");
        let header = read_header(tmp.path()).expect("header");
        let path = tmp.path().join(shard_file_name(0));
        let index = read_block_index(&path, &header.shards[0], 7).expect("index");
        let mut bytes = fs::read(&path).unwrap();
        // Flip a byte in run 1, block 1 — only that block must fail.
        let victim = index.block_offset(1, 1) as usize;
        bytes[victim] ^= 0xff;
        fs::write(&path, &bytes).unwrap();
        assert!(read_block(&path, 1, 0, &index).is_ok());
        assert!(read_block(&path, 0, 1, &index).is_ok());
        let err = read_block(&path, 1, 1, &index).unwrap_err();
        assert!(err.to_string().contains("block checksum mismatch"), "{err}");
    }

    #[test]
    fn stats_section_roundtrips_per_shard() {
        let tmp = TempDir::new("stats");
        let (dict, buckets) = demo_store();
        let expected: Vec<StoreStats> = buckets
            .iter()
            .map(|b| StoreStats::from_triples(b))
            .collect();
        write_segments(tmp.path(), &dict, ShardBy::Subject, buckets).expect("write");
        let header = read_header(tmp.path()).expect("header");
        let stats = read_stats(tmp.path(), &header).expect("stats");
        assert_eq!(stats, expected);
    }

    #[test]
    fn corrupted_stats_section_is_rejected() {
        let tmp = TempDir::new("stats-corrupt");
        let (dict, buckets) = demo_store();
        write_segments(tmp.path(), &dict, ShardBy::Subject, buckets).expect("write");
        let header = read_header(tmp.path()).expect("header");
        let path = tmp.path().join(STATS_FILE);
        let good = fs::read(&path).unwrap();

        let mut flipped = good.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0xff;
        fs::write(&path, &flipped).unwrap();
        let err = read_stats(tmp.path(), &header).unwrap_err();
        assert!(err.to_string().contains("checksum mismatch"), "{err}");

        fs::write(&path, &good[..good.len() - 3]).unwrap();
        let err = read_stats(tmp.path(), &header).unwrap_err();
        assert!(err.to_string().contains("truncated"), "{err}");

        fs::remove_file(&path).unwrap();
        let err = read_stats(tmp.path(), &header).unwrap_err();
        assert!(err.to_string().contains("missing statistics"), "{err}");
    }

    #[test]
    fn corrupted_dictionary_reports_checksum_not_garbage() {
        let tmp = TempDir::new("dict-corrupt");
        let (dict, buckets) = demo_store();
        write_segments(tmp.path(), &dict, ShardBy::Subject, buckets).expect("write");
        // Flip one byte inside a term's UTF-8 payload: without the
        // checksum this could silently decode to a different term.
        let path = tmp.path().join(DICT_FILE);
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x20;
        fs::write(&path, &bytes).unwrap();
        let header = read_header(tmp.path()).expect("root is untouched");
        let err = read_dictionary(tmp.path(), &header).unwrap_err();
        assert!(err.to_string().contains("checksum mismatch"), "{err}");
    }

    #[test]
    fn corrupted_or_truncated_root_is_rejected() {
        let tmp = TempDir::new("root-corrupt");
        let (dict, buckets) = demo_store();
        write_segments(tmp.path(), &dict, ShardBy::Subject, buckets).expect("write");
        let path = tmp.path().join(ROOT_FILE);
        let good = fs::read(&path).unwrap();

        let mut flipped = good.clone();
        flipped[12] ^= 0xff;
        fs::write(&path, &flipped).unwrap();
        let err = read_header(tmp.path()).unwrap_err();
        assert!(err.to_string().contains("checksum mismatch"), "{err}");

        fs::write(&path, &good[..good.len() - 5]).unwrap();
        let err = read_header(tmp.path()).unwrap_err();
        assert!(err.to_string().contains("checksum mismatch"), "{err}");

        fs::write(&path, b"short").unwrap();
        let err = read_header(tmp.path()).unwrap_err();
        assert!(err.to_string().contains("truncated"), "{err}");

        let mut bad_magic = good.clone();
        bad_magic[0] = b'X';
        // Re-stamp the trailer so only the magic is wrong.
        let body_len = bad_magic.len() - 8;
        let cks = Checksum::of(&bad_magic[..body_len]);
        bad_magic[body_len..].copy_from_slice(&cks.to_le_bytes());
        fs::write(&path, &bad_magic).unwrap();
        let err = read_header(tmp.path()).unwrap_err();
        assert!(err.to_string().contains("bad magic"), "{err}");
    }

    #[test]
    fn v2_root_is_rejected_with_a_resave_hint() {
        let tmp = TempDir::new("v2-skew");
        let (dict, buckets) = demo_store();
        write_segments(tmp.path(), &dict, ShardBy::Subject, buckets).expect("write");
        let path = tmp.path().join(ROOT_FILE);
        let mut bytes = fs::read(&path).unwrap();
        // Stamp the previous format version into an otherwise valid
        // root (version sits right after the 8-byte magic), re-sign the
        // trailer, and open: the reader must refuse with the one-line
        // skew message, not a checksum complaint or a misread.
        bytes[8..12].copy_from_slice(&2u32.to_le_bytes());
        let body_len = bytes.len() - 8;
        let cks = Checksum::of(&bytes[..body_len]);
        bytes[body_len..].copy_from_slice(&cks.to_le_bytes());
        fs::write(&path, &bytes).unwrap();
        let err = read_header(tmp.path()).unwrap_err();
        assert_eq!(
            err.to_string(),
            "segment version 2, expected 3 — re-run `sp2b save`"
        );
    }

    #[test]
    fn missing_directory_and_missing_root_have_clear_errors() {
        let err = read_header(Path::new("/nonexistent/sp2b-segments")).unwrap_err();
        assert!(err.to_string().contains("does not exist"), "{err}");
        let tmp = TempDir::new("empty");
        let err = read_header(tmp.path()).unwrap_err();
        assert!(err.to_string().contains("no segment root"), "{err}");
        assert!(err.to_string().contains("sp2b save"), "{err}");
    }

    #[test]
    fn truncated_shard_file_is_rejected() {
        let tmp = TempDir::new("run-truncated");
        let (dict, buckets) = demo_store();
        write_segments(tmp.path(), &dict, ShardBy::Subject, buckets).expect("write");
        let header = read_header(tmp.path()).expect("header");
        let path = tmp.path().join(shard_file_name(0));
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() - 7]).unwrap();
        let meta = &header.shards[0];
        // The trailing block index no longer has all its bytes.
        let err = read_block_index(&path, meta, header.block_triples).unwrap_err();
        assert!(err.to_string().contains("truncated"), "{err}");
    }

    #[test]
    fn checksum_is_stable_incrementally() {
        let mut inc = Checksum::new();
        inc.update(b"hello ");
        inc.update(b"world");
        assert_eq!(inc.finish(), Checksum::of(b"hello world"));
        assert_ne!(Checksum::of(b"a"), Checksum::of(b"b"));
    }
}
