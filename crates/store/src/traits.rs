//! The store abstraction the SPARQL engine evaluates against.

use sp2b_rdf::Term;

use crate::dictionary::{Dictionary, Id, IdTriple};

/// A triple-scan pattern: `None` means "any" (a variable position),
/// `Some(id)` a bound term, in (s, p, o) order.
pub type Pattern = [Option<Id>; 3];

/// Common interface of the two storage engines.
///
/// The engine asks for matching triples ([`TripleStore::scan`]) and for
/// cardinality estimates ([`TripleStore::estimate`], driving the
/// selectivity-based join reordering of Section V). Implementations must
/// be `Send + Sync` so the benchmark runner can enforce timeouts from a
/// watchdog thread.
pub trait TripleStore: Send + Sync {
    /// The term dictionary backing this store.
    fn dictionary(&self) -> &Dictionary;

    /// Total number of stored triples.
    fn len(&self) -> usize;

    /// True if the store holds no triples.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterates all triples matching `pattern`, in store order.
    fn scan<'a>(&'a self, pattern: Pattern) -> Box<dyn Iterator<Item = IdTriple> + 'a>;

    /// Estimated number of triples matching `pattern`. Index-backed stores
    /// return exact counts; scan stores return heuristics.
    fn estimate(&self, pattern: Pattern) -> u64;

    /// Whether [`TripleStore::estimate`] is exact.
    fn has_exact_estimates(&self) -> bool {
        false
    }

    /// True if at least one triple matches.
    fn contains(&self, pattern: Pattern) -> bool {
        self.scan(pattern).next().is_some()
    }

    /// Convenience: encodes a term against the dictionary (read-only).
    /// `None` means the term does not occur in the data, so any pattern
    /// containing it yields no matches.
    fn resolve(&self, term: &Term) -> Option<Id> {
        self.dictionary().lookup(term)
    }
}

/// Does `triple` match `pattern`?
#[inline]
pub fn matches(triple: &IdTriple, pattern: &Pattern) -> bool {
    pattern
        .iter()
        .zip(triple.iter())
        .all(|(p, v)| p.is_none_or(|id| id == *v))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_respects_bound_positions() {
        let t: IdTriple = [1, 2, 3];
        assert!(matches(&t, &[None, None, None]));
        assert!(matches(&t, &[Some(1), None, None]));
        assert!(matches(&t, &[Some(1), Some(2), Some(3)]));
        assert!(!matches(&t, &[Some(9), None, None]));
        assert!(!matches(&t, &[None, None, Some(9)]));
    }
}
