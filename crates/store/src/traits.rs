//! The store abstraction the SPARQL engine evaluates against.

use std::sync::Arc;

use sp2b_rdf::Term;

use crate::dictionary::{Dictionary, Id, IdTriple};
use crate::stats::StoreStats;

/// A shared, owning store handle: what a long-lived query engine holds.
///
/// [`TripleStore`] implementations are immutable once loaded (the update
/// stream mutates through `&mut` before sharing), so one `Arc` can back
/// any number of concurrent query engines, detached exchange worker
/// threads, and benchmark client threads at once.
pub type SharedStore = Arc<dyn TripleStore>;

/// A triple-scan pattern: `None` means "any" (a variable position),
/// `Some(id)` a bound term, in (s, p, o) order.
pub type Pattern = [Option<Id>; 3];

/// Common interface of the two storage engines.
///
/// The engine asks for matching triples ([`TripleStore::scan`]) and for
/// cardinality estimates ([`TripleStore::estimate`], driving the
/// selectivity-based join reordering of Section V). Implementations must
/// be `Send + Sync` so the benchmark runner can enforce timeouts from a
/// watchdog thread.
pub trait TripleStore: Send + Sync {
    /// The term dictionary backing this store.
    fn dictionary(&self) -> &Dictionary;

    /// Total number of stored triples.
    fn len(&self) -> usize;

    /// True if the store holds no triples.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterates all triples matching `pattern`, in store order.
    fn scan<'a>(&'a self, pattern: Pattern) -> Box<dyn Iterator<Item = IdTriple> + 'a>;

    /// Splits the scan of `pattern` into about `n` disjoint chunks whose
    /// concatenation, in chunk order, yields exactly the triples of
    /// [`TripleStore::scan`] in scan order — that coverage contract is
    /// the hard one; `n` is a budget. Single stores return at most `n`
    /// chunks; a composite store may return slightly more when disjoint
    /// physical partitions each need at least one chunk (the sharded
    /// store returns at most one extra chunk per shard). The chunk
    /// handles are `Send`, so a morsel-driven driver can fan them out to
    /// worker threads.
    ///
    /// Implementations must be **deterministic**: the same `pattern` and
    /// `n` on an unchanged store must return the same chunk list. Detached
    /// exchange workers rely on this — each worker re-derives the chunk
    /// list from its own [`SharedStore`] handle and claims chunk *indices*
    /// from a shared counter, so divergent lists would split the scan
    /// inconsistently.
    ///
    /// The default returns an empty vector, meaning "this store cannot
    /// partition the scan" — callers must fall back to [`TripleStore::scan`].
    /// [`crate::NativeStore`] splits the binary-searched index range,
    /// [`crate::MemStore`] splits the posting list (or the row span of a
    /// full scan).
    fn scan_chunks(&self, pattern: Pattern, n: usize) -> Vec<ScanChunk<'_>> {
        let _ = (pattern, n);
        Vec::new()
    }

    /// Estimated number of triples matching `pattern`. Index-backed stores
    /// return exact counts; scan stores return heuristics.
    fn estimate(&self, pattern: Pattern) -> u64;

    /// Whether [`TripleStore::estimate`] is exact.
    fn has_exact_estimates(&self) -> bool {
        false
    }

    /// The load-time statistics summary ([`StoreStats`]), if this store
    /// collected one — the cost-based planner's input. The default
    /// (`None`) keeps bare stores working; the planner then falls back
    /// to per-pattern [`TripleStore::estimate`] heuristics.
    fn stats(&self) -> Option<&StoreStats> {
        None
    }

    /// True if at least one triple matches.
    fn contains(&self, pattern: Pattern) -> bool {
        self.scan(pattern).next().is_some()
    }

    /// Convenience: encodes a term against the dictionary (read-only).
    /// `None` means the term does not occur in the data, so any pattern
    /// containing it yields no matches.
    fn resolve(&self, term: &Term) -> Option<Id> {
        self.dictionary().lookup(term)
    }

    /// Counters of the block cache this store serves scans through, for
    /// stores that read decoded disk blocks out of a bounded shared
    /// cache (the out-of-core segment store, [`crate::disk`]). `None`
    /// for fully in-memory stores. A composite store returns its
    /// shards' shared cache once, not a per-shard sum.
    fn cache_stats(&self) -> Option<CacheStats> {
        None
    }

    /// Moves this store behind a [`SharedStore`] handle — the form the
    /// owned `QueryEngine` and the multi-client benchmark driver consume.
    fn into_shared(self) -> SharedStore
    where
        Self: Sized + 'static,
    {
        Arc::new(self)
    }
}

/// A snapshot of a block cache's counters (see
/// [`TripleStore::cache_stats`]): how an out-of-core store's bounded
/// memory is behaving under the current workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Block lookups served from the cache.
    pub hits: u64,
    /// Block lookups that had to read and decode from disk.
    pub misses: u64,
    /// Blocks evicted to stay within the byte budget.
    pub evictions: u64,
    /// Decoded blocks currently resident.
    pub resident_blocks: u64,
    /// Bytes currently charged against the budget.
    pub resident_bytes: u64,
    /// The high-water mark of `resident_bytes` — never exceeds
    /// `budget_bytes` (cached residency is bounded; blocks being
    /// actively iterated are working memory, not residency).
    pub peak_resident_bytes: u64,
    /// The configured byte budget.
    pub budget_bytes: u64,
}

impl CacheStats {
    /// One human line of the counters, shared by the engine boot
    /// summary and the `--explain` `Cache:` line.
    pub fn summary(&self) -> String {
        format!(
            "{} hits, {} misses, {} evictions, {} block(s) resident \
             ({} B, peak {} B) of {} B budget",
            self.hits,
            self.misses,
            self.evictions,
            self.resident_blocks,
            self.resident_bytes,
            self.peak_resident_bytes,
            self.budget_bytes
        )
    }
}

/// A store that can iterate ranges of fixed-size decoded blocks — what
/// a [`ScanChunk::Blocks`] handle dereferences through. Implemented by
/// the out-of-core `DiskShardStore`, whose blocks live behind a shared
/// LRU cache rather than borrowed slices, so a chunk cannot hand out a
/// `&[IdTriple]` that an eviction would invalidate; instead the chunk
/// carries a block range and pulls each block through the cache as it
/// is reached.
pub trait BlockSource: Send + Sync {
    /// Iterates the triples of blocks `blocks` of sorted run `run` that
    /// match `pattern`, in run order. `run` and the block range must
    /// come from this source's own `scan_chunks` answer for the same
    /// `pattern` — the source re-derives the key bounds from `pattern`
    /// and applies the same lower-bound skip / upper-bound stop /
    /// residual filtering as its full scan, so concatenating the chunks
    /// of one answer reproduces the scan exactly.
    fn iter_blocks<'a>(
        &'a self,
        run: usize,
        blocks: std::ops::Range<usize>,
        pattern: Pattern,
    ) -> Box<dyn Iterator<Item = IdTriple> + 'a>;
}

/// One disjoint portion of a partitioned scan (see
/// [`TripleStore::scan_chunks`]): a cheap `Copy` handle over borrowed
/// store data that each worker thread turns into triples with
/// [`ScanChunk::iter`]. All variants still apply residual pattern
/// filtering, so chunks are safe for partial-prefix index ranges and
/// posting lists alike.
#[derive(Clone, Copy)]
pub enum ScanChunk<'a> {
    /// A contiguous run of candidate triples (an index-range or
    /// triple-table span).
    Triples(&'a [IdTriple]),
    /// Candidate row numbers (a posting-list span) into a triple table.
    Rows {
        /// Indices into `table`.
        rows: &'a [u32],
        /// The full triple table the rows point into.
        table: &'a [IdTriple],
    },
    /// A range of on-disk blocks of one sorted run, materialized
    /// through the source's block cache only when iterated.
    Blocks {
        /// The store that owns the blocks.
        source: &'a dyn BlockSource,
        /// Which sorted run (SPO/PSO/OSP slot) the blocks belong to.
        run: usize,
        /// First candidate block (inclusive).
        start: usize,
        /// Last candidate block (exclusive).
        end: usize,
        /// Total triples in the candidate blocks (before filtering).
        len: usize,
    },
}

impl std::fmt::Debug for ScanChunk<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScanChunk::Triples(t) => f.debug_tuple("Triples").field(&t.len()).finish(),
            ScanChunk::Rows { rows, .. } => {
                f.debug_struct("Rows").field("rows", &rows.len()).finish()
            }
            ScanChunk::Blocks {
                run,
                start,
                end,
                len,
                ..
            } => f
                .debug_struct("Blocks")
                .field("run", run)
                .field("blocks", &(start..end))
                .field("len", len)
                .finish(),
        }
    }
}

impl<'a> ScanChunk<'a> {
    /// Number of candidate triples (before residual filtering).
    pub fn len(&self) -> usize {
        match self {
            ScanChunk::Triples(t) => t.len(),
            ScanChunk::Rows { rows, .. } => rows.len(),
            ScanChunk::Blocks { len, .. } => *len,
        }
    }

    /// True if the chunk holds no candidates.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterates the chunk's triples matching `pattern`, in chunk order.
    pub fn iter(self, pattern: Pattern) -> Box<dyn Iterator<Item = IdTriple> + 'a> {
        match self {
            ScanChunk::Triples(triples) => Box::new(
                triples
                    .iter()
                    .filter(move |t| matches(t, &pattern))
                    .copied(),
            ),
            ScanChunk::Rows { rows, table } => Box::new(
                rows.iter()
                    .map(move |&r| table[r as usize])
                    .filter(move |t| matches(t, &pattern)),
            ),
            ScanChunk::Blocks {
                source,
                run,
                start,
                end,
                ..
            } => source.iter_blocks(run, start..end, pattern),
        }
    }
}

/// Splits `0..len` into at most `n` contiguous near-even ranges (empty for
/// `len == 0`; fewer than `n` ranges when `len < n`). Shared by the store
/// implementations of [`TripleStore::scan_chunks`].
pub fn split_ranges(len: usize, n: usize) -> Vec<std::ops::Range<usize>> {
    let n = n.max(1).min(len);
    let mut out = Vec::with_capacity(n);
    let mut start = 0;
    for i in 0..n {
        // Distribute the remainder over the first `len % n` ranges.
        let end = start + len / n + usize::from(i < len % n);
        out.push(start..end);
        start = end;
    }
    debug_assert_eq!(start, len);
    out
}

/// Does `triple` match `pattern`?
#[inline]
pub fn matches(triple: &IdTriple, pattern: &Pattern) -> bool {
    pattern
        .iter()
        .zip(triple.iter())
        .all(|(p, v)| p.is_none_or(|id| id == *v))
}

/// Debug-build check of the [`TripleStore::scan_chunks`] contract: the
/// chunks' concatenation, in chunk order, must equal the store's
/// [`TripleStore::scan`] of the same pattern — full coverage, no
/// overlap, same order. Every store implementation calls this on the
/// chunk list it is about to return, turning the trait doc into a
/// checked invariant; release builds (the benchmarks) pay nothing.
#[inline]
pub fn debug_assert_chunks_cover(
    store: &dyn TripleStore,
    pattern: Pattern,
    chunks: &[ScanChunk<'_>],
) {
    #[cfg(debug_assertions)]
    {
        let sequential: Vec<IdTriple> = store.scan(pattern).collect();
        let chunked: Vec<IdTriple> = chunks.iter().flat_map(|c| c.iter(pattern)).collect();
        assert_eq!(
            chunked, sequential,
            "scan_chunks broke the coverage contract for pattern {pattern:?}: \
             concatenated chunks must equal the scan"
        );
    }
    #[cfg(not(debug_assertions))]
    {
        let _ = (store, pattern, chunks);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_ranges_covers_exactly() {
        assert!(split_ranges(0, 4).is_empty());
        assert_eq!(split_ranges(3, 8), vec![0..1, 1..2, 2..3]);
        assert_eq!(split_ranges(10, 3), vec![0..4, 4..7, 7..10]);
        assert_eq!(split_ranges(5, 1), vec![0..5]);
        // n = 0 is treated as 1.
        assert_eq!(split_ranges(5, 0), vec![0..5]);
    }

    #[test]
    fn scan_chunk_iter_filters_residually() {
        let table: Vec<IdTriple> = vec![[1, 2, 3], [1, 9, 3], [4, 2, 3]];
        let chunk = ScanChunk::Triples(&table);
        assert_eq!(chunk.len(), 3);
        let hits: Vec<IdTriple> = chunk.iter([None, Some(2), None]).collect();
        assert_eq!(hits, vec![[1, 2, 3], [4, 2, 3]]);

        let rows: Vec<u32> = vec![2, 0];
        let chunk = ScanChunk::Rows {
            rows: &rows,
            table: &table,
        };
        let hits: Vec<IdTriple> = chunk.iter([None, None, Some(3)]).collect();
        assert_eq!(hits, vec![[4, 2, 3], [1, 2, 3]], "chunk order is row order");
    }

    #[test]
    fn chunk_coverage_assertion_catches_gaps() {
        struct Fixed(Vec<IdTriple>);
        impl TripleStore for Fixed {
            fn dictionary(&self) -> &Dictionary {
                unimplemented!("not needed for chunk coverage")
            }
            fn len(&self) -> usize {
                self.0.len()
            }
            fn scan<'a>(&'a self, pattern: Pattern) -> Box<dyn Iterator<Item = IdTriple> + 'a> {
                Box::new(self.0.iter().filter(move |t| matches(t, &pattern)).copied())
            }
            fn estimate(&self, _: Pattern) -> u64 {
                self.0.len() as u64
            }
        }
        let store = Fixed(vec![[1, 2, 3], [4, 5, 6], [7, 8, 9]]);
        let pattern: Pattern = [None, None, None];
        // A correct split passes…
        let good = [
            ScanChunk::Triples(&store.0[..1]),
            ScanChunk::Triples(&store.0[1..]),
        ];
        debug_assert_chunks_cover(&store, pattern, &good);
        // …a gap (dropped triple) and an overlap (repeated triple) panic
        // in debug builds.
        let gap = [ScanChunk::Triples(&store.0[..1])];
        let overlap = [
            ScanChunk::Triples(&store.0[..2]),
            ScanChunk::Triples(&store.0[1..]),
        ];
        for bad in [&gap[..], &overlap[..]] {
            let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                debug_assert_chunks_cover(&store, pattern, bad);
            }));
            assert_eq!(caught.is_err(), cfg!(debug_assertions));
        }
    }

    #[test]
    fn matches_respects_bound_positions() {
        let t: IdTriple = [1, 2, 3];
        assert!(matches(&t, &[None, None, None]));
        assert!(matches(&t, &[Some(1), None, None]));
        assert!(matches(&t, &[Some(1), Some(2), Some(3)]));
        assert!(!matches(&t, &[Some(9), None, None]));
        assert!(!matches(&t, &[None, None, Some(9)]));
    }
}
