//! # sp2b-store — RDF storage substrate
//!
//! Two storage engines occupying the design points the paper benchmarks:
//!
//! * [`MemStore`] — a flat, unindexed triple list answering every pattern
//!   by linear scan (the "in-memory engine" class: ARQ, Sesame-Memory);
//! * [`NativeStore`] — dictionary-encoded triples sorted into up to six
//!   permutation indexes (SPO/SOP/PSO/POS/OSP/OPS) with binary-searched
//!   range scans and exact cardinality estimates (the "native engine"
//!   class: Sesame-DB, Virtuoso).
//!
//! Both implement [`TripleStore`], which the SPARQL engine evaluates
//! against; [`Dictionary`] provides the term↔id mapping. For large
//! documents, [`ShardedStore`] composes N of either store into one
//! hash-partitioned logical store behind a shared dictionary, so
//! loading, index build and scans parallelize across shards (see
//! [`shard`]). A store can also be **saved** as a directory of
//! checksummed binary segments ([`segment`]) and reopened out-of-core
//! ([`disk`]): open reads only the header, the dictionary and the
//! per-shard block indexes, and scans pull fixed-size blocks of the
//! sorted runs through a byte-budgeted shared LRU [`BlockCache`] — so a
//! document larger than RAM serves at O(cache budget) resident memory.

pub mod dictionary;
pub mod disk;
pub mod hash;
pub mod load;
pub mod mem;
pub mod native;
pub mod segment;
pub mod shard;
pub mod stats;
pub mod traits;

pub use dictionary::{Dictionary, Id, IdTriple};
pub use disk::{
    open_store, open_store_with, save_graph, save_graph_with, BlockCache, DiskShardStore,
};
pub use load::{
    disk_store_from_dir, disk_store_from_dir_with, mem_store_from_path, mem_store_from_reader,
    native_store_from_path, native_store_from_reader, save_segments_from_path,
    save_segments_from_reader, sharded_store_from_path, sharded_store_from_reader, SaveError,
};
pub use mem::MemStore;
pub use native::{IndexOrder, IndexSelection, NativeStore};
pub use segment::{SegmentError, SegmentStats};
pub use shard::{ShardBackend, ShardBy, ShardedStore};
pub use stats::{CharacteristicSet, PredicateStats, StoreStats};
pub use traits::{
    debug_assert_chunks_cover, split_ranges, BlockSource, CacheStats, Pattern, ScanChunk,
    SharedStore, TripleStore,
};
